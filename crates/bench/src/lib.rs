//! # asl-bench — Criterion bench targets
//!
//! This crate holds no library code; its `benches/` directory carries
//! one Criterion target per paper table/figure plus the ablations:
//!
//! * `figures_micro` — Figures 1, 4, 5, 8a/8b/8e/8g/8h.
//! * `figures_db` — Figures 9 (Kyoto Cabinet, upscaledb, LMDB) and
//!   10 (LevelDB, SQLite).
//! * `ablations` — standby back-off policy, underlying FIFO lock,
//!   and dispatch-rule ablations.
//! * `primitives` — uncontended lock/unlock and epoch-call costs.
//!
//! Full figure regeneration (with per-class tail latencies, SLO
//! sweeps and CDFs, which Criterion's time-per-op model cannot
//! express) lives in the `repro` binary of `asl-harness`.
