//! Per-access-layer uncontended latency bench — the Criterion mirror
//! of `repro overhead`, for flamegraph-friendly local runs (the
//! offline criterion shim prints mean ns/iter; under a real criterion
//! this produces full distributions).
//!
//! Layers per lock (same axis as the figure):
//! `static` (concrete type behind a guard), `dyn` (registry
//! `Arc<dyn PlainLock>` facade), `instr-off` (`instrumented-<name>`
//! with profiling off — must sit within noise of `dyn`), `instr-on`
//! (profiling on: counts + hold/wait sampling).

use asl_harness::locks::LockSpec;
use asl_locks::api::Guard;
use asl_locks::telemetry::{self, Instrumented};
use asl_locks::{Adaptive, McsLock, TasLock, TicketLock};
use criterion::{criterion_group, criterion_main, Criterion};

fn static_layer(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead_static");
    let tas = TasLock::new();
    g.bench_function("tas", |b| {
        b.iter(|| {
            let _g = Guard::new(&tas);
        })
    });
    let ticket = TicketLock::new();
    g.bench_function("ticket", |b| {
        b.iter(|| {
            let _g = Guard::new(&ticket);
        })
    });
    let mcs = McsLock::new();
    g.bench_function("mcs", |b| {
        b.iter(|| {
            let _g = Guard::new(&mcs);
        })
    });
    let adaptive = Adaptive::new();
    g.bench_function("adaptive", |b| {
        b.iter(|| {
            let _g = Guard::new(&adaptive);
        })
    });
    // Static telemetry wrap, un-armed: the zero-cost-when-off path.
    let instr = Instrumented::new(McsLock::new());
    g.bench_function("instrumented-mcs (off)", |b| {
        b.iter(|| {
            let _g = Guard::new(&instr);
        })
    });
    let sampled = Instrumented::sampled(McsLock::new());
    g.bench_function("instrumented-mcs (sampled)", |b| {
        b.iter(|| {
            let _g = Guard::new(&sampled);
        })
    });
    g.finish();
}

fn dyn_layers(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead_dyn");
    for name in [
        "tas",
        "ticket",
        "mcs",
        "adaptive",
        "libasl-max",
        "libasl-70us",
    ] {
        let spec: LockSpec = name.parse().expect("registry name");
        telemetry::set_profiling(false);
        let lock = spec.make_dyn();
        g.bench_function(format!("{name}/dyn"), |b| {
            b.iter(|| {
                let _g = lock.lock();
            })
        });
        let ispec = LockSpec::Instrumented(Box::new(spec.clone()));
        let off = ispec.make_dyn();
        g.bench_function(format!("{name}/instr-off"), |b| {
            b.iter(|| {
                let _g = off.lock();
            })
        });
        // Cells created while profiling is on stay sampled (armed)
        // after the global gate drops, so the bench below measures
        // the sampling cost without leaving profiling on process-wide.
        telemetry::set_profiling(true);
        let on = ispec.make_dyn();
        telemetry::set_profiling(false);
        g.bench_function(format!("{name}/instr-on"), |b| {
            b.iter(|| {
                let _g = on.lock();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, static_layer, dyn_layers);
criterion_main!(benches);
