//! Criterion bench: exclusive vs reader-writer substrates across the
//! YCSB-A/B/C read fractions.
//!
//! The repro CLI's `rw` figure reports tails and thread sweeps; this
//! bench gives the coarse per-op timing view of the same contrast:
//! the upscaledb-like engine (one global tree lock) at 50%, 95% and
//! 100% reads under each substrate. Exclusive locks pay the full
//! serialization cost at every fraction; rw substrates shed it as the
//! read share grows.

use std::sync::Arc;
use std::time::Duration;

use asl_dbsim::upscale::UpscaleDb;
use asl_dbsim::workload::Mix;
use asl_dbsim::{Engine, LockFactory};
use asl_harness::figures::{seed_tls_rng, with_tls_rng};
use asl_harness::locks::LockSpec;
use asl_harness::runner::run_until_ops;
use asl_locks::plain::{PlainLock, PlainRwLock};
use asl_runtime::Topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

struct SpecFactory(LockSpec);
impl LockFactory for SpecFactory {
    fn make(&self) -> Arc<dyn PlainLock> {
        self.0.make_lock()
    }
    fn make_rw(&self) -> Arc<dyn PlainRwLock> {
        self.0.make_rw_lock()
    }
}

fn lineup() -> Vec<(&'static str, LockSpec)> {
    vec![
        ("mcs", LockSpec::Mcs),
        ("libasl-max", LockSpec::asl(None)),
        ("rw-ticket", LockSpec::RwTicket),
        ("bravo-mcs", "bravo-mcs".parse().expect("registry name")),
        ("libasl-rw-max", LockSpec::AslRw { slo_ns: None }),
    ]
}

/// YCSB mixes: (label, read fraction).
const MIXES: [(&str, f64); 3] = [("ycsb-a", 0.5), ("ycsb-b", 0.95), ("ycsb-c", 1.0)];

fn rw_vs_exclusive(c: &mut Criterion) {
    let topo = Topology::apple_m1();
    for (mix_label, frac) in MIXES {
        let mut group = c.benchmark_group(format!("rw_{mix_label}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(1200))
            .throughput(Throughput::Elements(1));
        for (label, spec) in lineup() {
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter_custom(|iters| {
                    let engine: Arc<dyn Engine> = Arc::new(UpscaleDb::with_mix(
                        &SpecFactory(spec.clone()),
                        Mix::new(frac),
                    ));
                    run_until_ops(&topo, 8, iters.max(8), |ctx| {
                        seed_tls_rng(ctx.index);
                        with_tls_rng(|rng| engine.run_request(rng));
                        0
                    })
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, rw_vs_exclusive);
criterion_main!(benches);
