//! Primitive-cost benches: the numbers the paper quotes in §3.4
//! ("the two epoch operations only involve cheap computations, ~93
//! cycles per epoch"; clock_gettime ~45 cycles; 20+ cycles for the
//! lock redirection).

use asl_core::epoch;
use asl_locks::{McsLock, PthreadMutex, RawLock, TasLock, TicketLock};
use asl_runtime::clock::now_ns;
use asl_runtime::registry::is_big_core;
use criterion::{criterion_group, criterion_main, Criterion};

fn epoch_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.bench_function("epoch_start_end_pair", |b| {
        epoch::reset_thread_epochs();
        b.iter(|| {
            epoch::epoch_start(0);
            epoch::epoch_end(0, 1_000_000)
        });
    });
    g.bench_function("clock_now_ns", |b| b.iter(now_ns));
    g.bench_function("is_big_core", |b| b.iter(is_big_core));
    g.finish();
}

fn uncontended_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_lock_unlock");
    let tas = TasLock::new();
    g.bench_function("tas", |b| {
        b.iter(|| {
            tas.lock();
            tas.unlock(());
        })
    });
    let ticket = TicketLock::new();
    g.bench_function("ticket", |b| {
        b.iter(|| {
            ticket.lock();
            ticket.unlock(());
        })
    });
    let mcs = McsLock::new();
    g.bench_function("mcs", |b| {
        b.iter(|| {
            let t = mcs.lock();
            mcs.unlock(t);
        })
    });
    let pthread = PthreadMutex::new();
    g.bench_function("pthread", |b| {
        b.iter(|| {
            pthread.lock();
            pthread.unlock(());
        })
    });
    let asl = asl_core::AslSpinLock::default();
    g.bench_function("libasl (big core)", |b| {
        b.iter(|| {
            let t = asl.lock();
            asl.unlock(t);
        })
    });
    g.finish();
}

criterion_group!(benches, epoch_pair, uncontended_locks);
criterion_main!(benches);
