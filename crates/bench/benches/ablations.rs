//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablate_backoff` — binary-exponential standby probing (the
//!   paper's choice) vs fixed-interval probing.
//! * `ablate_fifo` — which FIFO lock sits under the reorderable
//!   layer (MCS vs CLH vs ticket).
//! * `ablate_dispatch` — big cores locking immediately (Algorithm 3)
//!   vs big cores also going through the standby path.
//! * `ablate_policy` — ordering policies inside the ShflLock-style
//!   shuffle framework (FIFO vs class-local vs prefer-big vs
//!   proportional) under one queue mechanism.
//! * `ablate_unit` — Algorithm 2's adaptive growth unit
//!   `(100-PCT)%·window` vs fixed growth units, measured as throughput
//!   under an SLO-annotated epoch workload.

use std::sync::Arc;
use std::time::Duration;

use asl_core::{FixedCheckWait, ReorderableLock, SpinWait, WaitPolicy};
use asl_harness::figures::{seed_tls_rng, with_tls_rng};
use asl_harness::locks::LockSpec;
use asl_harness::runner::run_until_ops;
use asl_harness::scenario::MicroScenario;
use asl_locks::plain::{PlainLock, PlainToken};
use asl_locks::{ClhLock, McsLock, RawLock, TicketLock};
use asl_runtime::registry::is_big_core;
use asl_runtime::{CacheLineArena, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// LibASL-MAX-style lock over an arbitrary reorderable configuration.
struct MaxWindowLock<L: RawLock, W: WaitPolicy> {
    inner: ReorderableLock<L, W>,
    window_ns: u64,
    /// When true, big cores also go through the standby path
    /// (dispatch ablation).
    all_standby: bool,
}

impl<L: RawLock, W: WaitPolicy> MaxWindowLock<L, W> {
    fn new(lock: L, waiter: W, window_ns: u64, all_standby: bool) -> Self {
        MaxWindowLock {
            inner: ReorderableLock::with_waiter(lock, waiter),
            window_ns,
            all_standby,
        }
    }
}

impl<L: RawLock<Token = ()>, W: WaitPolicy> PlainLock for MaxWindowLock<L, W> {
    fn acquire(&self) -> PlainToken {
        if !self.all_standby && is_big_core() {
            self.inner.lock_immediately();
        } else {
            self.inner.lock_reorder(self.window_ns);
        }
        PlainToken::unit(self)
    }
    fn try_acquire(&self) -> Option<PlainToken> {
        self.inner.try_lock().map(|_| PlainToken::unit(self))
    }
    fn release(&self, t: PlainToken) {
        t.redeem(self);
        self.inner.unlock(());
    }
    fn held(&self) -> bool {
        self.inner.is_locked()
    }
    fn lock_name(&self) -> &'static str {
        "ablation"
    }
}

/// MCS variant with unit token (wraps the token in TLS-free fashion
/// is not possible, so use ticket for unit-token ablations and a
/// dedicated impl for MCS/CLH below).
struct MaxWindowQueueLock<L: RawLock, W: WaitPolicy> {
    inner: ReorderableLock<L, W>,
    window_ns: u64,
    all_standby: bool,
}

macro_rules! impl_queue_max {
    ($lock:ty, $to:expr, $from:expr) => {
        impl<W: WaitPolicy> PlainLock for MaxWindowQueueLock<$lock, W> {
            fn acquire(&self) -> PlainToken {
                let tok = if !self.all_standby && is_big_core() {
                    self.inner.lock_immediately()
                } else {
                    self.inner.lock_reorder(self.window_ns)
                };
                #[allow(clippy::redundant_closure_call)]
                PlainToken::issue(self, ($to)(tok), 0)
            }
            fn try_acquire(&self) -> Option<PlainToken> {
                #[allow(clippy::redundant_closure_call)]
                self.inner
                    .try_lock()
                    .map(|t| PlainToken::issue(self, ($to)(t), 0))
            }
            fn release(&self, t: PlainToken) {
                let (raw, _) = t.redeem(self);
                #[allow(clippy::redundant_closure_call)]
                self.inner.unlock(($from)(raw));
            }
            fn held(&self) -> bool {
                self.inner.is_locked()
            }
            fn lock_name(&self) -> &'static str {
                "ablation-queue"
            }
        }
    };
}

impl_queue_max!(
    McsLock,
    |t: asl_locks::mcs::McsToken| t.into_raw(),
    |raw: usize| unsafe { asl_locks::mcs::McsToken::from_raw(raw) }
);

fn scenario_with(lock: Arc<dyn PlainLock>) -> MicroScenario {
    MicroScenario {
        locks: vec![asl_locks::api::DynLock::new(lock)],
        arena: Arc::new(CacheLineArena::new(16)),
        sections: vec![asl_harness::scenario::CsSpec {
            lock_idx: 0,
            lines: 16,
        }],
        cs_units_per_line: asl_harness::scenario::CS_UNITS_PER_LINE,
        ncs_units: 800,
        length: asl_harness::scenario::LengthModel::Fixed,
        epoch_slo: None,
    }
}

fn run_point(c: &mut Criterion, group: &str, label: &str, make: impl Fn() -> Arc<dyn PlainLock>) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
        .throughput(Throughput::Elements(1));
    let topo = Topology::apple_m1();
    g.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_custom(|iters| {
            let scenario = scenario_with(make());
            run_until_ops(&topo, 8, iters.max(8), |ctx| {
                seed_tls_rng(ctx.index);
                with_tls_rng(|rng| scenario.run_op(rng))
            })
        });
    });
    g.finish();
}

const WINDOW: u64 = 100_000_000;

fn ablate_backoff(c: &mut Criterion) {
    run_point(c, "ablate_backoff", "exponential", || {
        Arc::new(MaxWindowQueueLock {
            inner: ReorderableLock::with_waiter(McsLock::new(), SpinWait),
            window_ns: WINDOW,
            all_standby: false,
        })
    });
    for interval in [1u64, 64, 4096] {
        run_point(
            c,
            "ablate_backoff",
            &format!("fixed-{interval}"),
            move || {
                Arc::new(MaxWindowQueueLock {
                    inner: ReorderableLock::with_waiter(
                        McsLock::new(),
                        FixedCheckWait { interval },
                    ),
                    window_ns: WINDOW,
                    all_standby: false,
                })
            },
        );
    }
}

fn ablate_fifo(c: &mut Criterion) {
    run_point(c, "ablate_fifo", "mcs", || {
        Arc::new(MaxWindowQueueLock {
            inner: ReorderableLock::with_waiter(McsLock::new(), SpinWait),
            window_ns: WINDOW,
            all_standby: false,
        })
    });
    run_point(c, "ablate_fifo", "ticket", || {
        Arc::new(MaxWindowLock::new(
            TicketLock::new(),
            SpinWait,
            WINDOW,
            false,
        ))
    });
    run_point(c, "ablate_fifo", "clh", || {
        // CLH tokens are two words; reuse the generic StaticWindowLock
        // path via a thin adapter.
        struct ClhMax(ReorderableLock<ClhLock, SpinWait>);
        impl PlainLock for ClhMax {
            fn acquire(&self) -> PlainToken {
                let tok = if is_big_core() {
                    self.0.lock_immediately()
                } else {
                    self.0.lock_reorder(WINDOW)
                };
                let (a, b) = tok.into_raw();
                PlainToken::issue(self, a, b)
            }
            fn try_acquire(&self) -> Option<PlainToken> {
                self.0.try_lock().map(|t| {
                    let (a, b) = t.into_raw();
                    PlainToken::issue(self, a, b)
                })
            }
            fn release(&self, t: PlainToken) {
                let (a, b) = t.redeem(self);
                self.0
                    .unlock(unsafe { asl_locks::clh::ClhToken::from_raw(a, b) });
            }
            fn held(&self) -> bool {
                self.0.is_locked()
            }
            fn lock_name(&self) -> &'static str {
                "clh-max"
            }
        }
        Arc::new(ClhMax(ReorderableLock::with_waiter(
            ClhLock::new(),
            SpinWait,
        )))
    });
}

fn ablate_dispatch(c: &mut Criterion) {
    run_point(c, "ablate_dispatch", "big-immediate (paper)", || {
        Arc::new(MaxWindowQueueLock {
            inner: ReorderableLock::with_waiter(McsLock::new(), SpinWait),
            window_ns: WINDOW,
            all_standby: false,
        })
    });
    run_point(c, "ablate_dispatch", "all-standby", || {
        Arc::new(MaxWindowQueueLock {
            inner: ReorderableLock::with_waiter(McsLock::new(), SpinWait),
            window_ns: WINDOW,
            all_standby: true,
        })
    });
    // FIFO reference.
    run_point(c, "ablate_dispatch", "plain-mcs", || {
        LockSpec::Mcs.make_lock()
    });
}

fn ablate_policy(c: &mut Criterion) {
    use asl_locks::shuffle::{
        ClassLocalPolicy, FifoPolicy, PreferBigPolicy, ProportionalPolicy, ShuffleLock,
    };
    run_point(c, "ablate_policy", "fifo", || {
        Arc::new(ShuffleLock::new(FifoPolicy))
    });
    run_point(c, "ablate_policy", "class-local", || {
        Arc::new(ShuffleLock::new(ClassLocalPolicy::new(16)))
    });
    run_point(c, "ablate_policy", "prefer-big", || {
        Arc::new(ShuffleLock::new(PreferBigPolicy::new(16)))
    });
    run_point(c, "ablate_policy", "proportional-10", || {
        Arc::new(ShuffleLock::new(ProportionalPolicy::new(10)))
    });
}

fn ablate_unit(c: &mut Criterion) {
    // The unit rule only matters when epochs drive the window, so this
    // ablation uses the real LibASL lock with an SLO and varies the
    // growth-unit rule through the global config.
    for (label, rule) in [
        (
            "adaptive (paper)",
            asl_core::config::GrowthUnit::AdaptivePct,
        ),
        ("fixed-1us", asl_core::config::GrowthUnit::FixedNs(1_000)),
        (
            "fixed-100us",
            asl_core::config::GrowthUnit::FixedNs(100_000),
        ),
    ] {
        let mut g = c.benchmark_group("ablate_unit");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_millis(1200))
            .throughput(Throughput::Elements(1));
        let topo = Topology::apple_m1();
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_custom(|iters| {
                asl_core::config::set_growth_unit(rule);
                let scenario = {
                    let mut s = scenario_with(LockSpec::asl(Some(200_000)).make_lock());
                    s.epoch_slo = Some(200_000);
                    s
                };
                let d = run_until_ops(&topo, 8, iters.max(8), |ctx| {
                    seed_tls_rng(ctx.index);
                    asl_core::epoch::reset_thread_epochs();
                    with_tls_rng(|rng| scenario.run_op(rng))
                });
                asl_core::config::set_growth_unit(asl_core::config::GrowthUnit::AdaptivePct);
                d
            });
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    ablate_backoff,
    ablate_fifo,
    ablate_dispatch,
    ablate_policy,
    ablate_unit
);
criterion_main!(benches);
