//! Criterion benches regenerating the paper's database figures
//! (Fig. 9: Kyoto Cabinet, upscaledb, LMDB; Fig. 10: LevelDB,
//! SQLite). Time per request on each engine under representative
//! locks.

use std::sync::Arc;
use std::time::Duration;

use asl_dbsim::{kyoto::Kyoto, leveldb::LevelDb, lmdb::Lmdb, sqlite::Sqlite, upscale::UpscaleDb};
use asl_dbsim::{Engine, LockFactory};
use asl_harness::figures::{seed_tls_rng, with_tls_rng};
use asl_harness::locks::LockSpec;
use asl_harness::runner::run_until_ops;
use asl_locks::plain::PlainLock;
use asl_runtime::{AtomicAffinity, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

struct SpecFactory(LockSpec);
impl LockFactory for SpecFactory {
    fn make(&self) -> Arc<dyn PlainLock> {
        self.0.make_lock()
    }
}

fn lock_lineup(affinity: AtomicAffinity) -> Vec<(&'static str, LockSpec)> {
    vec![
        ("mcs", LockSpec::Mcs),
        ("tas", LockSpec::Tas(affinity)),
        ("shfl-pb10", LockSpec::ShflPb(10)),
        ("libasl-300us", LockSpec::asl(Some(300_000))),
        ("libasl-max", LockSpec::asl(None)),
    ]
}

fn bench_engine(
    c: &mut Criterion,
    group_name: &str,
    affinity: AtomicAffinity,
    make: impl Fn(&dyn LockFactory) -> Arc<dyn Engine>,
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
        .throughput(Throughput::Elements(1));
    let topo = Topology::apple_m1();
    for (label, spec) in lock_lineup(affinity) {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_custom(|iters| {
                let engine = make(&SpecFactory(spec.clone()));
                let slo = spec.epoch_slo();
                run_until_ops(&topo, 8, iters.max(8), |ctx| {
                    seed_tls_rng(ctx.index);
                    match slo {
                        Some(slo) => {
                            asl_core::epoch::with_epoch_timed(0, slo, || {
                                with_tls_rng(|rng| engine.run_request(rng))
                            })
                            .1
                        }
                        None => {
                            with_tls_rng(|rng| engine.run_request(rng));
                            0
                        }
                    }
                })
            });
        });
    }
    group.finish();
}

fn fig9_kyoto(c: &mut Criterion) {
    bench_engine(c, "fig9_kyoto", AtomicAffinity::big_wins(), |f| {
        Arc::new(Kyoto::with_default_size(f))
    });
}

fn fig9_upscale(c: &mut Criterion) {
    bench_engine(c, "fig9_upscale", AtomicAffinity::big_wins(), |f| {
        Arc::new(UpscaleDb::new(f))
    });
}

fn fig9_lmdb(c: &mut Criterion) {
    bench_engine(c, "fig9_lmdb", AtomicAffinity::big_wins(), |f| {
        Arc::new(Lmdb::new(f))
    });
}

fn fig10_leveldb(c: &mut Criterion) {
    bench_engine(c, "fig10_leveldb", AtomicAffinity::big_wins(), |f| {
        Arc::new(LevelDb::with_default_size(f))
    });
}

fn fig10_sqlite(c: &mut Criterion) {
    bench_engine(c, "fig10_sqlite", AtomicAffinity::little_wins(), |f| {
        Arc::new(Sqlite::with_default_size(f))
    });
}

criterion_group!(
    benches,
    fig9_kyoto,
    fig9_upscale,
    fig9_lmdb,
    fig10_leveldb,
    fig10_sqlite
);
criterion_main!(benches);
