//! Criterion benches regenerating the paper's micro-benchmark
//! figures (1, 4, 5, 8a/8b/8e/8g/8h). One bench group per figure;
//! each measurement is "time per operation" on the figure's workload,
//! so Criterion's ops/s view mirrors the paper's throughput axes.

use std::time::Duration;

use asl_harness::figures::{seed_tls_rng, with_tls_rng};
use asl_harness::locks::LockSpec;
use asl_harness::runner::run_until_ops;
use asl_harness::scenario::{MicroScenario, FIG1_LINES, FIG1_NCS_UNITS, FIG4_LINES, FIG8G_LINES};
use asl_runtime::{AtomicAffinity, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Measure one scenario's per-op time at a given thread count.
fn bench_scenario(
    c: &mut Criterion,
    group_name: &str,
    label: &str,
    spec: &LockSpec,
    make: impl Fn(&LockSpec) -> MicroScenario,
    threads: usize,
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
        .throughput(Throughput::Elements(1));
    let topo = Topology::apple_m1();
    group.bench_function(BenchmarkId::from_parameter(label), |b| {
        b.iter_custom(|iters| {
            let scenario = make(spec);
            run_until_ops(&topo, threads, iters.max(threads as u64), |ctx| {
                seed_tls_rng(ctx.index);
                with_tls_rng(|rng| scenario.run_op(rng))
            })
        });
    });
    group.finish();
}

fn fig1(c: &mut Criterion) {
    for (label, spec) in [
        ("mcs-8t", LockSpec::Mcs),
        (
            "tas-little-affinity-8t",
            LockSpec::Tas(AtomicAffinity::little_wins()),
        ),
    ] {
        bench_scenario(
            c,
            "fig1_collapse",
            label,
            &spec,
            |s| MicroScenario::simple(s, FIG1_LINES, FIG1_NCS_UNITS),
            8,
        );
    }
    // The 4-big-core reference point.
    bench_scenario(
        c,
        "fig1_collapse",
        "mcs-4big",
        &LockSpec::Mcs,
        |s| MicroScenario::simple(s, FIG1_LINES, FIG1_NCS_UNITS),
        4,
    );
}

fn fig4(c: &mut Criterion) {
    for (label, spec) in [
        ("mcs", LockSpec::Mcs),
        (
            "tas-big-affinity",
            LockSpec::Tas(AtomicAffinity::big_wins()),
        ),
    ] {
        bench_scenario(
            c,
            "fig4_bigaffinity",
            label,
            &spec,
            |s| MicroScenario::simple(s, FIG4_LINES, FIG1_NCS_UNITS),
            8,
        );
    }
}

fn fig5(c: &mut Criterion) {
    for n in [0u32, 5, 10, 29] {
        bench_scenario(
            c,
            "fig5_proportional",
            &format!("pb{n}"),
            &LockSpec::ShflPb(n),
            MicroScenario::bench1,
            8,
        );
    }
}

fn fig8a(c: &mut Criterion) {
    let specs: Vec<(String, LockSpec)> = vec![
        ("pthread".into(), LockSpec::Pthread),
        ("tas".into(), LockSpec::Tas(AtomicAffinity::big_wins())),
        ("ticket".into(), LockSpec::Ticket),
        ("shfl-pb10".into(), LockSpec::ShflPb(10)),
        ("mcs".into(), LockSpec::Mcs),
        ("libasl-0".into(), LockSpec::asl(Some(0))),
        ("libasl-100us".into(), LockSpec::asl(Some(100_000))),
        ("libasl-max".into(), LockSpec::asl(None)),
    ];
    for (label, spec) in specs {
        bench_scenario(c, "fig8a_bench1", &label, &spec, MicroScenario::bench1, 8);
    }
}

fn fig8b(c: &mut Criterion) {
    for slo_us in [25u64, 50, 100, 400] {
        bench_scenario(
            c,
            "fig8b_slo_sweep",
            &format!("slo-{slo_us}us"),
            &LockSpec::asl(Some(slo_us * 1_000)),
            MicroScenario::bench1,
            8,
        );
    }
}

fn fig8ef(c: &mut Criterion) {
    for threads in [4usize, 8] {
        for (name, spec) in [("mcs", LockSpec::Mcs), ("libasl-max", LockSpec::asl(None))] {
            bench_scenario(
                c,
                "fig8ef_scalability",
                &format!("{name}-{threads}t"),
                &spec,
                |s| MicroScenario::simple(s, FIG4_LINES, FIG1_NCS_UNITS),
                threads,
            );
        }
    }
}

fn fig8g(c: &mut Criterion) {
    for exp in [0u32, 2, 4] {
        let ncs = 10u64.pow(exp);
        for (name, spec) in [("mcs", LockSpec::Mcs), ("libasl-max", LockSpec::asl(None))] {
            bench_scenario(
                c,
                "fig8g_contention",
                &format!("{name}-ncs1e{exp}"),
                &spec,
                move |s| MicroScenario::simple(s, FIG8G_LINES, ncs),
                8,
            );
        }
    }
}

fn fig8hi(c: &mut Criterion) {
    for (label, spec) in [
        ("pthread", LockSpec::Pthread),
        ("mcs-stp", LockSpec::McsStp),
        ("libasl-blk-max", LockSpec::AslBlocking { slo_ns: None }),
    ] {
        bench_scenario(c, "fig8hi_oversub", label, &spec, MicroScenario::bench1, 16);
    }
}

criterion_group!(benches, fig1, fig4, fig5, fig8a, fig8b, fig8ef, fig8g, fig8hi);
criterion_main!(benches);
