//! Kyoto-Cabinet-like in-memory hash KV.
//!
//! Table 1: "In-memory KV, 50% Put 50% Get; Slot-level Lock, Method
//! Lock". Kyoto Cabinet's `HashDB` hashes each key to one of a fixed
//! number of slots, locks that slot for the record operation, and
//! takes a short global *method* lock on every API call. We reproduce
//! exactly that, reader-writer aware: each slot is a
//! [`guarded_rw_slot`] (gets take shared guards, puts exclusive ones)
//! and the method lock is a [`guarded_rw_lock`] — which mirrors Kyoto
//! Cabinet's actual method lock, a shared/exclusive rwlock. Under an
//! exclusive `LockSpec` both degenerate to the old exclusive
//! behaviour; under an rwlock spec gets overlap.
//!
//! The default workload is the paper's YCSB-A fifty-fifty mix; the
//! read fraction is configurable ([`Kyoto::with_mix`]) so YCSB-B/C
//! read-mostly experiments stop being degenerate.

use asl_locks::api::{DynRwLock, DynRwMutex};
use asl_runtime::work::execute_units;
use rand::rngs::SmallRng;

use crate::workload::{Mix, Op};
use crate::{guarded_rw_lock, guarded_rw_slot, random_key, value_for, Engine, LockFactory, Value};

const BUCKETS_PER_SLOT: usize = 512;

/// Emulated record-processing cost (units) for a put.
const PUT_UNITS: u64 = 260;
/// Emulated record-processing cost for a get.
const GET_UNITS: u64 = 120;
/// Emulated method-dispatch cost under the method lock.
const METHOD_UNITS: u64 = 25;

/// Chained buckets of one independently locked hash slot.
type Slot = DynRwMutex<Vec<Vec<(u64, Value)>>>;

/// The Kyoto-Cabinet-like engine.
pub struct Kyoto {
    method_lock: DynRwLock,
    slots: Vec<Slot>,
    mix: Mix,
}

impl Kyoto {
    /// Create with `slots` independently locked hash slots and the
    /// paper's fifty-fifty put/get mix.
    pub fn new(factory: &dyn LockFactory, slots: usize) -> Self {
        Self::with_mix(factory, slots, Mix::ycsb_a())
    }

    /// Create with an explicit operation mix (YCSB-B/C read-mostly
    /// experiments).
    pub fn with_mix(factory: &dyn LockFactory, slots: usize, mix: Mix) -> Self {
        assert!(slots > 0);
        Kyoto {
            method_lock: guarded_rw_lock(factory, "kyoto.method"),
            slots: (0..slots)
                .map(|_| guarded_rw_slot(factory, "kyoto.slot", vec![Vec::new(); BUCKETS_PER_SLOT]))
                .collect(),
            mix,
        }
    }

    /// Default sizing used by the figures (16 slots, paper-like
    /// slot-level contention at 8 threads).
    pub fn with_default_size(factory: &dyn LockFactory) -> Self {
        Self::new(factory, 16)
    }

    /// The operation mix this engine runs.
    pub fn mix(&self) -> Mix {
        self.mix
    }

    #[inline]
    fn slot_of(&self, key: u64) -> &Slot {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.slots[(h >> 32) as usize % self.slots.len()]
    }

    /// Insert or update a record.
    pub fn put(&self, key: u64, value: Value) {
        // Method lock: normal API calls mutate shared method state, so
        // writes dispatch exclusively.
        {
            let _held = self.method_lock.write();
            execute_units(METHOD_UNITS);
        }

        let mut buckets = self.slot_of(key).write();
        let b = &mut buckets[(key as usize) % BUCKETS_PER_SLOT];
        match b.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => b.push((key, value)),
        }
        execute_units(PUT_UNITS);
    }

    /// Look up a record. The whole path is shared: method dispatch and
    /// the slot probe take read guards.
    pub fn get(&self, key: u64) -> Option<Value> {
        {
            let _held = self.method_lock.read();
            execute_units(METHOD_UNITS);
        }

        let buckets = self.slot_of(key).read();
        let found = buckets[(key as usize) % BUCKETS_PER_SLOT]
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v);
        execute_units(GET_UNITS);
        found
    }

    /// Total records (test helper; takes every slot lock shared).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.read().iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Engine for Kyoto {
    fn run_request(&self, rng: &mut SmallRng) {
        let key = random_key(rng);
        match self.mix.sample(rng) {
            Op::Update => self.put(key, value_for(key)),
            Op::Read => {
                let _ = self.get(key);
            }
        }
    }

    fn name(&self) -> &'static str {
        "kyoto"
    }

    fn lock_labels(&self) -> &'static [&'static str] {
        &["kyoto.method", "kyoto.slot"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_locks::plain::PlainLock;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn mcs_factory() -> impl LockFactory {
        || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) }
    }

    #[test]
    fn put_get_roundtrip() {
        let db = Kyoto::new(&mcs_factory(), 4);
        assert!(db.get(7).is_none());
        db.put(7, value_for(7));
        assert_eq!(db.get(7), Some(value_for(7)));
        db.put(7, value_for(8)); // update in place
        assert_eq!(db.get(7), Some(value_for(8)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn many_keys_across_slots() {
        let db = Kyoto::new(&mcs_factory(), 8);
        for k in 0..1_000 {
            db.put(k, value_for(k));
        }
        assert_eq!(db.len(), 1_000);
        for k in 0..1_000 {
            assert_eq!(db.get(k), Some(value_for(k)), "key {k}");
        }
    }

    #[test]
    fn concurrent_requests_consistent() {
        let db = Arc::new(Kyoto::new(&mcs_factory(), 8));
        let mut handles = vec![];
        for i in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(i);
                for _ in 0..2_000 {
                    db.run_request(&mut rng);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Values must always round-trip to their key.
        for k in 0..crate::KEYSPACE {
            if let Some(v) = db.get(k) {
                assert_eq!(v, value_for(k));
            }
        }
    }

    #[test]
    fn rw_spec_overlaps_readers() {
        // Under a genuine rwlock factory, two gets may hold the same
        // slot concurrently.
        struct RwFactory;
        impl LockFactory for RwFactory {
            fn make(&self) -> Arc<dyn PlainLock> {
                Arc::new(asl_locks::McsLock::new())
            }
            fn make_rw(&self) -> Arc<dyn asl_locks::PlainRwLock> {
                Arc::new(asl_locks::RwTicketLock::new())
            }
        }
        let db = Kyoto::with_mix(&RwFactory, 1, Mix::ycsb_c());
        db.put(1, value_for(1));
        let slot = db.slot_of(1).read();
        // A second shared probe succeeds while the first is held.
        assert_eq!(db.get(1), Some(value_for(1)));
        drop(slot);
        assert_eq!(db.mix().read_fraction(), 1.0);
    }

    #[test]
    fn engine_name() {
        assert_eq!(Kyoto::new(&mcs_factory(), 1).name(), "kyoto");
    }
}
