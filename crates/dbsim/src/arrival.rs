//! Open-loop arrival processes.
//!
//! An open-loop load generator schedules request *arrivals* on its own
//! clock, independent of how fast the system drains them — the
//! standard way to avoid coordinated omission when measuring tail
//! latency. This module provides the interarrival-gap samplers shared
//! by the KV service driver ([`crate::openloop`]) and `asl-sim`'s
//! virtual-time workloads:
//!
//! * [`ArrivalProcess::Fixed`] — every gap is exactly the mean
//!   (deterministic pacing).
//! * [`ArrivalProcess::Poisson`] — exponential gaps (memoryless
//!   arrivals, the classic open-system model).
//! * [`ArrivalProcess::Burst`] — `burst` back-to-back arrivals, then
//!   one long exponential gap sized so the long-run rate still matches
//!   the configured mean. This is the adversarial shape for
//!   reorder-window locks: a burst fills the wait queue at one instant,
//!   so window policy (not arrival order) decides who waits longest.

use rand::rngs::SmallRng;
use rand::Rng;

/// The shape of the arrival process (rate comes separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Deterministic: every interarrival gap equals the mean.
    Fixed,
    /// Poisson: exponentially distributed gaps with the given mean.
    Poisson,
    /// `burst` arrivals back to back, then one exponential gap with
    /// mean `burst × mean_gap` (so the long-run rate is preserved).
    Burst {
        /// Arrivals per burst (≥ 1; 1 degenerates to Poisson).
        burst: u32,
    },
}

impl ArrivalProcess {
    /// Parse a CLI spelling: `fixed`, `poisson`, `burst` (default
    /// burst of 64) or `burst:N`.
    pub fn parse(s: &str) -> Option<ArrivalProcess> {
        match s {
            "fixed" => Some(ArrivalProcess::Fixed),
            "poisson" => Some(ArrivalProcess::Poisson),
            "burst" => Some(ArrivalProcess::Burst { burst: 64 }),
            _ => {
                let n = s.strip_prefix("burst:")?.parse().ok()?;
                (n >= 1).then_some(ArrivalProcess::Burst { burst: n })
            }
        }
    }

    /// The CLI spelling [`ArrivalProcess::parse`] accepts.
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Fixed => "fixed".into(),
            ArrivalProcess::Poisson => "poisson".into(),
            ArrivalProcess::Burst { burst } => format!("burst:{burst}"),
        }
    }
}

/// Stateful interarrival-gap sampler for one generator.
///
/// Separate from [`ArrivalProcess`] because the burst shape needs
/// per-stream state (the position within the current burst), and a
/// shared process description must not couple independent streams.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    mean_gap_ns: f64,
    /// Arrivals already emitted in the current burst.
    burst_pos: u32,
}

impl ArrivalGen {
    /// Sampler for `process` at `rate_per_sec` mean arrivals/second.
    ///
    /// # Panics
    /// Panics if the rate is not finite and positive.
    pub fn new(process: ArrivalProcess, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        Self::from_mean_gap(process, 1e9 / rate_per_sec)
    }

    /// Sampler for `process` with a mean gap of `mean_gap_ns`.
    pub fn from_mean_gap(process: ArrivalProcess, mean_gap_ns: f64) -> Self {
        assert!(
            mean_gap_ns.is_finite() && mean_gap_ns >= 0.0,
            "mean gap must be non-negative"
        );
        ArrivalGen {
            process,
            mean_gap_ns,
            burst_pos: 0,
        }
    }

    /// The configured mean gap in nanoseconds.
    pub fn mean_gap_ns(&self) -> f64 {
        self.mean_gap_ns
    }

    /// Draw the gap between the previous arrival and the next one.
    pub fn next_gap_ns(&mut self, rng: &mut SmallRng) -> u64 {
        match self.process {
            ArrivalProcess::Fixed => self.mean_gap_ns as u64,
            ArrivalProcess::Poisson => exponential_ns(self.mean_gap_ns, rng),
            ArrivalProcess::Burst { burst } => {
                let burst = burst.max(1);
                self.burst_pos += 1;
                if self.burst_pos < burst {
                    0
                } else {
                    self.burst_pos = 0;
                    exponential_ns(self.mean_gap_ns * f64::from(burst), rng)
                }
            }
        }
    }
}

/// One exponential draw with the given mean, in whole nanoseconds.
fn exponential_ns(mean_ns: f64, rng: &mut SmallRng) -> u64 {
    // Inverse-CDF sampling; `gen::<f64>()` is in [0, 1), so the
    // argument of `ln` is in (0, 1] and the result is finite.
    let u: f64 = rng.gen();
    let gap = -(1.0 - u).ln() * mean_ns;
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_of(gen: &mut ArrivalGen, rng: &mut SmallRng, n: u64) -> f64 {
        let total: u64 = (0..n).map(|_| gen.next_gap_ns(rng)).sum();
        total as f64 / n as f64
    }

    #[test]
    fn fixed_is_deterministic() {
        let mut g = ArrivalGen::new(ArrivalProcess::Fixed, 1_000_000.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(g.next_gap_ns(&mut rng), 1_000);
        }
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut g = ArrivalGen::new(ArrivalProcess::Poisson, 1_000_000.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mean = mean_of(&mut g, &mut rng, 200_000);
        assert!(
            (900.0..1_100.0).contains(&mean),
            "poisson mean gap {mean:.1}ns, want ~1000"
        );
    }

    #[test]
    fn burst_preserves_rate_and_shape() {
        let mut g = ArrivalGen::new(ArrivalProcess::Burst { burst: 8 }, 1_000_000.0);
        let mut rng = SmallRng::seed_from_u64(3);
        // Shape: 7 zero gaps then one long gap, repeating.
        let gaps: Vec<u64> = (0..16).map(|_| g.next_gap_ns(&mut rng)).collect();
        assert!(gaps[..7].iter().all(|&g| g == 0), "{gaps:?}");
        assert!(gaps[7] > 0, "{gaps:?}");
        assert!(gaps[8..15].iter().all(|&g| g == 0), "{gaps:?}");
        // Long-run mean still ~1000ns per arrival.
        let mean = mean_of(&mut g, &mut rng, 160_000);
        assert!(
            (850.0..1_150.0).contains(&mean),
            "burst mean gap {mean:.1}ns, want ~1000"
        );
    }

    #[test]
    fn burst_of_one_is_poisson() {
        let mut g = ArrivalGen::new(ArrivalProcess::Burst { burst: 1 }, 1_000_000.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let nonzero = (0..1_000).filter(|_| g.next_gap_ns(&mut rng) > 0).count();
        assert!(nonzero > 990, "burst:1 must not emit zero-gap runs");
    }

    #[test]
    fn parse_roundtrips() {
        for s in ["fixed", "poisson", "burst:7"] {
            let p = ArrivalProcess::parse(s).unwrap();
            assert_eq!(p.label(), s);
        }
        assert_eq!(
            ArrivalProcess::parse("burst"),
            Some(ArrivalProcess::Burst { burst: 64 })
        );
        assert_eq!(ArrivalProcess::parse("burst:0"), None);
        assert_eq!(ArrivalProcess::parse("uniform"), None);
    }
}
