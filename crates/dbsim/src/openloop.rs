//! Open-loop driver: a simulated client population firing requests at
//! the KV service on an arrival schedule.
//!
//! One simulated client = one async task = one request. All client
//! tasks are spawned up front (10⁵–10⁶ concurrent tasks is the point:
//! a task parked on a gate or a shard-lock wait queue costs a few
//! hundred bytes, where a blocked thread would cost a stack), and a
//! pacer releases them at their scheduled arrival instants drawn from
//! an [`ArrivalProcess`]. Because the
//! schedule never waits for the system, queueing delay shows up in the
//! measurements instead of silently throttling the offered load.
//!
//! Latency is measured from the *scheduled* arrival to completion —
//! if the pacer itself falls behind (overload), that lag is charged to
//! the requests, not dropped. This is the standard defence against
//! coordinated omission.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use asl_runtime::clock::{nanosleep_ns, now_ns};
use asl_runtime::Executor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::arrival::{ArrivalGen, ArrivalProcess};
use crate::kv::{draw_request, ShardedKv};
use crate::workload::{KeyDist, Mix, Zipfian};

/// Configuration of one open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Simulated clients; each issues exactly one request.
    pub clients: usize,
    /// Offered load in requests per second.
    pub rate_per_sec: f64,
    /// Interarrival process.
    pub process: ArrivalProcess,
    /// Zipfian exponent for key skew; `None` means uniform keys.
    pub theta: Option<f64>,
    /// Read fraction of the operation mix.
    pub read_fraction: f64,
    /// Per-request SLO; each request's deadline is its scheduled
    /// arrival + this. `None` sends requests without deadlines.
    pub slo_ns: Option<u64>,
    /// Executor worker threads serving the requests.
    pub workers: usize,
    /// RNG seed (schedule and request script are derived from it).
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            clients: 100_000,
            rate_per_sec: 500_000.0,
            process: ArrivalProcess::Poisson,
            theta: Some(crate::workload::YCSB_THETA),
            read_fraction: 0.5,
            slo_ns: Some(100_000),
            workers: 4,
            seed: 0x0A51_D00D,
        }
    }
}

/// What one open-loop run measured.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Requests completed (always equals `clients`).
    pub completed: u64,
    /// Wall time from the first scheduled arrival to the last
    /// completion.
    pub elapsed_ns: u64,
    /// Completed requests per second of wall time.
    pub throughput: f64,
    /// Per-request latency: completion − scheduled arrival.
    pub latencies_ns: Vec<u64>,
}

/// A one-shot start gate: the client task parks on it until the pacer
/// releases it at the scheduled arrival instant.
struct Gate {
    open: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            open: AtomicBool::new(false),
            waker: Mutex::new(None),
        })
    }

    fn release(&self) {
        self.open.store(true, Ordering::Release);
        let woken = self.waker.lock().unwrap().take();
        if let Some(w) = woken {
            w.wake();
        }
    }
}

struct GateWait(Arc<Gate>);

impl Future for GateWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.0.open.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        let mut slot = self.0.waker.lock().unwrap();
        // Re-check under the lock: `release` stores the flag before
        // taking the lock, so either we see it here or `release` sees
        // the waker we are about to park.
        if self.0.open.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        *slot = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Sleep-then-spin until the wall clock reaches `target_ns`.
fn pace_until(target_ns: u64) {
    loop {
        let now = now_ns();
        if now >= target_ns {
            return;
        }
        let left = target_ns - now;
        if left > 200_000 {
            // Leave a margin for sleep overshoot; the final approach
            // is a bounded busy-wait.
            nanosleep_ns(left - 100_000);
        } else {
            asl_runtime::clock::busy_wait_ns(left.min(5_000));
        }
    }
}

/// Run one open-loop experiment against `kv`.
///
/// Spawns `cfg.clients` tasks on a fresh [`Executor`], paces their
/// start gates on this thread, then waits for every request to finish.
pub fn run_open_loop(kv: Arc<ShardedKv>, cfg: &OpenLoopConfig) -> OpenLoopReport {
    assert!(cfg.clients > 0, "need at least one client");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Pre-draw the whole experiment: arrival offsets (relative to the
    // run base), keys and ops. Nothing on the hot path samples.
    let mut arrivals = ArrivalGen::new(cfg.process, cfg.rate_per_sec);
    let mut offsets = Vec::with_capacity(cfg.clients);
    let mut t = 0u64;
    for _ in 0..cfg.clients {
        t = t.saturating_add(arrivals.next_gap_ns(&mut rng));
        offsets.push(t);
    }
    let dist = match cfg.theta {
        Some(theta) => KeyDist::Zipfian(Zipfian::new(kv.keyspace(), theta)),
        None => KeyDist::Uniform { n: kv.keyspace() },
    };
    let mix = Mix::new(cfg.read_fraction);
    let script: Vec<_> = (0..cfg.clients)
        .map(|_| draw_request(&dist, &mix, &mut rng))
        .collect();

    let exec = Executor::new(cfg.workers);
    let latencies: Arc<Vec<AtomicU64>> =
        Arc::new((0..cfg.clients).map(|_| AtomicU64::new(u64::MAX)).collect());
    let done = Arc::new(AtomicU64::new(0));
    let gates: Vec<Arc<Gate>> = (0..cfg.clients).map(|_| Gate::new()).collect();

    // Base instant far enough out that spawning finishes first; pacer
    // lag beyond it is charged to the requests, never hidden.
    let base = now_ns().saturating_add(spawn_headroom_ns(cfg.clients));
    for (i, req) in script.into_iter().enumerate() {
        let scheduled = base.saturating_add(offsets[i]);
        let deadline = cfg.slo_ns.map(|slo| scheduled.saturating_add(slo));
        let gate = GateWait(gates[i].clone());
        let kv = kv.clone();
        let latencies = latencies.clone();
        let done = done.clone();
        // Detached (handle dropped): completion is tracked by the
        // counter, and the executor owns (and on drop would cancel)
        // the task.
        drop(exec.spawn(async move {
            gate.await;
            kv.request(req.op, req.key, deadline).await;
            latencies[i].store(now_ns().saturating_sub(scheduled), Ordering::Relaxed);
            done.fetch_add(1, Ordering::Release);
        }));
    }

    // Pace the gates on this thread. Offsets are sorted by
    // construction, so this is a single in-order walk.
    for (i, &off) in offsets.iter().enumerate() {
        pace_until(base.saturating_add(off));
        gates[i].release();
    }

    let clients = cfg.clients as u64;
    while done.load(Ordering::Acquire) < clients {
        nanosleep_ns(200_000);
    }
    let elapsed_ns = now_ns().saturating_sub(base);
    drop(exec);

    let latencies_ns: Vec<u64> = latencies
        .iter()
        .map(|l| l.load(Ordering::Relaxed))
        .collect();
    debug_assert!(latencies_ns.iter().all(|&l| l != u64::MAX));
    OpenLoopReport {
        completed: clients,
        elapsed_ns,
        throughput: clients as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        latencies_ns,
    }
}

/// How far in the future to place the first arrival: enough to spawn
/// the client population before its gates come due.
fn spawn_headroom_ns(clients: usize) -> u64 {
    // ~1µs per spawned task, floor 10ms.
    (clients as u64).saturating_mul(1_000).max(10_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvConfig;
    use asl_locks::AsyncPolicy;

    fn small_cfg() -> OpenLoopConfig {
        OpenLoopConfig {
            clients: 2_000,
            rate_per_sec: 2_000_000.0,
            workers: 2,
            ..OpenLoopConfig::default()
        }
    }

    fn run(policy: AsyncPolicy, cfg: &OpenLoopConfig) -> OpenLoopReport {
        let kv = Arc::new(ShardedKv::new(KvConfig {
            shards: 4,
            policy,
            cs_units: 1,
            ..KvConfig::default()
        }));
        kv.prefill(2);
        run_open_loop(kv, cfg)
    }

    #[test]
    fn every_client_completes_and_is_measured() {
        let cfg = small_cfg();
        let r = run(AsyncPolicy::Slo { slo_ns: 100_000 }, &cfg);
        assert_eq!(r.completed, 2_000);
        assert_eq!(r.latencies_ns.len(), 2_000);
        assert!(r.latencies_ns.iter().all(|&l| l != u64::MAX));
        assert!(r.throughput > 0.0);
        assert!(r.elapsed_ns > 0);
    }

    #[test]
    fn fifo_policy_also_drains() {
        let cfg = OpenLoopConfig {
            process: ArrivalProcess::Burst { burst: 32 },
            slo_ns: None,
            ..small_cfg()
        };
        let r = run(AsyncPolicy::Fifo, &cfg);
        assert_eq!(r.completed, 2_000);
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let cfg = small_cfg();
        let mut rng_a = SmallRng::seed_from_u64(cfg.seed);
        let mut rng_b = SmallRng::seed_from_u64(cfg.seed);
        let mut gen_a = ArrivalGen::new(cfg.process, cfg.rate_per_sec);
        let mut gen_b = ArrivalGen::new(cfg.process, cfg.rate_per_sec);
        for _ in 0..1_000 {
            assert_eq!(gen_a.next_gap_ns(&mut rng_a), gen_b.next_gap_ns(&mut rng_b));
        }
    }
}
