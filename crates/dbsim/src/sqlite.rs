//! SQLite-like embedded database.
//!
//! Table 1: "On-disk Database; 1/3 Insert, 1/3 Simple Select, 1/3
//! Complex Select; State Machine Lock, Metadata Locks". SQLite's
//! concurrency hinges on its five-state file-lock protocol
//! (UNLOCKED → SHARED → RESERVED → PENDING → EXCLUSIVE); transactions
//! retry until the protocol admits them, which is why the paper sees
//! strongly fluctuating, non-linear latencies here. We implement that
//! state machine under a *state-machine lock* (a [`guarded_slot`]
//! around [`FileLockState`]) plus a short *table lock* (the metadata
//! lock, a guarded slot around rows + index).
//!
//! Workload (paper §4.2): DEFERRED transactions with ⅓ inserts,
//! ⅓ simple point queries on an indexed column, ⅓ complex range
//! queries filtered on a non-indexed column — and an "extremely long
//! full-table scan every 1000 executions" to stress SLO keeping.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use asl_locks::api::DynMutex;
use asl_runtime::work::{execute_raw_units, execute_units};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{guarded_slot, Engine, LockFactory};

/// Emulated cost of one row insert (cache modification).
const INSERT_UNITS: u64 = 260;
/// Emulated commit (journal+fsync stand-in) cost.
const COMMIT_UNITS: u64 = 320;
/// Emulated point-query cost.
const SIMPLE_SELECT_UNITS: u64 = 140;
/// Emulated per-row cost of range scans.
const RANGE_ROW_UNITS: u64 = 6;
/// Rows visited by a complex select.
const RANGE_ROWS: usize = 64;
/// Row cap for the full-table scan.
const SCAN_CAP: usize = 4_096;
/// A full scan runs every N requests.
const SCAN_EVERY: u64 = 1_000;

/// One table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Primary key.
    pub id: u64,
    /// Indexed column (range queries).
    pub indexed: u64,
    /// Non-indexed column (filters).
    pub payload: u64,
}

/// SQLite file-lock protocol state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FileLockState {
    /// Number of SHARED holders (a writer also holds one).
    pub shared: u32,
    /// A RESERVED writer exists.
    pub reserved: bool,
    /// PENDING: a writer wants EXCLUSIVE; new SHARED is refused.
    pub pending: bool,
    /// EXCLUSIVE: the writer owns the file.
    pub exclusive: bool,
}

impl FileLockState {
    /// Protocol invariants (checked by tests on every transition).
    pub fn valid(&self) -> bool {
        // EXCLUSIVE implies PENDING was taken and only the writer's
        // own SHARED remains.
        (!self.exclusive || (self.pending && self.shared == 1))
            // PENDING implies a RESERVED writer.
            && (!self.pending || self.reserved)
    }
}

/// Row store + index, guarded together by the table (metadata) lock.
struct TableData {
    rows: Vec<Row>,
    index: BTreeMap<u64, usize>,
}

/// The SQLite-like engine.
pub struct Sqlite {
    /// The file-lock protocol state under the state-machine lock.
    state: DynMutex<FileLockState>,
    /// Rows and index under the short table (metadata) lock.
    table: DynMutex<TableData>,
    requests: AtomicU64,
    next_id: AtomicU64,
    #[cfg(test)]
    invariant_violations: AtomicU64,
}

impl Sqlite {
    /// Create with `prefill` rows.
    pub fn new(factory: &dyn LockFactory, prefill: u64) -> Self {
        let mut rows = Vec::with_capacity(prefill as usize);
        let mut index = BTreeMap::new();
        for id in 0..prefill {
            let row = Row {
                id,
                indexed: id * 3 % (prefill.max(1) * 2),
                payload: id * 7,
            };
            index.insert(row.indexed, rows.len());
            rows.push(row);
        }
        Sqlite {
            state: guarded_slot(factory, "sqlite.state", FileLockState::default()),
            table: guarded_slot(factory, "sqlite.table", TableData { rows, index }),
            requests: AtomicU64::new(0),
            next_id: AtomicU64::new(prefill),
            #[cfg(test)]
            invariant_violations: AtomicU64::new(0),
        }
    }

    /// Default sizing used by the figures (the paper scans "a 100k
    /// table"; we prefill 10k and cap scans — see DESIGN.md).
    pub fn with_default_size(factory: &dyn LockFactory) -> Self {
        Self::new(factory, 10_000)
    }

    #[inline]
    fn with_state<R>(&self, f: impl FnOnce(&mut FileLockState) -> R) -> R {
        let mut state = self.state.lock();
        let r = f(&mut state);
        #[cfg(test)]
        if !state.valid() {
            self.invariant_violations.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn acquire_shared(&self) {
        let mut backoff = 50u64;
        loop {
            let ok = self.with_state(|s| {
                if !s.pending && !s.exclusive {
                    s.shared += 1;
                    true
                } else {
                    false
                }
            });
            if ok {
                return;
            }
            execute_raw_units(backoff);
            backoff = (backoff * 2).min(4_000);
        }
    }

    fn release_shared(&self) {
        self.with_state(|s| {
            debug_assert!(s.shared > 0);
            s.shared -= 1;
        });
    }

    /// Try to take RESERVED. On refusal the *caller must drop its
    /// SHARED lock and retry the transaction*: holding SHARED while
    /// waiting would deadlock against the reserved writer's
    /// EXCLUSIVE promotion (which waits for readers to drain). This
    /// is SQLite's actual behaviour — the second writer gets
    /// `SQLITE_BUSY` here rather than blocking.
    fn try_acquire_reserved(&self) -> bool {
        self.with_state(|s| {
            if !s.reserved && !s.pending && !s.exclusive {
                s.reserved = true;
                true
            } else {
                false
            }
        })
    }

    fn promote_exclusive(&self) {
        // PENDING refuses new readers...
        self.with_state(|s| s.pending = true);
        // ...then wait for existing readers to drain (we hold one
        // SHARED ourselves).
        let mut backoff = 50u64;
        loop {
            let ok = self.with_state(|s| {
                if s.shared == 1 {
                    s.exclusive = true;
                    true
                } else {
                    false
                }
            });
            if ok {
                return;
            }
            execute_raw_units(backoff);
            backoff = (backoff * 2).min(4_000);
        }
    }

    fn commit_and_unlock(&self) {
        self.with_state(|s| {
            s.exclusive = false;
            s.pending = false;
            s.reserved = false;
            s.shared -= 1;
        });
    }

    /// INSERT transaction (DEFERRED: shared → reserved → exclusive).
    ///
    /// When RESERVED is busy the transaction observes `SQLITE_BUSY`:
    /// it drops SHARED, backs off and restarts — the retry loop that
    /// makes SQLite epoch latencies "greatly fluctuate and grow
    /// non-linearly" in the paper's Figure 10f.
    pub fn insert(&self, indexed: u64, payload: u64) -> u64 {
        let mut backoff = 50u64;
        loop {
            self.acquire_shared();
            if self.try_acquire_reserved() {
                break;
            }
            // SQLITE_BUSY: restart the transaction from scratch.
            self.release_shared();
            execute_raw_units(backoff);
            backoff = (backoff * 2).min(8_000);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Modify the page cache (short metadata lock; RESERVED
        // excludes other writers).
        {
            let mut table = self.table.lock();
            let slot = table.rows.len();
            table.index.insert(indexed, slot);
            table.rows.push(Row {
                id,
                indexed,
                payload,
            });
            execute_units(INSERT_UNITS);
        }
        // Commit: spill to the database file under EXCLUSIVE.
        self.promote_exclusive();
        execute_units(COMMIT_UNITS);
        self.commit_and_unlock();
        id
    }

    /// Simple SELECT: point query on the indexed column.
    pub fn select_point(&self, indexed: u64) -> Option<Row> {
        self.acquire_shared();
        let row = {
            let table = self.table.lock();
            let row = table.index.get(&indexed).map(|&i| table.rows[i]);
            execute_units(SIMPLE_SELECT_UNITS);
            row
        };
        self.release_shared();
        row
    }

    /// Complex SELECT: range over the index, filter on the
    /// non-indexed payload column.
    pub fn select_range(&self, from: u64, filter_mod: u64) -> usize {
        self.acquire_shared();
        let hits = {
            let table = self.table.lock();
            let hits = table
                .index
                .range(from..)
                .take(RANGE_ROWS)
                .filter(|(_, &i)| table.rows[i].payload % filter_mod.max(1) == 0)
                .count();
            execute_units(RANGE_ROWS as u64 * RANGE_ROW_UNITS);
            hits
        };
        self.release_shared();
        hits
    }

    /// Full-table scan (the occasional extremely long request).
    pub fn full_scan(&self) -> u64 {
        self.acquire_shared();
        let count = {
            let table = self.table.lock();
            let n = table.rows.len().min(SCAN_CAP);
            let sum: u64 = table.rows[..n].iter().map(|r| r.payload).sum();
            execute_units(n as u64 * RANGE_ROW_UNITS);
            sum
        };
        self.release_shared();
        count
    }

    /// Row count (test helper).
    pub fn len(&self) -> usize {
        self.table.lock().rows.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the protocol state (tests).
    pub fn lock_state(&self) -> FileLockState {
        self.with_state(|s| *s)
    }

    #[cfg(test)]
    fn violations(&self) -> u64 {
        self.invariant_violations.load(Ordering::Relaxed)
    }
}

impl Engine for Sqlite {
    fn run_request(&self, rng: &mut SmallRng) {
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        if n % SCAN_EVERY == SCAN_EVERY - 1 {
            self.full_scan();
            return;
        }
        match rng.gen_range(0..3u8) {
            0 => {
                let indexed = rng.gen_range(0..1 << 20);
                let payload = rng.gen::<u32>() as u64;
                self.insert(indexed, payload);
            }
            1 => {
                let _ = self.select_point(rng.gen_range(0..1 << 20));
            }
            _ => {
                let _ = self.select_range(rng.gen_range(0..1 << 20), 7);
            }
        }
    }

    fn name(&self) -> &'static str {
        "sqlite"
    }

    fn lock_labels(&self) -> &'static [&'static str] {
        &["sqlite.state", "sqlite.table"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_locks::plain::PlainLock;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn factory() -> impl LockFactory {
        || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) }
    }

    #[test]
    fn insert_and_point_query() {
        let db = Sqlite::new(&factory(), 0);
        assert!(db.is_empty());
        db.insert(100, 700);
        let row = db.select_point(100).expect("inserted row");
        assert_eq!(row.payload, 700);
        assert!(db.select_point(101).is_none());
        assert_eq!(db.len(), 1);
        // After the transaction everything is unlocked again.
        assert_eq!(db.lock_state(), FileLockState::default());
    }

    #[test]
    fn range_query_counts_filtered_rows() {
        let db = Sqlite::new(&factory(), 0);
        for i in 0..100 {
            db.insert(i, i); // payload == indexed
        }
        // payload % 1 == 0 always: all RANGE_ROWS rows hit.
        assert_eq!(db.select_range(0, 1), RANGE_ROWS.min(100));
        // payload % 2: half.
        let hits = db.select_range(0, 2);
        assert!(hits > 0 && hits <= RANGE_ROWS);
    }

    #[test]
    fn full_scan_runs() {
        let db = Sqlite::new(&factory(), 1_000);
        assert!(db.full_scan() > 0);
    }

    #[test]
    fn prefill_sizes() {
        let db = Sqlite::with_default_size(&factory());
        assert_eq!(db.len(), 10_000);
    }

    #[test]
    fn concurrent_transactions_keep_invariants() {
        let db = Arc::new(Sqlite::new(&factory(), 500));
        let mut handles = vec![];
        for i in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(i);
                for _ in 0..500 {
                    db.run_request(&mut rng);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.violations(), 0, "file-lock protocol invariant broken");
        assert_eq!(db.lock_state(), FileLockState::default());
        assert!(db.len() >= 500);
    }

    #[test]
    fn concurrent_writers_do_not_deadlock() {
        // Regression: two DEFERRED writers used to deadlock — one
        // spinning for RESERVED while holding SHARED, the other
        // waiting in EXCLUSIVE promotion for SHARED to drain. The
        // SQLITE_BUSY retry (drop SHARED, restart) must resolve it.
        let db = Arc::new(Sqlite::new(&factory(), 0));
        let mut handles = vec![];
        for i in 0..8u64 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..300 {
                    db.insert(i * 1_000 + j, j);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len(), 8 * 300);
        assert_eq!(db.violations(), 0);
        assert_eq!(db.lock_state(), FileLockState::default());
    }

    #[test]
    fn state_validity_rules() {
        assert!(FileLockState::default().valid());
        assert!(FileLockState {
            shared: 3,
            ..Default::default()
        }
        .valid());
        // EXCLUSIVE without PENDING: invalid.
        assert!(!FileLockState {
            shared: 1,
            exclusive: true,
            ..Default::default()
        }
        .valid());
        // PENDING without RESERVED: invalid.
        assert!(!FileLockState {
            pending: true,
            ..Default::default()
        }
        .valid());
        // Proper writer commit state: valid.
        assert!(FileLockState {
            shared: 1,
            reserved: true,
            pending: true,
            exclusive: true
        }
        .valid());
    }
}
