//! Sharded in-memory KV service over async SLO-aware locks.
//!
//! The serving-side counterpart of the thread-per-core engines: a hash
//! map split into `shards` independent shards, each protected by one
//! [`AsyncDynMutex`] whose policy comes from the harness lock
//! registry. A request locks exactly one shard, does a small amount of
//! emulated work while holding it (index probe + record copy), and
//! completes. Under Zipfian keys a handful of hot shards carry most of
//! the traffic, so the shard lock's *wait-queue policy* — FIFO versus
//! SLO-aware reordering — is what shapes the service's tail latency.
//!
//! Requests carry the deadline computed by the open-loop driver
//! (scheduled arrival + SLO), so an SLO-aware shard lock grants in
//! earliest-deadline order within its reorder window, exactly the
//! paper's lock semantics lifted into the async layer.

use std::collections::HashMap;

use asl_locks::{AsyncDynMutex, AsyncPolicy};
use rand::rngs::SmallRng;

use crate::workload::{KeyDist, Mix, Op};
use crate::{value_for, Value};

/// Configuration for one [`ShardedKv`] instance.
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Number of independent shards (≥ 1).
    pub shards: usize,
    /// Wait-queue policy of every shard lock.
    pub policy: AsyncPolicy,
    /// Total key space (keys hash across shards).
    pub keyspace: u64,
    /// Emulated work units executed while holding the shard lock
    /// (models index probe + record copy inside the critical section).
    pub cs_units: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            shards: 16,
            policy: AsyncPolicy::Fifo,
            keyspace: crate::KEYSPACE,
            cs_units: 4,
        }
    }
}

/// A sharded KV store; every shard is one async-locked hash map.
pub struct ShardedKv {
    shards: Vec<AsyncDynMutex<HashMap<u64, Value>>>,
    keyspace: u64,
    cs_units: u64,
}

impl ShardedKv {
    /// Build an empty store.
    ///
    /// # Panics
    /// Panics if `shards` or `keyspace` is zero.
    pub fn new(cfg: KvConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.keyspace > 0, "empty key space");
        ShardedKv {
            shards: (0..cfg.shards)
                .map(|_| AsyncDynMutex::new(cfg.policy, HashMap::new()))
                .collect(),
            keyspace: cfg.keyspace,
            cs_units: cfg.cs_units,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Key space size.
    pub fn keyspace(&self) -> u64 {
        self.keyspace
    }

    /// The shard a key lives on. Keys are scattered with a Fibonacci
    /// multiplier so Zipfian rank order does not map hot ranks onto
    /// one shard by accident of layout — hotness still concentrates
    /// (that is the point), but via the key distribution, not aliasing.
    pub fn shard_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.shards.len() as u64) as usize
    }

    /// Synchronously pre-populate every `fill_every`-th key so reads
    /// hit (uses `try_lock`; must run before any concurrent traffic).
    pub fn prefill(&self, fill_every: u64) {
        let step = fill_every.max(1);
        for key in (0..self.keyspace).step_by(step as usize) {
            let mut g = self.shards[self.shard_of(key)]
                .try_lock()
                .expect("prefill must run before traffic");
            g.insert(key, value_for(key));
        }
    }

    /// Execute one request against the owning shard.
    ///
    /// `deadline_ns` is the absolute completion deadline the open-loop
    /// driver derived from the request's *scheduled* arrival; SLO-aware
    /// shard locks use it to order their wait queue, FIFO shards ignore
    /// it. Returns `true` for updates and for reads that hit.
    pub async fn request(&self, op: Op, key: u64, deadline_ns: Option<u64>) -> bool {
        let shard = &self.shards[self.shard_of(key)];
        let mut guard = match deadline_ns {
            Some(d) => shard.lock_with_deadline(d).await,
            None => shard.lock().await,
        };
        if self.cs_units > 0 {
            asl_runtime::work::execute_units(self.cs_units);
        }
        match op {
            Op::Read => guard.get(&key).is_some(),
            Op::Update => {
                guard.insert(key, value_for(key));
                true
            }
        }
    }

    /// Total records across all shards (locks each shard briefly).
    pub async fn len(&self) -> usize {
        let mut total = 0;
        for shard in &self.shards {
            total += shard.lock().await.len();
        }
        total
    }

    /// Whether the store holds no records.
    pub async fn is_empty(&self) -> bool {
        self.len().await == 0
    }
}

/// Per-client request script: the pre-drawn key and operation for one
/// simulated client's single request.
#[derive(Debug, Clone, Copy)]
pub struct KvRequest {
    /// Target key.
    pub key: u64,
    /// Operation kind.
    pub op: Op,
}

/// Draw one request from a key distribution and operation mix.
pub fn draw_request(dist: &KeyDist, mix: &Mix, rng: &mut SmallRng) -> KvRequest {
    KvRequest {
        key: dist.sample(rng),
        op: mix.sample(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::block_on;
    use rand::SeedableRng;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let kv = ShardedKv::new(KvConfig {
            shards: 7,
            ..KvConfig::default()
        });
        for key in 0..1_000 {
            let s = kv.shard_of(key);
            assert!(s < 7);
            assert_eq!(s, kv.shard_of(key), "routing must be a pure function");
        }
    }

    #[test]
    fn put_then_get_roundtrip() {
        let kv = ShardedKv::new(KvConfig {
            shards: 4,
            cs_units: 0,
            ..KvConfig::default()
        });
        block_on(async {
            assert!(kv.is_empty().await);
            assert!(!kv.request(Op::Read, 42, None).await, "miss before put");
            assert!(kv.request(Op::Update, 42, None).await);
            assert!(
                kv.request(Op::Read, 42, Some(u64::MAX)).await,
                "hit after put"
            );
            assert_eq!(kv.len().await, 1);
        });
    }

    #[test]
    fn prefill_populates_every_step() {
        let kv = ShardedKv::new(KvConfig {
            shards: 4,
            keyspace: 64,
            cs_units: 0,
            ..KvConfig::default()
        });
        kv.prefill(2);
        block_on(async {
            assert_eq!(kv.len().await, 32);
            assert!(kv.request(Op::Read, 0, None).await);
            assert!(!kv.request(Op::Read, 1, None).await);
        });
    }

    #[test]
    fn draw_request_uses_dist_and_mix() {
        let dist = KeyDist::Uniform { n: 8 };
        let mix = Mix::ycsb_c();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let r = draw_request(&dist, &mix, &mut rng);
            assert!(r.key < 8);
            assert_eq!(r.op, Op::Read);
        }
    }
}
