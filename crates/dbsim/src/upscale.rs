//! upscaledb-like on-disk KV.
//!
//! Table 1: "On-disk KV, 50% Put 50% Get; Global Lock, Worker Pool
//! Lock". upscaledb serializes every operation on one global
//! environment lock (the dominant contention point — which is why TAS
//! shows its biggest wins/losses here in the paper) and dispatches
//! requests through a worker pool protected by a short queue lock.
//! The global B-tree lock is a [`guarded_rw_slot`]: gets probe it
//! under a shared guard (overlapping under rwlock specs), puts mutate
//! it exclusively. Pool dispatch registers under a shared guard of
//! the pool lock — the pool's internal depth bookkeeping is atomic —
//! so read requests never take an exclusive lock anywhere on their
//! path, while an exclusive `LockSpec` degenerates to the old
//! fully-serialized behaviour.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use asl_locks::api::{DynRwLock, DynRwMutex};
use asl_runtime::work::execute_units;
use rand::rngs::SmallRng;

use crate::workload::{Mix, Op};
use crate::{guarded_rw_lock, guarded_rw_slot, random_key, value_for, Engine, LockFactory, Value};

/// Emulated B-tree insert + page-dirty cost under the global lock.
const PUT_UNITS: u64 = 420;
/// Emulated B-tree probe cost under the global lock.
const GET_UNITS: u64 = 180;
/// Emulated queue push/pop under the worker-pool lock.
const POOL_UNITS: u64 = 30;

/// The upscaledb-like engine.
pub struct UpscaleDb {
    pool_lock: DynRwLock,
    pool_depth: AtomicU64,
    tree: DynRwMutex<BTreeMap<u64, Value>>,
    mix: Mix,
}

impl UpscaleDb {
    /// Create the engine with locks from `factory` and the paper's
    /// fifty-fifty put/get mix.
    pub fn new(factory: &dyn LockFactory) -> Self {
        Self::with_mix(factory, Mix::ycsb_a())
    }

    /// Create with an explicit operation mix (YCSB-B/C read-mostly
    /// experiments).
    pub fn with_mix(factory: &dyn LockFactory, mix: Mix) -> Self {
        UpscaleDb {
            pool_lock: guarded_rw_lock(factory, "upscale.pool"),
            pool_depth: AtomicU64::new(0),
            tree: guarded_rw_slot(factory, "upscale.tree", BTreeMap::new()),
            mix,
        }
    }

    /// The operation mix this engine runs.
    pub fn mix(&self) -> Mix {
        self.mix
    }

    /// Requests currently inside the dispatch section (approximate —
    /// the counter is relaxed bookkeeping, not synchronization).
    pub fn pool_depth(&self) -> u64 {
        self.pool_depth.load(Ordering::Relaxed)
    }

    fn enqueue_dispatch(&self) {
        // Dispatch registers in the pool under a shared guard (depth
        // itself is atomic); an exclusive spec serializes here exactly
        // like the old queue lock did.
        let _queue = self.pool_lock.read();
        self.pool_depth.fetch_add(1, Ordering::Relaxed);
        execute_units(POOL_UNITS);
        self.pool_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Insert or update.
    pub fn put(&self, key: u64, value: Value) {
        self.enqueue_dispatch();
        let mut tree = self.tree.write();
        tree.insert(key, value);
        execute_units(PUT_UNITS);
    }

    /// Look up (fully shared path).
    pub fn get(&self, key: u64) -> Option<Value> {
        self.enqueue_dispatch();
        let tree = self.tree.read();
        let v = tree.get(&key).copied();
        execute_units(GET_UNITS);
        v
    }

    /// Record count (test helper).
    pub fn len(&self) -> usize {
        self.tree.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Engine for UpscaleDb {
    fn run_request(&self, rng: &mut SmallRng) {
        let key = random_key(rng);
        match self.mix.sample(rng) {
            Op::Update => self.put(key, value_for(key)),
            Op::Read => {
                let _ = self.get(key);
            }
        }
    }

    fn name(&self) -> &'static str {
        "upscaledb"
    }

    fn lock_labels(&self) -> &'static [&'static str] {
        &["upscale.pool", "upscale.tree"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_locks::plain::PlainLock;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn factory() -> impl LockFactory {
        || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) }
    }

    #[test]
    fn roundtrip() {
        let db = UpscaleDb::new(&factory());
        assert!(db.is_empty());
        db.put(1, value_for(1));
        db.put(2, value_for(2));
        assert_eq!(db.get(1), Some(value_for(1)));
        assert_eq!(db.get(3), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn concurrent_consistency() {
        let db = Arc::new(UpscaleDb::new(&factory()));
        let mut handles = vec![];
        for i in 0..6 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(100 + i);
                for _ in 0..1_500 {
                    db.run_request(&mut rng);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (k, v) in db.tree.read().iter() {
            assert_eq!(*v, value_for(*k));
        }
        assert_eq!(db.pool_depth(), 0, "dispatch sections all exited");
    }

    #[test]
    fn read_mostly_mix_reads_overlap() {
        struct RwFactory;
        impl LockFactory for RwFactory {
            fn make(&self) -> Arc<dyn PlainLock> {
                Arc::new(asl_locks::McsLock::new())
            }
            fn make_rw(&self) -> Arc<dyn asl_locks::PlainRwLock> {
                Arc::new(asl_locks::RwTicketLock::new())
            }
        }
        let db = UpscaleDb::with_mix(&RwFactory, Mix::ycsb_b());
        db.put(9, value_for(9));
        // Hold the tree shared and probe again: both reads coexist.
        let held = db.tree.read();
        assert_eq!(db.get(9), Some(value_for(9)));
        drop(held);
        assert!((db.mix().read_fraction() - 0.95).abs() < 1e-9);
    }
}
