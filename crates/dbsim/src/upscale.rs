//! upscaledb-like on-disk KV.
//!
//! Table 1: "On-disk KV, 50% Put 50% Get; Global Lock, Worker Pool
//! Lock". upscaledb serializes every operation on one global
//! environment lock (the dominant contention point — which is why TAS
//! shows its biggest wins/losses here in the paper) and dispatches
//! requests through a worker pool protected by a short queue lock.
//! Both are [`guarded_slot`]s: the lock and the state it protects are
//! one value, accessed through RAII guards.

use std::collections::BTreeMap;

use asl_locks::api::DynMutex;
use asl_runtime::work::execute_units;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{guarded_slot, random_key, value_for, Engine, LockFactory, Value};

/// Emulated B-tree insert + page-dirty cost under the global lock.
const PUT_UNITS: u64 = 420;
/// Emulated B-tree probe cost under the global lock.
const GET_UNITS: u64 = 180;
/// Emulated queue push/pop under the worker-pool lock.
const POOL_UNITS: u64 = 30;

/// The upscaledb-like engine.
pub struct UpscaleDb {
    pool_depth: DynMutex<u64>,
    tree: DynMutex<BTreeMap<u64, Value>>,
}

impl UpscaleDb {
    /// Create the engine with locks from `factory`.
    pub fn new(factory: &dyn LockFactory) -> Self {
        UpscaleDb {
            pool_depth: guarded_slot(factory, 0),
            tree: guarded_slot(factory, BTreeMap::new()),
        }
    }

    fn enqueue_dispatch(&self) {
        let mut depth = self.pool_depth.lock();
        *depth += 1;
        execute_units(POOL_UNITS);
        *depth -= 1;
    }

    /// Insert or update.
    pub fn put(&self, key: u64, value: Value) {
        self.enqueue_dispatch();
        let mut tree = self.tree.lock();
        tree.insert(key, value);
        execute_units(PUT_UNITS);
    }

    /// Look up.
    pub fn get(&self, key: u64) -> Option<Value> {
        self.enqueue_dispatch();
        let tree = self.tree.lock();
        let v = tree.get(&key).copied();
        execute_units(GET_UNITS);
        v
    }

    /// Record count (test helper).
    pub fn len(&self) -> usize {
        self.tree.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Engine for UpscaleDb {
    fn run_request(&self, rng: &mut SmallRng) {
        let key = random_key(rng);
        if rng.gen_bool(0.5) {
            self.put(key, value_for(key));
        } else {
            let _ = self.get(key);
        }
    }

    fn name(&self) -> &'static str {
        "upscaledb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_locks::plain::PlainLock;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn factory() -> impl LockFactory {
        || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) }
    }

    #[test]
    fn roundtrip() {
        let db = UpscaleDb::new(&factory());
        assert!(db.is_empty());
        db.put(1, value_for(1));
        db.put(2, value_for(2));
        assert_eq!(db.get(1), Some(value_for(1)));
        assert_eq!(db.get(3), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn concurrent_consistency() {
        let db = Arc::new(UpscaleDb::new(&factory()));
        let mut handles = vec![];
        for i in 0..6 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(100 + i);
                for _ in 0..1_500 {
                    db.run_request(&mut rng);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (k, v) in db.tree.lock().iter() {
            assert_eq!(*v, value_for(*k));
        }
    }
}
