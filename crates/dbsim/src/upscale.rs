//! upscaledb-like on-disk KV.
//!
//! Table 1: "On-disk KV, 50% Put 50% Get; Global Lock, Worker Pool
//! Lock". upscaledb serializes every operation on one global
//! environment lock (the dominant contention point — which is why TAS
//! shows its biggest wins/losses here in the paper) and dispatches
//! requests through a worker pool protected by a short queue lock.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use asl_locks::plain::PlainLock;
use asl_runtime::work::execute_units;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::{random_key, value_for, Engine, LockFactory, Value};

/// Emulated B-tree insert + page-dirty cost under the global lock.
const PUT_UNITS: u64 = 420;
/// Emulated B-tree probe cost under the global lock.
const GET_UNITS: u64 = 180;
/// Emulated queue push/pop under the worker-pool lock.
const POOL_UNITS: u64 = 30;

/// The upscaledb-like engine.
pub struct UpscaleDb {
    pool_lock: Arc<dyn PlainLock>,
    global_lock: Arc<dyn PlainLock>,
    tree: UnsafeCell<BTreeMap<u64, Value>>,
    pool_depth: UnsafeCell<u64>,
}

// SAFETY: `tree` only under `global_lock`; `pool_depth` only under
// `pool_lock`.
unsafe impl Sync for UpscaleDb {}

impl UpscaleDb {
    /// Create the engine with locks from `factory`.
    pub fn new(factory: &dyn LockFactory) -> Self {
        UpscaleDb {
            pool_lock: factory.make(),
            global_lock: factory.make(),
            tree: UnsafeCell::new(BTreeMap::new()),
            pool_depth: UnsafeCell::new(0),
        }
    }

    fn enqueue_dispatch(&self) {
        let t = self.pool_lock.acquire();
        // SAFETY: pool lock held.
        unsafe { *self.pool_depth.get() += 1 };
        execute_units(POOL_UNITS);
        unsafe { *self.pool_depth.get() -= 1 };
        self.pool_lock.release(t);
    }

    /// Insert or update.
    pub fn put(&self, key: u64, value: Value) {
        self.enqueue_dispatch();
        let t = self.global_lock.acquire();
        // SAFETY: global lock held.
        unsafe { (*self.tree.get()).insert(key, value) };
        execute_units(PUT_UNITS);
        self.global_lock.release(t);
    }

    /// Look up.
    pub fn get(&self, key: u64) -> Option<Value> {
        self.enqueue_dispatch();
        let t = self.global_lock.acquire();
        // SAFETY: global lock held.
        let v = unsafe { (*self.tree.get()).get(&key).copied() };
        execute_units(GET_UNITS);
        self.global_lock.release(t);
        v
    }

    /// Record count (test helper).
    pub fn len(&self) -> usize {
        let t = self.global_lock.acquire();
        // SAFETY: global lock held.
        let n = unsafe { (*self.tree.get()).len() };
        self.global_lock.release(t);
        n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Engine for UpscaleDb {
    fn run_request(&self, rng: &mut SmallRng) {
        let key = random_key(rng);
        if rng.gen_bool(0.5) {
            self.put(key, value_for(key));
        } else {
            let _ = self.get(key);
        }
    }

    fn name(&self) -> &'static str {
        "upscaledb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn factory() -> impl LockFactory {
        || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) }
    }

    #[test]
    fn roundtrip() {
        let db = UpscaleDb::new(&factory());
        assert!(db.is_empty());
        db.put(1, value_for(1));
        db.put(2, value_for(2));
        assert_eq!(db.get(1), Some(value_for(1)));
        assert_eq!(db.get(3), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn concurrent_consistency() {
        let db = Arc::new(UpscaleDb::new(&factory()));
        let mut handles = vec![];
        for i in 0..6 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(100 + i);
                for _ in 0..1_500 {
                    db.run_request(&mut rng);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let t = db.global_lock.acquire();
        // SAFETY: global lock held.
        for (k, v) in unsafe { &*db.tree.get() } {
            assert_eq!(*v, value_for(*k));
        }
        db.global_lock.release(t);
    }
}
