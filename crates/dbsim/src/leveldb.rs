//! LevelDB-like store, random-read benchmark.
//!
//! Table 1: "On-disk KV, db_bench Random Read; Metadata Lock". The
//! paper only exercises LevelDB's `Get` path (LevelDB's `Put` uses a
//! custom blocking scheme rather than `pthread_mutex_lock`): every
//! read "acquires a global lock to take a snapshot of internal
//! database structures" and then searches without the lock. We model
//! the version set as an `Arc` snapshot swapped under a metadata
//! lock; readers pin it under a *shared* guard ([`guarded_rw_slot`])
//! — overlapping under rwlock specs, exactly like LevelDB readers
//! ref-counting the current version — then probe the (immutable)
//! snapshot outside the lock. Version installs (the compaction path)
//! take the metadata lock exclusively.
//!
//! The default mix is the paper's pure random read (YCSB-C shape); a
//! configurable mix turns updates into version installs so the
//! exclusive-vs-shared contrast is measurable.

use std::collections::BTreeMap;
use std::sync::Arc;

use asl_locks::api::DynRwMutex;
use asl_runtime::work::execute_units;
use rand::rngs::SmallRng;

use crate::workload::{Mix, Op};
use crate::{guarded_rw_slot, random_key, value_for, Engine, LockFactory, Value};

/// Emulated snapshot-pin cost under the metadata lock (ref-count the
/// version, record the sequence number).
const SNAPSHOT_UNITS: u64 = 70;
/// Emulated memtable+SSTable probe cost outside the lock.
const SEARCH_UNITS: u64 = 200;
/// Emulated version-install bookkeeping under the metadata lock.
const INSTALL_UNITS: u64 = 120;

/// An immutable version of the database. The table is itself behind
/// an `Arc` so version installs (sequence bumps) need not copy it.
pub struct DbVersion {
    /// Sorted table contents.
    pub table: Arc<BTreeMap<u64, Value>>,
    /// Version sequence number.
    pub sequence: u64,
}

/// The LevelDB-like engine.
pub struct LevelDb {
    /// The current version pointer, guarded by the metadata lock.
    current: DynRwMutex<Arc<DbVersion>>,
    mix: Mix,
}

impl LevelDb {
    /// Create with `preload` sequential keys materialized (the
    /// `db_bench` fill phase) and the paper's pure-read workload.
    pub fn new(factory: &dyn LockFactory, preload: u64) -> Self {
        Self::with_mix(factory, preload, Mix::ycsb_c())
    }

    /// Create with an explicit operation mix: updates install a new
    /// version (compaction tick) under the exclusive metadata lock.
    pub fn with_mix(factory: &dyn LockFactory, preload: u64, mix: Mix) -> Self {
        let table: BTreeMap<u64, Value> = (0..preload).map(|k| (k, value_for(k))).collect();
        LevelDb {
            current: guarded_rw_slot(
                factory,
                "leveldb.version",
                Arc::new(DbVersion {
                    table: Arc::new(table),
                    sequence: 1,
                }),
            ),
            mix,
        }
    }

    /// Default sizing used by the figures.
    pub fn with_default_size(factory: &dyn LockFactory) -> Self {
        Self::new(factory, crate::KEYSPACE)
    }

    /// The operation mix this engine runs.
    pub fn mix(&self) -> Mix {
        self.mix
    }

    /// Pin the current version (the contended metadata-lock section,
    /// shared among readers).
    pub fn snapshot(&self) -> Arc<DbVersion> {
        let current = self.current.read();
        let snap = current.clone();
        execute_units(SNAPSHOT_UNITS);
        snap
    }

    /// Random-read: snapshot, then search outside the lock.
    pub fn get(&self, key: u64) -> Option<Value> {
        let snap = self.snapshot();
        let v = snap.table.get(&key).copied();
        execute_units(SEARCH_UNITS);
        v
    }

    /// Install a new version (compaction stand-in; exclusive).
    pub fn install_version(&self, table: BTreeMap<u64, Value>) {
        let mut current = self.current.write();
        let sequence = current.sequence + 1;
        *current = Arc::new(DbVersion {
            table: Arc::new(table),
            sequence,
        });
    }

    /// Re-install the current table as a new version (the cheap
    /// compaction tick used as the workload's update operation).
    pub fn bump_version(&self) {
        let mut current = self.current.write();
        let sequence = current.sequence + 1;
        let table = current.table.clone();
        *current = Arc::new(DbVersion { table, sequence });
        execute_units(INSTALL_UNITS);
    }

    /// Sequence number of the current version.
    pub fn sequence(&self) -> u64 {
        self.current.read().sequence
    }
}

impl Engine for LevelDb {
    fn run_request(&self, rng: &mut SmallRng) {
        let key = random_key(rng);
        match self.mix.sample(rng) {
            Op::Read => {
                let _ = self.get(key);
            }
            Op::Update => self.bump_version(),
        }
    }

    fn name(&self) -> &'static str {
        "leveldb"
    }

    fn lock_labels(&self) -> &'static [&'static str] {
        &["leveldb.version"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_locks::plain::PlainLock;
    use rand::SeedableRng;

    fn factory() -> impl LockFactory {
        || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) }
    }

    #[test]
    fn preloaded_reads_hit() {
        let db = LevelDb::new(&factory(), 1_000);
        assert_eq!(db.get(500), Some(value_for(500)));
        assert_eq!(db.get(1_000), None);
        assert_eq!(db.sequence(), 1);
    }

    #[test]
    fn snapshots_are_stable_across_installs() {
        let db = LevelDb::new(&factory(), 10);
        let snap = db.snapshot();
        db.install_version(BTreeMap::new());
        // Old snapshot still sees old data; new reads see new version.
        assert_eq!(snap.table.len(), 10);
        assert_eq!(db.get(5), None);
        assert_eq!(db.sequence(), 2);
    }

    #[test]
    fn bump_version_shares_the_table() {
        let db = LevelDb::new(&factory(), 10);
        db.bump_version();
        assert_eq!(db.sequence(), 2);
        assert_eq!(db.get(5), Some(value_for(5)), "data survives the bump");
    }

    #[test]
    fn concurrent_reads() {
        let db = Arc::new(LevelDb::new(&factory(), 1_000));
        let mut handles = vec![];
        for i in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(i);
                for _ in 0..2_000 {
                    db.run_request(&mut rng);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.sequence(), 1);
    }

    #[test]
    fn mixed_workload_installs_versions() {
        struct RwFactory;
        impl LockFactory for RwFactory {
            fn make(&self) -> Arc<dyn PlainLock> {
                Arc::new(asl_locks::McsLock::new())
            }
            fn make_rw(&self) -> Arc<dyn asl_locks::PlainRwLock> {
                Arc::new(asl_locks::RwTicketLock::new())
            }
        }
        let db = Arc::new(LevelDb::with_mix(&RwFactory, 100, Mix::ycsb_b()));
        // Two snapshots pinned concurrently under the rw metadata
        // lock; an install would have to wait.
        let a = db.current.read();
        assert_eq!(db.get(1), Some(value_for(1)));
        assert!(
            db.current.try_write().is_none(),
            "pinned snapshots block installs"
        );
        drop(a);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2_000 {
            db.run_request(&mut rng);
        }
        assert!(db.sequence() > 1, "updates install new versions");
    }
}
