//! LevelDB-like store, random-read benchmark.
//!
//! Table 1: "On-disk KV, db_bench Random Read; Metadata Lock". The
//! paper only exercises LevelDB's `Get` path (LevelDB's `Put` uses a
//! custom blocking scheme rather than `pthread_mutex_lock`): every
//! read "acquires a global lock to take a snapshot of internal
//! database structures" and then searches without the lock. We model
//! the version set as an `Arc` snapshot swapped under a metadata
//! lock; readers pin it briefly, then probe the (immutable) snapshot
//! outside the lock.

use std::collections::BTreeMap;
use std::sync::Arc;

use asl_locks::api::DynMutex;
use asl_runtime::work::execute_units;
use rand::rngs::SmallRng;

use crate::{guarded_slot, random_key, value_for, Engine, LockFactory, Value};

/// Emulated snapshot-pin cost under the metadata lock (ref-count the
/// version, record the sequence number).
const SNAPSHOT_UNITS: u64 = 70;
/// Emulated memtable+SSTable probe cost outside the lock.
const SEARCH_UNITS: u64 = 200;

/// An immutable version of the database.
pub struct DbVersion {
    /// Sorted table contents.
    pub table: BTreeMap<u64, Value>,
    /// Version sequence number.
    pub sequence: u64,
}

/// The LevelDB-like engine.
pub struct LevelDb {
    /// The current version pointer, guarded by the metadata lock.
    current: DynMutex<Arc<DbVersion>>,
}

impl LevelDb {
    /// Create with `preload` sequential keys materialized (the
    /// `db_bench` fill phase).
    pub fn new(factory: &dyn LockFactory, preload: u64) -> Self {
        let table: BTreeMap<u64, Value> = (0..preload).map(|k| (k, value_for(k))).collect();
        LevelDb {
            current: guarded_slot(factory, Arc::new(DbVersion { table, sequence: 1 })),
        }
    }

    /// Default sizing used by the figures.
    pub fn with_default_size(factory: &dyn LockFactory) -> Self {
        Self::new(factory, crate::KEYSPACE)
    }

    /// Pin the current version (the contended metadata-lock section).
    pub fn snapshot(&self) -> Arc<DbVersion> {
        let current = self.current.lock();
        let snap = current.clone();
        execute_units(SNAPSHOT_UNITS);
        snap
    }

    /// Random-read: snapshot, then search outside the lock.
    pub fn get(&self, key: u64) -> Option<Value> {
        let snap = self.snapshot();
        let v = snap.table.get(&key).copied();
        execute_units(SEARCH_UNITS);
        v
    }

    /// Install a new version (compaction stand-in; used by tests).
    pub fn install_version(&self, table: BTreeMap<u64, Value>) {
        let mut current = self.current.lock();
        let sequence = current.sequence + 1;
        *current = Arc::new(DbVersion { table, sequence });
    }

    /// Sequence number of the current version.
    pub fn sequence(&self) -> u64 {
        self.current.lock().sequence
    }
}

impl Engine for LevelDb {
    fn run_request(&self, rng: &mut SmallRng) {
        let _ = self.get(random_key(rng));
    }

    fn name(&self) -> &'static str {
        "leveldb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_locks::plain::PlainLock;
    use rand::SeedableRng;

    fn factory() -> impl LockFactory {
        || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) }
    }

    #[test]
    fn preloaded_reads_hit() {
        let db = LevelDb::new(&factory(), 1_000);
        assert_eq!(db.get(500), Some(value_for(500)));
        assert_eq!(db.get(1_000), None);
        assert_eq!(db.sequence(), 1);
    }

    #[test]
    fn snapshots_are_stable_across_installs() {
        let db = LevelDb::new(&factory(), 10);
        let snap = db.snapshot();
        db.install_version(BTreeMap::new());
        // Old snapshot still sees old data; new reads see new version.
        assert_eq!(snap.table.len(), 10);
        assert_eq!(db.get(5), None);
        assert_eq!(db.sequence(), 2);
    }

    #[test]
    fn concurrent_reads() {
        let db = Arc::new(LevelDb::new(&factory(), 1_000));
        let mut handles = vec![];
        for i in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(i);
                for _ in 0..2_000 {
                    db.run_request(&mut rng);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.sequence(), 1);
    }
}
