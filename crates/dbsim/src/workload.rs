//! YCSB-style workload generation.
//!
//! The paper's application benchmarks follow YCSB-A ("we randomly
//! choose to insert or find 1 item (fifty-fifty, referring to
//! YCSB-A)"). This module provides the key-distribution machinery the
//! real YCSB uses so the engines can also be driven with skewed
//! access patterns:
//!
//! * [`Zipfian`] — the standard YCSB bounded-zipfian sampler
//!   (Gray et al., "Quickly generating billion-record synthetic
//!   databases"), default exponent θ = 0.99.
//! * [`KeyDist`] — uniform / zipfian / latest-skewed choice.
//! * [`Mix`] — operation mixes for YCSB A/B/C.

use rand::rngs::SmallRng;
use rand::Rng;

/// Default YCSB zipfian exponent.
pub const YCSB_THETA: f64 = 0.99;

/// Bounded zipfian sampler over `0..n` (rank 0 most popular).
///
/// Uses the Gray et al. closed-form inversion: one uniform draw and
/// O(1) arithmetic per sample after an O(n) zeta precomputation.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Sampler over `0..n` with exponent `theta` in (0, 1).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// YCSB-default sampler (θ = 0.99).
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, YCSB_THETA)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; key spaces here are ≤ ~1e6 so this is fine at
        // construction time.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Key space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw the next rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Zeta value over the first two ranks (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// How keys are drawn from the key space.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `0..n` (the paper's database benchmarks).
    Uniform {
        /// Key space size.
        n: u64,
    },
    /// Zipfian-skewed (YCSB default).
    Zipfian(Zipfian),
}

impl KeyDist {
    /// Draw a key.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(0..*n),
            KeyDist::Zipfian(z) => {
                // Scatter ranks across the key space so popular keys
                // do not cluster in one hash slot.
                let rank = z.sample(rng);
                rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % z.n()
            }
        }
    }

    /// Key space size.
    pub fn n(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } => *n,
            KeyDist::Zipfian(z) => z.n(),
        }
    }
}

/// One YCSB operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read one record.
    Read,
    /// Update (write) one record.
    Update,
}

/// An operation mix (read fraction in `[0, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    read_fraction: f64,
}

impl Mix {
    /// Custom mix with the given read fraction.
    ///
    /// # Panics
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn new(read_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_fraction));
        Mix { read_fraction }
    }

    /// YCSB-A: 50% read, 50% update — the paper's DB workload.
    pub fn ycsb_a() -> Self {
        Mix::new(0.5)
    }

    /// YCSB-B: 95% read, 5% update.
    pub fn ycsb_b() -> Self {
        Mix::new(0.95)
    }

    /// YCSB-C: read-only.
    pub fn ycsb_c() -> Self {
        Mix::new(1.0)
    }

    /// The read fraction.
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }

    /// Draw the next operation.
    pub fn sample(&self, rng: &mut SmallRng) -> Op {
        if self.read_fraction >= 1.0 || rng.gen_bool(self.read_fraction) {
            Op::Read
        } else {
            Op::Update
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipfian_bounds() {
        let z = Zipfian::ycsb(1_000);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20_000 {
            assert!(z.sample(&mut rng) < 1_000);
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        // Rank 0 should receive far more than the uniform share.
        let n = 10_000u64;
        let z = Zipfian::ycsb(n);
        let mut rng = SmallRng::seed_from_u64(2);
        let samples = 100_000;
        let zeros = (0..samples).filter(|_| z.sample(&mut rng) == 0).count();
        let uniform_share = samples as f64 / n as f64;
        assert!(
            zeros as f64 > uniform_share * 50.0,
            "rank 0 drawn {zeros} times; uniform share would be {uniform_share:.1}"
        );
    }

    #[test]
    fn zipfian_rank_frequencies_decrease() {
        let z = Zipfian::new(100, 0.9);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u64; 100];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Aggregate decades to smooth noise: first 10 ranks must beat
        // the next 10, and so on.
        let d0: u64 = counts[..10].iter().sum();
        let d1: u64 = counts[10..20].iter().sum();
        let d5: u64 = counts[50..60].iter().sum();
        assert!(d0 > d1 && d1 > d5, "{d0} {d1} {d5}");
    }

    #[test]
    #[should_panic]
    fn zipfian_rejects_zero_n() {
        let _ = Zipfian::ycsb(0);
    }

    #[test]
    #[should_panic]
    fn zipfian_rejects_bad_theta() {
        let _ = Zipfian::new(10, 1.5);
    }

    #[test]
    fn key_dist_uniform_covers_space() {
        let d = KeyDist::Uniform { n: 64 };
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 64];
        for _ in 0..10_000 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed keys");
    }

    #[test]
    fn key_dist_zipfian_in_range() {
        let d = KeyDist::Zipfian(Zipfian::ycsb(777));
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) < 777);
        }
        assert_eq!(d.n(), 777);
    }

    #[test]
    fn mixes() {
        let mut rng = SmallRng::seed_from_u64(6);
        let a = Mix::ycsb_a();
        let reads = (0..10_000)
            .filter(|_| a.sample(&mut rng) == Op::Read)
            .count();
        assert!((4_000..6_000).contains(&reads), "YCSB-A reads {reads}");

        let c = Mix::ycsb_c();
        assert!((0..1_000).all(|_| c.sample(&mut rng) == Op::Read));

        let b = Mix::ycsb_b();
        let reads = (0..10_000)
            .filter(|_| b.sample(&mut rng) == Op::Read)
            .count();
        assert!(reads > 9_000, "YCSB-B reads {reads}");
    }

    #[test]
    #[should_panic]
    fn mix_rejects_bad_fraction() {
        let _ = Mix::new(1.5);
    }
}
