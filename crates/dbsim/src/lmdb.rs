//! LMDB-like memory-mapped B-tree store.
//!
//! Table 1: "On-disk KV, 50% Put 50% Get; Global Lock, Metadata
//! Locks". LMDB serializes writers on one global write lock (a write
//! transaction owns the tree for its duration) while readers only
//! take short metadata locks to pin a snapshot — in real LMDB many
//! readers pin snapshots concurrently. We reproduce that split
//! faithfully: puts hold the global lock (a pure [`DynLock`] ordering
//! point) for the full write transaction and briefly take the
//! metadata lock *exclusively* to publish the new root; gets pin the
//! tree under a *shared* metadata guard ([`guarded_rw_slot`]), so
//! under an rwlock spec readers overlap exactly as LMDB's do, while
//! an exclusive spec reproduces the old serialized metadata lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use asl_locks::api::{DynLock, DynRwMutex};
use asl_runtime::work::execute_units;
use rand::rngs::SmallRng;

use crate::workload::{Mix, Op};
use crate::{guarded_lock, guarded_rw_slot, random_key, value_for, Engine, LockFactory, Value};

/// Emulated write-transaction cost (page COW + fsync stand-in).
const WRITE_TXN_UNITS: u64 = 520;
/// Emulated root-publication cost under the metadata lock.
const PUBLISH_UNITS: u64 = 60;
/// Emulated reader cost under the metadata lock.
const READ_UNITS: u64 = 90;

/// The LMDB-like engine.
pub struct Lmdb {
    /// Writers serialize here for the whole write transaction.
    write_lock: DynLock,
    /// The tree behind the metadata lock: shared for readers, brief
    /// exclusive sections for the writer's root publication.
    tree: DynRwMutex<BTreeMap<u64, Value>>,
    version: AtomicU64,
    mix: Mix,
}

impl Lmdb {
    /// Create with locks from `factory` and the paper's fifty-fifty
    /// put/get mix.
    pub fn new(factory: &dyn LockFactory) -> Self {
        Self::with_mix(factory, Mix::ycsb_a())
    }

    /// Create with an explicit operation mix (YCSB-B/C read-mostly
    /// experiments).
    pub fn with_mix(factory: &dyn LockFactory, mix: Mix) -> Self {
        Lmdb {
            write_lock: guarded_lock(factory, "lmdb.writer"),
            tree: guarded_rw_slot(factory, "lmdb.meta", BTreeMap::new()),
            version: AtomicU64::new(0),
            mix,
        }
    }

    /// The operation mix this engine runs.
    pub fn mix(&self) -> Mix {
        self.mix
    }

    /// Write transaction: COW pages, then publish the new root.
    pub fn put(&self, key: u64, value: Value) {
        let _txn = self.write_lock.lock();
        // Copy-on-write page work happens outside the metadata lock —
        // readers keep reading the old root meanwhile.
        execute_units(WRITE_TXN_UNITS);
        // Publish: nested metadata lock (exclusive), swap the root.
        let mut tree = self.tree.write();
        tree.insert(key, value);
        self.version.fetch_add(1, Ordering::Release);
        execute_units(PUBLISH_UNITS);
    }

    /// Read transaction: pin a snapshot under a shared metadata guard
    /// and probe the tree.
    pub fn get(&self, key: u64) -> Option<Value> {
        let tree = self.tree.read();
        let v = tree.get(&key).copied();
        execute_units(READ_UNITS);
        v
    }

    /// Committed write-transaction count.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Record count (test helper).
    pub fn len(&self) -> usize {
        self.tree.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Engine for Lmdb {
    fn run_request(&self, rng: &mut SmallRng) {
        let key = random_key(rng);
        match self.mix.sample(rng) {
            Op::Update => self.put(key, value_for(key)),
            Op::Read => {
                let _ = self.get(key);
            }
        }
    }

    fn name(&self) -> &'static str {
        "lmdb"
    }

    fn lock_labels(&self) -> &'static [&'static str] {
        &["lmdb.writer", "lmdb.meta"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_locks::plain::PlainLock;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn factory() -> impl LockFactory {
        || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) }
    }

    #[test]
    fn roundtrip_and_versioning() {
        let db = Lmdb::new(&factory());
        assert_eq!(db.version(), 0);
        db.put(10, value_for(10));
        db.put(11, value_for(11));
        assert_eq!(db.version(), 2);
        assert_eq!(db.get(10), Some(value_for(10)));
        assert_eq!(db.get(99), None);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn writers_serialize_readers_progress() {
        let db = Arc::new(Lmdb::new(&factory()));
        let mut handles = vec![];
        for i in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(i);
                for _ in 0..1_000 {
                    db.run_request(&mut rng);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(db.version() > 0);
        assert!(!db.is_empty());
    }

    #[test]
    fn rw_spec_pins_snapshots_concurrently() {
        struct RwFactory;
        impl LockFactory for RwFactory {
            fn make(&self) -> Arc<dyn PlainLock> {
                Arc::new(asl_locks::McsLock::new())
            }
            fn make_rw(&self) -> Arc<dyn asl_locks::PlainRwLock> {
                Arc::new(asl_locks::RwTicketLock::new())
            }
        }
        let db = Lmdb::with_mix(&RwFactory, Mix::ycsb_c());
        db.put(3, value_for(3));
        let pinned = db.tree.read();
        // A concurrent reader still gets in while a snapshot is
        // pinned; a writer's publication would have to wait.
        assert_eq!(db.get(3), Some(value_for(3)));
        assert!(db.tree.try_write().is_none(), "readers block publication");
        drop(pinned);
    }
}
