//! # asl-dbsim — miniature storage engines with the paper's locking
//! structure (Table 1)
//!
//! The paper's application evaluation runs five databases whose
//! *per-epoch lock acquisition patterns* drive the results:
//!
//! | Engine | Workload | Locks in each epoch |
//! |---|---|---|
//! | [`kyoto::Kyoto`] | 50% put / 50% get | slot-level lock + method lock |
//! | [`upscale::UpscaleDb`] | 50% put / 50% get | global lock + worker-pool lock |
//! | [`lmdb::Lmdb`] | 50% put / 50% get | global (writer) lock + metadata lock |
//! | [`leveldb::LevelDb`] | random read | metadata (snapshot) lock |
//! | [`sqlite::Sqlite`] | ⅓ insert, ⅓ simple select, ⅓ complex select | state-machine lock + table lock |
//!
//! Each engine implements a small but real data path (hash slots,
//! ordered maps, version snapshots, a SQLite-style file-lock state
//! machine) and is parameterized over *any* lock via
//! [`LockFactory`], so the harness can swap in TAS, MCS, SHFL-PB or
//! LibASL exactly the way the paper relinks `pthread_mutex_lock`.
//!
//! The engines are reader-writer aware: state that `Op::Read` paths
//! only inspect lives in a [`guarded_rw_slot`] and is probed under
//! shared guards, while updates take exclusive guards. Under an
//! exclusive lock spec the shared guards degenerate to exclusive
//! acquisitions (bit-for-bit the old behaviour); under an rwlock spec
//! (`rw-ticket`, `bravo-*`, `libasl-rw-*`) reads genuinely overlap,
//! which is what makes the YCSB-B/C read-mostly mixes
//! ([`workload::Mix`]) meaningful.
//!
//! Request processing cost is expressed in emulated work units
//! (`asl_runtime::work`), so critical sections take proportionally
//! longer on little cores — the asymmetry under study.
//!
//! Beyond the thread-per-core engines, the crate also hosts the
//! *serving-side* evaluation: [`kv`] is a sharded KV service whose
//! shard locks are `asl-locks` async mutexes (FIFO or SLO-aware), and
//! [`openloop`] drives it with an open-loop simulated client
//! population — arrivals drawn from an [`arrival::ArrivalProcess`] on
//! the generator's own clock, so tail latency is measured free of
//! coordinated omission.

pub mod arrival;
pub mod kv;
pub mod kyoto;
pub mod leveldb;
pub mod lmdb;
pub mod openloop;
pub mod sqlite;
pub mod upscale;
pub mod workload;

use std::sync::Arc;

use asl_locks::api::{DynLock, DynMutex, DynRwLock, DynRwMutex};
use asl_locks::plain::{ExclusiveRw, PlainLock, PlainRwLock};
use rand::rngs::SmallRng;
use rand::Rng;

/// Factory producing lock instances for an engine's internal locks.
pub trait LockFactory: Send + Sync {
    /// Create one fresh lock.
    fn make(&self) -> Arc<dyn PlainLock>;

    /// Create one fresh reader-writer lock.
    ///
    /// The default wraps [`LockFactory::make`] in
    /// [`ExclusiveRw`], so exclusive-only factories keep working:
    /// their "shared" mode degenerates to an exclusive acquisition.
    /// Factories backed by a genuine rwlock spec override this, and
    /// the engines' `Op::Read` paths then overlap.
    fn make_rw(&self) -> Arc<dyn PlainRwLock> {
        Arc::new(ExclusiveRw::new(self.make()))
    }

    /// [`LockFactory::make`] for a *named* engine lock ("kyoto.slot",
    /// "lmdb.writer", ...). The default wires the name into the
    /// process-wide telemetry registry while profiling is on
    /// (`asl_locks::telemetry`), so per-engine lock stats can
    /// attribute contention to the lock that caused it; otherwise it
    /// is exactly `make()`. Harness factories override this to fold
    /// the lock-spec label into the name.
    fn make_labeled(&self, label: &'static str) -> Arc<dyn PlainLock> {
        asl_locks::telemetry::maybe_instrument(label, self.make())
    }

    /// [`LockFactory::make_rw`] for a named engine lock (telemetry
    /// registers the shared and exclusive sides as `<label>.read` /
    /// `<label>.write`).
    fn make_rw_labeled(&self, label: &'static str) -> Arc<dyn PlainRwLock> {
        asl_locks::telemetry::maybe_instrument_rw(label, self.make_rw())
    }
}

impl<F> LockFactory for F
where
    F: Fn() -> Arc<dyn PlainLock> + Send + Sync,
{
    fn make(&self) -> Arc<dyn PlainLock> {
        self()
    }
}

/// The engines' shared guarded-slot helper: a fresh lock from
/// `factory`, *named* for telemetry attribution, fused with the state
/// it protects.
///
/// Every internal engine lock that guards data (hash slots, B-trees,
/// version pointers, protocol state) is one of these; locking returns
/// an RAII guard that derefs to the state, so the copy-pasted
/// `acquire`/`release` blocks of earlier revisions cannot come back.
/// The label ("sqlite.table", ...) is what per-engine lock stats
/// report contention under when profiling is on.
pub fn guarded_slot<T>(factory: &dyn LockFactory, label: &'static str, value: T) -> DynMutex<T> {
    DynMutex::new(factory.make_labeled(label), value)
}

/// A named, data-free lock from `factory` (pure ordering points like
/// method or writer locks), held as an RAII guard.
pub fn guarded_lock(factory: &dyn LockFactory, label: &'static str) -> DynLock {
    DynLock::new(factory.make_labeled(label))
}

/// The reader-writer guarded-slot helper: a fresh named rwlock from
/// `factory` fused with the state it protects.
///
/// Engine state that is read on `Op::Read` paths and mutated on
/// `Op::Update` paths is one of these: reads take shared guards
/// (overlapping under rwlock specs, degenerating to exclusive under
/// exclusive specs via [`ExclusiveRw`]) and writes take exclusive
/// guards.
pub fn guarded_rw_slot<T>(
    factory: &dyn LockFactory,
    label: &'static str,
    value: T,
) -> DynRwMutex<T> {
    DynRwMutex::new(factory.make_rw_labeled(label), value)
}

/// A named, data-free reader-writer lock from `factory`
/// (shared/exclusive ordering points like a method lock), held as an
/// RAII guard.
pub fn guarded_rw_lock(factory: &dyn LockFactory, label: &'static str) -> DynRwLock {
    DynRwLock::new(factory.make_rw_labeled(label))
}

/// Fixed-size record value (16 bytes, like the paper's small KV
/// items).
pub type Value = [u8; 16];

/// Derive a value from a key (verifiable round-trip in tests).
pub fn value_for(key: u64) -> Value {
    let mut v = [0u8; 16];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..].copy_from_slice(&key.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes());
    v
}

/// A database engine benchmarkable by the harness.
pub trait Engine: Send + Sync {
    /// Execute one request (one epoch body) with the worker's RNG.
    fn run_request(&self, rng: &mut SmallRng);

    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Labels of the engine's internal locks ("kyoto.slot", ...), the
    /// names its acquisitions are filed under in the telemetry
    /// registry when profiling is on. The harness prints them in
    /// figure notes so readers can match `--profile` stats rows
    /// (`kyoto.slot[mcs]`) to the engine that owns the lock.
    fn lock_labels(&self) -> &'static [&'static str] {
        &[]
    }
}

/// Key-space shared by the KV workloads.
pub const KEYSPACE: u64 = 1 << 16;

/// Draw a uniform key (the paper's insert-or-find random items,
/// YCSB-A style).
pub fn random_key(rng: &mut SmallRng) -> u64 {
    rng.gen_range(0..KEYSPACE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn value_roundtrip() {
        let v = value_for(42);
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 42);
        assert_ne!(value_for(1), value_for(2));
    }

    #[test]
    fn random_key_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(random_key(&mut rng) < KEYSPACE);
        }
    }

    #[test]
    fn closure_is_a_factory() {
        let f = || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) };
        let lock = DynLock::new(LockFactory::make(&f));
        let held = lock.lock();
        assert!(lock.is_locked());
        held.unlock();
    }

    #[test]
    fn guarded_rw_slot_defaults_to_exclusive_and_upgrades() {
        // Exclusive factory: shared guards degenerate (no overlap).
        let f = || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) };
        let slot = guarded_rw_slot(&f, "test.slot", 1u64);
        {
            let r = slot.read();
            assert_eq!(*r, 1);
            assert!(
                slot.try_read().is_none(),
                "exclusive substrate: reads serialize"
            );
        }
        *slot.write() += 1;
        assert_eq!(*slot.read(), 2);

        // rw-capable factory: shared guards overlap.
        struct RwFactory;
        impl LockFactory for RwFactory {
            fn make(&self) -> Arc<dyn PlainLock> {
                Arc::new(asl_locks::McsLock::new())
            }
            fn make_rw(&self) -> Arc<dyn asl_locks::PlainRwLock> {
                Arc::new(asl_locks::RwTicketLock::new())
            }
        }
        let slot = guarded_rw_slot(&RwFactory, "test.slot", 1u64);
        {
            let a = slot.read();
            let b = slot.try_read().expect("rw substrate: reads overlap");
            assert_eq!(*a + *b, 2);
            assert!(slot.try_write().is_none());
        }
        let l = guarded_rw_lock(&RwFactory, "test.lock");
        {
            let _r1 = l.read();
            let _r2 = l.try_read().expect("data-free rw lock shares too");
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn guarded_slot_fuses_lock_and_state() {
        let f = || -> Arc<dyn PlainLock> { Arc::new(asl_locks::McsLock::new()) };
        let slot = guarded_slot(&f, "test.slot", 41u64);
        *slot.lock() += 1;
        assert_eq!(*slot.lock(), 42);
        assert!(!slot.is_locked());
        let l = guarded_lock(&f, "test.lock");
        let held = l.lock();
        assert!(l.is_locked());
        drop(held);
        assert!(!l.is_locked());
    }
}
