//! Thread → virtual-core registry.
//!
//! LibASL identifies the caller's core class on every lock acquisition
//! ("getting the core id and looking up a pre-defined table", §3.3).
//! In the emulation, a thread *declares* its virtual core once via
//! [`register_on_core`]; [`is_big_core`] and [`work_multiplier`] are
//! then thread-local reads, costing a few nanoseconds — comparable to
//! the real lookup.
//!
//! Unregistered threads behave as big cores with multiplier 1.0, so
//! plain code that never touches topology still works (this mirrors
//! the paper's "non-latency-critical applications can transparently
//! use LibASL").

use std::cell::Cell;

use crate::topology::{CoreId, CoreKind, Topology};

/// The assignment of the current thread to a virtual core.
#[derive(Debug, Clone, Copy)]
pub struct CoreAssignment {
    /// Which virtual core this thread runs on.
    pub core: CoreId,
    /// Class of that core.
    pub kind: CoreKind,
    /// NUMA socket of that core.
    pub socket: usize,
    /// Emulated-work multiplier for this thread (1.0 on big cores,
    /// the topology's `perf_ratio` on little cores).
    pub multiplier: f64,
}

impl CoreAssignment {
    /// Assignment used for threads that never registered.
    pub const DEFAULT_BIG: CoreAssignment = CoreAssignment {
        core: CoreId(0),
        kind: CoreKind::Big,
        socket: 0,
        multiplier: 1.0,
    };
}

thread_local! {
    static ASSIGNMENT: Cell<CoreAssignment> = const {
        Cell::new(CoreAssignment::DEFAULT_BIG)
    };
    static REGISTERED: Cell<bool> = const { Cell::new(false) };
}

/// Register the current thread on `core` of `topology`.
///
/// Overwrites any previous registration (threads may migrate, as the
/// paper's energy-aware-scheduler discussion allows).
pub fn register_on_core(topology: &Topology, core: CoreId) -> CoreAssignment {
    let vc = topology.core(core);
    let a = CoreAssignment {
        core,
        kind: vc.kind,
        socket: vc.socket,
        multiplier: topology.work_multiplier(vc.kind),
    };
    ASSIGNMENT.with(|c| c.set(a));
    REGISTERED.with(|c| c.set(true));
    a
}

/// Remove the current thread's registration (back to default-big).
pub fn unregister() {
    ASSIGNMENT.with(|c| c.set(CoreAssignment::DEFAULT_BIG));
    REGISTERED.with(|c| c.set(false));
}

/// The current thread's assignment.
#[inline]
pub fn current_core() -> CoreAssignment {
    ASSIGNMENT.with(|c| c.get())
}

/// Whether the current thread registered at all.
pub fn is_registered() -> bool {
    REGISTERED.with(|c| c.get())
}

/// Paper Algorithm 3's `is_big_core()`: true when the calling thread
/// runs on a big (or unregistered/default) core.
#[inline]
pub fn is_big_core() -> bool {
    current_core().kind == CoreKind::Big
}

/// The emulated-work multiplier for the calling thread.
#[inline]
pub fn work_multiplier() -> f64 {
    current_core().multiplier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_big() {
        unregister();
        assert!(is_big_core());
        assert!(!is_registered());
        assert_eq!(work_multiplier(), 1.0);
    }

    #[test]
    fn register_little() {
        let t = Topology::apple_m1();
        let a = register_on_core(&t, CoreId(5));
        assert_eq!(a.kind, CoreKind::Little);
        assert!(!is_big_core());
        assert!(is_registered());
        assert_eq!(work_multiplier(), t.perf_ratio());
        unregister();
    }

    #[test]
    fn register_big_then_migrate() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(1));
        assert!(is_big_core());
        register_on_core(&t, CoreId(6));
        assert!(!is_big_core());
        unregister();
        assert!(is_big_core());
    }

    #[test]
    fn registration_is_thread_local() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(7));
        assert!(!is_big_core());
        std::thread::spawn(|| {
            // Fresh thread: default big.
            assert!(is_big_core());
        })
        .join()
        .unwrap();
        unregister();
    }
}
