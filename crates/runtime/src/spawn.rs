//! Scoped worker spawning on a virtual topology.
//!
//! [`run_on_topology`] spawns `n` worker threads, binds thread `i` to
//! `topology.assignment_for_thread(i)` (big cores first — the paper's
//! evaluation binding), registers the thread-local core identity,
//! optionally pins to the corresponding physical CPU, and runs the
//! worker body. Results are collected in thread order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::affinity::pin_to_cpu;
use crate::registry::{register_on_core, unregister, CoreAssignment};
use crate::topology::Topology;

/// Context handed to each worker.
#[derive(Debug, Clone)]
pub struct ThreadCtx {
    /// Worker index, `0..n`.
    pub index: usize,
    /// The virtual-core assignment of this worker.
    pub assignment: CoreAssignment,
    /// Cooperative stop flag (used by timed runs).
    pub stop: Arc<AtomicBool>,
}

impl ThreadCtx {
    /// Whether the run has been asked to stop.
    #[inline]
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// Spawn `n` workers on `topology`, run `body` on each, return results
/// in worker order. `pin` controls physical CPU pinning.
///
/// The returned stop flag is shared with all workers; `body`
/// implementations that loop should poll [`ThreadCtx::stopped`].
pub fn run_on_topology<R, F>(topology: &Topology, n: usize, pin: bool, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ThreadCtx) -> R + Sync,
{
    let stop = Arc::new(AtomicBool::new(false));
    run_on_topology_with_stop(topology, n, pin, stop, body)
}

/// Like [`run_on_topology`] but with a caller-provided stop flag
/// (lets a controller thread terminate timed experiments).
pub fn run_on_topology_with_stop<R, F>(
    topology: &Topology,
    n: usize,
    pin: bool,
    stop: Arc<AtomicBool>,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&ThreadCtx) -> R + Sync,
{
    let body = &body;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            let vc = topology.assignment_for_thread(index);
            let stop = stop.clone();
            let topo = topology.clone();
            handles.push(scope.spawn(move || {
                let assignment = register_on_core(&topo, vc.id);
                if pin {
                    if let Some(cpu) = vc.os_cpu {
                        let _ = pin_to_cpu(cpu);
                    }
                }
                let ctx = ThreadCtx {
                    index,
                    assignment,
                    stop,
                };
                let r = body(&ctx);
                unregister();
                r
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::is_big_core;
    use crate::topology::CoreKind;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn workers_get_correct_classes() {
        let t = Topology::apple_m1();
        let kinds = run_on_topology(&t, 8, false, |ctx| (ctx.index, ctx.assignment.kind));
        for (i, kind) in kinds {
            let expect = if i < 4 {
                CoreKind::Big
            } else {
                CoreKind::Little
            };
            assert_eq!(kind, expect, "worker {i}");
        }
    }

    #[test]
    fn registration_visible_in_body() {
        let t = Topology::apple_m1();
        let r = run_on_topology(&t, 8, false, |_| is_big_core());
        assert_eq!(r.iter().filter(|b| **b).count(), 4);
    }

    #[test]
    fn all_workers_run() {
        let t = Topology::symmetric(4);
        let counter = AtomicUsize::new(0);
        run_on_topology(&t, 16, false, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn external_stop_flag_terminates() {
        let t = Topology::symmetric(2);
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = stop.clone();
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            s2.store(true, Ordering::Relaxed);
        });
        let iters = run_on_topology_with_stop(&t, 2, false, stop, |ctx| {
            let mut i = 0u64;
            while !ctx.stopped() {
                i += 1;
            }
            i
        });
        stopper.join().unwrap();
        assert!(iters.iter().all(|&i| i > 0));
    }
}
