//! Nanosecond clock utilities.
//!
//! The paper uses `clock_gettime` (~45 cycles) for epoch timestamps
//! and reorder-window deadlines. We expose the same thing: a
//! monotonic nanosecond counter anchored at process start, plus
//! busy-wait and nanosleep helpers used by the lock implementations.
//!
//! ## Precise vs. amortized reads
//!
//! [`now_ns`] is the precise clock — one `clock_gettime` per call.
//! That is cheap enough for once-per-acquisition timestamps but not
//! for per-spin-iteration deadline checks: a standby competitor
//! polling a reorder window would spend more cycles reading the clock
//! than probing the lock. [`coarse_now_ns`] amortizes the cost with a
//! per-thread cache refreshed every [`COARSE_REFRESH_EVERY`] reads —
//! no background ticker thread (the reference host has one CPU), just
//! a counter and a cached value in TLS. Wait loops read the coarse
//! clock; anything that anchors a measurement or a deadline reads the
//! precise one, once.

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since process start. Cheap enough to call in
/// lock hot paths (vDSO-backed on Linux), but see [`coarse_now_ns`]
/// for the amortized variant wait loops should use.
///
/// On a thread with an installed [`crate::substrate`] backend this is
/// the *virtual* clock instead — see the substrate module's clock
/// contract.
#[inline]
pub fn now_ns() -> u64 {
    if crate::substrate::any_installed() {
        if let Some(t) = crate::substrate::with_current(|s| s.now_ns()) {
            return t;
        }
    }
    anchor().elapsed().as_nanos() as u64
}

/// Monotonic OS nanoseconds since process start, bypassing any
/// installed substrate.
///
/// [`now_ns`] dispatches to the thread's substrate when one is
/// installed, which makes it unusable *from inside* a substrate
/// implementation that needs a real-time reading for its own OS
/// fallback (calling back into `now_ns` would recurse through the
/// substrate dispatch). Substrate decorators such as
/// [`crate::fault::FaultInjector`] use this instead; everything else
/// should call [`now_ns`].
#[inline]
pub fn os_now_ns() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

/// How many [`coarse_now_ns`] reads share one precise clock read on a
/// machine where spinning is cheap.
///
/// Chosen so a spin loop checking its deadline through the coarse
/// clock pays ~1/32 of the `clock_gettime` cost per check while the
/// staleness bound below stays tight enough for reorder-window slack
/// (the paper's windows are tens of microseconds; 31 cached reads of
/// a sub-microsecond loop are noise against that).
///
/// On hosts where every wait-loop poll is a scheduler yield
/// ([`crate::relax::yields_every_poll`], e.g. 1-CPU CI containers)
/// the cache refreshes on *every* read instead: there a poll costs a
/// scheduling quantum, so K stale reads would stretch a window by K
/// quanta while saving nothing worth having.
pub const COARSE_REFRESH_EVERY: u32 = 32;

/// Resolved per process: [`COARSE_REFRESH_EVERY`], or 1 when waiting
/// yields on every poll.
fn refresh_every() -> u32 {
    static EVERY: OnceLock<u32> = OnceLock::new();
    *EVERY.get_or_init(|| {
        if crate::relax::yields_every_poll() {
            1
        } else {
            COARSE_REFRESH_EVERY
        }
    })
}

thread_local! {
    /// (reads remaining before refresh, cached precise timestamp).
    static COARSE: Cell<(u32, u64)> = const { Cell::new((0, 0)) };
}

/// Amortized monotonic nanoseconds since process start.
///
/// Returns a cached [`now_ns`] value, re-reading the precise clock
/// once every [`COARSE_REFRESH_EVERY`] calls on the calling thread
/// (every call on hosts where wait loops yield per poll — see
/// [`COARSE_REFRESH_EVERY`]).
///
/// # Staleness contract
///
/// * **Never ahead:** the returned value is a past precise reading,
///   so `coarse_now_ns() <= now_ns()` always holds. Deadline checks
///   of the form `coarse_now_ns() >= deadline` therefore never fire
///   *early* — a window can only be honoured slightly long, never
///   cut short.
/// * **Bounded behind:** the value was read from the precise clock at
///   most [`COARSE_REFRESH_EVERY`] − 1 coarse reads ago *on this
///   thread*; the wall-clock staleness is bounded by however long
///   those reads took (for a spin loop checking every N iterations,
///   at most ~K·N loop iterations' worth of drift). A thread that
///   stops calling stops refreshing — the cache has no timer — so do
///   not use the coarse clock across blocking sleeps; take a fresh
///   [`now_ns`] instead.
/// * **Per-thread monotonic:** refreshes come from the monotonic
///   precise clock, so consecutive coarse reads on one thread never
///   go backwards.
#[inline]
pub fn coarse_now_ns() -> u64 {
    if crate::substrate::any_installed() {
        // Virtual time has no cheaper clock to amortize: the coarse
        // clock collapses onto the precise (virtual) one, staleness 0.
        if let Some(t) = crate::substrate::with_current(|s| s.now_ns()) {
            return t;
        }
    }
    COARSE.with(|c| {
        let (left, cached) = c.get();
        if left == 0 {
            let fresh = now_ns();
            c.set((refresh_every() - 1, fresh));
            fresh
        } else {
            c.set((left - 1, cached));
            cached
        }
    })
}

/// Drop this thread's coarse-clock cache so the next
/// [`coarse_now_ns`] re-reads the precise clock (call after blocking
/// sleeps, where the staleness bound above does not hold).
#[inline]
pub fn coarse_resync() {
    COARSE.with(|c| c.set((0, c.get().1)));
}

/// Busy-wait for approximately `ns` nanoseconds (spinning, with
/// scheduler yields once oversubscribed — see [`crate::relax`]).
#[inline]
pub fn busy_wait_ns(ns: u64) {
    if crate::substrate::with_current(|s| s.busy_wait_ns(ns)).is_some() {
        return;
    }
    // Saturating: a huge `ns` must clamp the deadline at the end of
    // time, not wrap it into the past and return immediately.
    let end = now_ns().saturating_add(ns);
    let mut spin = crate::relax::Spin::new();
    while now_ns() < end {
        spin.relax();
    }
}

/// Sleep for `ns` nanoseconds using `nanosleep(2)`, the same primitive
/// the paper's blocking standby competitors use. Platforms without
/// `nanosleep` fall back to `std::thread::sleep`.
pub fn nanosleep_ns(ns: u64) {
    if crate::substrate::with_current(|s| s.sleep_ns(ns)).is_some() {
        return;
    }
    #[cfg(unix)]
    {
        let ts = libc::timespec {
            tv_sec: (ns / 1_000_000_000) as libc::time_t,
            tv_nsec: (ns % 1_000_000_000) as libc::c_long,
        };
        // Ignore EINTR: for back-off sleeps an early wake-up is
        // harmless.
        unsafe {
            libc::nanosleep(&ts, std::ptr::null_mut());
        }
    }
    #[cfg(not(unix))]
    std::thread::sleep(std::time::Duration::from_nanos(ns));
}

/// Convenience: microseconds to nanoseconds.
#[inline]
pub const fn us(n: u64) -> u64 {
    n * 1_000
}

/// Convenience: milliseconds to nanoseconds.
#[inline]
pub const fn ms(n: u64) -> u64 {
    n * 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn busy_wait_waits() {
        let t0 = now_ns();
        busy_wait_ns(200_000); // 200us
        let dt = now_ns() - t0;
        assert!(dt >= 200_000, "waited only {dt}ns");
    }

    #[test]
    fn nanosleep_sleeps() {
        let t0 = now_ns();
        nanosleep_ns(1_000_000); // 1ms
        assert!(now_ns() - t0 >= 900_000);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(us(3), 3_000);
        assert_eq!(ms(2), 2_000_000);
    }

    #[test]
    fn coarse_never_ahead_of_precise() {
        coarse_resync();
        for _ in 0..10 * COARSE_REFRESH_EVERY {
            let c = coarse_now_ns();
            let p = now_ns();
            assert!(c <= p, "coarse {c} ran ahead of precise {p}");
        }
    }

    #[test]
    fn coarse_monotonic_per_thread() {
        coarse_resync();
        let mut last = 0u64;
        for _ in 0..10 * COARSE_REFRESH_EVERY {
            let c = coarse_now_ns();
            assert!(c >= last, "coarse went backwards: {last} -> {c}");
            last = c;
        }
    }

    #[test]
    fn coarse_refreshes_within_interval() {
        // After a refresh, the next K-1 reads may repeat the cached
        // value; the K-th read must be a fresh precise reading, so a
        // full interval of reads straddling a known delay must observe
        // the delay.
        coarse_resync();
        let before = coarse_now_ns(); // fresh read (cache was dropped)
        busy_wait_ns(100_000); // 100us: far above clock granularity
        let mut after = 0u64;
        for _ in 0..COARSE_REFRESH_EVERY {
            after = coarse_now_ns();
        }
        assert!(
            after >= before + 100_000,
            "a full read interval never refreshed: {before} -> {after}"
        );
    }

    #[test]
    fn coarse_staleness_bounded_by_interval() {
        // The cached value is at most K-1 coarse reads old: bracket
        // every coarse read with precise reads K calls apart and check
        // the returned value never predates the bracket start.
        coarse_resync();
        for _ in 0..50 {
            let bracket_start = now_ns();
            let mut c = 0u64;
            for _ in 0..COARSE_REFRESH_EVERY {
                c = coarse_now_ns();
            }
            // K coarse reads contain >= 1 refresh, and refreshes are
            // precise readings taken after `bracket_start`.
            assert!(
                c >= bracket_start,
                "staleness exceeded one refresh interval: {c} < {bracket_start}"
            );
        }
    }

    #[test]
    fn coarse_resync_forces_fresh_read() {
        coarse_resync();
        let a = coarse_now_ns();
        busy_wait_ns(50_000);
        coarse_resync();
        let b = coarse_now_ns();
        assert!(b >= a + 50_000, "resync did not re-read: {a} -> {b}");
    }
}
