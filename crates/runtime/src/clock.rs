//! Nanosecond clock utilities.
//!
//! The paper uses `clock_gettime` (~45 cycles) for epoch timestamps
//! and reorder-window deadlines. We expose the same thing: a
//! monotonic nanosecond counter anchored at process start, plus
//! busy-wait and nanosleep helpers used by the lock implementations.

use std::sync::OnceLock;
use std::time::Instant;

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since process start. Cheap enough to call in
/// lock hot paths (vDSO-backed on Linux).
#[inline]
pub fn now_ns() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

/// Busy-wait for approximately `ns` nanoseconds (spinning, with
/// scheduler yields once oversubscribed — see [`crate::relax`]).
#[inline]
pub fn busy_wait_ns(ns: u64) {
    let end = now_ns() + ns;
    let mut spin = crate::relax::Spin::new();
    while now_ns() < end {
        spin.relax();
    }
}

/// Sleep for `ns` nanoseconds using `nanosleep(2)`, the same primitive
/// the paper's blocking standby competitors use. Platforms without
/// `nanosleep` fall back to `std::thread::sleep`.
pub fn nanosleep_ns(ns: u64) {
    #[cfg(unix)]
    {
        let ts = libc::timespec {
            tv_sec: (ns / 1_000_000_000) as libc::time_t,
            tv_nsec: (ns % 1_000_000_000) as libc::c_long,
        };
        // Ignore EINTR: for back-off sleeps an early wake-up is
        // harmless.
        unsafe {
            libc::nanosleep(&ts, std::ptr::null_mut());
        }
    }
    #[cfg(not(unix))]
    std::thread::sleep(std::time::Duration::from_nanos(ns));
}

/// Convenience: microseconds to nanoseconds.
#[inline]
pub const fn us(n: u64) -> u64 {
    n * 1_000
}

/// Convenience: milliseconds to nanoseconds.
#[inline]
pub const fn ms(n: u64) -> u64 {
    n * 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn busy_wait_waits() {
        let t0 = now_ns();
        busy_wait_ns(200_000); // 200us
        let dt = now_ns() - t0;
        assert!(dt >= 200_000, "waited only {dt}ns");
    }

    #[test]
    fn nanosleep_sleeps() {
        let t0 = now_ns();
        nanosleep_ns(1_000_000); // 1ms
        assert!(now_ns() - t0 >= 900_000);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(us(3), 3_000);
        assert_eq!(ms(2), 2_000_000);
    }
}
