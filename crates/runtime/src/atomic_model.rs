//! Asymmetric atomic-operation success model.
//!
//! Paper §2.2: "the success rate of atomic operations (e.g.
//! test-and-set) is asymmetric" on AMP — on some platforms big cores
//! stably win the TAS, on others (M1 under back-to-back contention)
//! little cores win, and the direction even shifts with contention
//! distance (footnote 1).
//!
//! Symmetric x86 hardware cannot reproduce that microarchitectural
//! bias, so we model it explicitly: the *disadvantaged* class pays a
//! fixed spin penalty (raw work units) between failed acquisition
//! attempts, which lowers its retry rate and therefore its win
//! probability — the observable effect the paper analyzes. The model
//! is a knob on the TAS lock, letting experiments reproduce both
//! Figure 1 (little-core-affinity) and Figure 4 (big-core-affinity).

use crate::topology::CoreKind;

/// Which core class wins contended atomics, and by how much.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AtomicAffinity {
    /// Both classes retry at the same rate.
    #[default]
    Neutral,
    /// Big cores win: little cores pay `penalty_units` after each
    /// failed attempt (Figure 4 / upscaledb scenario).
    BigWins {
        /// Extra raw work units the little core spins after a failure.
        penalty_units: u64,
    },
    /// Little cores win: big cores pay the penalty (Figure 1 / SQLite
    /// scenario).
    LittleWins {
        /// Extra raw work units the big core spins after a failure.
        penalty_units: u64,
    },
}

impl AtomicAffinity {
    /// Default penalty magnitude used by the paper-reproduction
    /// experiments: large enough for a stable affinity, small enough
    /// not to idle the loser entirely.
    pub const DEFAULT_PENALTY: u64 = 600;

    /// Big-core affinity with the default penalty.
    pub fn big_wins() -> Self {
        AtomicAffinity::BigWins {
            penalty_units: Self::DEFAULT_PENALTY,
        }
    }

    /// Little-core affinity with the default penalty.
    pub fn little_wins() -> Self {
        AtomicAffinity::LittleWins {
            penalty_units: Self::DEFAULT_PENALTY,
        }
    }

    /// Penalty (raw units) a thread of class `kind` pays after a
    /// failed atomic attempt.
    #[inline]
    pub fn post_fail_penalty(&self, kind: CoreKind) -> u64 {
        match (self, kind) {
            (AtomicAffinity::BigWins { penalty_units }, CoreKind::Little) => *penalty_units,
            (AtomicAffinity::LittleWins { penalty_units }, CoreKind::Big) => *penalty_units,
            _ => 0,
        }
    }

    /// The class this model favours, if any.
    pub fn favoured(&self) -> Option<CoreKind> {
        match self {
            AtomicAffinity::Neutral => None,
            AtomicAffinity::BigWins { .. } => Some(CoreKind::Big),
            AtomicAffinity::LittleWins { .. } => Some(CoreKind::Little),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_never_penalizes() {
        let m = AtomicAffinity::Neutral;
        assert_eq!(m.post_fail_penalty(CoreKind::Big), 0);
        assert_eq!(m.post_fail_penalty(CoreKind::Little), 0);
        assert_eq!(m.favoured(), None);
    }

    #[test]
    fn big_wins_penalizes_little() {
        let m = AtomicAffinity::BigWins { penalty_units: 42 };
        assert_eq!(m.post_fail_penalty(CoreKind::Big), 0);
        assert_eq!(m.post_fail_penalty(CoreKind::Little), 42);
        assert_eq!(m.favoured(), Some(CoreKind::Big));
    }

    #[test]
    fn little_wins_penalizes_big() {
        let m = AtomicAffinity::LittleWins { penalty_units: 7 };
        assert_eq!(m.post_fail_penalty(CoreKind::Big), 7);
        assert_eq!(m.post_fail_penalty(CoreKind::Little), 0);
        assert_eq!(m.favoured(), Some(CoreKind::Little));
    }

    #[test]
    fn default_is_neutral() {
        assert_eq!(AtomicAffinity::default(), AtomicAffinity::Neutral);
    }
}
