//! Best-effort physical CPU pinning.
//!
//! The paper binds threads to cores for stable results (a standard
//! evaluation practice it cites from many lock papers). On Linux we
//! use `sched_setaffinity(2)` directly; on other platforms pinning is
//! a no-op and the emulation still works (virtual-core identity is
//! what drives behaviour, not the physical placement).

/// Pin the calling thread to the given OS CPU. Returns `true` on
/// success, `false` when pinning is unsupported or fails (e.g. the
/// CPU does not exist inside a restricted cgroup).
pub fn pin_to_cpu(os_cpu: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        if os_cpu >= libc::CPU_SETSIZE as usize {
            return false;
        }
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            libc::CPU_ZERO(&mut set);
            libc::CPU_SET(os_cpu, &mut set);
            libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = os_cpu;
        false
    }
}

/// Number of CPUs visible to this process.
pub fn online_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True when running `threads` busy threads exceeds the CPUs available
/// to this process. Under oversubscription, wall-clock timing and
/// short-run fairness of spinning locks are dominated by the OS
/// scheduler (a preempted holder stalls everyone for a quantum), so
/// tests gate their timing/fairness assertions on this.
pub fn oversubscribed(threads: usize) -> bool {
    threads > online_cpus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_cpus_positive() {
        assert!(online_cpus() >= 1);
    }

    #[test]
    fn pin_to_cpu0_usually_works_on_linux() {
        // CPU 0 exists almost everywhere; tolerate failure in odd
        // sandboxes but exercise the call.
        let _ = pin_to_cpu(0);
    }

    #[test]
    fn pin_to_absurd_cpu_fails() {
        assert!(!pin_to_cpu(100_000));
    }
}
