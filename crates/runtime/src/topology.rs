//! Virtual AMP topology descriptions.
//!
//! A [`Topology`] is the static description of the machine being
//! emulated: which virtual cores exist, whether each is big or little,
//! how much slower little cores are, and (optionally) which physical
//! OS CPU each virtual core should be pinned to.

/// The class of a core in an asymmetric multicore processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// A fast, performance-oriented core (e.g. M1 Firestorm).
    Big,
    /// A slow, efficiency-oriented core (e.g. M1 Icestorm).
    Little,
}

impl CoreKind {
    /// Short label used in reports ("big" / "little").
    pub fn label(self) -> &'static str {
        match self {
            CoreKind::Big => "big",
            CoreKind::Little => "little",
        }
    }
}

/// Index of a virtual core within its [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

/// One virtual core.
#[derive(Debug, Clone, Copy)]
pub struct VirtualCore {
    /// Identity of this core within the topology.
    pub id: CoreId,
    /// Big or little.
    pub kind: CoreKind,
    /// NUMA socket (cluster) this core belongs to. Asymmetric
    /// machines place each core class in its own cluster (the M1's
    /// Firestorm/Icestorm complexes each share an L2), so cross-class
    /// traffic is also cross-socket traffic.
    pub socket: usize,
    /// Physical CPU to pin threads of this core to, if pinning is on.
    pub os_cpu: Option<usize>,
}

/// A virtual asymmetric multicore processor.
///
/// `perf_ratio` is the paper's performance gap: executing the same
/// work takes `perf_ratio` times longer on a little core. The paper
/// measures 3.75× in Sysbench and 1.8× for straight-line NOPs on the
/// M1; the default topologies below sit inside that range.
#[derive(Debug, Clone)]
pub struct Topology {
    cores: Vec<VirtualCore>,
    perf_ratio: f64,
    name: &'static str,
}

impl Topology {
    /// Build a custom topology: `big` big cores followed by `little`
    /// little cores, with the given little-core slowdown factor.
    ///
    /// # Panics
    /// Panics if both core counts are zero or `perf_ratio < 1.0`.
    pub fn custom(big: usize, little: usize, perf_ratio: f64) -> Self {
        assert!(big + little > 0, "topology must have at least one core");
        assert!(perf_ratio >= 1.0, "perf_ratio must be >= 1.0");
        let cores = (0..big + little)
            .map(|i| VirtualCore {
                id: CoreId(i),
                kind: if i < big {
                    CoreKind::Big
                } else {
                    CoreKind::Little
                },
                // Each class is its own cluster: big cores socket 0,
                // little cores socket 1.
                socket: usize::from(i >= big),
                os_cpu: Some(i),
            })
            .collect();
        Topology {
            cores,
            perf_ratio,
            name: "custom",
        }
    }

    /// A symmetric NUMA machine: `sockets` sockets of
    /// `cores_per_socket` identical-speed cores each.
    ///
    /// Cores in the first half of the sockets are tagged
    /// [`CoreKind::Big`] and the rest [`CoreKind::Little`] with
    /// `perf_ratio == 1.0`: on a symmetric machine the class tags
    /// carry no speed difference and instead serve as the two NUMA
    /// *domains* that class-aware locks (CNA, cohort) batch on.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn numa(sockets: usize, cores_per_socket: usize) -> Self {
        assert!(sockets > 0, "need at least one socket");
        assert!(cores_per_socket > 0, "need at least one core per socket");
        let big_sockets = sockets.div_ceil(2);
        let cores = (0..sockets * cores_per_socket)
            .map(|i| {
                let socket = i / cores_per_socket;
                VirtualCore {
                    id: CoreId(i),
                    kind: if socket < big_sockets {
                        CoreKind::Big
                    } else {
                        CoreKind::Little
                    },
                    socket,
                    os_cpu: Some(i),
                }
            })
            .collect();
        Topology {
            cores,
            perf_ratio: 1.0,
            name: "numa",
        }
    }

    /// Apple-M1-like: 4 big + 4 little, little cores 3× slower.
    pub fn apple_m1() -> Self {
        let mut t = Self::custom(4, 4, 3.0);
        t.name = "apple-m1";
        t
    }

    /// HiKey970-like (ARM big.LITTLE): 4 + 4, little cores 2.2× slower.
    pub fn hikey970() -> Self {
        let mut t = Self::custom(4, 4, 2.2);
        t.name = "hikey970";
        t
    }

    /// The paper's per-core-DVFS-simulated Intel AMP: 4 + 4, 2× gap.
    pub fn intel_dvfs() -> Self {
        let mut t = Self::custom(4, 4, 2.0);
        t.name = "intel-dvfs";
        t
    }

    /// A symmetric machine (every core big); useful as a control.
    pub fn symmetric(n: usize) -> Self {
        let mut t = Self::custom(n, 0, 1.0);
        t.name = "symmetric";
        t
    }

    /// Human-readable topology name for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// All cores, big cores first.
    pub fn cores(&self) -> &[VirtualCore] {
        &self.cores
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when the topology has no cores (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Number of big cores.
    pub fn big_count(&self) -> usize {
        self.cores
            .iter()
            .filter(|c| c.kind == CoreKind::Big)
            .count()
    }

    /// Number of little cores.
    pub fn little_count(&self) -> usize {
        self.len() - self.big_count()
    }

    /// Little-core slowdown factor.
    pub fn perf_ratio(&self) -> f64 {
        self.perf_ratio
    }

    /// Core by id.
    pub fn core(&self, id: CoreId) -> VirtualCore {
        self.cores[id.0]
    }

    /// NUMA socket of a core.
    pub fn socket_of(&self, id: CoreId) -> usize {
        self.cores[id.0].socket
    }

    /// Number of distinct NUMA sockets.
    pub fn socket_count(&self) -> usize {
        self.cores.iter().map(|c| c.socket).max().unwrap_or(0) + 1
    }

    /// The work multiplier for a core class: 1.0 for big cores,
    /// `perf_ratio` for little cores.
    pub fn work_multiplier(&self, kind: CoreKind) -> f64 {
        match kind {
            CoreKind::Big => 1.0,
            CoreKind::Little => self.perf_ratio,
        }
    }

    /// The core a worker thread with index `i` is bound to, following
    /// the paper's evaluation binding: threads fill big cores first,
    /// then little cores ("The first 4 threads are bound to different
    /// big cores. Others are bound to different little cores.").
    pub fn assignment_for_thread(&self, i: usize) -> VirtualCore {
        self.cores[i % self.cores.len()]
    }

    /// Theoretical LibASL-vs-FIFO speedup upper bound on this topology
    /// when big and little counts are equal (paper footnote 5):
    /// comparing "big cores always run" against "big and little
    /// alternate": `(r + 1) / 2` where `r` is the perf ratio.
    pub fn fifo_speedup_bound(&self) -> f64 {
        (self.perf_ratio + 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_shape() {
        let t = Topology::apple_m1();
        assert_eq!(t.len(), 8);
        assert_eq!(t.big_count(), 4);
        assert_eq!(t.little_count(), 4);
        assert_eq!(t.core(CoreId(0)).kind, CoreKind::Big);
        assert_eq!(t.core(CoreId(4)).kind, CoreKind::Little);
        assert!(t.perf_ratio() > 1.0);
    }

    #[test]
    fn thread_assignment_fills_big_first() {
        let t = Topology::apple_m1();
        for i in 0..4 {
            assert_eq!(t.assignment_for_thread(i).kind, CoreKind::Big, "thread {i}");
        }
        for i in 4..8 {
            assert_eq!(
                t.assignment_for_thread(i).kind,
                CoreKind::Little,
                "thread {i}"
            );
        }
        // Oversubscription wraps around (2 threads per core).
        assert_eq!(t.assignment_for_thread(8).id, CoreId(0));
        assert_eq!(t.assignment_for_thread(15).id, CoreId(7));
    }

    #[test]
    fn work_multiplier() {
        let t = Topology::custom(1, 1, 2.5);
        assert_eq!(t.work_multiplier(CoreKind::Big), 1.0);
        assert_eq!(t.work_multiplier(CoreKind::Little), 2.5);
    }

    #[test]
    fn symmetric_has_no_littles() {
        let t = Topology::symmetric(8);
        assert_eq!(t.little_count(), 0);
        assert_eq!(t.work_multiplier(CoreKind::Little), 1.0);
    }

    #[test]
    fn speedup_bound_matches_paper() {
        // Paper footnote 5: ratio 2.6 -> (2.6+1)/2 = 1.8x bound.
        let t = Topology::custom(4, 4, 2.6);
        assert!((t.fifo_speedup_bound() - 1.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_sub_unit_ratio() {
        let _ = Topology::custom(2, 2, 0.5);
    }

    #[test]
    fn classes_are_clusters() {
        let t = Topology::apple_m1();
        assert_eq!(t.socket_count(), 2);
        assert_eq!(t.socket_of(CoreId(0)), 0);
        assert_eq!(t.socket_of(CoreId(3)), 0);
        assert_eq!(t.socket_of(CoreId(4)), 1);
        assert_eq!(t.socket_of(CoreId(7)), 1);
        assert_eq!(Topology::symmetric(4).socket_count(), 1);
    }

    #[test]
    fn numa_shape() {
        let t = Topology::numa(4, 16);
        assert_eq!(t.len(), 64);
        assert_eq!(t.socket_count(), 4);
        assert_eq!(t.perf_ratio(), 1.0);
        // Kinds double as the two batching domains: sockets 0-1 big,
        // sockets 2-3 little.
        assert_eq!(t.core(CoreId(0)).socket, 0);
        assert_eq!(t.core(CoreId(16)).socket, 1);
        assert_eq!(t.core(CoreId(63)).socket, 3);
        assert_eq!(t.big_count(), 32);
        assert_eq!(t.core(CoreId(31)).kind, CoreKind::Big);
        assert_eq!(t.core(CoreId(32)).kind, CoreKind::Little);
        // Symmetric: little "class" runs at full speed.
        assert_eq!(t.work_multiplier(CoreKind::Little), 1.0);
    }

    #[test]
    fn labels() {
        assert_eq!(CoreKind::Big.label(), "big");
        assert_eq!(CoreKind::Little.label(), "little");
    }
}
