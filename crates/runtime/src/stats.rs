//! Shared small-statistics helpers.
//!
//! One percentile definition for the whole workspace: the simulator's
//! exact percentile over raw samples and the harness histogram's
//! bucketed percentile both derive their rank from
//! [`percentile_rank`], so "P99" means the same thing everywhere.

/// 1-based rank of the `p`-th percentile in a population of `total`
/// samples: `ceil(p/100 * total)`, clamped to `[1, total]`. Returns 0
/// for an empty population.
pub fn percentile_rank(total: u64, p: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    rank.min(total)
}

/// Exact `p`-th percentile of `samples` (sorts in place). Returns 0
/// when `samples` is empty.
pub fn percentile(samples: &mut [u64], p: f64) -> u64 {
    let total = samples.len() as u64;
    if total == 0 {
        return 0;
    }
    samples.sort_unstable();
    samples[percentile_rank(total, p) as usize - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_formula() {
        assert_eq!(percentile_rank(0, 99.0), 0);
        assert_eq!(percentile_rank(100, 99.0), 99);
        assert_eq!(percentile_rank(100, 50.0), 50);
        assert_eq!(percentile_rank(100, 0.0), 1);
        assert_eq!(percentile_rank(100, 100.0), 100);
        assert_eq!(percentile_rank(3, 99.0), 3);
        assert_eq!(percentile_rank(1, 99.9), 1);
    }

    #[test]
    fn exact_percentile() {
        let mut v: Vec<u64> = (1..=100).rev().collect();
        assert_eq!(percentile(&mut v, 99.0), 99);
        assert_eq!(percentile(&mut v, 50.0), 50);
        assert_eq!(percentile(&mut v, 100.0), 100);
        assert_eq!(percentile(&mut [], 99.0), 0);
        assert_eq!(percentile(&mut [7], 99.0), 7);
    }
}
