//! Calibrated emulated work.
//!
//! The paper expresses workloads in instruction counts ("execute a
//! fixed number of NOP instructions"). We express them in abstract
//! *work units*: one unit is one iteration of an opaque spin loop on a
//! big core. [`execute_units`] multiplies the unit count by the
//! calling thread's core multiplier, which is exactly the asymmetry
//! the paper studies — the same critical section takes `ratio×` longer
//! on a little core.
//!
//! [`execute_raw_units`] skips the multiplier; lock-internal delays
//! (back-off, affinity penalties) use it so the *protocol* timing can
//! be controlled independently of core speed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::registry::work_multiplier;

/// Sink that keeps the spin loop from being optimized away without
/// generating shared-memory traffic (one private line per thread
/// would be ideal; a single process-global relaxed add per *call*,
/// not per iteration, keeps overhead negligible).
static SINK: AtomicU64 = AtomicU64::new(0);

/// Execute `units` iterations of the calibration loop, *unscaled*.
///
/// On a thread with an installed [`crate::substrate`] backend the loop
/// is not executed: the units are charged to the virtual clock
/// instead (the simulation's unit-to-nanosecond exchange rate is the
/// backend's business).
#[inline]
pub fn execute_raw_units(units: u64) {
    if crate::substrate::with_current(|s| s.charge_work_units(units)).is_some() {
        return;
    }
    run_raw_loop(units);
}

/// The calibration loop itself, with no substrate dispatch. Substrate
/// decorators that fall through to real execution
/// ([`crate::fault::FaultInjector`] over the OS backend) call this
/// directly — going through [`execute_raw_units`] would recurse into
/// the substrate hook.
#[inline]
pub(crate) fn run_raw_loop(units: u64) {
    let mut acc: u64 = units;
    for i in 0..units {
        // A data-dependent multiply-xor chain: roughly constant work
        // per iteration, resistant to vectorization.
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i) ^ (acc >> 29);
        std::hint::black_box(&acc);
    }
    if units > 0 {
        SINK.fetch_add(acc & 1, Ordering::Relaxed);
    }
}

/// Execute `units` of emulated work scaled by the calling thread's
/// core multiplier (little cores run the loop `perf_ratio×` more).
#[inline]
pub fn execute_units(units: u64) {
    let m = work_multiplier();
    let scaled = if m == 1.0 {
        units
    } else {
        (units as f64 * m) as u64
    };
    execute_raw_units(scaled);
}

/// Calibration: how many raw units a *big* core executes per
/// microsecond. Measured once per process; used to convert between
/// work units and (approximate) nanoseconds when sizing workloads.
pub fn units_per_us() -> f64 {
    static CAL: OnceLock<f64> = OnceLock::new();
    *CAL.get_or_init(|| {
        // Warm up, then measure a block long enough to dwarf timer cost.
        execute_raw_units(200_000);
        let trials = 5;
        let block: u64 = 2_000_000;
        let mut best = f64::MAX;
        for _ in 0..trials {
            let t0 = crate::clock::now_ns();
            execute_raw_units(block);
            let dt = (crate::clock::now_ns() - t0).max(1);
            let per_us = block as f64 * 1_000.0 / dt as f64;
            // Keep the *fastest* trial: slow trials are scheduler noise.
            if (block as f64 / per_us) < best {
                best = block as f64 / per_us;
            }
        }
        2_000_000.0 / best
    })
}

/// Convert a target duration in nanoseconds into raw work units using
/// the calibration (big-core time).
pub fn units_for_ns(ns: u64) -> u64 {
    (ns as f64 * units_per_us() / 1_000.0).max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{register_on_core, unregister};
    use crate::topology::{CoreId, Topology};

    #[test]
    fn raw_units_zero_is_noop() {
        execute_raw_units(0);
    }

    #[test]
    fn calibration_positive_and_stable() {
        let a = units_per_us();
        let b = units_per_us();
        assert!(a > 0.0);
        assert_eq!(a, b, "calibration must be cached");
    }

    #[test]
    fn units_for_ns_monotone() {
        assert!(units_for_ns(10_000) <= units_for_ns(100_000));
        assert!(units_for_ns(1) >= 1);
    }

    #[test]
    fn little_core_work_takes_longer() {
        let t = Topology::custom(1, 1, 4.0);
        let units = 400_000;

        register_on_core(&t, CoreId(0));
        let t0 = crate::clock::now_ns();
        execute_units(units);
        let big = crate::clock::now_ns() - t0;

        register_on_core(&t, CoreId(1));
        let t0 = crate::clock::now_ns();
        execute_units(units);
        let little = crate::clock::now_ns() - t0;
        unregister();

        // 4x multiplier: allow generous noise margins, but little must
        // clearly exceed big.
        assert!(
            little as f64 > big as f64 * 2.0,
            "little={little}ns big={big}ns"
        );
    }
}
