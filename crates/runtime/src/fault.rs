//! Deterministic fault injection at the substrate seam.
//!
//! Every lock in the workspace funnels its platform interactions —
//! clock reads, spin polls, parks, emulated work — through
//! [`crate::substrate`]. That seam is exactly where the failure modes
//! that break locking protocols live: a holder preempted mid-handover
//! is a *stall at a poll boundary*, a lost-wakeup bug is exposed by a
//! *spurious park return*, a reorder-window miscalculation by a
//! *coarse-clock jump*. [`FaultInjector`] is a substrate decorator
//! that injects those faults into the **unmodified** lock
//! implementations, driven by a replayable [`FaultPlan`].
//!
//! # Determinism
//!
//! Fault decisions are pure functions of `(plan.seed, event class,
//! event index)` — no wall clock, no OS randomness. Event indices are
//! process-wide atomic counters shared by every injector handle built
//! from one [`FaultState`]:
//!
//! * Under the deterministic simulator (`asl-sim`), exactly one
//!   virtual thread runs at a time, so the counter interleaving — and
//!   therefore the entire fault schedule — is a pure function of the
//!   seed. Replaying a seed replays the faults event-for-event.
//! * Over real OS threads the *rate* and the planned panic indices
//!   are still deterministic, but which thread draws which event index
//!   depends on the scheduler. That is the intended torture mode:
//!   seeded pressure, not a replayable trace.
//!
//! # Wiring
//!
//! [`crate::substrate::install`] refuses to stack substrates, so the
//! injector *wraps* the backend rather than installing on top of it:
//! [`FaultInjector::wrapping`] decorates an existing handle (the
//! simulator's per-vthread handle), [`FaultInjector::over_os`]
//! decorates the OS default (no inner handle; hooks fall through to
//! real clock/park/work implementations). Either way the injector is
//! what gets installed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::substrate::{self, Substrate, SubstrateGuard};

/// Event classes, hashed into the fault decision so each fault kind
/// draws an independent deterministic sequence from one seed.
const CLASS_POLL: u64 = 0x706f6c6c; // "poll"
const CLASS_WAKE: u64 = 0x77616b65; // "wake"
const CLASS_PARK: u64 = 0x7061726b; // "park"
const CLASS_CLOCK: u64 = 0x636c6f63; // "cloc"

/// How long the OS-backed injector parks when no simulator is
/// underneath: short enough that a deliberately-dropped wakeup turns
/// into bounded lateness (spurious-return pressure), long enough not
/// to burn the core.
const OS_PARK_BOUND: Duration = Duration::from_millis(1);

/// A seeded, replayable fault schedule.
///
/// A `period` of 0 disables that fault class; a period of `p` fires
/// it on roughly one in `p` events of the class, at seed-determined
/// indices (see the module docs for the determinism contract).
/// `panic_ops` is exact, not probabilistic: the listed critical-
/// section op indices (as counted by [`FaultState::on_critical_op`])
/// panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-class fault sequences.
    pub seed: u64,
    /// Fire a stall on ~1/`stall_period` spin polls (0 = off).
    pub stall_period: u64,
    /// Fire a stall on ~1/`wake_stall_period` park *returns* — a
    /// delayed wakeup (0 = off).
    pub wake_stall_period: u64,
    /// Stall length in (virtual or real) nanoseconds.
    pub stall_ns: u64,
    /// Return spuriously from ~1/`spurious_period` parks (0 = off).
    pub spurious_period: u64,
    /// Jump the clock forward on ~1/`clock_jump_period` clock reads
    /// (0 = off).
    pub clock_jump_period: u64,
    /// Clock jump size in nanoseconds. Jumps accumulate; the clock
    /// stays monotonic (it only ever runs *fast*).
    pub clock_jump_ns: u64,
    /// Critical-section op indices that panic (exact, sorted or not).
    pub panic_ops: Vec<u64>,
}

impl FaultPlan {
    /// A plan with every fault class disabled: the injector becomes a
    /// pass-through decorator (useful as a baseline and in tests).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            stall_period: 0,
            wake_stall_period: 0,
            stall_ns: 0,
            spurious_period: 0,
            clock_jump_period: 0,
            clock_jump_ns: 0,
            panic_ops: Vec::new(),
        }
    }

    /// Holder-preemption pressure: stall `stall_ns` on ~1/`period`
    /// spin polls and park returns.
    pub fn stalls(seed: u64, period: u64, stall_ns: u64) -> Self {
        FaultPlan {
            stall_period: period,
            wake_stall_period: period,
            stall_ns,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Add spurious park returns on ~1/`period` parks.
    pub fn with_spurious(mut self, period: u64) -> Self {
        self.spurious_period = period;
        self
    }

    /// Add forward clock jumps of `jump_ns` on ~1/`period` reads.
    pub fn with_clock_jumps(mut self, period: u64, jump_ns: u64) -> Self {
        self.clock_jump_period = period;
        self.clock_jump_ns = jump_ns;
        self
    }

    /// Panic at critical-section op index `op` (see
    /// [`FaultState::on_critical_op`]).
    pub fn with_panic_at(mut self, op: u64) -> Self {
        self.panic_ops.push(op);
        self
    }

    /// One-line human/machine-readable schedule description, stable
    /// across runs — the torture harness writes this into its fault-
    /// schedule artifact so a CI failure replays locally byte-for-
    /// byte.
    pub fn describe(&self) -> String {
        format!(
            "seed={} stall=1/{}x{}ns wake-stall=1/{} spurious=1/{} \
             clock-jump=1/{}x{}ns panic-ops={:?}",
            self.seed,
            self.stall_period,
            self.stall_ns,
            self.wake_stall_period,
            self.spurious_period,
            self.clock_jump_period,
            self.clock_jump_ns,
            self.panic_ops,
        )
    }
}

/// SplitMix64 finalizer: the deterministic hash behind every fault
/// decision.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Does fault class `class` fire on its `n`-th event under `seed`?
/// Pure; ~1/`period` of indices fire, at seed-dependent positions.
fn fires(seed: u64, class: u64, n: u64, period: u64) -> bool {
    match period {
        0 => false,
        1 => true,
        p => splitmix64(seed ^ class.wrapping_mul(0x9E3779B97F4A7C15) ^ n) % p == 0,
    }
}

/// Counters injected so far, for oracle reports and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Stalls injected at poll boundaries.
    pub poll_stalls: u64,
    /// Stalls injected at park-return (wake) boundaries.
    pub wake_stalls: u64,
    /// Spurious park returns injected.
    pub spurious_wakes: u64,
    /// Forward clock jumps injected.
    pub clock_jumps: u64,
    /// Planned critical-section panics raised.
    pub panics: u64,
    /// Total spin polls observed.
    pub polls: u64,
    /// Total parks observed.
    pub parks: u64,
    /// Total clock reads observed.
    pub clock_reads: u64,
    /// Total critical-section ops observed.
    pub ops: u64,
}

/// Shared state behind a fault schedule: the plan plus the event
/// counters every per-thread [`FaultInjector`] handle advances.
///
/// One `FaultState` spans one torture bout; build per-thread
/// injectors from clones of the same `Arc` so the whole bout draws
/// from a single deterministic event sequence.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    polls: AtomicU64,
    parks: AtomicU64,
    clock_reads: AtomicU64,
    ops: AtomicU64,
    clock_offset_ns: AtomicU64,
    poll_stalls: AtomicU64,
    wake_stalls: AtomicU64,
    spurious_wakes: AtomicU64,
    clock_jumps: AtomicU64,
    panics: AtomicU64,
}

impl FaultState {
    /// Fresh state (all counters zero) for `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultState {
            plan,
            polls: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            clock_reads: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            clock_offset_ns: AtomicU64::new(0),
            poll_stalls: AtomicU64::new(0),
            wake_stalls: AtomicU64::new(0),
            spurious_wakes: AtomicU64::new(0),
            clock_jumps: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        })
    }

    /// The driving plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of everything observed and injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            poll_stalls: self.poll_stalls.load(Ordering::Relaxed),
            wake_stalls: self.wake_stalls.load(Ordering::Relaxed),
            spurious_wakes: self.spurious_wakes.load(Ordering::Relaxed),
            clock_jumps: self.clock_jumps.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            clock_reads: self.clock_reads.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
        }
    }

    /// Critical-section op hook: workloads call this once per op
    /// *inside* the critical section. Returns the op's global index;
    /// **panics** if the plan names that index in `panic_ops` — the
    /// point is to verify the lock's unwind path (guard drop,
    /// combiner isolation) releases or passes on the lock.
    pub fn on_critical_op(&self) -> u64 {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.plan.panic_ops.contains(&n) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            panic!("fault injection: planned panic at critical-section op {n}");
        }
        n
    }
}

/// Substrate decorator injecting the faults of a [`FaultPlan`].
///
/// Install one per thread (they share a [`FaultState`]); see the
/// module docs for why this wraps the backend instead of stacking on
/// it. With no inner handle every hook falls through to the real OS
/// implementation (real clock via [`crate::clock::os_now_ns`], real
/// bounded park, real emulated work) — so the decorated thread
/// behaves like an ordinary OS thread plus faults.
pub struct FaultInjector {
    state: Arc<FaultState>,
    inner: Option<Arc<dyn Substrate>>,
}

impl FaultInjector {
    /// Decorate the OS default backend.
    pub fn over_os(state: Arc<FaultState>) -> Self {
        FaultInjector { state, inner: None }
    }

    /// Decorate an existing substrate handle (e.g. the simulator's
    /// per-vthread handle).
    pub fn wrapping(state: Arc<FaultState>, inner: Arc<dyn Substrate>) -> Self {
        FaultInjector {
            state,
            inner: Some(inner),
        }
    }

    /// Convenience: build an OS-backed injector and install it on the
    /// calling thread.
    pub fn install_over_os(state: &Arc<FaultState>) -> SubstrateGuard {
        substrate::install(Arc::new(FaultInjector::over_os(state.clone())))
    }

    /// Backend clock, bypassing the public dispatch (which would
    /// recurse into this injector).
    fn base_now(&self) -> u64 {
        match &self.inner {
            Some(s) => s.now_ns(),
            None => crate::clock::os_now_ns(),
        }
    }

    /// Inject one stall of `plan.stall_ns`.
    fn stall(&self) {
        let ns = self.state.plan.stall_ns;
        match &self.inner {
            Some(s) => s.busy_wait_ns(ns),
            None => {
                // Model the stalled thread as preempted (off-core), so
                // yield rather than burn the CPU other threads need to
                // make the progress the stall is meant to expose.
                let end = crate::clock::os_now_ns().saturating_add(ns);
                while crate::clock::os_now_ns() < end {
                    std::thread::yield_now();
                }
            }
        }
    }
}

impl Substrate for FaultInjector {
    fn now_ns(&self) -> u64 {
        let st = &self.state;
        let n = st.clock_reads.fetch_add(1, Ordering::Relaxed);
        if fires(st.plan.seed, CLASS_CLOCK, n, st.plan.clock_jump_period) {
            st.clock_offset_ns
                .fetch_add(st.plan.clock_jump_ns, Ordering::Relaxed);
            st.clock_jumps.fetch_add(1, Ordering::Relaxed);
        }
        // The offset only grows, so the decorated clock stays
        // monotonic — it just runs fast across jumps, which is what
        // shakes deadline and window arithmetic.
        self.base_now()
            .saturating_add(st.clock_offset_ns.load(Ordering::Relaxed))
    }

    fn relax(&self) {
        let st = &self.state;
        let n = st.polls.fetch_add(1, Ordering::Relaxed);
        if fires(st.plan.seed, CLASS_POLL, n, st.plan.stall_period) {
            st.poll_stalls.fetch_add(1, Ordering::Relaxed);
            self.stall();
        }
        match &self.inner {
            Some(s) => s.relax(),
            None => std::thread::yield_now(),
        }
    }

    fn busy_wait_ns(&self, ns: u64) {
        match &self.inner {
            Some(s) => s.busy_wait_ns(ns),
            None => {
                let end = crate::clock::os_now_ns().saturating_add(ns);
                while crate::clock::os_now_ns() < end {
                    std::thread::yield_now();
                }
            }
        }
    }

    fn sleep_ns(&self, ns: u64) {
        match &self.inner {
            Some(s) => s.sleep_ns(ns),
            None => std::thread::sleep(Duration::from_nanos(ns)),
        }
    }

    fn park(&self) {
        let st = &self.state;
        let n = st.parks.fetch_add(1, Ordering::Relaxed);
        if fires(st.plan.seed, CLASS_PARK, n, st.plan.spurious_period) {
            // Spurious return: the park contract allows it, so every
            // caller must survive one. Those that don't lose wakeups.
            st.spurious_wakes.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match &self.inner {
            Some(s) => s.park(),
            // Bounded: a wakeup this injector's faults caused to be
            // missed must surface as lateness, not a hang.
            None => std::thread::park_timeout(OS_PARK_BOUND),
        }
        if fires(st.plan.seed, CLASS_WAKE, n, st.plan.wake_stall_period) {
            // Delayed wake processing: the thread was woken but sits
            // on the decision for a while — the window where a
            // handover to it goes stale.
            st.wake_stalls.fetch_add(1, Ordering::Relaxed);
            self.stall();
        }
    }

    fn charge_work_units(&self, units: u64) {
        match &self.inner {
            Some(s) => s.charge_work_units(units),
            None => crate::work::run_raw_loop(units),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_bounded() {
        let seed = 7;
        let period = 16;
        let a: Vec<bool> = (0..4096)
            .map(|n| fires(seed, CLASS_POLL, n, period))
            .collect();
        let b: Vec<bool> = (0..4096)
            .map(|n| fires(seed, CLASS_POLL, n, period))
            .collect();
        assert_eq!(a, b, "same (seed, class, index) must replay exactly");
        let hits = a.iter().filter(|&&x| x).count();
        // ~1/16 of 4096 = 256; allow a wide band, but it must fire and
        // must not fire always.
        assert!((64..=1024).contains(&hits), "hits={hits}");
        // A different class under the same seed draws a different
        // sequence.
        let c: Vec<bool> = (0..4096)
            .map(|n| fires(seed, CLASS_PARK, n, period))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn period_edge_cases() {
        assert!(!fires(1, CLASS_POLL, 0, 0), "period 0 is off");
        assert!(fires(1, CLASS_POLL, 0, 1), "period 1 always fires");
        assert!(fires(1, CLASS_POLL, 9999, 1));
    }

    #[test]
    fn quiet_plan_is_a_pass_through() {
        let state = FaultState::new(FaultPlan::quiet(3));
        let _g = FaultInjector::install_over_os(&state);
        let a = crate::clock::now_ns();
        let b = crate::clock::now_ns();
        assert!(b >= a, "decorated clock must stay monotonic");
        let mut parked = false;
        substrate::park_or(|| parked = true);
        assert!(!parked, "injector must intercept the park");
        drop(_g);
        let s = state.stats();
        assert_eq!(s.clock_reads, 2);
        assert_eq!(s.parks, 1);
        assert_eq!(
            (
                s.poll_stalls,
                s.wake_stalls,
                s.spurious_wakes,
                s.clock_jumps
            ),
            (0, 0, 0, 0),
            "quiet plan injects nothing"
        );
    }

    #[test]
    fn clock_jumps_accumulate_and_stay_monotonic() {
        let state = FaultState::new(
            FaultPlan::quiet(11).with_clock_jumps(1, 1_000_000), // every read
        );
        let _g = FaultInjector::install_over_os(&state);
        let mut last = 0u64;
        for _ in 0..8 {
            let t = crate::clock::now_ns();
            assert!(t >= last);
            last = t;
        }
        drop(_g);
        let s = state.stats();
        assert_eq!(s.clock_jumps, 8);
        // 8 jumps of 1ms each: the decorated clock ran at least 8ms
        // fast relative to a fresh OS reading started at the same
        // anchor.
        assert!(last >= crate::clock::os_now_ns().saturating_sub(1) + 7_000_000);
    }

    #[test]
    fn spurious_park_returns_immediately() {
        let state = FaultState::new(FaultPlan::quiet(5).with_spurious(1));
        let _g = FaultInjector::install_over_os(&state);
        let t0 = crate::clock::os_now_ns();
        for _ in 0..100 {
            substrate::park_or(|| unreachable!("injector intercepts parks"));
        }
        let dt = crate::clock::os_now_ns() - t0;
        drop(_g);
        assert_eq!(state.stats().spurious_wakes, 100);
        // 100 real bounded parks would take >= 100ms; spurious returns
        // are immediate.
        assert!(dt < 50_000_000, "parks were not spurious: {dt}ns");
    }

    #[test]
    fn planned_panic_fires_at_exact_index_and_is_catchable() {
        let state = FaultState::new(FaultPlan::quiet(1).with_panic_at(2));
        assert_eq!(state.on_critical_op(), 0);
        assert_eq!(state.on_critical_op(), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.on_critical_op();
        }));
        assert!(r.is_err(), "op index 2 must panic");
        assert_eq!(state.stats().panics, 1);
        // The counter advanced past the panicking op.
        assert_eq!(state.on_critical_op(), 3);
    }

    #[test]
    fn describe_is_stable() {
        let p = FaultPlan::stalls(42, 8, 500)
            .with_spurious(4)
            .with_clock_jumps(16, 2_000)
            .with_panic_at(10);
        assert_eq!(p.describe(), p.clone().describe());
        assert!(p.describe().contains("seed=42"));
        assert!(p.describe().contains("panic-ops=[10]"));
    }
}
