//! Shared cache-line arena.
//!
//! The paper's micro-benchmark critical sections "read-modify-write a
//! specific number of shared cache lines". The arena gives every
//! experiment the same substrate: an aligned array of 64-byte lines,
//! each holding an atomic counter, so RMW traffic produces genuine
//! coherence misses between the competing cores.

use std::sync::atomic::{AtomicU64, Ordering};

/// One 64-byte cache line holding a counter.
#[repr(align(64))]
pub struct CacheLine {
    value: AtomicU64,
    _pad: [u8; 56],
}

impl CacheLine {
    fn new() -> Self {
        CacheLine {
            value: AtomicU64::new(0),
            _pad: [0; 56],
        }
    }
}

impl Default for CacheLine {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed arena of shared cache lines.
pub struct CacheLineArena {
    lines: Box<[CacheLine]>,
}

impl CacheLineArena {
    /// Allocate `n` lines (all zero).
    pub fn new(n: usize) -> Self {
        CacheLineArena {
            lines: (0..n).map(|_| CacheLine::new()).collect(),
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when the arena has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Read-modify-write lines `[offset, offset+k)` (wrapping), the
    /// paper's critical-section body. Uses plain load+store pairs
    /// (not `fetch_add`) intentionally: the caller holds a lock, so a
    /// relaxed read-increment-write is exactly the "protected shared
    /// data" access pattern the paper exercises.
    #[inline]
    pub fn rmw(&self, offset: usize, k: usize) {
        let n = self.lines.len();
        debug_assert!(n > 0);
        for i in 0..k {
            let line = &self.lines[(offset + i) % n];
            let v = line.value.load(Ordering::Relaxed);
            line.value.store(v.wrapping_add(1), Ordering::Relaxed);
        }
    }

    /// Atomic variant for unprotected (lock-free) accesses in tests.
    pub fn rmw_atomic(&self, offset: usize, k: usize) {
        let n = self.lines.len();
        for i in 0..k {
            self.lines[(offset + i) % n]
                .value
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sum of all line counters (test/verification helper).
    pub fn total(&self) -> u64 {
        self.lines
            .iter()
            .map(|l| l.value.load(Ordering::Relaxed))
            .sum()
    }

    /// Value of one line.
    pub fn line(&self, i: usize) -> u64 {
        self.lines[i].value.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for l in self.lines.iter() {
            l.value.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_is_64_bytes() {
        assert_eq!(std::mem::size_of::<CacheLine>(), 64);
        assert_eq!(std::mem::align_of::<CacheLine>(), 64);
    }

    #[test]
    fn rmw_touches_k_lines() {
        let a = CacheLineArena::new(8);
        a.rmw(0, 4);
        assert_eq!(a.total(), 4);
        assert_eq!(a.line(0), 1);
        assert_eq!(a.line(3), 1);
        assert_eq!(a.line(4), 0);
    }

    #[test]
    fn rmw_wraps() {
        let a = CacheLineArena::new(4);
        a.rmw(2, 4);
        assert_eq!(a.total(), 4);
        assert_eq!(a.line(0), 1);
        assert_eq!(a.line(2), 1);
    }

    #[test]
    fn atomic_rmw_safe_without_lock() {
        let a = std::sync::Arc::new(CacheLineArena::new(2));
        let mut handles = vec![];
        for _ in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    a.rmw_atomic(0, 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.total(), 4 * 1000 * 2);
    }

    #[test]
    fn reset_zeroes() {
        let a = CacheLineArena::new(3);
        a.rmw(0, 3);
        a.reset();
        assert_eq!(a.total(), 0);
    }
}
