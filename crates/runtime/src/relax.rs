//! Bounded spin-then-yield waiting.
//!
//! Every busy-wait loop in the workspace (queue-lock hand-off spins,
//! flat-combining waits, standby polling) goes through [`Spin`]. On
//! machines with enough cores the waiter spins almost purely —
//! `SPIN_LIMIT` hints up front, then one `yield_now` every
//! `YIELD_CADENCE` polls, which costs ~nothing when the run queue is
//! empty but lets a preempted holder run when it is not — matching
//! the paper's spinning setup while staying livelock-free. On a
//! single-CPU machine (notably CI containers) every poll yields:
//! pure spinning there makes each lock hand-off cost a full scheduler
//! quantum.

use std::sync::OnceLock;

/// Pure `spin_loop` hints issued before the first yield on a
/// multi-core machine.
const SPIN_LIMIT: u32 = 128;

/// After the spin budget, yield on every this-many-th poll
/// (multi-core machines; single-CPU machines yield on every poll).
const YIELD_CADENCE: u32 = 64;

/// Whether every [`Spin::relax`] poll on this machine is a scheduler
/// yield (single-CPU hosts, notably CI containers). Wait-loop tuning
/// keys off this: when a poll already costs a yield, per-poll
/// bookkeeping like a clock read is noise, so amortizations that
/// trade *accuracy* for per-poll cycles (e.g. the coarse clock's
/// cached deadline checks) should collapse to their precise form.
pub fn yields_every_poll() -> bool {
    static SINGLE: OnceLock<bool> = OnceLock::new();
    *SINGLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() <= 1)
            .unwrap_or(true)
    })
}

fn single_cpu() -> bool {
    yields_every_poll()
}

/// Per-wait-site spin state. Create one per waiting episode; call
/// [`Spin::relax`] once per failed poll.
#[derive(Debug)]
pub struct Spin {
    spins: u32,
    /// Pure-spin budget: `SPIN_LIMIT`, or 0 on a single-CPU machine
    /// (resolved once at construction so `relax()` is plain
    /// compares + a hint on the hot path).
    limit: u32,
    /// Post-budget yield period: every `cadence`-th poll yields, the
    /// rest keep spinning. 1 on a single-CPU machine.
    cadence: u32,
}

impl Spin {
    /// Fresh waiter (starts in the pure-spin phase).
    #[inline]
    pub fn new() -> Self {
        if single_cpu() {
            Spin {
                spins: 0,
                limit: 0,
                cadence: 1,
            }
        } else {
            Spin {
                spins: 0,
                limit: SPIN_LIMIT,
                cadence: YIELD_CADENCE,
            }
        }
    }

    /// One unit of waiting: a `spin_loop` hint while in the spin
    /// phase, then mostly-spinning with a periodic scheduler yield
    /// (every poll on a single-CPU machine).
    ///
    /// Returns whether this poll yielded to the scheduler. A yield
    /// can cost a whole scheduling quantum, so time-aware wait loops
    /// should treat a `true` return as "an unknown amount of wall
    /// time just passed" — e.g. drop any cached clock reading
    /// ([`crate::clock::coarse_resync`]) before the next deadline
    /// check. Callers that don't track time can ignore the return.
    #[inline]
    pub fn relax(&mut self) -> bool {
        if crate::substrate::any_installed()
            && crate::substrate::with_current(|s| s.relax()).is_some()
        {
            // Simulated poll: virtual time advanced and the scheduler
            // may have run another virtual thread — report it like a
            // yield so deadline loops drop cached clock readings.
            return true;
        }
        self.spins += 1;
        if self.spins <= self.limit {
            std::hint::spin_loop();
            false
        } else if self.spins - self.limit >= self.cadence {
            self.spins = self.limit;
            std::thread::yield_now();
            true
        } else {
            std::hint::spin_loop();
            false
        }
    }

    /// Back to the pure-spin phase (e.g. after observing progress).
    #[inline]
    pub fn reset(&mut self) {
        self.spins = 0;
    }
}

impl Default for Spin {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relax_terminates_quickly() {
        let mut s = Spin::new();
        for _ in 0..10_000 {
            s.relax();
        }
        s.reset();
        assert_eq!(s.spins, 0);
    }

    #[test]
    fn waiting_makes_progress_when_oversubscribed() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        // More threads than any machine has cores: a ping-pong counter
        // only finishes promptly if relax() actually yields.
        let n = 4 * crate::affinity::online_cpus().max(1);
        let ctr = Arc::new(AtomicU64::new(0));
        let rounds = 200u64;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let ctr = ctr.clone();
                std::thread::spawn(move || {
                    for r in 0..rounds {
                        let target = r * n as u64 + i as u64;
                        let mut spin = Spin::new();
                        while ctr.load(Ordering::Acquire) != target {
                            spin.relax();
                        }
                        ctr.fetch_add(1, Ordering::Release);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ctr.load(Ordering::Relaxed), rounds * n as u64);
    }
}
