//! # asl-runtime — virtual asymmetric-multicore (AMP) substrate
//!
//! The LibASL paper (PPoPP 2022) evaluates on an Apple M1 with 4 "big"
//! and 4 "little" cores. This crate reproduces the *behavioural*
//! asymmetry of such a machine on ordinary symmetric hardware:
//!
//! * [`Topology`] describes a virtual AMP: a set of [`VirtualCore`](topology::VirtualCore)s,
//!   each either [`CoreKind::Big`] or [`CoreKind::Little`], and a
//!   `perf_ratio` — how many times slower a little core executes the
//!   same work.
//! * [`registry`] binds OS threads to virtual cores. Thread-locals make
//!   `is_big_core()` a few-nanosecond lookup, exactly like the paper's
//!   "get the core id and look up a pre-defined table".
//! * [`work`] executes *emulated work*: a calibrated spin loop whose
//!   iteration count is multiplied by `perf_ratio` when the calling
//!   thread is registered on a little core. Every critical- and
//!   non-critical-section body in the reproduction runs through it, so
//!   little cores really do spend `ratio×` longer holding locks.
//! * [`cacheline`] provides a shared, 64-byte-aligned arena so critical
//!   sections generate genuine cache-coherence traffic (the paper's
//!   "read-modify-write k shared cache lines").
//! * [`atomic_model`] models the asymmetric success rate of atomic
//!   operations (paper §2.2): a configurable penalty that the
//!   disadvantaged core class pays between failed lock attempts.
//! * [`affinity`] optionally pins threads to distinct physical CPUs for
//!   stable measurements (the paper pins threads too).
//! * [`exec`] is a minimal no-dependency async executor (multi-worker
//!   run queue, `block_on`, waker vtable) — the task substrate for
//!   connection-per-task serving workloads, where `asl-locks`' async
//!   mutexes park waiters as queued wakers instead of blocked threads.
//! * [`substrate`] is the pluggable execution backend behind every
//!   lock-visible platform interaction (clock reads, spin-loop
//!   relaxes, emulated work, park/unpark). The default is the OS —
//!   one relaxed atomic load of overhead on the hot paths; `asl-sim`
//!   installs a virtual-time backend to run the unmodified locks on a
//!   modeled machine, deterministically.
//! * [`fault`] decorates either substrate backend with seeded,
//!   replayable fault injection — lock-holder stalls at poll/park/wake
//!   boundaries, spurious park returns, coarse-clock jumps, planned
//!   critical-section panics — so the torture harness can drive the
//!   unmodified locks through their liveness obligations.
//!
//! Nothing in this crate depends on the lock algorithms; it is the
//! hardware stand-in every other crate builds on.

pub mod affinity;
pub mod atomic_model;
pub mod cacheline;
pub mod clock;
pub mod exec;
pub mod fault;
pub mod registry;
pub mod relax;
pub mod spawn;
pub mod stats;
pub mod substrate;
pub mod topology;
pub mod work;

pub use atomic_model::AtomicAffinity;
pub use cacheline::CacheLineArena;
pub use clock::{coarse_now_ns, now_ns};
pub use exec::{block_on, Executor, JoinHandle};
pub use fault::{FaultInjector, FaultPlan, FaultState, FaultStats};
pub use registry::{current_core, is_big_core, register_on_core, CoreAssignment};
pub use relax::Spin;
pub use spawn::{run_on_topology, ThreadCtx};
pub use substrate::Substrate;
pub use topology::{CoreId, CoreKind, Topology};
pub use work::{execute_raw_units, execute_units, units_per_us};
