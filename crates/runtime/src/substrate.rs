//! Pluggable execution substrate: OS threads by default, simulated
//! virtual time on demand.
//!
//! Every lock-visible platform interaction in this workspace —
//! reading the clock ([`crate::clock::now_ns`] /
//! [`crate::clock::coarse_now_ns`]), spin-yielding
//! ([`crate::relax::Spin`]), busy-waiting and sleeping, executing
//! emulated work ([`crate::work`]), and parking/waking blocked
//! threads — funnels through this module. Two backends implement it:
//!
//! * **OS threads** (the default): no substrate is installed and every
//!   hook falls through to the real implementation. The only cost on
//!   this path is a single relaxed load of a process-wide counter
//!   ([`any_installed`]), so the lock hot paths stay within their
//!   instrumentation-off overhead budget.
//! * **Simulation** (`asl-sim`): each worker OS thread installs a
//!   per-thread [`Substrate`] handle tying it to a cooperatively
//!   scheduled *virtual thread*. The engine steps exactly one virtual
//!   thread at a time in virtual time, so the unmodified lock
//!   implementations execute against a modeled machine with a seeded,
//!   deterministic schedule.
//!
//! # The virtual-time clock contract
//!
//! When a substrate is installed on the calling thread,
//! [`crate::clock::now_ns`] and [`crate::clock::coarse_now_ns`] both
//! return the substrate's notion of *virtual* nanoseconds. Virtual
//! time is per-thread monotonic, starts near zero, and advances only
//! when the thread is *charged* for an operation (a clock read, a
//! failed lock probe, emulated work, a park). The coarse clock's
//! staleness allowance collapses to zero: in virtual time there is no
//! cheaper clock to amortize, so both clocks agree exactly.
//!
//! # Example
//!
//! A minimal substrate that gives the current thread a fixed-rate
//! virtual clock:
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//! use asl_runtime::substrate::{self, Substrate};
//!
//! struct Fixed(AtomicU64);
//! impl Substrate for Fixed {
//!     fn now_ns(&self) -> u64 { self.0.fetch_add(10, Ordering::Relaxed) }
//!     fn relax(&self) { self.0.fetch_add(10, Ordering::Relaxed); }
//!     fn busy_wait_ns(&self, ns: u64) { self.0.fetch_add(ns, Ordering::Relaxed); }
//!     fn sleep_ns(&self, ns: u64) { self.0.fetch_add(ns, Ordering::Relaxed); }
//!     fn park(&self) { self.0.fetch_add(1_000, Ordering::Relaxed); }
//!     fn charge_work_units(&self, units: u64) { self.0.fetch_add(units, Ordering::Relaxed); }
//! }
//!
//! let guard = substrate::install(Arc::new(Fixed(AtomicU64::new(0))));
//! let a = asl_runtime::clock::now_ns();
//! let b = asl_runtime::clock::now_ns();
//! assert!(b > a && b - a <= 20, "virtual clock ticks 10 ns per read");
//! drop(guard); // back to the OS clock
//! ```

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One virtual thread's view of the execution substrate.
///
/// Methods are invoked by the runtime hooks on the thread the handle
/// was [`install`]ed on; each one *charges* the virtual thread for the
/// operation and may cooperatively switch to another virtual thread
/// before returning.
pub trait Substrate: Send + Sync {
    /// Current virtual time (ns). Charges one clock read.
    fn now_ns(&self) -> u64;

    /// One failed spin probe ([`crate::relax::Spin::relax`]); always a
    /// yield point.
    fn relax(&self);

    /// Spin for `ns` virtual nanoseconds while occupying the core.
    fn busy_wait_ns(&self, ns: u64);

    /// Sleep for `ns` virtual nanoseconds *off* the core (the core is
    /// free for co-scheduled virtual threads meanwhile).
    fn sleep_ns(&self, ns: u64);

    /// Block until a wakeup *may* have happened. Like
    /// [`std::thread::park`], spurious returns are allowed — every
    /// caller in the workspace re-checks its predicate in a loop — so
    /// a simulation may simply charge a bounded wait and return.
    fn park(&self);

    /// Execute `units` of pre-scaled emulated work
    /// ([`crate::work::execute_raw_units`]) in virtual time.
    fn charge_work_units(&self, units: u64);
}

/// Count of threads process-wide with an installed substrate. The
/// fast-path gate: zero means every hook is a single relaxed load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<Arc<dyn Substrate>>> = const { RefCell::new(None) };
}

/// True when *any* thread in the process has a substrate installed.
/// Cheap (one relaxed load); used to gate the thread-local lookup.
#[inline(always)]
pub fn any_installed() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// True when the *calling* thread has a substrate installed.
#[inline]
pub fn installed_here() -> bool {
    any_installed() && CURRENT.with(|c| c.borrow().is_some())
}

/// Run `f` against the calling thread's substrate, if one is
/// installed. Returns `None` (without calling `f`) on the OS path.
#[inline]
pub fn with_current<R>(f: impl FnOnce(&dyn Substrate) -> R) -> Option<R> {
    if !any_installed() {
        return None;
    }
    with_current_slow(f)
}

/// The thread-local lookup, kept out of line so the hot-path callers
/// (clock reads, spin relaxes, emulated work) only inline the relaxed
/// gate load and a branch — not the TLS access machinery.
#[cold]
#[inline(never)]
fn with_current_slow<R>(f: impl FnOnce(&dyn Substrate) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_deref().map(f))
}

/// Park the calling thread: through the substrate when one is
/// installed, otherwise via `os_park` (typically
/// [`std::thread::park`]). Spurious returns are allowed either way.
#[inline]
pub fn park_or(os_park: impl FnOnce()) {
    if with_current(|s| s.park()).is_none() {
        os_park();
    }
}

/// Uninstalls the thread's substrate on drop. Not `Send`: the
/// substrate binding is strictly per-thread.
pub struct SubstrateGuard {
    _not_send: PhantomData<*const ()>,
}

/// Install `handle` as the calling thread's substrate until the
/// returned guard is dropped.
///
/// # Panics
/// Panics if the thread already has a substrate installed.
pub fn install(handle: Arc<dyn Substrate>) -> SubstrateGuard {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        assert!(cur.is_none(), "substrate already installed on this thread");
        *cur = Some(handle);
    });
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    SubstrateGuard {
        _not_send: PhantomData,
    }
}

impl Drop for SubstrateGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Counting {
        t: AtomicU64,
        polls: AtomicU64,
    }

    impl Substrate for Counting {
        fn now_ns(&self) -> u64 {
            self.t.fetch_add(1, Ordering::Relaxed) + 1
        }
        fn relax(&self) {
            self.polls.fetch_add(1, Ordering::Relaxed);
        }
        fn busy_wait_ns(&self, ns: u64) {
            self.t.fetch_add(ns, Ordering::Relaxed);
        }
        fn sleep_ns(&self, ns: u64) {
            self.t.fetch_add(ns, Ordering::Relaxed);
        }
        fn park(&self) {
            self.polls.fetch_add(1, Ordering::Relaxed);
        }
        fn charge_work_units(&self, units: u64) {
            self.t.fetch_add(units, Ordering::Relaxed);
        }
    }

    #[test]
    fn os_path_has_no_substrate() {
        assert!(with_current(|_| ()).is_none());
        assert!(!installed_here());
        let mut parked_via_os = false;
        park_or(|| parked_via_os = true);
        assert!(parked_via_os);
    }

    #[test]
    fn install_routes_hooks_and_uninstalls_on_drop() {
        let sub = Arc::new(Counting {
            t: AtomicU64::new(0),
            polls: AtomicU64::new(0),
        });
        {
            let _g = install(sub.clone());
            assert!(installed_here());
            assert_eq!(with_current(|s| s.now_ns()), Some(1));
            park_or(|| panic!("must not OS-park with a substrate installed"));
            assert_eq!(sub.polls.load(Ordering::Relaxed), 1);
        }
        assert!(!installed_here());
    }

    #[test]
    fn virtual_clock_reaches_public_clock_api() {
        let sub = Arc::new(Counting {
            t: AtomicU64::new(41),
            polls: AtomicU64::new(0),
        });
        let _g = install(sub);
        assert_eq!(crate::clock::now_ns(), 42);
        // Coarse clock agrees exactly with the precise one in virtual
        // time (no staleness allowance).
        assert_eq!(crate::clock::coarse_now_ns(), 43);
    }
}
