//! Minimal multi-worker async executor (no dependencies, std only).
//!
//! The paper's serving workload (ROADMAP item 2) is
//! connection-per-task: 10⁵–10⁶ concurrent clients on a handful of
//! cores, where parking a *task* (a queued [`Waker`]) beats parking a
//! *thread* by three orders of magnitude in memory and context-switch
//! cost. This module is the substrate for that regime:
//!
//! * [`Executor::new(workers)`](Executor::new) starts a fixed pool of
//!   worker threads draining one shared injector run queue (a
//!   `Mutex<VecDeque>` + `Condvar` — contention on it is cold next to
//!   the lock handoffs under study).
//! * [`Executor::spawn`] boxes a future as a heap task and returns a
//!   [`JoinHandle`] that can be either `.await`ed from another task or
//!   synchronously [`JoinHandle::join`]ed from a plain thread.
//! * [`block_on`] drives any future to completion on the calling
//!   thread with a park/unpark waker — the bridge from synchronous
//!   `main`/tests into async code.
//!
//! Wakeups go through a per-task state machine (idle / scheduled /
//! running / notified) so a wake that races with a poll neither gets
//! lost nor double-enqueues the task — the standard executor
//! construction, kept deliberately small. There is no I/O reactor and
//! no timer wheel here: those live with the workloads that need them
//! (`asl-dbsim`'s open-loop pacer brings its own).
//!
//! ```
//! use asl_runtime::exec::{block_on, Executor};
//!
//! let exec = Executor::new(2);
//! let handle = exec.spawn(async { 6 * 7 });
//! assert_eq!(block_on(handle), 42);
//! ```

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// Task is not queued and not running; a wake must enqueue it.
const IDLE: u8 = 0;
/// Task sits in the run queue awaiting a worker.
const SCHEDULED: u8 = 1;
/// A worker is polling the task right now.
const RUNNING: u8 = 2;
/// A wake arrived mid-poll; the worker re-enqueues after polling.
const NOTIFIED: u8 = 3;
/// The future returned `Ready`; all further wakes are no-ops.
const COMPLETE: u8 = 4;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct Task {
    state: AtomicU8,
    /// The future, consumed (set to `None`) on completion. A `Mutex`
    /// rather than an `UnsafeCell`: the state machine already
    /// guarantees exclusive polling, but the lock makes that guarantee
    /// locally checkable and costs nothing off the hot paths measured
    /// here.
    future: Mutex<Option<BoxFuture>>,
    exec: Weak<Inner>,
}

impl Task {
    /// Transition for an incoming wake; enqueue when it wins.
    fn wake_task(self: &Arc<Self>) {
        loop {
            let cur = self.state.load(Ordering::Acquire);
            let next = match cur {
                IDLE => SCHEDULED,
                RUNNING => NOTIFIED,
                SCHEDULED | NOTIFIED | COMPLETE => return,
                _ => unreachable!("task state {cur}"),
            };
            if self
                .state
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if next == SCHEDULED {
                    if let Some(inner) = self.exec.upgrade() {
                        inner.enqueue(self.clone());
                    }
                }
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Waker vtable over Arc<Task>
// ---------------------------------------------------------------------------

fn task_raw_waker(task: Arc<Task>) -> RawWaker {
    RawWaker::new(Arc::into_raw(task) as *const (), &TASK_VTABLE)
}

static TASK_VTABLE: RawWakerVTable = RawWakerVTable::new(
    |ptr| {
        // SAFETY: `ptr` came from `Arc::into_raw` in `task_raw_waker`;
        // reconstruct without consuming to clone the refcount.
        let task = unsafe { Arc::from_raw(ptr as *const Task) };
        let cloned = task.clone();
        std::mem::forget(task);
        task_raw_waker(cloned)
    },
    |ptr| {
        // wake (consumes the reference).
        let task = unsafe { Arc::from_raw(ptr as *const Task) };
        task.wake_task();
    },
    |ptr| {
        // wake_by_ref.
        let task = unsafe { Arc::from_raw(ptr as *const Task) };
        task.wake_task();
        std::mem::forget(task);
    },
    |ptr| {
        // drop.
        drop(unsafe { Arc::from_raw(ptr as *const Task) });
    },
);

fn task_waker(task: Arc<Task>) -> Waker {
    // SAFETY: the vtable upholds the RawWaker contract over Arc<Task>
    // reference counts (clone bumps, wake/drop consume).
    unsafe { Waker::from_raw(task_raw_waker(task)) }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

struct Inner {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    /// Set (under the queue mutex, so the check-then-wait in
    /// `worker_loop` cannot miss it) when the executor drops.
    shutdown: std::sync::atomic::AtomicBool,
    /// Every spawned task, so shutdown can *cancel* (drop the future
    /// of) tasks that are parked on external primitives — e.g. an
    /// async-mutex wait queue — and would otherwise leak their wait
    /// slot or a granted lock. Pruned amortized-O(1) per spawn.
    tasks: Mutex<TaskRegistry>,
}

struct TaskRegistry {
    list: Vec<Weak<Task>>,
    prune_at: usize,
}

impl Inner {
    fn enqueue(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.available.notify_one();
    }
}

/// A fixed pool of worker threads draining a shared run queue.
///
/// Dropping the executor signals shutdown and joins the workers;
/// tasks still queued are dropped (their futures run destructors, so
/// cancel-safe primitives — e.g. `asl_locks`' async mutex wait nodes
/// — unlink themselves).
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Start `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            tasks: Mutex::new(TaskRegistry {
                list: Vec::new(),
                prune_at: 64,
            }),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("asl-exec-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { inner, workers }
    }

    /// Spawn a future onto the pool; the handle can be `.await`ed or
    /// synchronously [`JoinHandle::join`]ed.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let slot = Arc::new(JoinSlot {
            state: Mutex::new(JoinState {
                value: None,
                waker: None,
                done: false,
            }),
            ready: Condvar::new(),
        });
        let out = slot.clone();
        let task = Arc::new(Task {
            state: AtomicU8::new(SCHEDULED),
            future: Mutex::new(Some(Box::pin(async move {
                let value = future.await;
                let mut st = out.state.lock().unwrap();
                st.value = Some(value);
                st.done = true;
                if let Some(w) = st.waker.take() {
                    drop(st);
                    w.wake();
                } else {
                    out.ready.notify_all();
                }
            }))),
            exec: Arc::downgrade(&self.inner),
        });
        {
            let mut reg = self.inner.tasks.lock().unwrap();
            if reg.list.len() >= reg.prune_at {
                reg.list.retain(|w| {
                    w.upgrade()
                        .is_some_and(|t| t.state.load(Ordering::Acquire) != COMPLETE)
                });
                reg.prune_at = (reg.list.len() * 2).max(64);
            }
            reg.list.push(Arc::downgrade(&task));
        }
        self.inner.enqueue(task);
        JoinHandle { slot }
    }

    /// Number of tasks currently sitting in the run queue (racy
    /// diagnostic; excludes tasks being polled).
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let _q = self.inner.queue.lock().unwrap();
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Cancel every unfinished task: drop its future so cancel-safe
        // primitives (async-mutex wait nodes, held guards) unlink and
        // release. Futures are dropped outside the task's own lock; a
        // destructor that cascades (guard drop → handoff → wake) only
        // touches other tasks' state and the run queue, never this
        // future slot.
        let list = std::mem::take(&mut self.inner.tasks.lock().unwrap().list);
        for weak in list {
            let Some(task) = weak.upgrade() else { continue };
            let fut = task.future.lock().unwrap().take();
            drop(fut);
            task.state.store(COMPLETE, Ordering::Release);
        }
        // Drain the run queue (cancelled shells plus anything wakes
        // re-enqueued during cancellation); swap out under the lock so
        // no destructor runs while it is held.
        let drained = std::mem::take(&mut *self.inner.queue.lock().unwrap());
        drop(drained);
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let task = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = inner.available.wait(q).unwrap();
            }
        };
        poll_task(&task);
    }
}

fn poll_task(task: &Arc<Task>) {
    task.state.store(RUNNING, Ordering::Release);
    let waker = task_waker(task.clone());
    let mut cx = Context::from_waker(&waker);
    let mut slot = task.future.lock().unwrap();
    let Some(fut) = slot.as_mut() else {
        task.state.store(COMPLETE, Ordering::Release);
        return;
    };
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(()) => {
            *slot = None;
            task.state.store(COMPLETE, Ordering::Release);
        }
        Poll::Pending => {
            drop(slot);
            // RUNNING -> IDLE; if a wake slipped in (NOTIFIED),
            // re-enqueue so it is not lost.
            if task
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                task.state.store(SCHEDULED, Ordering::Release);
                if let Some(inner) = task.exec.upgrade() {
                    inner.enqueue(task.clone());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// JoinHandle
// ---------------------------------------------------------------------------

struct JoinState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    done: bool,
}

struct JoinSlot<T> {
    state: Mutex<JoinState<T>>,
    ready: Condvar,
}

/// Completion handle for a spawned task: a [`Future`] yielding the
/// task's output, or a blocking [`JoinHandle::join`] from sync code.
pub struct JoinHandle<T> {
    slot: Arc<JoinSlot<T>>,
}

impl<T> JoinHandle<T> {
    /// Block the calling thread until the task completes.
    ///
    /// # Panics
    /// Panics if the output was already taken by an earlier poll.
    pub fn join(self) -> T {
        let mut st = self.slot.state.lock().unwrap();
        while !st.done {
            st = self.slot.ready.wait(st).unwrap();
        }
        st.value.take().expect("join output already taken")
    }

    /// Whether the task has completed (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.slot.state.lock().unwrap().done
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.slot.state.lock().unwrap();
        if st.done {
            Poll::Ready(st.value.take().expect("JoinHandle polled after Ready"))
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// block_on
// ---------------------------------------------------------------------------

struct ThreadUnparker {
    thread: std::thread::Thread,
}

fn unparker_raw_waker(u: Arc<ThreadUnparker>) -> RawWaker {
    RawWaker::new(Arc::into_raw(u) as *const (), &UNPARK_VTABLE)
}

static UNPARK_VTABLE: RawWakerVTable = RawWakerVTable::new(
    |ptr| {
        let u = unsafe { Arc::from_raw(ptr as *const ThreadUnparker) };
        let cloned = u.clone();
        std::mem::forget(u);
        unparker_raw_waker(cloned)
    },
    |ptr| {
        let u = unsafe { Arc::from_raw(ptr as *const ThreadUnparker) };
        u.thread.unpark();
    },
    |ptr| {
        let u = unsafe { Arc::from_raw(ptr as *const ThreadUnparker) };
        u.thread.unpark();
        std::mem::forget(u);
    },
    |ptr| {
        drop(unsafe { Arc::from_raw(ptr as *const ThreadUnparker) });
    },
);

/// Drive `future` to completion on the calling thread.
///
/// Uses `thread::park` between polls; `park` may also return
/// spuriously, which just costs one extra poll. Re-entrant use (a
/// `block_on` inside a future already being `block_on`-driven on the
/// same thread) is fine: each call has its own waker.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let unparker = Arc::new(ThreadUnparker {
        thread: std::thread::current(),
    });
    // SAFETY: the vtable upholds the RawWaker contract over
    // Arc<ThreadUnparker> reference counts.
    let waker = unsafe { Waker::from_raw(unparker_raw_waker(unparker)) };
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// A future that yields to the run queue once, then completes — the
/// async analogue of `thread::yield_now`, used by fairness tests and
/// cooperative long-running tasks.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_ready() {
        assert_eq!(block_on(async { 7 }), 7);
    }

    #[test]
    fn spawn_and_join() {
        let exec = Executor::new(2);
        let h = exec.spawn(async { 1 + 1 });
        assert_eq!(h.join(), 2);
    }

    #[test]
    fn join_handle_awaitable() {
        let exec = Executor::new(2);
        let a = exec.spawn(async { 20 });
        let b = exec.spawn(async move { a.await + 22 });
        assert_eq!(block_on(b), 42);
    }

    #[test]
    fn many_tasks_complete() {
        let exec = Executor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..1_000)
            .map(|_| {
                let c = counter.clone();
                exec.spawn(async move {
                    yield_now().await;
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1_000);
    }

    #[test]
    fn cross_thread_wake() {
        // A future parked on a channel-like cell, woken from a plain
        // thread: the executor must deliver the wake and finish.
        struct Cell {
            state: Mutex<(Option<u64>, Option<Waker>)>,
        }
        struct Recv(Arc<Cell>);
        impl Future for Recv {
            type Output = u64;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u64> {
                let mut st = self.0.state.lock().unwrap();
                if let Some(v) = st.0.take() {
                    Poll::Ready(v)
                } else {
                    st.1 = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
        let cell = Arc::new(Cell {
            state: Mutex::new((None, None)),
        });
        let exec = Executor::new(1);
        let h = exec.spawn(Recv(cell.clone()));
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            let mut st = cell.state.lock().unwrap();
            st.0 = Some(99);
            if let Some(w) = st.1.take() {
                drop(st);
                w.wake();
            }
        });
        assert_eq!(h.join(), 99);
        sender.join().unwrap();
    }

    #[test]
    fn wake_during_poll_not_lost() {
        // A future that wakes itself N times before completing: every
        // self-wake lands while the task is RUNNING, exercising the
        // NOTIFIED re-enqueue path.
        struct SelfWake {
            remaining: usize,
        }
        impl Future for SelfWake {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.remaining == 0 {
                    Poll::Ready(())
                } else {
                    self.remaining -= 1;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        let exec = Executor::new(1);
        exec.spawn(SelfWake { remaining: 100 }).join();
    }

    #[test]
    fn drop_cancels_queued_tasks() {
        // Tasks still queued at drop never run, but their futures are
        // dropped (destructors observe cancellation).
        struct NoteDrop(Arc<AtomicUsize>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let dropped = Arc::new(AtomicUsize::new(0));
        {
            let exec = Executor::new(1);
            // Park the single worker on a never-ready future...
            struct Never;
            impl Future for Never {
                type Output = ();
                fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<()> {
                    Poll::Pending
                }
            }
            let _h = exec.spawn(Never);
            // ...then pile tasks behind it and drop the executor. Some
            // may run (worker timing), but every unrun future must be
            // dropped.
            for _ in 0..16 {
                let d = NoteDrop(dropped.clone());
                drop(exec.spawn(async move {
                    let _keep = d;
                }));
            }
        }
        assert_eq!(dropped.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let exec = Executor::new(0);
        assert_eq!(exec.spawn(async { 5 }).join(), 5);
    }
}
