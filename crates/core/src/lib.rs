//! # asl-core — LibASL: asymmetry-aware scalable locking
//!
//! The paper's contribution (PPoPP 2022), faithfully reproduced:
//!
//! * [`ReorderableLock`] (paper Algorithm 1) — exposes *bounded
//!   reordering* atop any underlying lock: `lock_immediately` enqueues
//!   now; `lock_reorder(window)` first stands by, polling the lock
//!   with binary exponential back-off, and only enqueues when the lock
//!   looks free or the window expires.
//! * [`epoch`] (Algorithm 2) — per-thread epoch metadata and the
//!   SLO feedback loop: on violation the reorder window halves and the
//!   growth unit becomes `(100-PCT)%` of it; on success the window
//!   grows by one unit (TCP-congestion style).
//! * [`AslLock`] / [`AslMutex`] (Algorithm 3) — the dispatch layer:
//!   big cores lock immediately, little cores stand by for the current
//!   epoch's window (or the default max window outside epochs).
//!   Generic over its FIFO substrate (`AslLock<L: RawLock + FifoLock>`
//!   with MCS as the default; [`AslClhLock`], [`AslTicketLock`] and
//!   [`AslShflLock`] pick the alternatives), and itself a
//!   `RawLock`, so the RAII guard API of `asl_locks::api` applies.
//!   Acquisitions are held as guards and released on drop — the
//!   manual `acquire`/`release` pairing of earlier revisions survives
//!   only as the documented low-level escape hatch.
//! * [`AslRwLock`] — reader-writer locking with LibASL ordering:
//!   reacquisition-based reader batching over an [`AslLock`] writer
//!   substrate, so SLO-aware reordering composes with shared access
//!   (read-mostly workloads like YCSB-B/C).
//! * [`wait`] — standby waiting policies: spinning (default) and
//!   `nanosleep`-based back-off for over-subscribed systems (Bench-6),
//!   plus a fixed-interval policy used by the ablation benches.
//! * [`profile`] — the paper's profiling tool: sweep an SLO range and
//!   emit the latency-throughput curve for applications without a
//!   predefined SLO. Profile points carry the lock-agnostic
//!   `asl_locks::telemetry::TelemetrySnapshot`, the same shared
//!   format [`LockStats`] embeds — ASL path counters are a thin layer
//!   over the zoo-wide telemetry subsystem, not a private scheme.
//!
//! ## Quick start
//!
//! ```
//! use asl_core::{epoch, AslMutex};
//! use asl_runtime::{register_on_core, Topology};
//! use asl_runtime::topology::CoreId;
//!
//! // Describe the AMP and register this thread on a little core.
//! let topo = Topology::apple_m1();
//! register_on_core(&topo, CoreId(5));
//!
//! let counter = AslMutex::new(0u64);
//! // A latency-critical request handler: epoch 0 with a 1 ms SLO.
//! epoch::with_epoch(0, 1_000_000, || {
//!     *counter.lock() += 1;
//! });
//! assert_eq!(*counter.lock(), 1);
//! ```

pub mod condvar;
pub mod config;
pub mod epoch;
pub mod mutex;
pub mod profile;
pub mod reorderable;
pub mod rwlock;
pub mod stats;
pub mod wait;

pub use condvar::AslCondvar;
pub use config::AslConfig;
pub use mutex::{
    AslBlockingLock, AslClhLock, AslLock, AslMutex, AslMutexGuard, AslShflLock, AslSpinLock,
    AslTicketLock,
};
pub use reorderable::ReorderableLock;
pub use rwlock::AslRwLock;
pub use stats::{LockStats, LockStatsSnapshot};
pub use wait::{FixedCheckWait, SleepWait, SpinWait, WaitPolicy};
