//! Epoch annotation and the SLO feedback loop (paper Algorithm 2).
//!
//! An *epoch* is an application-designated latency-critical span —
//! typically one request-handling procedure — identified by a small
//! static id. Each thread keeps, per epoch id, a reorder window, the
//! epoch's start timestamp, and a growth unit. [`epoch_end`] compares
//! the measured epoch latency against the caller-supplied SLO and
//! adjusts the window the way TCP congestion control adjusts its
//! window:
//!
//! * **violation** (`latency > SLO`): `window >>= 1` and
//!   `unit = window * (100 - PCT) / 100`;
//! * **success**: `window += unit` (clamped to the configured max).
//!
//! With PCT = 99 the growth unit is 1% of the last reduced window, so
//! after a violation it takes ~100 successful epochs to climb back —
//! which is exactly what bounds the violation probability near
//! `1 - PCT/100` (paper footnote 4).
//!
//! Nesting is supported with a per-thread stack; `epoch_end` of an
//! inner epoch restores the outer epoch as current (the paper's
//! "LibASL always prioritizes the inner epoch").
//!
//! Everything here is thread-local: no synchronization on the epoch
//! path. The paper measures ~93 cycles for the pair of epoch calls;
//! ours is two `clock_gettime`-class reads plus arithmetic.

use std::cell::RefCell;

use asl_runtime::clock::now_ns;
use asl_runtime::registry::is_big_core;

use crate::config;

/// Number of distinct epoch ids usable per thread.
pub const MAX_EPOCHS: usize = 128;

/// Per-epoch, per-thread metadata (paper's `epoch_t`: 24 bytes).
#[derive(Debug, Clone, Copy)]
pub struct EpochMeta {
    /// Current reorder window (ns).
    pub window: u64,
    /// Timestamp of the last `epoch_start` (ns).
    pub start: u64,
    /// Linear growth unit (ns).
    pub unit: u64,
    /// Whether this id has been used on this thread yet.
    pub used: bool,
}

impl EpochMeta {
    fn fresh() -> Self {
        let cfg = config::current();
        EpochMeta {
            window: cfg.default_window_ns,
            start: 0,
            unit: config::unit_for_window(cfg.default_window_ns, cfg.pct),
            used: false,
        }
    }
}

struct EpochTls {
    epochs: Box<[EpochMeta; MAX_EPOCHS]>,
    /// Currently open epoch id, or -1 (paper's `cur_epoch_id`).
    cur: i32,
    /// Stack of outer epochs (paper's `epoch_stack`).
    stack: Vec<i32>,
}

impl EpochTls {
    fn new() -> Self {
        EpochTls {
            epochs: Box::new([EpochMeta::fresh(); MAX_EPOCHS]),
            cur: -1,
            stack: Vec::with_capacity(8),
        }
    }
}

thread_local! {
    static TLS: RefCell<EpochTls> = RefCell::new(EpochTls::new());
}

/// Begin epoch `id` on this thread (paper `epoch_start`).
///
/// Pushes any currently open epoch onto the nesting stack.
///
/// # Panics
/// Panics if `id >= MAX_EPOCHS`.
pub fn epoch_start(id: usize) {
    assert!(id < MAX_EPOCHS, "epoch id {id} out of range");
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.cur >= 0 {
            let cur = t.cur;
            t.stack.push(cur);
        }
        t.cur = id as i32;
        t.epochs[id].start = now_ns();
        t.epochs[id].used = true;
    });
}

/// End epoch `id` with the given latency SLO in nanoseconds (paper
/// `epoch_end`). Returns the measured epoch latency (ns).
///
/// On big cores the window is left untouched (big cores never stand
/// by), but nesting state is still maintained.
///
/// # Panics
/// Panics if `id >= MAX_EPOCHS`.
pub fn epoch_end(id: usize, slo_ns: u64) -> u64 {
    assert!(id < MAX_EPOCHS, "epoch id {id} out of range");
    let end = now_ns();
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let latency = end.saturating_sub(t.epochs[id].start);
        if !is_big_core() {
            let cfg = config::current();
            let e = &mut t.epochs[id];
            if latency > slo_ns {
                e.window >>= 1;
                e.unit = config::unit_for_window(e.window, cfg.pct);
            } else {
                e.window = (e.window + e.unit).min(cfg.max_window_ns);
            }
        }
        t.cur = t.stack.pop().unwrap_or(-1);
        latency
    })
}

/// Reorder window of the currently open epoch, if any (used by the
/// dispatch layer, paper Algorithm 3 lines 4–8).
#[inline]
pub fn current_window() -> Option<u64> {
    TLS.with(|t| {
        let t = t.borrow();
        if t.cur < 0 {
            None
        } else {
            Some(t.epochs[t.cur as usize].window)
        }
    })
}

/// Id of the currently open epoch, if any.
pub fn current_epoch_id() -> Option<usize> {
    TLS.with(|t| {
        let c = t.borrow().cur;
        (c >= 0).then_some(c as usize)
    })
}

/// Current metadata for epoch `id` on this thread.
pub fn epoch_meta(id: usize) -> EpochMeta {
    assert!(id < MAX_EPOCHS);
    TLS.with(|t| t.borrow().epochs[id])
}

/// Overwrite the reorder window of epoch `id` (used by LibASL-OPT
/// experiments that pin a static window, and by tests).
pub fn set_epoch_window(id: usize, window_ns: u64) {
    assert!(id < MAX_EPOCHS);
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.epochs[id].window = window_ns;
        t.epochs[id].used = true;
    });
}

/// Reset all of this thread's epoch state to defaults (tests and
/// between-experiment hygiene).
pub fn reset_thread_epochs() {
    TLS.with(|t| *t.borrow_mut() = EpochTls::new());
}

/// Scoped helper: run `f` inside epoch `id` with the given SLO.
/// Returns `f`'s result and the measured latency (ns).
pub fn with_epoch_timed<R>(id: usize, slo_ns: u64, f: impl FnOnce() -> R) -> (R, u64) {
    epoch_start(id);
    let r = f();
    let lat = epoch_end(id, slo_ns);
    (r, lat)
}

/// Scoped helper: run `f` inside epoch `id` with the given SLO.
pub fn with_epoch<R>(id: usize, slo_ns: u64, f: impl FnOnce() -> R) -> R {
    with_epoch_timed(id, slo_ns, f).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::registry::{register_on_core, unregister};
    use asl_runtime::topology::{CoreId, Topology};

    fn on_little<R>(f: impl FnOnce() -> R) -> R {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(5));
        let r = f();
        unregister();
        r
    }

    #[test]
    fn window_shrinks_on_violation() {
        on_little(|| {
            reset_thread_epochs();
            set_epoch_window(1, 8_000);
            epoch_start(1);
            // SLO of 0 ns: guaranteed violation.
            epoch_end(1, 0);
            let m = epoch_meta(1);
            assert_eq!(m.window, 4_000);
            // unit = window * (100-99)/100 = 40ns, above the floor? floor=100
            assert_eq!(m.unit, config::unit_for_window(4_000, 99));
        });
    }

    #[test]
    fn window_grows_on_success() {
        on_little(|| {
            reset_thread_epochs();
            set_epoch_window(2, 10_000);
            let before = epoch_meta(2);
            epoch_start(2);
            // Huge SLO: success.
            epoch_end(2, u64::MAX);
            let after = epoch_meta(2);
            assert_eq!(after.window, before.window + before.unit);
        });
    }

    #[test]
    fn window_clamped_to_max() {
        on_little(|| {
            reset_thread_epochs();
            let max = config::max_window_ns();
            set_epoch_window(3, max);
            epoch_start(3);
            epoch_end(3, u64::MAX);
            assert_eq!(epoch_meta(3).window, max);
        });
    }

    #[test]
    fn repeated_violations_collapse_to_fifo() {
        on_little(|| {
            reset_thread_epochs();
            set_epoch_window(4, 1 << 20);
            for _ in 0..40 {
                epoch_start(4);
                epoch_end(4, 0);
            }
            // Fallback-to-FIFO regime: window hits zero.
            assert_eq!(epoch_meta(4).window, 0);
            // And can recover thanks to the unit floor.
            epoch_start(4);
            epoch_end(4, u64::MAX);
            assert!(epoch_meta(4).window > 0);
        });
    }

    #[test]
    fn big_core_does_not_adjust() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(0)); // big
        reset_thread_epochs();
        set_epoch_window(5, 4_096);
        epoch_start(5);
        epoch_end(5, 0); // would violate on a little core
        assert_eq!(epoch_meta(5).window, 4_096);
        unregister();
    }

    #[test]
    fn nesting_restores_outer() {
        on_little(|| {
            reset_thread_epochs();
            assert_eq!(current_epoch_id(), None);
            epoch_start(7);
            assert_eq!(current_epoch_id(), Some(7));
            epoch_start(8);
            assert_eq!(current_epoch_id(), Some(8));
            epoch_end(8, u64::MAX);
            assert_eq!(current_epoch_id(), Some(7));
            epoch_end(7, u64::MAX);
            assert_eq!(current_epoch_id(), None);
        });
    }

    #[test]
    fn current_window_reflects_open_epoch() {
        on_little(|| {
            reset_thread_epochs();
            assert_eq!(current_window(), None);
            set_epoch_window(9, 12_345);
            epoch_start(9);
            assert_eq!(current_window(), Some(12_345));
            epoch_end(9, u64::MAX);
            assert_eq!(current_window(), None);
        });
    }

    #[test]
    fn latency_measured_sanely() {
        on_little(|| {
            reset_thread_epochs();
            let (_, lat) = with_epoch_timed(10, u64::MAX, || {
                asl_runtime::clock::busy_wait_ns(300_000);
            });
            assert!(lat >= 300_000, "latency {lat} < busy-wait time");
        });
    }

    #[test]
    fn growth_unit_follows_pct() {
        on_little(|| {
            config::set_pct(90);
            reset_thread_epochs();
            set_epoch_window(11, 100_000);
            epoch_start(11);
            epoch_end(11, 0); // violate: window -> 50_000, unit -> 10% = 5_000
            let m = epoch_meta(11);
            assert_eq!(m.window, 50_000);
            assert_eq!(m.unit, 5_000);
            config::set_pct(99);
        });
    }

    #[test]
    #[should_panic]
    fn epoch_id_out_of_range() {
        epoch_start(MAX_EPOCHS);
    }

    #[test]
    fn epoch_state_is_per_thread() {
        on_little(|| {
            reset_thread_epochs();
            set_epoch_window(12, 77);
        });
        std::thread::spawn(|| {
            assert_ne!(epoch_meta(12).window, 77, "TLS leaked across threads");
        })
        .join()
        .unwrap();
    }
}
