//! The asymmetry-aware dispatch layer (paper Algorithm 3) and the
//! user-facing mutex.
//!
//! [`AslLock`] is the raw lock the paper's `asl_mutex_lock` implements:
//!
//! * big core → `lock_immediately`;
//! * little core inside an epoch → `lock_reorder(current window)`;
//! * little core outside any epoch → `lock_reorder(MAX_WINDOW)` so the
//!   thread still eventually locks ("the default maximum window is
//!   used to ensure that the thread will eventually lock").
//!
//! [`AslMutex`] wraps it in the idiomatic Rust shape — data owned by
//! the mutex, RAII guard — which plays the role of the paper's
//! transparent `pthread_mutex_lock` redirection: application code
//! locks exactly as it would any mutex and gets LibASL behaviour.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use asl_locks::plain::{PlainLock, PlainToken};
use asl_locks::{McsLock, PthreadMutex, RawLock};
use asl_runtime::registry::is_big_core;

use crate::epoch;
use crate::reorderable::ReorderableLock;
use crate::stats::LockStats;
use crate::wait::{SleepWait, SpinWait, WaitPolicy};

/// Raw LibASL lock: epoch-aware dispatch over a reorderable lock.
pub struct AslLock<L: RawLock = McsLock, W: WaitPolicy = SpinWait> {
    reorderable: ReorderableLock<L, W>,
}

/// The default (non-blocking) LibASL lock: reorderable MCS with
/// spinning standby — the configuration used in most of the paper's
/// evaluation.
pub type AslSpinLock = AslLock<McsLock, SpinWait>;

/// The blocking LibASL lock for over-subscribed systems (Bench-6):
/// a futex-based mutex underneath, `nanosleep` back-off standby.
pub type AslBlockingLock = AslLock<PthreadMutex, SleepWait>;

impl Default for AslSpinLock {
    fn default() -> Self {
        AslLock::new(McsLock::new())
    }
}

impl AslBlockingLock {
    /// Blocking LibASL lock with default sleep back-off.
    pub fn new_blocking() -> Self {
        AslLock::with_waiter(PthreadMutex::new(), SleepWait::new())
    }
}

impl<L: RawLock> AslLock<L, SpinWait> {
    /// Build over `inner` with the default spinning standby policy.
    pub fn new(inner: L) -> Self {
        AslLock { reorderable: ReorderableLock::new(inner) }
    }
}

impl<L: RawLock, W: WaitPolicy> AslLock<L, W> {
    /// Build over `inner` with an explicit standby policy.
    pub fn with_waiter(inner: L, waiter: W) -> Self {
        AslLock { reorderable: ReorderableLock::with_waiter(inner, waiter) }
    }

    /// Acquire with SLO-guided ordering (paper `asl_mutex_lock`).
    #[inline]
    pub fn lock(&self) -> L::Token {
        if is_big_core() {
            self.reorderable.lock_immediately()
        } else {
            match epoch::current_window() {
                Some(w) => self.reorderable.lock_reorder(w),
                None => self.reorderable.lock_reorder(self.reorderable.max_window_ns()),
            }
        }
    }

    /// Release.
    #[inline]
    pub fn unlock(&self, token: L::Token) {
        self.reorderable.unlock(token)
    }

    /// Try-lock (supported because the underlying lock is unmodified).
    #[inline]
    pub fn try_lock(&self) -> Option<L::Token> {
        self.reorderable.try_lock()
    }

    /// Whether the lock is currently held or queued.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.reorderable.is_locked()
    }

    /// Acquisition-path statistics.
    pub fn stats(&self) -> &LockStats {
        self.reorderable.stats()
    }

    /// The inner reorderable lock (for advanced configuration).
    pub fn reorderable_mut(&mut self) -> &mut ReorderableLock<L, W> {
        &mut self.reorderable
    }
}

// Object-safe facades for the two dynamically selected configurations.
impl PlainLock for AslSpinLock {
    #[inline]
    fn acquire(&self) -> PlainToken {
        PlainToken(self.lock().into_raw(), 0)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        self.try_lock().map(|t| PlainToken(t.into_raw(), 0))
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        // SAFETY: token produced by acquire/try_acquire on this lock.
        self.unlock(unsafe { asl_locks::mcs::McsToken::from_raw(token.0) });
    }
    #[inline]
    fn held(&self) -> bool {
        self.is_locked()
    }
    fn lock_name(&self) -> &'static str {
        "libasl"
    }
}

impl PlainLock for AslBlockingLock {
    #[inline]
    fn acquire(&self) -> PlainToken {
        self.lock();
        PlainToken::UNIT
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        self.try_lock().map(|_| PlainToken::UNIT)
    }
    #[inline]
    fn release(&self, _token: PlainToken) {
        self.unlock(());
    }
    #[inline]
    fn held(&self) -> bool {
        self.is_locked()
    }
    fn lock_name(&self) -> &'static str {
        "libasl-blocking"
    }
}

/// A mutual-exclusion container with LibASL ordering.
///
/// Drop-in replacement shape for `std::sync::Mutex` (no poisoning —
/// lock protocols here are panic-agnostic like `parking_lot`).
pub struct AslMutex<T, L: RawLock = McsLock, W: WaitPolicy = SpinWait> {
    lock: AslLock<L, W>,
    data: UnsafeCell<T>,
}

// SAFETY: standard mutex reasoning — the lock serializes access.
unsafe impl<T: Send, L: RawLock, W: WaitPolicy> Send for AslMutex<T, L, W> {}
unsafe impl<T: Send, L: RawLock, W: WaitPolicy> Sync for AslMutex<T, L, W> {}

impl<T> AslMutex<T> {
    /// New mutex over the default reorderable-MCS LibASL lock.
    pub fn new(value: T) -> Self {
        AslMutex { lock: AslSpinLock::default(), data: UnsafeCell::new(value) }
    }
}

impl<T, L: RawLock, W: WaitPolicy> AslMutex<T, L, W> {
    /// New mutex over a caller-supplied LibASL lock.
    pub fn with_lock(value: T, lock: AslLock<L, W>) -> Self {
        AslMutex { lock, data: UnsafeCell::new(value) }
    }

    /// Acquire, returning an RAII guard.
    pub fn lock(&self) -> AslMutexGuard<'_, T, L, W> {
        let token = self.lock.lock();
        AslMutexGuard { mutex: self, token: Some(token) }
    }

    /// Try to acquire without waiting.
    pub fn try_lock(&self) -> Option<AslMutexGuard<'_, T, L, W>> {
        self.lock.try_lock().map(|token| AslMutexGuard { mutex: self, token: Some(token) })
    }

    /// Whether the lock is currently held or queued.
    pub fn is_locked(&self) -> bool {
        self.lock.is_locked()
    }

    /// Acquisition statistics of the underlying LibASL lock.
    pub fn stats(&self) -> &LockStats {
        self.lock.stats()
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for AslMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`AslMutex`].
pub struct AslMutexGuard<'a, T, L: RawLock, W: WaitPolicy> {
    mutex: &'a AslMutex<T, L, W>,
    token: Option<L::Token>,
}

impl<'a, T, L: RawLock, W: WaitPolicy> AslMutexGuard<'a, T, L, W> {
    /// The mutex this guard locks (used by [`crate::AslCondvar`] to
    /// re-acquire after waiting).
    pub fn mutex(&self) -> &'a AslMutex<T, L, W> {
        self.mutex
    }
}

impl<T, L: RawLock, W: WaitPolicy> Deref for AslMutexGuard<'_, T, L, W> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T, L: RawLock, W: WaitPolicy> DerefMut for AslMutexGuard<'_, T, L, W> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence proves exclusive acquisition.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T, L: RawLock, W: WaitPolicy> Drop for AslMutexGuard<'_, T, L, W> {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            self.mutex.lock.unlock(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::registry::{register_on_core, unregister};
    use asl_runtime::topology::{CoreId, Topology};
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = AslMutex::new(5u64);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_guard() {
        let m = AslMutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut m = AslMutex::new(1);
        *m.get_mut() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn concurrent_counter() {
        let m = Arc::new(AslMutex::new(0u64));
        let mut handles = vec![];
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 80_000);
    }

    #[test]
    fn big_core_takes_immediate_path() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(0));
        let m = AslMutex::new(());
        drop(m.lock());
        let s = m.stats().snapshot();
        assert_eq!(s.immediate, 1);
        assert_eq!(s.standby_total(), 0);
        unregister();
    }

    #[test]
    fn little_core_takes_standby_path() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(5));
        crate::epoch::reset_thread_epochs();
        let m = AslMutex::new(());
        drop(m.lock()); // outside any epoch: max-window standby, free entry
        let s = m.stats().snapshot();
        assert_eq!(s.immediate, 0);
        assert_eq!(s.standby_free_entry, 1);
        unregister();
    }

    #[test]
    fn little_core_in_epoch_uses_epoch_window() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(4));
        crate::epoch::reset_thread_epochs();
        crate::epoch::set_epoch_window(3, 0); // zero window: immediate FIFO entry
        let m = AslMutex::new(());
        crate::epoch::with_epoch(3, u64::MAX, || {
            drop(m.lock());
        });
        let s = m.stats().snapshot();
        // Lock was free, so it entered via the free-entry fast path.
        assert_eq!(s.standby_total(), 1);
        unregister();
    }

    #[test]
    fn blocking_variant_works() {
        let lock = AslBlockingLock::new_blocking();
        lock.lock();
        assert!(lock.is_locked());
        lock.unlock(());
        assert!(!lock.is_locked());
    }

    #[test]
    fn plain_lock_facades() {
        let spin: Arc<dyn PlainLock> = Arc::new(AslSpinLock::default());
        let t = spin.acquire();
        assert!(spin.held());
        spin.release(t);
        assert_eq!(spin.lock_name(), "libasl");

        let blocking: Arc<dyn PlainLock> = Arc::new(AslBlockingLock::new_blocking());
        let t = blocking.acquire();
        blocking.release(t);
        assert_eq!(blocking.lock_name(), "libasl-blocking");
    }
}
