//! The asymmetry-aware dispatch layer (paper Algorithm 3) and the
//! user-facing mutex.
//!
//! [`AslLock`] is the raw lock the paper's `asl_mutex_lock` implements:
//!
//! * big core → `lock_immediately`;
//! * little core inside an epoch → `lock_reorder(current window)`;
//! * little core outside any epoch → `lock_reorder(MAX_WINDOW)` so the
//!   thread still eventually locks ("the default maximum window is
//!   used to ensure that the thread will eventually lock").
//!
//! The dispatch layer is generic over its FIFO substrate: any
//! [`FifoLock`] can sit under the reorderable layer ([`McsLock`] by
//! default — see [`AslClhLock`], [`AslTicketLock`], [`AslShflLock`]
//! for the alternatives used in the ablations). [`AslLock`] itself
//! implements [`RawLock`], so the whole guard API of
//! [`asl_locks::api`] applies to it.
//!
//! [`AslMutex`] wraps it in the idiomatic Rust shape — data owned by
//! the mutex, RAII guard, re-expressed over the generic
//! [`asl_locks::api::Mutex`] plumbing — which plays the role of the
//! paper's transparent `pthread_mutex_lock` redirection: application
//! code locks exactly as it would any mutex and gets LibASL behaviour.
//!
//! ```
//! use asl_core::AslMutex;
//!
//! let counter = AslMutex::new(0u64);
//! {
//!     let mut held = counter.lock(); // RAII guard
//!     *held += 1;
//! } // released on drop — even on panic
//! assert_eq!(*counter.lock(), 1);
//! ```

use asl_locks::api;
use asl_locks::shuffle::{FifoPolicy, ShuffleLock};
use asl_locks::{ClhLock, FifoLock, McsLock, PthreadMutex, RawLock, TicketLock};
use asl_runtime::registry::is_big_core;

use crate::epoch;
use crate::reorderable::ReorderableLock;
use crate::stats::LockStats;
use crate::wait::{SleepWait, SpinWait, WaitPolicy};

/// Raw LibASL lock: epoch-aware dispatch over a reorderable lock.
pub struct AslLock<L: RawLock = McsLock, W: WaitPolicy = SpinWait> {
    reorderable: ReorderableLock<L, W>,
}

/// The default (non-blocking) LibASL lock: reorderable MCS with
/// spinning standby — the configuration used in most of the paper's
/// evaluation.
pub type AslSpinLock = AslLock<McsLock, SpinWait>;

/// LibASL over the CLH FIFO substrate (ablation alternative).
pub type AslClhLock = AslLock<ClhLock, SpinWait>;

/// LibASL over the ticket-lock FIFO substrate (ablation alternative).
pub type AslTicketLock = AslLock<TicketLock, SpinWait>;

/// LibASL over the shuffle framework in pass-through (FIFO) mode.
pub type AslShflLock = AslLock<ShuffleLock<FifoPolicy>, SpinWait>;

/// The blocking LibASL lock for over-subscribed systems (Bench-6):
/// a futex-based mutex underneath, `nanosleep` back-off standby.
pub type AslBlockingLock = AslLock<PthreadMutex, SleepWait>;

impl Default for AslSpinLock {
    fn default() -> Self {
        AslLock::new(McsLock::new())
    }
}

impl AslBlockingLock {
    /// Blocking LibASL lock with default sleep back-off.
    ///
    /// This is the one configuration whose substrate is *not* FIFO
    /// (glibc-style futex mutex), matching the paper's Bench-6 setup;
    /// it trades the bounded-reordering guarantee for blocking waits.
    pub fn new_blocking() -> Self {
        AslLock::with_waiter(PthreadMutex::new(), SleepWait::new())
    }
}

impl<L: RawLock + FifoLock> AslLock<L, SpinWait> {
    /// Build over the FIFO substrate `inner` with the default spinning
    /// standby policy. The FIFO marker is what carries the paper's
    /// bounded-reordering guarantee; non-FIFO substrates must go
    /// through [`AslLock::with_waiter`] explicitly.
    pub fn new(inner: L) -> Self {
        AslLock {
            reorderable: ReorderableLock::new(inner),
        }
    }
}

impl<L: RawLock, W: WaitPolicy> AslLock<L, W> {
    /// Build over `inner` with an explicit standby policy (escape
    /// hatch: also accepts non-FIFO substrates, e.g. the blocking
    /// configuration's futex mutex).
    pub fn with_waiter(inner: L, waiter: W) -> Self {
        AslLock {
            reorderable: ReorderableLock::with_waiter(inner, waiter),
        }
    }

    /// Acquire with SLO-guided ordering (paper `asl_mutex_lock`).
    #[inline]
    pub fn lock(&self) -> L::Token {
        if is_big_core() {
            self.reorderable.lock_immediately()
        } else {
            match epoch::current_window() {
                Some(w) => self.reorderable.lock_reorder(w),
                None => self
                    .reorderable
                    .lock_reorder(self.reorderable.max_window_ns()),
            }
        }
    }

    /// Release.
    #[inline]
    pub fn unlock(&self, token: L::Token) {
        self.reorderable.unlock(token)
    }

    /// Try-lock (supported because the underlying lock is unmodified).
    #[inline]
    pub fn try_lock(&self) -> Option<L::Token> {
        self.reorderable.try_lock()
    }

    /// Whether the lock is currently held or queued.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.reorderable.is_locked()
    }

    /// Acquisition-path statistics.
    pub fn stats(&self) -> &LockStats {
        self.reorderable.stats()
    }

    /// The inner reorderable lock (for advanced configuration).
    pub fn reorderable_mut(&mut self) -> &mut ReorderableLock<L, W> {
        &mut self.reorderable
    }
}

/// [`AslLock`] is itself a [`RawLock`], so every guard-API shape
/// ([`asl_locks::api::Guard`], [`asl_locks::api::Mutex`], the
/// object-safe facade) composes over it; the epoch-aware dispatch
/// happens inside `lock`.
impl<L: RawLock, W: WaitPolicy> RawLock for AslLock<L, W> {
    type Token = L::Token;

    #[inline]
    fn lock(&self) -> L::Token {
        AslLock::lock(self)
    }

    #[inline]
    fn try_lock(&self) -> Option<L::Token> {
        AslLock::try_lock(self)
    }

    #[inline]
    fn unlock(&self, token: L::Token) {
        AslLock::unlock(self, token)
    }

    #[inline]
    fn is_locked(&self) -> bool {
        AslLock::is_locked(self)
    }

    const NAME: &'static str = "libasl";
}

/// A mutual-exclusion container with LibASL ordering.
///
/// Drop-in replacement shape for `std::sync::Mutex` (no poisoning —
/// lock protocols here are panic-agnostic like `parking_lot`),
/// expressed over the generic guard plumbing of
/// [`asl_locks::api::Mutex`] with [`AslLock`] as the lock type.
pub struct AslMutex<T, L: RawLock = McsLock, W: WaitPolicy = SpinWait> {
    inner: api::Mutex<T, AslLock<L, W>>,
}

/// RAII guard for [`AslMutex`] — the generic [`api::MutexGuard`] over
/// an [`AslLock`].
pub type AslMutexGuard<'a, T, L = McsLock, W = SpinWait> = api::MutexGuard<'a, T, AslLock<L, W>>;

impl<T> AslMutex<T> {
    /// New mutex over the default reorderable-MCS LibASL lock.
    pub fn new(value: T) -> Self {
        Self::with_lock(value, AslSpinLock::default())
    }
}

impl<T, L: RawLock, W: WaitPolicy> AslMutex<T, L, W> {
    /// New mutex over a caller-supplied LibASL lock.
    pub fn with_lock(value: T, lock: AslLock<L, W>) -> Self {
        AslMutex {
            inner: api::Mutex::with_lock(value, lock),
        }
    }

    /// Acquire, returning an RAII guard.
    pub fn lock(&self) -> AslMutexGuard<'_, T, L, W> {
        self.inner.lock()
    }

    /// Try to acquire without waiting.
    pub fn try_lock(&self) -> Option<AslMutexGuard<'_, T, L, W>> {
        self.inner.try_lock()
    }

    /// Whether the lock is currently held or queued.
    pub fn is_locked(&self) -> bool {
        self.inner.is_locked()
    }

    /// Acquisition statistics of the underlying LibASL lock.
    pub fn stats(&self) -> &LockStats {
        self.inner.raw().stats()
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for AslMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::registry::{register_on_core, unregister};
    use asl_runtime::topology::{CoreId, Topology};
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = AslMutex::new(5u64);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_guard() {
        let m = AslMutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut m = AslMutex::new(1);
        *m.get_mut() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn panic_in_critical_section_releases_lock() {
        let m = Arc::new(AslMutex::new(0u64));
        let m2 = m.clone();
        let joined = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g += 1;
            panic!("poison-free unwind");
        })
        .join();
        assert!(joined.is_err());
        // No poisoning: the unwound guard released the lock.
        assert!(!m.is_locked());
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn concurrent_counter() {
        let m = Arc::new(AslMutex::new(0u64));
        let mut handles = vec![];
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 80_000);
    }

    #[test]
    fn substrate_is_one_type_parameter() {
        // CLH / ticket / shuffle substrates are a type choice, not a
        // code fork: the same mutex shape works over each.
        let clh: AslMutex<u64, ClhLock> = AslMutex::with_lock(1, AslLock::new(ClhLock::new()));
        *clh.lock() += 1;
        assert_eq!(*clh.lock(), 2);

        let ticket: AslMutex<u64, TicketLock> =
            AslMutex::with_lock(5, AslLock::new(TicketLock::new()));
        *ticket.lock() += 1;
        assert_eq!(*ticket.lock(), 6);

        let shfl: AslMutex<u64, ShuffleLock<FifoPolicy>> =
            AslMutex::with_lock(7, AslLock::new(ShuffleLock::new(FifoPolicy)));
        *shfl.lock() += 1;
        assert_eq!(*shfl.lock(), 8);
    }

    #[test]
    fn big_core_takes_immediate_path() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(0));
        let m = AslMutex::new(());
        drop(m.lock());
        let s = m.stats().snapshot();
        assert_eq!(s.immediate, 1);
        assert_eq!(s.standby_total(), 0);
        unregister();
    }

    #[test]
    fn little_core_takes_standby_path() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(5));
        crate::epoch::reset_thread_epochs();
        let m = AslMutex::new(());
        drop(m.lock()); // outside any epoch: max-window standby, free entry
        let s = m.stats().snapshot();
        assert_eq!(s.immediate, 0);
        assert_eq!(s.standby_free_entry, 1);
        unregister();
    }

    #[test]
    fn little_core_in_epoch_uses_epoch_window() {
        let t = Topology::apple_m1();
        register_on_core(&t, CoreId(4));
        crate::epoch::reset_thread_epochs();
        crate::epoch::set_epoch_window(3, 0); // zero window: immediate FIFO entry
        let m = AslMutex::new(());
        crate::epoch::with_epoch(3, u64::MAX, || {
            drop(m.lock());
        });
        let s = m.stats().snapshot();
        // Lock was free, so it entered via the free-entry fast path.
        assert_eq!(s.standby_total(), 1);
        unregister();
    }

    #[test]
    fn blocking_variant_works() {
        let lock = AslBlockingLock::new_blocking();
        lock.lock();
        assert!(lock.is_locked());
        lock.unlock(());
        assert!(!lock.is_locked());
    }

    #[test]
    fn asl_lock_supports_guards() {
        use asl_locks::api::GuardedLock;
        let lock = AslSpinLock::default();
        {
            let _g = lock.guard();
            assert!(lock.is_locked());
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn plain_lock_facades() {
        // The blanket PlainLock impl covers AslLock because it is a
        // RawLock with a word-encodable token; DynLock adds the RAII
        // layer over the resulting trait object.
        use asl_locks::api::DynLock;
        let spin = DynLock::of(AslSpinLock::default());
        {
            let _held = spin.lock();
            assert!(spin.is_locked());
        }
        assert!(!spin.is_locked());
        assert_eq!(spin.name(), "libasl");

        let blocking = DynLock::of(AslBlockingLock::new_blocking());
        drop(blocking.lock());
        assert_eq!(blocking.name(), "libasl");
    }
}
