//! The reorderable lock (paper Algorithm 1, Figure 7).
//!
//! Wraps an underlying lock `L` (MCS by default; any [`RawLock`]
//! works, including blocking mutexes for the over-subscription
//! configuration) and exposes two acquisition paths:
//!
//! * [`ReorderableLock::lock_immediately`] — enqueue in the underlying
//!   lock right away. Big cores take this path.
//! * [`ReorderableLock::lock_reorder`] — become a *standby
//!   competitor*: if the lock is free, enqueue immediately; otherwise
//!   wait out a caller-supplied reorder window (probing the lock with
//!   the configured [`WaitPolicy`]), then enqueue. Competitors that
//!   enqueue during the window effectively *reorder with* (overtake)
//!   the standby competitor — the reordering is bounded by the window.
//!
//! The window is clamped to the configured maximum, which makes the
//! lock starvation-free: every standby competitor joins the FIFO queue
//! after at most `max_window` nanoseconds.
//!
//! As in the paper, the window "is not a strict order constraint": a
//! standby competitor whose window expired still races normally inside
//! the underlying lock, and the underlying unlock path is untouched.

use asl_locks::RawLock;
use asl_runtime::clock::now_ns;

use crate::config;
use crate::stats::LockStats;
use crate::wait::{SpinWait, WaitOutcome, WaitPolicy};

/// Bounded-reordering layer over an underlying lock.
pub struct ReorderableLock<L: RawLock, W: WaitPolicy = SpinWait> {
    inner: L,
    waiter: W,
    max_window_ns: u64,
    stats: LockStats,
}

impl<L: RawLock + Default> Default for ReorderableLock<L, SpinWait> {
    fn default() -> Self {
        Self::new(L::default())
    }
}

impl<L: RawLock> ReorderableLock<L, SpinWait> {
    /// Wrap `inner` with the default spinning standby policy and the
    /// globally configured maximum window.
    pub fn new(inner: L) -> Self {
        Self::with_waiter(inner, SpinWait)
    }
}

impl<L: RawLock, W: WaitPolicy> ReorderableLock<L, W> {
    /// Wrap `inner` with an explicit standby waiting policy.
    pub fn with_waiter(inner: L, waiter: W) -> Self {
        ReorderableLock {
            inner,
            waiter,
            max_window_ns: config::max_window_ns(),
            stats: LockStats::new(),
        }
    }

    /// Override the starvation bound for this lock instance.
    pub fn set_max_window_ns(&mut self, ns: u64) {
        assert!(ns > 0);
        self.max_window_ns = ns;
    }

    /// The starvation bound (maximum honoured window).
    pub fn max_window_ns(&self) -> u64 {
        self.max_window_ns
    }

    /// Acquire without standing by (paper `lock_immediately`).
    #[inline]
    pub fn lock_immediately(&self) -> L::Token {
        self.stats
            .immediate
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let contended = self.inner.is_locked();
        let t0 = if self.stats.telemetry.sampling() && contended {
            now_ns()
        } else {
            0
        };
        let token = self.inner.lock();
        if t0 != 0 {
            self.stats
                .telemetry
                .add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.stats.telemetry.record_acquisition(contended);
        self.stats.telemetry.note_hold_start();
        token
    }

    /// Acquire as a standby competitor with the given reorder window
    /// in nanoseconds (paper `lock_reorder`).
    ///
    /// Clock budget (the paper allots ~45 cycles per `clock_gettime`
    /// and spends them sparingly): with sampling off — the production
    /// configuration — this path reads the precise clock **at most
    /// once per acquisition**: the timestamp anchoring the
    /// reorder-window deadline, taken only when there is a window to
    /// honour. Deadline checks inside the standby wait ride
    /// [`asl_runtime::clock::coarse_now_ns`]'s amortized cache. The
    /// free-entry fast path reads no clock at all. When sampling is
    /// on — the gear that explicitly buys timing with clock reads —
    /// both paths bracket the wait with precise reads (the coarse
    /// cache is not refreshed while blocked inside `inner.lock()`, so
    /// a coarse end-read could miss the entire queue wait).
    #[inline]
    pub fn lock_reorder(&self, window_ns: u64) -> L::Token {
        use std::sync::atomic::Ordering::Relaxed;
        // Starvation-freedom: never honour more than the bound.
        let window = window_ns.min(self.max_window_ns);
        let sampling = self.stats.telemetry.sampling();
        if !self.inner.is_locked() {
            self.stats.standby_free_entry.fetch_add(1, Relaxed);
            // Sampling-gated wait measurement: another thread can take
            // the lock between the free check and inner.lock(), so
            // even this path can queue. With sampling off (the
            // production gear) it reads no clock.
            let t0 = if sampling { now_ns() } else { 0 };
            let token = self.inner.lock();
            if t0 != 0 {
                self.stats
                    .telemetry
                    .add_wait_ns(now_ns().saturating_sub(t0));
            }
            self.stats.telemetry.record_acquisition(false);
            self.stats.telemetry.note_hold_start();
            return token;
        }
        // Held on entry: a contended acquisition whichever way the
        // window plays out. Observations are visible before blocking.
        self.stats.telemetry.record_contended();
        // The single precise clock read of this acquisition.
        let t0 = if window > 0 || sampling { now_ns() } else { 0 };
        if window > 0 {
            let deadline = t0.saturating_add(window);
            match self
                .waiter
                .standby_wait(deadline, &|| !self.inner.is_locked())
            {
                WaitOutcome::ObservedFree => {
                    self.stats.standby_observed_free.fetch_add(1, Relaxed);
                }
                WaitOutcome::WindowExpired => {
                    self.stats.standby_expired.fetch_add(1, Relaxed);
                }
            }
        } else {
            self.stats.standby_expired.fetch_add(1, Relaxed);
        }
        let token = self.inner.lock();
        if sampling && t0 != 0 {
            // Precise end-read, sampling-gated: blocking in
            // inner.lock() never refreshes this thread's coarse
            // cache, so a coarse read here could predate t0 and
            // record a ~0 wait for an arbitrarily long queue wait.
            self.stats
                .telemetry
                .add_wait_ns(now_ns().saturating_sub(t0));
        }
        self.stats.telemetry.record_acquired();
        self.stats.telemetry.note_hold_start();
        token
    }

    /// Release (paper `unlock`: delegates to the underlying lock,
    /// whose handover logic is untouched).
    #[inline]
    pub fn unlock(&self, token: L::Token) {
        self.stats.telemetry.note_hold_end();
        self.inner.unlock(token)
    }

    /// Try-lock passthrough (the paper notes trylock keeps working
    /// because the underlying lock is unmodified).
    #[inline]
    pub fn try_lock(&self) -> Option<L::Token> {
        self.inner.try_lock()
    }

    /// Whether the underlying lock is currently held or queued.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.inner.is_locked()
    }

    /// Acquisition-path statistics for this lock.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// The underlying lock (for inspection in tests).
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_locks::{McsLock, TicketLock};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn immediate_path_is_plain_lock() {
        let l = ReorderableLock::new(McsLock::new());
        let t = l.lock_immediately();
        assert!(l.is_locked());
        l.unlock(t);
        assert!(!l.is_locked());
        assert_eq!(l.stats().snapshot().immediate, 1);
    }

    #[test]
    fn reorder_on_free_lock_enters_immediately() {
        let l = ReorderableLock::new(McsLock::new());
        let t0 = now_ns();
        let t = l.lock_reorder(1_000_000_000); // 1s window, but lock is free
        let dt = now_ns() - t0;
        l.unlock(t);
        assert!(dt < 100_000_000, "free-entry took {dt}ns");
        assert_eq!(l.stats().snapshot().standby_free_entry, 1);
    }

    #[test]
    fn reorder_waits_out_window_when_held() {
        let l = Arc::new(ReorderableLock::new(McsLock::new()));
        let t = l.lock_immediately();
        let l2 = l.clone();
        let h = std::thread::spawn(move || {
            let t0 = now_ns();
            let tok = l2.lock_reorder(5_000_000); // 5ms window
            let waited = now_ns() - t0;
            l2.unlock(tok);
            waited
        });
        // Hold the lock well past the window.
        std::thread::sleep(std::time::Duration::from_millis(30));
        l.unlock(t);
        let waited = h.join().unwrap();
        assert!(waited >= 5_000_000, "standby only waited {waited}ns");
        assert_eq!(l.stats().snapshot().standby_expired, 1);
    }

    #[test]
    fn standby_enters_when_lock_frees_mid_window() {
        let l = Arc::new(ReorderableLock::new(McsLock::new()));
        let t = l.lock_immediately();
        let released = Arc::new(AtomicBool::new(false));
        let l2 = l.clone();
        let r2 = released.clone();
        let h = std::thread::spawn(move || {
            let t0 = now_ns();
            let tok = l2.lock_reorder(2_000_000_000); // 2s window
            let waited = now_ns() - t0;
            assert!(r2.load(Ordering::Relaxed), "acquired before release");
            l2.unlock(tok);
            waited
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        released.store(true, Ordering::Relaxed);
        l.unlock(t);
        let waited = h.join().unwrap();
        // Should acquire shortly after release, far within 2s.
        assert!(
            waited < 1_000_000_000,
            "standby waited the whole window: {waited}ns"
        );
    }

    #[test]
    fn window_clamped_to_max() {
        let mut l = ReorderableLock::new(McsLock::new());
        l.set_max_window_ns(1_000_000); // 1ms bound
        let l = Arc::new(l);
        let t = l.lock_immediately();
        let l2 = l.clone();
        let h = std::thread::spawn(move || {
            let t0 = now_ns();
            let tok = l2.lock_reorder(u64::MAX); // absurd request
            let waited = now_ns() - t0;
            l2.unlock(tok);
            waited
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        l.unlock(t);
        let waited = h.join().unwrap();
        assert!(
            waited < 25_000_000,
            "starvation bound not honoured: waited {waited}ns"
        );
    }

    #[test]
    fn zero_window_degenerates_to_fifo() {
        let l = Arc::new(ReorderableLock::new(TicketLock::new()));
        l.lock_immediately();
        let l2 = l.clone();
        let h = std::thread::spawn(move || {
            l2.lock_reorder(0);
            l2.unlock(());
        });
        // Hold the lock until the zero-window competitor has joined
        // the FIFO queue (it must not wait out any window first).
        while l.inner().queue_depth() < 2 {
            std::thread::yield_now();
        }
        l.unlock(());
        h.join().unwrap();
        assert_eq!(l.stats().snapshot().standby_expired, 1);
    }

    #[test]
    fn try_lock_passthrough() {
        let l = ReorderableLock::new(McsLock::new());
        let t = l.try_lock().expect("free");
        assert!(l.try_lock().is_none());
        l.unlock(t);
    }

    #[test]
    fn mutual_exclusion_under_mixed_paths() {
        struct Shared {
            lock: ReorderableLock<McsLock>,
            value: std::cell::UnsafeCell<u64>,
        }
        unsafe impl Sync for Shared {}
        let s = Arc::new(Shared {
            lock: ReorderableLock::new(McsLock::new()),
            value: std::cell::UnsafeCell::new(0),
        });
        let mut handles = vec![];
        for i in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let tok = if i % 2 == 0 {
                        s.lock.lock_immediately()
                    } else {
                        s.lock.lock_reorder(10_000)
                    };
                    unsafe { *s.value.get() += 1 };
                    s.lock.unlock(tok);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *s.value.get() }, 40_000);
        let snap = s.lock.stats().snapshot();
        assert_eq!(snap.total(), 40_000);
        // The shared telemetry layer counts every acquisition too.
        assert_eq!(snap.telemetry.acquisitions, 40_000);
        assert!(snap.telemetry.contended <= snap.telemetry.acquisitions);
    }
}
