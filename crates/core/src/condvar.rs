//! Condition variable over [`AslMutex`](crate::AslMutex).
//!
//! The paper supports pthread condition variables "by using the same
//! technique in litl" (§3.3): the condvar keeps its own waiter queue
//! and re-acquires the wrapped lock on wakeup, so waiting threads
//! re-enter through LibASL's asymmetry-aware acquisition path — a big
//! core woken by `notify` still locks immediately, a little core goes
//! through its reorder window.
//!
//! Wakeups follow the standard condvar contract: `wait` may return
//! spuriously, so callers loop on their predicate (use
//! [`AslCondvar::wait_while`] to get the loop for free). Lost-wakeup
//! freedom comes from the per-waiter flag: a notification flips the
//! flag before unparking, and `wait` re-parks until its flag is set,
//! so a park that returns early can never consume someone else's
//! notification.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::thread::Thread;

use asl_locks::RawLock;

use crate::mutex::AslMutexGuard;
use crate::wait::WaitPolicy;

struct Waiter {
    notified: Arc<AtomicBool>,
    thread: Thread,
}

/// A condition variable usable with any [`AslMutex`](crate::AslMutex).
#[derive(Default)]
pub struct AslCondvar {
    // The internal queue is touched only for enqueue/notify — never
    // while parked — so a plain std mutex is fine here (this mirrors
    // litl, which delegates condvar bookkeeping to pthread).
    waiters: StdMutex<VecDeque<Waiter>>,
}

impl AslCondvar {
    /// New condition variable with no waiters.
    pub fn new() -> Self {
        AslCondvar {
            waiters: StdMutex::new(VecDeque::new()),
        }
    }

    /// Atomically release `guard`'s mutex and wait for a
    /// notification; re-acquires the mutex (through the LibASL
    /// dispatch path) before returning. May wake spuriously.
    pub fn wait<'a, T, L: RawLock, W: WaitPolicy>(
        &self,
        guard: AslMutexGuard<'a, T, L, W>,
    ) -> AslMutexGuard<'a, T, L, W> {
        // The guard knows its (generic guard-plumbing) mutex; waking
        // re-locks through it, i.e. through the LibASL dispatch path.
        let mutex = guard.mutex();
        let notified = Arc::new(AtomicBool::new(false));
        self.waiters
            .lock()
            .expect("condvar queue poisoned")
            .push_back(Waiter {
                notified: notified.clone(),
                thread: std::thread::current(),
            });
        // Registering *before* the release closes the notify race:
        // any notification after this point sees us in the queue.
        drop(guard);
        while !notified.load(Ordering::Acquire) {
            // Simulated threads charge a virtual wait instead of an OS
            // park (the notifier's unpark is then a no-op).
            asl_runtime::substrate::park_or(std::thread::park);
        }
        mutex.lock()
    }

    /// [`AslCondvar::wait`] in a predicate loop: returns once
    /// `condition(&*guard)` is false, with the lock held.
    pub fn wait_while<'a, T, L: RawLock, W: WaitPolicy>(
        &self,
        mut guard: AslMutexGuard<'a, T, L, W>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) -> AslMutexGuard<'a, T, L, W> {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wake one waiter (FIFO order among waiters).
    pub fn notify_one(&self) {
        let w = self
            .waiters
            .lock()
            .expect("condvar queue poisoned")
            .pop_front();
        if let Some(w) = w {
            w.notified.store(true, Ordering::Release);
            w.thread.unpark();
        }
    }

    /// Wake every current waiter.
    pub fn notify_all(&self) {
        let drained: Vec<Waiter> = {
            let mut q = self.waiters.lock().expect("condvar queue poisoned");
            q.drain(..).collect()
        };
        for w in drained {
            w.notified.store(true, Ordering::Release);
            w.thread.unpark();
        }
    }

    /// Number of threads currently registered as waiting (tests).
    pub fn waiter_count(&self) -> usize {
        self.waiters.lock().expect("condvar queue poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutex::AslMutex;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn notify_one_wakes_single_waiter() {
        let m = Arc::new(AslMutex::new(false));
        let cv = Arc::new(AslCondvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let guard = m2.lock();
            let guard = cv2.wait_while(guard, |ready| !*ready);
            assert!(*guard);
        });
        // Let the waiter park, then signal.
        while cv.waiter_count() == 0 {
            std::thread::yield_now();
        }
        *m.lock() = true;
        cv.notify_one();
        h.join().unwrap();
        assert_eq!(cv.waiter_count(), 0);
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let m = Arc::new(AslMutex::new(0u32));
        let cv = Arc::new(AslCondvar::new());
        let mut handles = vec![];
        for _ in 0..6 {
            let (m, cv) = (m.clone(), cv.clone());
            handles.push(std::thread::spawn(move || {
                let guard = m.lock();
                let mut guard = cv.wait_while(guard, |v| *v == 0);
                *guard += 1;
            }));
        }
        while cv.waiter_count() < 6 {
            std::thread::yield_now();
        }
        *m.lock() = 1;
        cv.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 7); // 1 + one increment per waiter
    }

    #[test]
    fn producer_consumer_queue() {
        const ITEMS: usize = 2_000;
        let q = Arc::new(AslMutex::new(VecDeque::<usize>::new()));
        let cv = Arc::new(AslCondvar::new());

        let consumer = {
            let (q, cv) = (q.clone(), cv.clone());
            std::thread::spawn(move || {
                let mut got = Vec::with_capacity(ITEMS);
                while got.len() < ITEMS {
                    let guard = q.lock();
                    let mut guard = cv.wait_while(guard, |q| q.is_empty());
                    while let Some(v) = guard.pop_front() {
                        got.push(v);
                    }
                }
                got
            })
        };
        let producer = {
            let (q, cv) = (q.clone(), cv.clone());
            std::thread::spawn(move || {
                for i in 0..ITEMS {
                    q.lock().push_back(i);
                    cv.notify_one();
                    if i % 64 == 0 {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            })
        };
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), ITEMS);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "items out of order");
    }

    #[test]
    fn no_lost_wakeup_under_stress() {
        // Many rounds of one-waiter/one-notifier handshakes: a lost
        // wakeup would deadlock (the join below would hang).
        let m = Arc::new(AslMutex::new(0u64));
        let cv = Arc::new(AslCondvar::new());
        let rounds = 500;
        let (m2, cv2) = (m.clone(), cv.clone());
        let waiter = std::thread::spawn(move || {
            for i in 1..=rounds {
                let guard = m2.lock();
                let _guard = cv2.wait_while(guard, |v| *v < i);
            }
        });
        for i in 1..=rounds {
            loop {
                {
                    let mut g = m.lock();
                    if *g < i {
                        *g = i;
                    }
                }
                cv.notify_one();
                if cv.waiter_count() == 0 {
                    // The waiter either consumed the notification or
                    // has not parked yet; give it a beat and re-notify
                    // to be safe (spurious notifies are harmless).
                    break;
                }
                std::thread::yield_now();
            }
        }
        // Drain any remaining rounds.
        while cv.waiter_count() > 0 {
            cv.notify_all();
            std::thread::yield_now();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn waiter_count_tracks_queue() {
        let cv = AslCondvar::new();
        assert_eq!(cv.waiter_count(), 0);
        cv.notify_one(); // no waiters: no-op
        cv.notify_all();
        assert_eq!(cv.waiter_count(), 0);
    }
}
