//! Standby waiting policies.
//!
//! A standby competitor (paper Fig. 7) waits out its reorder window
//! while occasionally probing whether the lock has become free. How
//! it waits is orthogonal to the reorderable protocol:
//!
//! * [`SpinWait`] — the paper's Algorithm 1: busy-wait, probing with
//!   *binary exponential back-off* (probe at iteration 1, 2, 4, 8, …)
//!   to keep standby competitors from hammering the lock word.
//! * [`SleepWait`] — the blocking version (§3.2 footnote 3 / Bench-6):
//!   `nanosleep` between probes with doubling sleep times, for
//!   over-subscribed systems where spinning steals CPU from the
//!   holder.
//! * [`FixedCheckWait`] — probe every N iterations; exists to ablate
//!   the exponential back-off choice (bench `ablate_backoff`).

use asl_runtime::clock::{coarse_now_ns, coarse_resync, nanosleep_ns, now_ns};

/// Spin iterations between deadline checks in the spinning policies.
///
/// The reorder window "is not a strict order constraint" (paper §3.3),
/// so standby competitors tolerate slack: instead of reading the clock
/// every iteration they consult the amortized
/// [`coarse_now_ns`] once per `DEADLINE_CHECK_EVERY` iterations. The
/// coarse clock never runs ahead of the precise one, so a window can
/// only be honoured slightly long — never cut short. The overrun is
/// bounded in *iterations* (`DEADLINE_CHECK_EVERY` plus the coarse
/// clock's read-count staleness), which only bounds wall time while
/// iterations are nanosecond-scale spins — so whenever a poll yields
/// to the scheduler (an unknown amount of wall time), the loops
/// [`coarse_resync`] the cache, keeping the wall-clock overrun to at
/// most one yield plus a handful of spins even on oversubscribed
/// multi-core hosts.
const DEADLINE_CHECK_EVERY: u64 = 16;

/// Resolved deadline-check cadence: on hosts where every spin poll is
/// a scheduler yield, an iteration costs a quantum, not nanoseconds —
/// skipping checks there would stretch windows by whole quanta to
/// save a TLS read, so the cadence collapses to every iteration (and
/// the coarse clock likewise refreshes per read on such hosts).
#[inline]
fn deadline_check_every() -> u64 {
    if asl_runtime::relax::yields_every_poll() {
        1
    } else {
        DEADLINE_CHECK_EVERY
    }
}

/// Outcome of a standby wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// A probe saw the lock free before the window expired.
    ObservedFree,
    /// The reorder window expired.
    WindowExpired,
}

/// How a standby competitor waits out its reorder window.
pub trait WaitPolicy: Send + Sync + 'static {
    /// Wait until `deadline_ns` (a [`now_ns`] timestamp), returning
    /// early when `is_free()` observes the lock available.
    fn standby_wait(&self, deadline_ns: u64, is_free: &dyn Fn() -> bool) -> WaitOutcome;
}

/// Busy-wait with binary exponential probe back-off (paper default).
#[derive(Debug, Default, Clone, Copy)]
pub struct SpinWait;

impl WaitPolicy for SpinWait {
    #[inline]
    fn standby_wait(&self, deadline_ns: u64, is_free: &dyn Fn() -> bool) -> WaitOutcome {
        let mut cnt: u64 = 0;
        let mut next_check: u64 = 1;
        let check_every = deadline_check_every();
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            // Amortized deadline check (including on entry, so a
            // zero/expired window returns without probing).
            if cnt % check_every == 0 && coarse_now_ns() >= deadline_ns {
                return WaitOutcome::WindowExpired;
            }
            cnt += 1;
            if cnt == next_check {
                if is_free() {
                    return WaitOutcome::ObservedFree;
                }
                next_check <<= 1;
            }
            if spin.relax() {
                // A yield passed an unknown amount of wall time:
                // stale cached readings would blow the overrun bound.
                coarse_resync();
            }
        }
    }
}

/// `nanosleep`-based waiting with doubling sleep durations.
#[derive(Debug, Clone, Copy)]
pub struct SleepWait {
    /// First sleep duration (ns).
    pub min_sleep_ns: u64,
    /// Sleep-duration cap (ns).
    pub max_sleep_ns: u64,
}

impl SleepWait {
    /// Paper-style defaults: 1 µs first sleep, 1 ms cap.
    pub fn new() -> Self {
        SleepWait {
            min_sleep_ns: 1_000,
            max_sleep_ns: 1_000_000,
        }
    }
}

impl Default for SleepWait {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitPolicy for SleepWait {
    fn standby_wait(&self, deadline_ns: u64, is_free: &dyn Fn() -> bool) -> WaitOutcome {
        let mut sleep = self.min_sleep_ns;
        loop {
            // Precise clock on purpose: each iteration is separated by
            // a >= 1us nanosleep, which both amortizes the read and
            // invalidates the coarse cache's staleness bound (the
            // cache has no timer — it would return pre-sleep values).
            let now = now_ns();
            if now >= deadline_ns {
                return WaitOutcome::WindowExpired;
            }
            if is_free() {
                return WaitOutcome::ObservedFree;
            }
            let remaining = deadline_ns - now;
            nanosleep_ns(sleep.min(remaining));
            sleep = (sleep * 2).min(self.max_sleep_ns);
        }
    }
}

/// Probe every `interval` spin iterations (ablation baseline).
#[derive(Debug, Clone, Copy)]
pub struct FixedCheckWait {
    /// Iterations between probes.
    pub interval: u64,
}

impl WaitPolicy for FixedCheckWait {
    fn standby_wait(&self, deadline_ns: u64, is_free: &dyn Fn() -> bool) -> WaitOutcome {
        let mut cnt: u64 = 0;
        let check_every = deadline_check_every();
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            if cnt % check_every == 0 && coarse_now_ns() >= deadline_ns {
                return WaitOutcome::WindowExpired;
            }
            cnt += 1;
            if cnt % self.interval.max(1) == 0 && is_free() {
                return WaitOutcome::ObservedFree;
            }
            if spin.relax() {
                coarse_resync();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn spin_wait_expires() {
        let t0 = now_ns();
        let out = SpinWait.standby_wait(t0 + 200_000, &|| false);
        assert_eq!(out, WaitOutcome::WindowExpired);
        assert!(now_ns() - t0 >= 200_000);
    }

    #[test]
    fn spin_wait_returns_when_free() {
        let out = SpinWait.standby_wait(now_ns() + 50_000_000, &|| true);
        assert_eq!(out, WaitOutcome::ObservedFree);
    }

    #[test]
    fn spin_wait_probe_count_is_logarithmic() {
        // Binary exponential back-off: the number of probes over a
        // window should be ~log2(iterations), not linear.
        let probes = AtomicU64::new(0);
        let out = SpinWait.standby_wait(now_ns() + 2_000_000, &|| {
            probes.fetch_add(1, Ordering::Relaxed);
            false
        });
        assert_eq!(out, WaitOutcome::WindowExpired);
        let p = probes.load(Ordering::Relaxed);
        assert!(p > 0 && p < 64, "expected O(log) probes, got {p}");
    }

    #[test]
    fn sleep_wait_expires_and_frees() {
        let t0 = now_ns();
        let out = SleepWait::new().standby_wait(t0 + 3_000_000, &|| false);
        assert_eq!(out, WaitOutcome::WindowExpired);
        assert!(now_ns() - t0 >= 3_000_000);

        let flag = AtomicBool::new(true);
        let out =
            SleepWait::new().standby_wait(now_ns() + 50_000_000, &|| flag.load(Ordering::Relaxed));
        assert_eq!(out, WaitOutcome::ObservedFree);
    }

    #[test]
    fn sleep_wait_zero_window_expires_immediately() {
        let out = SleepWait::new().standby_wait(0, &|| false);
        assert_eq!(out, WaitOutcome::WindowExpired);
    }

    #[test]
    fn fixed_check_probes_linearly() {
        // interval 10 over a 20 ms window: >64 probes needs only ~650
        // loop iterations (~30 µs/iteration budget), which holds even
        // when every relax() is a contended scheduler yield on a
        // single-CPU machine rather than a spin hint.
        let probes = AtomicU64::new(0);
        FixedCheckWait { interval: 10 }.standby_wait(now_ns() + 20_000_000, &|| {
            probes.fetch_add(1, Ordering::Relaxed);
            false
        });
        assert!(
            probes.load(Ordering::Relaxed) > 64,
            "fixed policy should probe often"
        );
    }
}
