//! Per-lock acquisition statistics.
//!
//! The *generic* counters (total acquisitions, contended
//! acquisitions, optional hold/wait timing) live in the shared
//! [`asl_locks::telemetry::TelemetryCell`] — the same lock-agnostic
//! cell every instrumented lock in the zoo records into — so the
//! harness's per-lock stats tables and the ASL-specific reports speak
//! one format. [`LockStats`] adds the reorderable lock's *path*
//! counters on top: which route each acquisition took through the
//! dispatch layer. Tests use them to verify that reordering actually
//! happens; the harness reports them alongside throughput so figure
//! shapes can be explained ("little cores mostly waited out their
//! windows at this contention level").

use std::sync::atomic::{AtomicU64, Ordering};

use asl_locks::telemetry::{TelemetryCell, TelemetrySnapshot};

/// Live counters (one per [`crate::ReorderableLock`]): shared
/// telemetry plus the ASL acquisition-path split.
///
/// Atomic-ordering audit: like [`TelemetryCell`], every counter here
/// is a pure statistic — incremented on the acquire path, read only
/// by [`LockStats::snapshot`] for reporting/tests, never consulted by
/// lock-protocol control flow. `Relaxed` suffices throughout: each
/// counter's own modification order keeps its count exact, and tests
/// that compare counters across threads first join those threads
/// (which supplies the cross-counter happens-before).
#[derive(Debug, Default)]
pub struct LockStats {
    /// Generic acquisition telemetry (shared format with every
    /// instrumented lock; timing recorded only when sampling is on).
    pub telemetry: TelemetryCell,
    /// `lock_immediately` acquisitions (big-core path).
    pub immediate: AtomicU64,
    /// `lock_reorder` acquisitions that found the lock free on entry.
    pub standby_free_entry: AtomicU64,
    /// `lock_reorder` acquisitions whose probe saw the lock free
    /// during the window.
    pub standby_observed_free: AtomicU64,
    /// `lock_reorder` acquisitions that waited out the full window.
    pub standby_expired: AtomicU64,
}

impl LockStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared telemetry cell (enable sampling here to record
    /// hold/wait time).
    pub fn telemetry(&self) -> &TelemetryCell {
        &self.telemetry
    }

    /// Consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            telemetry: self.telemetry.snapshot(),
            immediate: self.immediate.load(Ordering::Relaxed),
            standby_free_entry: self.standby_free_entry.load(Ordering::Relaxed),
            standby_observed_free: self.standby_observed_free.load(Ordering::Relaxed),
            standby_expired: self.standby_expired.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.telemetry.reset();
        self.immediate.store(0, Ordering::Relaxed);
        self.standby_free_entry.store(0, Ordering::Relaxed);
        self.standby_observed_free.store(0, Ordering::Relaxed);
        self.standby_expired.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time view of [`LockStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStatsSnapshot {
    /// Generic acquisition telemetry (shared snapshot format).
    pub telemetry: TelemetrySnapshot,
    /// See [`LockStats::immediate`].
    pub immediate: u64,
    /// See [`LockStats::standby_free_entry`].
    pub standby_free_entry: u64,
    /// See [`LockStats::standby_observed_free`].
    pub standby_observed_free: u64,
    /// See [`LockStats::standby_expired`].
    pub standby_expired: u64,
}

impl LockStatsSnapshot {
    /// Total acquisitions recorded (path-counter sum; equals
    /// `telemetry.acquisitions` for a quiescent lock).
    pub fn total(&self) -> u64 {
        self.immediate + self.standby_free_entry + self.standby_observed_free + self.standby_expired
    }

    /// Total acquisitions that went through the standby (reorder) path.
    pub fn standby_total(&self) -> u64 {
        self.standby_free_entry + self.standby_observed_free + self.standby_expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = LockStats::new();
        s.immediate.fetch_add(3, Ordering::Relaxed);
        s.standby_expired.fetch_add(2, Ordering::Relaxed);
        s.telemetry.record_acquisition(true);
        let snap = s.snapshot();
        assert_eq!(snap.immediate, 3);
        assert_eq!(snap.standby_expired, 2);
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.standby_total(), 2);
        assert_eq!(snap.telemetry.contended, 1);
        s.reset();
        assert_eq!(s.snapshot().total(), 0);
        assert_eq!(s.snapshot().telemetry, TelemetrySnapshot::default());
    }

    #[test]
    fn telemetry_rides_along() {
        let s = LockStats::new();
        for contended in [false, true, true] {
            s.telemetry.record_acquisition(contended);
        }
        let t = s.snapshot().telemetry;
        assert_eq!(t.acquisitions, 3);
        assert_eq!(t.contended, 2);
        assert!(t.contention_ratio() > 0.6);
    }
}
