//! Reader-writer locking with LibASL ordering: reacquisition-based
//! reader batching over an [`AslLock`] writer substrate.
//!
//! The paper's reorderable lock orders *exclusive* waiters to hit
//! latency SLOs on asymmetric cores. [`AslRwLock`] extends that to
//! shared access without touching the reorderable layer itself:
//!
//! * **Writers** take the underlying [`AslLock`] — big cores lock
//!   immediately, little cores stand by for the epoch's reorder
//!   window — then drain the active reader batch while holding it.
//! * **Readers** join an open batch with one counter increment when no
//!   writer is around (reads overlap freely). When a writer holds the
//!   substrate, readers *reacquire* through it: they briefly take the
//!   [`AslLock`] (inheriting its SLO-aware ordering), register in the
//!   reader count, and release it again — so a whole convoy of
//!   readers passes through the writer queue as short registration
//!   sections and then reads concurrently, batched behind the same
//!   acquisition order the paper's lock would have imposed.
//!
//! Writer preference is inherent: once a writer owns the substrate,
//! new readers cannot register until it finishes, and the writer only
//! waits for the batch that registered before it.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use asl_locks::{FifoLock, McsLock, RawLock, RawRwLock};

use crate::mutex::AslLock;
use crate::wait::{SpinWait, WaitPolicy};

/// Reader-writer lock with LibASL writer ordering (see module docs).
pub struct AslRwLock<L: RawLock = McsLock, W: WaitPolicy = SpinWait> {
    /// Readers currently registered (holding or about to hold).
    readers: AtomicU32,
    /// A writer owns the substrate and is draining/blocking readers.
    writer: AtomicBool,
    inner: AslLock<L, W>,
}

impl Default for AslRwLock<McsLock, SpinWait> {
    fn default() -> Self {
        Self::new(McsLock::new())
    }
}

impl<L: RawLock + FifoLock> AslRwLock<L, SpinWait> {
    /// Build over the FIFO substrate `inner` with the default spinning
    /// standby policy (the FIFO marker carries the paper's
    /// bounded-reordering guarantee, exactly as for [`AslLock`]).
    pub fn new(inner: L) -> Self {
        AslRwLock {
            readers: AtomicU32::new(0),
            writer: AtomicBool::new(false),
            inner: AslLock::new(inner),
        }
    }
}

impl<L: RawLock, W: WaitPolicy> AslRwLock<L, W> {
    /// Build over an explicit [`AslLock`] (escape hatch for non-FIFO
    /// substrates or custom standby policies).
    pub fn with_asl(inner: AslLock<L, W>) -> Self {
        AslRwLock {
            readers: AtomicU32::new(0),
            writer: AtomicBool::new(false),
            inner,
        }
    }

    /// The underlying LibASL lock (statistics, configuration).
    pub fn asl(&self) -> &AslLock<L, W> {
        &self.inner
    }

    /// Readers currently registered (heuristic).
    pub fn reader_count(&self) -> u32 {
        self.readers.load(Ordering::Relaxed)
    }

    /// Fast path: join the open reader batch. Succeeds only when no
    /// writer owns the substrate. The `SeqCst` increment/load against
    /// the writer's flag-store/count-load is the classic store-load
    /// handshake: either the writer sees our registration, or we see
    /// its flag and withdraw.
    #[inline]
    fn try_join_batch(&self) -> bool {
        self.readers.fetch_add(1, Ordering::SeqCst);
        if self.writer.load(Ordering::SeqCst) {
            self.readers.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }
}

impl<L: RawLock, W: WaitPolicy> RawRwLock for AslRwLock<L, W> {
    type ReadToken = ();
    type WriteToken = L::Token;

    #[inline]
    fn read(&self) -> Self::ReadToken {
        if self.try_join_batch() {
            return;
        }
        // Reacquisition path: register through the SLO-ordered
        // substrate (a writer is or was active).
        let token = self.inner.lock();
        self.readers.fetch_add(1, Ordering::SeqCst);
        self.inner.unlock(token);
    }

    #[inline]
    fn try_read(&self) -> Option<Self::ReadToken> {
        if self.try_join_batch() {
            return Some(());
        }
        let token = self.inner.try_lock()?;
        // Holding the substrate implies no writer is draining (writers
        // clear the flag before releasing), so registration is safe.
        self.readers.fetch_add(1, Ordering::SeqCst);
        self.inner.unlock(token);
        Some(())
    }

    #[inline]
    fn unlock_read(&self, _t: ()) {
        self.readers.fetch_sub(1, Ordering::SeqCst);
    }

    #[inline]
    fn write(&self) -> Self::WriteToken {
        let token = self.inner.lock();
        self.writer.store(true, Ordering::SeqCst);
        let mut spin = asl_runtime::relax::Spin::new();
        while self.readers.load(Ordering::SeqCst) != 0 {
            spin.relax();
        }
        token
    }

    #[inline]
    fn try_write(&self) -> Option<Self::WriteToken> {
        let token = self.inner.try_lock()?;
        self.writer.store(true, Ordering::SeqCst);
        if self.readers.load(Ordering::SeqCst) != 0 {
            self.writer.store(false, Ordering::SeqCst);
            self.inner.unlock(token);
            return None;
        }
        Some(token)
    }

    #[inline]
    fn unlock_write(&self, token: Self::WriteToken) {
        self.writer.store(false, Ordering::SeqCst);
        self.inner.unlock(token);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.readers.load(Ordering::Relaxed) != 0 || self.inner.is_locked()
    }

    #[inline]
    fn is_write_locked(&self) -> bool {
        self.writer.load(Ordering::Relaxed)
    }

    const NAME: &'static str = "libasl-rw";
}

#[cfg(test)]
// Unit read tokens are still tokens: passed explicitly to exercise
// the RawRwLock protocol.
#[allow(clippy::let_unit_value)]
mod tests {
    use super::*;
    use asl_locks::api::GuardedRwLock;
    use asl_locks::TicketLock;
    use std::sync::Arc;

    #[test]
    fn readers_batch_writers_exclude() {
        let l = AslRwLock::default();
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(l.reader_count(), 2);
        assert!(l.try_write().is_none(), "readers block writers");
        l.unlock_read(r1);
        l.unlock_read(r2);
        let w = l.try_write().expect("drained batch admits writer");
        assert!(l.is_write_locked());
        assert!(l.try_read().is_none(), "writer blocks readers");
        l.unlock_write(w);
        assert!(!l.is_locked());
    }

    #[test]
    fn alternative_substrates_compose() {
        let l = AslRwLock::new(TicketLock::new());
        let r = l.read();
        l.unlock_read(r);
        let w = l.write();
        l.unlock_write(w);
        assert!(!l.is_locked());
    }

    #[test]
    fn guard_api_composes() {
        let l = AslRwLock::default();
        {
            let _r = l.read_guard();
            let _r2 = l.try_read_guard().expect("reads overlap");
            assert!(l.try_write_guard().is_none());
        }
        {
            let _w = l.write_guard();
            assert!(l.try_read_guard().is_none());
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn concurrent_mixed_workload_is_race_free() {
        struct Shared {
            lock: AslRwLock,
            value: std::cell::UnsafeCell<u64>,
        }
        unsafe impl Sync for Shared {}
        let s = Arc::new(Shared {
            lock: AslRwLock::default(),
            value: std::cell::UnsafeCell::new(0),
        });
        let mut handles = vec![];
        for i in 0..4u64 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for n in 0..2_000u64 {
                    if (n + i) % 4 == 0 {
                        let t = s.lock.write();
                        unsafe { *s.value.get() += 1 };
                        s.lock.unlock_write(t);
                    } else {
                        let t = s.lock.read();
                        let v = unsafe { std::ptr::read_volatile(s.value.get()) };
                        assert!(v <= 2_000);
                        s.lock.unlock_read(t);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *s.value.get() }, 2_000);
        assert!(!s.lock.is_locked());
    }

    #[test]
    fn dyn_facade_covers_asl_rwlock() {
        use asl_locks::api::DynRwLock;
        let l = DynRwLock::of(AslRwLock::default());
        {
            let _r = l.read();
            let _r2 = l.read();
            assert!(l.try_write().is_none());
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none());
        }
        assert!(!l.is_locked());
        assert_eq!(l.name(), "libasl-rw");
    }
}
