//! Process-global LibASL configuration.
//!
//! Mirrors the constants of the paper's Algorithms 1–3:
//!
//! * `PCT` — the percentile the SLO refers to (paper line 9:
//!   `#define PCT 99`; "other percentiles are also supported").
//! * `MAX_WINDOW` — the upper bound on any reorder window, which makes
//!   the reorderable lock starvation-free and serves as the default
//!   window outside epochs (the paper's evaluation uses 100 ms).
//! * Default initial window/unit for fresh epochs ("we give a default
//!   size to both; they will quickly adjust themselves").

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

static PCT: AtomicU8 = AtomicU8::new(99);
static MAX_WINDOW_NS: AtomicU64 = AtomicU64::new(100_000_000); // 100 ms
static DEFAULT_WINDOW_NS: AtomicU64 = AtomicU64::new(10_000); // 10 µs
static UNIT_FLOOR_NS: AtomicU64 = AtomicU64::new(100);
/// 0 = adaptive (paper rule); otherwise the fixed unit in ns.
static GROWTH_UNIT_FIXED_NS: AtomicU64 = AtomicU64::new(0);

/// How the linear growth unit is derived (ablation knob; the paper
/// uses [`GrowthUnit::AdaptivePct`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthUnit {
    /// The paper's rule: `(100-PCT)% · window`, floored.
    AdaptivePct,
    /// A fixed unit in nanoseconds (ablation comparator).
    FixedNs(u64),
}

/// Set the growth-unit rule.
pub fn set_growth_unit(rule: GrowthUnit) {
    let v = match rule {
        GrowthUnit::AdaptivePct => 0,
        GrowthUnit::FixedNs(n) => n.max(1),
    };
    GROWTH_UNIT_FIXED_NS.store(v, Ordering::Relaxed);
}

/// The current growth-unit rule.
pub fn growth_unit() -> GrowthUnit {
    match GROWTH_UNIT_FIXED_NS.load(Ordering::Relaxed) {
        0 => GrowthUnit::AdaptivePct,
        n => GrowthUnit::FixedNs(n),
    }
}

/// Immutable snapshot of the configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AslConfig {
    /// Target percentile (e.g. 99 for P99 SLOs).
    pub pct: u8,
    /// Reorder-window upper bound (ns): starvation-freedom bound and
    /// the default window outside epochs.
    pub max_window_ns: u64,
    /// Initial reorder window for a fresh epoch (ns).
    pub default_window_ns: u64,
    /// Lower bound on the growth unit (ns); keeps the feedback loop
    /// able to grow back after collapsing to a zero window (the
    /// "falls back to FIFO" regime) once load lightens.
    pub unit_floor_ns: u64,
}

/// Read the current configuration.
pub fn current() -> AslConfig {
    AslConfig {
        pct: PCT.load(Ordering::Relaxed),
        max_window_ns: MAX_WINDOW_NS.load(Ordering::Relaxed),
        default_window_ns: DEFAULT_WINDOW_NS.load(Ordering::Relaxed),
        unit_floor_ns: UNIT_FLOOR_NS.load(Ordering::Relaxed),
    }
}

/// Set the SLO percentile (1..=99).
pub fn set_pct(pct: u8) {
    assert!((1..=99).contains(&pct), "pct must be in 1..=99");
    PCT.store(pct, Ordering::Relaxed);
}

/// The SLO percentile.
pub fn pct() -> u8 {
    PCT.load(Ordering::Relaxed)
}

/// Set the maximum reorder window (ns); must be positive.
pub fn set_max_window_ns(ns: u64) {
    assert!(ns > 0);
    MAX_WINDOW_NS.store(ns, Ordering::Relaxed);
}

/// Maximum reorder window (ns).
pub fn max_window_ns() -> u64 {
    MAX_WINDOW_NS.load(Ordering::Relaxed)
}

/// Set the initial window for fresh epochs (ns).
pub fn set_default_window_ns(ns: u64) {
    DEFAULT_WINDOW_NS.store(ns, Ordering::Relaxed);
}

/// Initial window for fresh epochs (ns).
pub fn default_window_ns() -> u64 {
    DEFAULT_WINDOW_NS.load(Ordering::Relaxed)
}

/// Set the growth-unit floor (ns).
pub fn set_unit_floor_ns(ns: u64) {
    UNIT_FLOOR_NS.store(ns, Ordering::Relaxed);
}

/// Growth-unit floor (ns).
pub fn unit_floor_ns() -> u64 {
    UNIT_FLOOR_NS.load(Ordering::Relaxed)
}

/// The growth unit derived from a window under an explicit rule.
pub fn unit_for_window_with(rule: GrowthUnit, window_ns: u64, pct: u8) -> u64 {
    match rule {
        GrowthUnit::AdaptivePct => (window_ns * (100 - pct as u64) / 100).max(unit_floor_ns()),
        GrowthUnit::FixedNs(n) => n.max(1),
    }
}

/// The growth unit derived from a window per the configured rule —
/// by default the paper's: `window * (100 - PCT) / 100`, floored so
/// recovery from a collapsed window stays possible.
pub fn unit_for_window(window_ns: u64, pct: u8) -> u64 {
    unit_for_window_with(growth_unit(), window_ns, pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = current();
        assert_eq!(c.pct, 99);
        assert_eq!(c.max_window_ns, 100_000_000);
    }

    #[test]
    fn unit_rule() {
        // PCT=99: unit is 1% of the window.
        assert_eq!(unit_for_window(1_000_000, 99), 10_000);
        // PCT=90: 10%.
        assert_eq!(unit_for_window(1_000_000, 90), 100_000);
        // Floor applies for tiny windows.
        assert_eq!(unit_for_window(0, 99), unit_floor_ns());
    }

    #[test]
    fn growth_unit_rules_pure() {
        // Pure variant: does not touch the global knob, so this test
        // cannot race other tests reading the configured rule.
        assert_eq!(
            unit_for_window_with(GrowthUnit::AdaptivePct, 1_000_000, 99),
            10_000
        );
        assert_eq!(
            unit_for_window_with(GrowthUnit::FixedNs(555), 1_000_000, 99),
            555
        );
        assert_eq!(unit_for_window_with(GrowthUnit::FixedNs(0), 1, 99), 1);
    }

    #[test]
    #[should_panic]
    fn pct_zero_rejected() {
        set_pct(0);
    }

    #[test]
    #[should_panic]
    fn pct_100_rejected() {
        set_pct(100);
    }
}
