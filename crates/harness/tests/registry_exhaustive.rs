//! Registry exhaustiveness: every catalogued lock spec must
//! round-trip through its printed name, materialize through both the
//! exclusive and reader-writer factories, and complete a real
//! critical section under a guard. A registry entry that fails any of
//! these is unreachable from the `repro` CLI, which is how every
//! experiment point in this repo is addressed.

use asl_harness::locks::{registry, LockSpec};

#[test]
fn every_entry_round_trips_through_its_name() {
    for entry in registry() {
        let name = entry.spec.to_string();
        let parsed: LockSpec = name
            .parse()
            .unwrap_or_else(|e| panic!("{name}: failed to parse its own Display form: {e}"));
        assert_eq!(parsed, entry.spec, "{name}: from_str(to_string) != spec");
        assert_eq!(
            parsed.to_string(),
            name,
            "{name}: Display not stable across the round-trip"
        );
        assert!(
            !entry.description.is_empty(),
            "{name}: registry entry needs a description"
        );
    }
}

#[test]
fn every_entry_constructs_and_locks_via_make_dyn() {
    for entry in registry() {
        let name = entry.spec.to_string();
        let lock = entry.spec.make_dyn();
        {
            let _held = lock.lock();
            assert!(lock.is_locked(), "{name}: guard must hold the lock");
            assert!(
                lock.try_lock().is_none(),
                "{name}: exclusive side must exclude"
            );
        }
        assert!(!lock.is_locked(), "{name}: dropping the guard must release");
        let held = lock.try_lock().unwrap_or_else(|| {
            panic!("{name}: free lock must try_lock");
        });
        held.unlock();
        assert!(!lock.is_locked(), "{name}");
    }
}

#[test]
fn every_entry_constructs_and_locks_via_make_dyn_rw() {
    for entry in registry() {
        let name = entry.spec.to_string();
        let lock = entry.spec.make_dyn_rw();
        // Read side first, on the fresh lock: overlaps for genuine rw
        // specs (BRAVO only guarantees overlap while reader bias is
        // on, which a writer revokes), degenerates — but still locks
        // and releases — for exclusive specs.
        {
            let _r = lock.read();
            assert!(lock.is_locked(), "{name}");
            if entry.spec.is_rw() {
                let r2 = lock
                    .try_read()
                    .unwrap_or_else(|| panic!("{name}: rw spec reads must overlap"));
                r2.unlock();
            } else {
                assert!(
                    lock.try_read().is_none(),
                    "{name}: exclusive spec reads must serialize"
                );
            }
            assert!(lock.try_write().is_none(), "{name}: reader excludes writer");
        }
        // Write side always excludes everyone.
        {
            let _w = lock.write();
            assert!(lock.is_locked(), "{name}");
            assert!(lock.try_write().is_none(), "{name}: writer excludes writer");
            assert!(lock.try_read().is_none(), "{name}: writer excludes reader");
        }
        // Post-writer read still works (possibly without overlap —
        // e.g. BRAVO before its bias re-enables).
        {
            let _r = lock.read();
            assert!(lock.is_locked(), "{name}");
        }
        assert!(!lock.is_locked(), "{name}: all guards released");
    }
}

#[test]
fn delegation_family_is_registered() {
    // The delegation locks reach the registry through the bridge
    // adapter; each must be listed (so `repro locks` shows it) and
    // must run a guard-shaped critical section.
    for name in ["flatcomb", "ccsynch", "rcl", "fc-ban"] {
        assert!(
            registry().iter().any(|e| e.spec.to_string() == name),
            "{name}: missing from the registry listing"
        );
        let spec: LockSpec = name.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
        let lock = spec.make_dyn();
        for _ in 0..3 {
            let held = lock.lock();
            assert!(lock.is_locked(), "{name}");
            held.unlock();
            assert!(!lock.is_locked(), "{name}");
        }
    }
}

#[test]
fn parameterized_families_stay_reachable_beyond_canonical_members() {
    // The registry lists canonical members of each parameterized
    // family; any other parameter must stay addressable by name.
    for name in [
        "libasl-123us",
        "libasl-clh-9ms",
        "libasl-opt-750ns",
        "libasl-blk-2ms",
        "libasl-rw-5us",
        "shfl-pb3",
        "shfl-local4",
        "tas-big-p77",
        "instrumented-adaptive",
        "instrumented-bravo-clh",
        "malthusian-16",
        "gcr-ticket",
        "gcr-libasl-70us",
        "instrumented-gcr-mcs",
    ] {
        let spec: LockSpec = name
            .parse()
            .unwrap_or_else(|e| panic!("{name}: must stay addressable: {e}"));
        assert_eq!(spec.to_string(), name, "{name}: round-trip");
        let lock = spec.make_dyn();
        {
            let _held = lock.lock();
            assert!(lock.is_locked(), "{name}");
        }
        assert!(!lock.is_locked(), "{name}");
    }
}

#[test]
fn every_registry_name_is_reachable_behind_the_gcr_wrapper() {
    // `gcr-` composes like `instrumented-`: any registry name must be
    // wrappable, round-trip through the prefixed spelling, and still
    // run a guard-shaped critical section through the admission gate.
    for entry in registry() {
        let name = format!("gcr-{}", entry.spec);
        let spec: LockSpec = name
            .parse()
            .unwrap_or_else(|e| panic!("{name}: must parse: {e}"));
        assert_eq!(spec.to_string(), name, "{name}: round-trip");
        assert!(!spec.is_rw(), "{name}: the gate serializes, never rw");
        let lock = spec.make_dyn();
        for _ in 0..2 {
            let held = lock.lock();
            assert!(lock.is_locked(), "{name}: guard must hold");
            held.unlock();
            assert!(!lock.is_locked(), "{name}: guard must release");
        }
        assert!(
            lock.try_lock().is_some(),
            "{name}: free wrapped lock must try_lock"
        );
    }
}

#[test]
fn malthusian_family_parses_any_period() {
    for name in ["malthusian", "malthusian-16", "malthusian-1024"] {
        let spec: LockSpec = name
            .parse()
            .unwrap_or_else(|e| panic!("{name}: must stay addressable: {e}"));
        assert_eq!(spec.to_string(), name, "{name}: round-trip");
        let lock = spec.make_dyn();
        {
            let _held = lock.lock();
            assert!(lock.is_locked(), "{name}");
        }
        assert!(!lock.is_locked(), "{name}");
    }
    assert!(
        "malthusian-0".parse::<LockSpec>().is_err(),
        "a zero culling period must be rejected, not wrapped"
    );
}
