//! The three named adversarial schedules as exact deterministic
//! tests (ISSUE 10 acceptance): each runs on the simulated machine,
//! must pass every invariant oracle, and must replay byte-identically
//! from its seed.

use asl_harness::torture::{
    run_sim_sweep, schedule_gcr_spurious, schedule_holder_preemption, schedule_panic_delegated,
    BoutReport, TortureOpts,
};

fn assert_green_and_replayable(name: &str, a: BoutReport, b: BoutReport) {
    assert!(a.passed(), "{name}: oracle failed:\n{}", a.render());
    assert_eq!(
        a.render(),
        b.render(),
        "{name}: schedule is not replayable from its seed"
    );
}

/// Schedule 1: the MCS holder is stalled mid-handover (poll and wake
/// boundaries both fire). FIFO hand-off order must survive exactly,
/// nobody starves, mutual exclusion holds.
#[test]
fn holder_preemption_mid_handover() {
    let a = schedule_holder_preemption(1009);
    let b = schedule_holder_preemption(1009);
    let fifo = a
        .oracles
        .iter()
        .find(|o| o.name == "fifo")
        .expect("fifo oracle");
    assert!(
        fifo.pass,
        "fifo violated under holder stalls: {}",
        fifo.detail
    );
    assert_green_and_replayable("holder-preemption", a, b);
}

/// Schedule 2: every second park returns spuriously while GCR's
/// reintroduction keeps force-admitting passive waiters. The
/// admission bound must hold (modulo force-admit overshoot) and the
/// reintroduction path must actually exercise.
#[test]
fn spurious_wake_during_gcr_reintroduction() {
    let a = schedule_gcr_spurious(2003);
    let b = schedule_gcr_spurious(2003);
    // The schedule is pointless if spurious wakes never fired.
    assert!(
        a.faults.contains("spurious=") && !a.faults.contains("spurious=0 "),
        "no spurious wakes injected: {}",
        a.faults
    );
    assert_green_and_replayable("gcr-spurious-reintroduction", a, b);
}

/// Schedule 3: a planned panic fires inside a delegated op on the
/// combiner's stack. Exactly one submitter sees it re-raised, the
/// combiner and the shared state survive.
#[test]
fn panic_inside_delegated_op() {
    let a = schedule_panic_delegated(3001);
    let b = schedule_panic_delegated(3001);
    let delivered = a
        .oracles
        .iter()
        .find(|o| o.name == "panic-delivered")
        .expect("panic oracle");
    assert!(
        delivered.pass,
        "panic not delivered exactly once: {}",
        delivered.detail
    );
    assert_green_and_replayable("panic-in-delegated-op", a, b);
}

/// The full quick sim sweep (what CI's torture-smoke runs) passes and
/// replays byte-identically — the `--seed` contract end to end.
#[test]
fn quick_sim_sweep_is_green_and_byte_stable() {
    let opts = TortureOpts {
        seed: 42,
        quick: true,
        sim: true,
        os: false,
        lock: None,
        out: std::path::PathBuf::new(),
    };
    let a = run_sim_sweep(&opts);
    let b = run_sim_sweep(&opts);
    assert!(!a.is_empty());
    for (x, y) in a.iter().zip(&b) {
        assert!(x.passed(), "{}: oracle failed:\n{}", x.title, x.render());
        assert_eq!(x.render(), y.render(), "{} not replayable", x.title);
    }
}
