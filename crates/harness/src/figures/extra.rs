//! Experiments beyond the paper's plotted figures that reproduce its
//! *claims*:
//!
//! * `sec2-numa` — §2.2 asserts (without a figure) that NUMA-aware /
//!   long-term-fair locks collapse on AMP exactly like MCS once
//!   little cores join. We run CNA, cohort, Malthusian and the
//!   shuffle framework's class-local policy through the Figure-1 scan
//!   to show it.
//! * `sec5-delegation` — §5 argues delegation locks can hide slow
//!   little cores by executing every critical section on a big core,
//!   at the cost of burning that core at low contention. We compare
//!   flat combining and a dedicated big-core server against MCS and
//!   LibASL-MAX at high and low contention.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use asl_locks::flatcomb::{DedicatedServer, FlatCombiner};
use asl_runtime::clock::now_ns;
use asl_runtime::registry::register_on_core;
use asl_runtime::spawn::run_on_topology_with_stop;
use asl_runtime::topology::{CoreId, Topology};
use asl_runtime::work::execute_units;
use asl_runtime::CacheLineArena;

use crate::hist::Hist;
use crate::locks::LockSpec;
use crate::report::{fmt_ops, fmt_us, Table};
use crate::scenario::{MicroScenario, CS_UNITS_PER_LINE, FIG1_LINES, FIG1_NCS_UNITS};

use super::{run_micro, Profile};

/// §2.2: the NUMA-lock lineup on the Figure-1 workload. All the
/// fairness-preserving designs should track MCS's throughput collapse
/// past 4 threads, while LibASL-MAX holds its 4-thread throughput.
pub fn sec2_numa(profile: &Profile) -> Vec<Table> {
    let specs = [
        LockSpec::Mcs,
        LockSpec::Cna,
        LockSpec::Cohort,
        LockSpec::Malthusian(None),
        LockSpec::ShuffleClassLocal { max_skips: 16 },
        LockSpec::asl(None),
    ];
    let mut cols: Vec<String> = vec!["threads".into()];
    for s in &specs {
        cols.push(format!("{}_thpt_ops_s", s.label()));
        cols.push(format!("{}_p99_us", s.label()));
    }
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "sec2-numa",
        "NUMA-aware and long-term-fair locks collapse on AMP (§2.2 claim)",
        &col_refs,
    );
    for threads in 1..=8usize {
        let mut row = vec![threads.to_string()];
        for spec in &specs {
            let scenario = MicroScenario::simple(spec, FIG1_LINES, FIG1_NCS_UNITS);
            let r = run_micro(profile, &scenario, threads);
            row.push(format!("{:.0}", r.throughput));
            row.push(fmt_us(r.overall.p99()));
        }
        table.push_row(row);
    }
    table.note("Figure-1 workload (RMW 4 lines); big/little classes play the NUMA nodes");
    vec![table]
}

const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Which delegation structure to drive.
#[derive(Clone, Copy)]
enum DelegationMode {
    /// Classic flat combining (any thread may combine).
    FlatCombining,
    /// Dedicated server thread spinning on big core 0.
    Server,
}

/// Outcome of one delegation run.
struct DelegationResult {
    throughput: f64,
    p99_ns: u64,
}

/// Timed delegation run: workers submit one `lines`-line critical
/// section per op and think `ncs_units` between ops.
fn run_delegation(
    profile: &Profile,
    mode: DelegationMode,
    lines: usize,
    ncs_units: u64,
) -> DelegationResult {
    let topo = Topology::apple_m1();
    let arena = Arc::new(CacheLineArena::new(lines.max(1)));
    let phase = Arc::new(AtomicU8::new(PHASE_WARMUP));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let measured_ns = Arc::new(AtomicU64::new(0));

    let controller = {
        let phase = phase.clone();
        let stop = stop.clone();
        let measured_ns = measured_ns.clone();
        let warmup = std::time::Duration::from_millis(profile.warmup_ms);
        let duration = std::time::Duration::from_millis(profile.duration_ms);
        std::thread::spawn(move || {
            std::thread::sleep(warmup);
            let t0 = now_ns();
            // Ordering audit: measurement-protocol flags, polled with
            // relaxed loads by the workers; `measured_ns` is read only
            // after `controller.join()` below, which orders it.
            phase.store(PHASE_MEASURE, Ordering::Relaxed);
            std::thread::sleep(duration);
            phase.store(PHASE_DONE, Ordering::Relaxed);
            measured_ns.store(now_ns() - t0, Ordering::Relaxed);
            stop.store(true, Ordering::Relaxed);
        })
    };

    let apply = {
        let arena = arena.clone();
        move |_: &mut (), _op: u64| {
            arena.rmw(0, lines);
            // Runs on the *executor's* core: a big-core server hides
            // little-core slowness; a little-core combiner slows
            // everyone down.
            execute_units(lines as u64 * CS_UNITS_PER_LINE);
        }
    };

    struct WorkerOut {
        ops: u64,
        hist: Hist,
    }

    let outs: Vec<WorkerOut> = match mode {
        DelegationMode::FlatCombining => {
            let fc = FlatCombiner::new((), apply);
            let handles: Vec<_> = (0..8).map(|_| fc.register()).collect();
            let handles = std::sync::Mutex::new(handles.into_iter().map(Some).collect::<Vec<_>>());
            let phase_ref = &phase;
            let outs = run_on_topology_with_stop(&topo, 8, profile.pin, stop.clone(), |ctx| {
                let h = handles.lock().unwrap()[ctx.index].take().expect("slot");
                let mut hist = Hist::new();
                let mut ops = 0u64;
                while phase_ref.load(Ordering::Relaxed) != PHASE_DONE {
                    let recording = phase_ref.load(Ordering::Relaxed) == PHASE_MEASURE;
                    let t0 = now_ns();
                    h.apply(0);
                    let lat = now_ns() - t0;
                    if recording {
                        ops += 1;
                        hist.record(lat);
                    }
                    execute_units(ncs_units);
                }
                WorkerOut { ops, hist }
            });
            outs
        }
        DelegationMode::Server => {
            let srv = Arc::new(DedicatedServer::new((), apply));
            // The server burns big core 0; clients use cores 1..=7
            // (3 big + 4 little) — the "wastes a precious big core"
            // configuration.
            let server_thread = {
                let srv = srv.clone();
                let topo = topo.clone();
                std::thread::spawn(move || {
                    register_on_core(&topo, CoreId(0));
                    if let Some(cpu) = topo.core(CoreId(0)).os_cpu {
                        let _ = asl_runtime::affinity::pin_to_cpu(cpu);
                    }
                    srv.serve();
                })
            };
            let handles: Vec<_> = (0..7).map(|_| srv.register()).collect();
            let handles = std::sync::Mutex::new(handles.into_iter().map(Some).collect::<Vec<_>>());
            // Workers fill cores 1..=7 (shift by one so none shares
            // the server's core).
            let client_topo = {
                let mut cores = topo.clone();
                let _ = &mut cores;
                topo.clone()
            };
            let phase_ref = &phase;
            let outs = run_on_topology_with_stop(
                &client_topo,
                7,
                false, // manual shifted pinning below
                stop.clone(),
                |ctx| {
                    // Shifted placement: worker i -> core i+1.
                    let shifted = CoreId(ctx.index + 1);
                    let a = register_on_core(&client_topo, shifted);
                    if profile.pin {
                        if let Some(cpu) = client_topo.core(shifted).os_cpu {
                            let _ = asl_runtime::affinity::pin_to_cpu(cpu);
                        }
                    }
                    let _ = a;
                    let h = handles.lock().unwrap()[ctx.index].take().expect("slot");
                    let mut hist = Hist::new();
                    let mut ops = 0u64;
                    while phase_ref.load(Ordering::Relaxed) != PHASE_DONE {
                        let recording = phase_ref.load(Ordering::Relaxed) == PHASE_MEASURE;
                        let t0 = now_ns();
                        h.apply(0);
                        let lat = now_ns() - t0;
                        if recording {
                            ops += 1;
                            hist.record(lat);
                        }
                        execute_units(ncs_units);
                    }
                    WorkerOut { ops, hist }
                },
            );
            srv.shutdown();
            server_thread.join().expect("server panicked");
            outs
        }
    };

    controller.join().expect("controller panicked");
    // Relaxed: the join above provides the happens-before edge (the
    // pre-join load this replaces could race the controller's store).
    let elapsed = measured_ns.load(Ordering::Relaxed);
    let mut hist = Hist::new();
    let mut total = 0u64;
    for o in &outs {
        hist.merge(&o.hist);
        total += o.ops;
    }
    DelegationResult {
        throughput: total as f64 / (elapsed.max(1) as f64 / 1e9),
        p99_ns: hist.p99(),
    }
}

/// §5: delegation vs LibASL at high and low contention.
pub fn sec5_delegation(profile: &Profile) -> Vec<Table> {
    let lines = FIG1_LINES;
    let mut table = Table::new(
        "sec5-delegation",
        "delegation comparators (§5): big-core server helps under contention, wastes a core otherwise",
        &["contention", "structure", "thpt", "thpt_ops_s", "p99_us"],
    );
    // High contention: Figure-1 think time; low contention: 100x it.
    for (label, ncs) in [("high", FIG1_NCS_UNITS), ("low", FIG1_NCS_UNITS * 100)] {
        let fc = run_delegation(profile, DelegationMode::FlatCombining, lines, ncs);
        table.push_row(vec![
            label.into(),
            "flat-combining".into(),
            fmt_ops(fc.throughput),
            format!("{:.0}", fc.throughput),
            fmt_us(fc.p99_ns),
        ]);
        let srv = run_delegation(profile, DelegationMode::Server, lines, ncs);
        table.push_row(vec![
            label.into(),
            "delegation-server".into(),
            fmt_ops(srv.throughput),
            format!("{:.0}", srv.throughput),
            fmt_us(srv.p99_ns),
        ]);
        for spec in [LockSpec::Mcs, LockSpec::asl(None)] {
            let scenario = MicroScenario::simple(&spec, lines, ncs);
            let r = run_micro(profile, &scenario, 8);
            table.push_row(vec![
                label.into(),
                spec.label(),
                fmt_ops(r.throughput),
                format!("{:.0}", r.throughput),
                fmt_us(r.overall.p99()),
            ]);
        }
    }
    table.note("server config: dedicated big core 0 + 7 clients; others use all 8 cores");
    table.note("delegation executes every CS at executor speed; conversion cost not modeled");
    vec![table]
}
