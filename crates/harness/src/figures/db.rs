//! Figures 9 and 10: the five database benchmarks, plus the §4.2
//! alternative-topology experiment.
//!
//! Each database gets the paper's trio of sub-figures:
//!   (a) lock comparison bars, (b) a variant-SLO sweep, (c) a latency
//! CDF at a representative SLO. The TAS affinity per engine follows
//! the paper's observations (big-core affinity everywhere except
//! SQLite, where the paper reports little-core affinity).

use std::sync::Arc;

use asl_dbsim::{kyoto::Kyoto, leveldb::LevelDb, lmdb::Lmdb, sqlite::Sqlite, upscale::UpscaleDb};
use asl_dbsim::{Engine, LockFactory};
use asl_locks::plain::PlainLock;
use asl_runtime::{AtomicAffinity, Topology};

use crate::locks::LockSpec;
use crate::report::{fmt_us, Table};
use crate::runner::run_timed_with_setup;

use super::micro::{comparison_row, COMPARISON_COLS};
use super::{seed_tls_rng, with_tls_rng, Profile};

/// A lock-spec-backed factory: every lock an engine asks for is a
/// fresh instance of the same spec (the paper relinks the whole
/// binary against one lock library at a time). Reader-writer specs
/// hand the engines genuine rwlocks through `make_rw`; exclusive
/// specs degenerate shared guards to exclusive acquisitions. The
/// labeled variants fold the spec into the engine's lock name
/// (`kyoto.slot[mcs]`), so `repro --profile` stats tables attribute
/// contention to both the engine lock and the substrate under it.
pub(crate) struct SpecFactory(pub(crate) LockSpec);

impl LockFactory for SpecFactory {
    fn make(&self) -> Arc<dyn PlainLock> {
        self.0.make_lock()
    }

    fn make_rw(&self) -> Arc<dyn asl_locks::PlainRwLock> {
        self.0.make_rw_lock()
    }

    fn make_labeled(&self, label: &'static str) -> Arc<dyn PlainLock> {
        asl_locks::telemetry::maybe_instrument(
            &format!("{label}[{}]", self.0.label()),
            self.0.make_lock_raw(),
        )
    }

    fn make_rw_labeled(&self, label: &'static str) -> Arc<dyn asl_locks::PlainRwLock> {
        asl_locks::telemetry::maybe_instrument_rw(
            &format!("{label}[{}]", self.0.label()),
            self.0.make_rw_lock_raw(),
        )
    }
}

/// Engine constructor used by the drivers.
type MakeEngine = fn(&dyn LockFactory) -> Arc<dyn Engine>;

fn make_kyoto(f: &dyn LockFactory) -> Arc<dyn Engine> {
    Arc::new(Kyoto::with_default_size(f))
}
fn make_upscale(f: &dyn LockFactory) -> Arc<dyn Engine> {
    Arc::new(UpscaleDb::new(f))
}
fn make_lmdb(f: &dyn LockFactory) -> Arc<dyn Engine> {
    Arc::new(Lmdb::new(f))
}
fn make_leveldb(f: &dyn LockFactory) -> Arc<dyn Engine> {
    Arc::new(LevelDb::with_default_size(f))
}
fn make_sqlite(f: &dyn LockFactory) -> Arc<dyn Engine> {
    Arc::new(Sqlite::with_default_size(f))
}

/// Run one engine × lock-spec point: every request is one epoch
/// (wrapped with the spec's SLO when it has one). Shared by the
/// Fig. 9/10 drivers and the `rw` read-mostly figure.
pub(crate) fn run_engine_point(
    profile: &Profile,
    topology: Topology,
    engine: Arc<dyn Engine>,
    spec: &LockSpec,
    threads: usize,
) -> crate::runner::RunResult {
    let cfg = profile.config_on(topology, threads);
    let slo = spec.epoch_slo();
    run_timed_with_setup(
        &cfg,
        |ctx| {
            asl_core::epoch::reset_thread_epochs();
            seed_tls_rng(ctx.index);
        },
        move |_| match slo {
            Some(slo) => {
                let (_, lat) = asl_core::epoch::with_epoch_timed(0, slo, || {
                    with_tls_rng(|rng| engine.run_request(rng));
                });
                lat
            }
            None => {
                let t0 = asl_runtime::clock::now_ns();
                with_tls_rng(|rng| engine.run_request(rng));
                asl_runtime::clock::now_ns() - t0
            }
        },
    )
}

/// [`run_engine_point`] with the engine built fresh from the spec.
fn run_db_point(
    profile: &Profile,
    topology: Topology,
    make: MakeEngine,
    spec: &LockSpec,
    threads: usize,
) -> crate::runner::RunResult {
    let engine = make(&SpecFactory(spec.clone()));
    run_engine_point(profile, topology, engine, spec, threads)
}

/// The paper's trio for one database: comparison bars, SLO sweep,
/// latency CDF.
fn db_trio(
    profile: &Profile,
    id: &str,
    name: &str,
    make: MakeEngine,
    affinity: AtomicAffinity,
) -> Vec<Table> {
    let topo = Topology::apple_m1;

    // The engine's internal lock names: `--profile` stats rows are
    // filed under `<label>[<spec>]`, so the note tells readers which
    // rows belong to this figure's engine.
    let lock_labels = make(&SpecFactory(LockSpec::Mcs)).lock_labels().join(", ");

    // Anchor on the measured MCS P99 for this engine.
    let anchor = run_db_point(profile, topo(), make, &LockSpec::Mcs, 8)
        .overall
        .p99()
        .max(1_000);
    let slo_lo = anchor * 3 / 2;
    let slo_hi = anchor * 3;

    // (a) comparison bars.
    let specs = vec![
        LockSpec::Pthread,
        LockSpec::Tas(affinity),
        LockSpec::Ticket,
        LockSpec::ShflPb(10),
        LockSpec::Mcs,
        LockSpec::asl(Some(0)),
        LockSpec::asl(Some(slo_lo)),
        LockSpec::asl(Some(slo_hi)),
        LockSpec::asl(None),
    ];
    let mut bars = Table::new(
        &format!("{id}a"),
        &format!("{name}: lock comparison"),
        &COMPARISON_COLS,
    );
    for spec in &specs {
        let r = run_db_point(profile, topo(), make, spec, 8);
        bars.push_row(comparison_row(&spec.label(), &r));
        bars.push_sample(&spec.label(), 8, r.throughput);
    }
    bars.note(format!(
        "SLO anchor: measured MCS P99 = {}us; LibASL SLOs at 1.5x/3x anchor",
        anchor / 1_000
    ));
    bars.note(format!(
        "engine locks (telemetry labels under --profile): {lock_labels}"
    ));

    // (b) variant SLOs.
    let mut sweep = Table::new(
        &format!("{id}b"),
        &format!("{name}: variant SLOs"),
        &[
            "slo_us",
            "big_p99_us",
            "little_p99_us",
            "overall_p99_us",
            "thpt_ops_s",
        ],
    );
    let steps = 8u64;
    for i in 0..=steps {
        let slo = anchor * 4 * i / steps;
        let spec = LockSpec::asl(Some(slo));
        let r = run_db_point(profile, topo(), make, &spec, 8);
        sweep.push_row(vec![
            format!("{:.1}", slo as f64 / 1_000.0),
            fmt_us(r.big.p99()),
            fmt_us(r.little.p99()),
            fmt_us(r.overall.p99()),
            format!("{:.0}", r.throughput),
        ]);
        sweep.push_sample(&spec.label(), 8, r.throughput);
    }

    // (c) CDF at the representative SLO.
    let r = run_db_point(profile, topo(), make, &LockSpec::asl(Some(slo_hi)), 8);
    let mut cdf = Table::new(
        &format!("{id}c"),
        &format!("{name}: latency CDF at SLO {}us", slo_hi / 1_000),
        &["latency_us", "overall_cum", "little_cum"],
    );
    // Sample the CDF on a fixed grid up to 1.5x SLO.
    let grid = 30u64;
    for i in 1..=grid {
        let v = slo_hi * 3 / 2 * i / grid;
        cdf.push_row(vec![
            format!("{:.1}", v as f64 / 1_000.0),
            format!("{:.3}", r.overall.fraction_below(v)),
            format!("{:.3}", r.little.fraction_below(v)),
        ]);
    }
    cdf.note(format!(
        "little P99 = {}us vs SLO {}us; half-SLO boundary per paper Fig. 9c",
        r.little.p99() / 1_000,
        slo_hi / 1_000
    ));

    vec![bars, sweep, cdf]
}

/// Figure 9a/9b/9c — Kyoto Cabinet.
pub fn fig9_kyoto(profile: &Profile) -> Vec<Table> {
    db_trio(
        profile,
        "fig9-kyoto-",
        "kyoto cabinet",
        make_kyoto,
        AtomicAffinity::big_wins(),
    )
}

/// Figure 9d/9e/9f — upscaledb.
pub fn fig9_upscale(profile: &Profile) -> Vec<Table> {
    db_trio(
        profile,
        "fig9-upscale-",
        "upscaledb",
        make_upscale,
        AtomicAffinity::big_wins(),
    )
}

/// Figure 9g/9h/9i — LMDB.
pub fn fig9_lmdb(profile: &Profile) -> Vec<Table> {
    db_trio(
        profile,
        "fig9-lmdb-",
        "lmdb",
        make_lmdb,
        AtomicAffinity::big_wins(),
    )
}

/// Figure 10a/10b/10c — LevelDB (random read).
pub fn fig10_leveldb(profile: &Profile) -> Vec<Table> {
    db_trio(
        profile,
        "fig10-leveldb-",
        "leveldb",
        make_leveldb,
        AtomicAffinity::big_wins(),
    )
}

/// Figure 10d/10e/10f — SQLite (the paper reports little-core TAS
/// affinity here).
pub fn fig10_sqlite(profile: &Profile) -> Vec<Table> {
    db_trio(
        profile,
        "fig10-sqlite-",
        "sqlite",
        make_sqlite,
        AtomicAffinity::little_wins(),
    )
}

/// §4.2: LibASL's improvement is not M1-specific — rerun one database
/// comparison on Hikey970-like and Intel-DVFS-like topologies.
pub fn alt_topology(profile: &Profile) -> Vec<Table> {
    let mut table = Table::new(
        "alt-topology",
        "LibASL vs MCS on other AMP topologies (upscaledb)",
        &[
            "topology",
            "mcs_thpt",
            "libasl_thpt",
            "speedup",
            "libasl_little_p99_us",
        ],
    );
    for topo in [
        Topology::apple_m1(),
        Topology::hikey970(),
        Topology::intel_dvfs(),
    ] {
        let name = topo.name();
        let mcs = run_db_point(profile, topo.clone(), make_upscale, &LockSpec::Mcs, 8);
        let anchor = mcs.overall.p99().max(1_000);
        let asl = run_db_point(
            profile,
            topo,
            make_upscale,
            &LockSpec::asl(Some(anchor * 3)),
            8,
        );
        table.push_row(vec![
            name.to_string(),
            format!("{:.0}", mcs.throughput),
            format!("{:.0}", asl.throughput),
            format!("{:.2}", asl.throughput / mcs.throughput.max(1.0)),
            fmt_us(asl.little.p99()),
        ]);
    }
    table.note("SLO = 3x measured MCS P99 per topology (paper reports 34-94% gains)");
    vec![table]
}
