//! `delegation` — ASL reordering vs the delegation family on a
//! skewed-hold-time workload.
//!
//! One *hog* worker holds the lock 10× longer than everyone else —
//! the regime where the §5 trade-off between SLO-aware reordering and
//! delegation actually bites. Delegation executes the hog's long
//! critical section at executor speed but lets it re-enter
//! immediately; the usage-fair banning combiner (`fc-ban`) charges
//! the hog its overage instead. For every lock we report throughput
//! plus the per-thread fairness spread: the hog's share of completed
//! ops and the min/max share across workers (an even spread is
//! 1/threads each; a classic combiner lets the hog starve the rest of
//! lock *time* while op shares stay deceptively flat, so the ban
//! shows up as the hog's share dropping below its unbanned value).
//!
//! The sweep crosses {mcs, libasl-100us, libasl-max, flatcomb,
//! ccsynch, rcl, fc-ban} × thread counts; `--out` lands the samples
//! in `BENCH_delegation.json` (`<lock>` rows carry ops/s;
//! `<lock>@share=hog|min|max` and `<lock>@usage=hog` rows carry
//! share fractions, not ops/s).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use asl_core::epoch;
use asl_locks::delegation::DelegationHandle;
use asl_locks::{CcSynch, FcBan, FlatCombiner, RclLock};
use asl_runtime::clock::now_ns;
use asl_runtime::registry::register_on_core;
use asl_runtime::spawn::run_on_topology_with_stop;
use asl_runtime::topology::{CoreId, Topology};
use asl_runtime::work::execute_units;
use asl_runtime::CacheLineArena;

use crate::locks::LockSpec;
use crate::report::{fmt_ops, Table};
use crate::scenario::{CS_UNITS_PER_LINE, FIG1_LINES, FIG1_NCS_UNITS};

use super::Profile;

pub(crate) const PHASE_WARMUP: u8 = 0;
pub(crate) const PHASE_MEASURE: u8 = 1;
pub(crate) const PHASE_DONE: u8 = 2;

/// The hog's critical sections are this many times longer.
const HOG_FACTOR: u64 = 10;

/// Per-worker measured op counts plus the measured wall time.
struct RunOut {
    per_worker: Vec<u64>,
    elapsed_ns: u64,
}

impl RunOut {
    fn throughput(&self) -> f64 {
        let total: u64 = self.per_worker.iter().sum();
        total as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    /// (hog, min, max) shares of completed ops. Worker 0 is the hog.
    fn shares(&self) -> (f64, f64, f64) {
        let total: u64 = self.per_worker.iter().sum();
        let total = total.max(1) as f64;
        let hog = self.per_worker.first().copied().unwrap_or(0) as f64 / total;
        let min = self.per_worker.iter().min().copied().unwrap_or(0) as f64 / total;
        let max = self.per_worker.iter().max().copied().unwrap_or(0) as f64 / total;
        (hog, min, max)
    }

    /// The hog's share of *lock usage* (CS time): its ops are
    /// `HOG_FACTOR`× longer, so weight them accordingly. This is the
    /// quantity usage-fair banning drives toward 1/threads.
    fn hog_usage(&self) -> f64 {
        let hog = self.per_worker.first().copied().unwrap_or(0) * HOG_FACTOR;
        let rest: u64 = self.per_worker.iter().skip(1).sum();
        hog as f64 / ((hog + rest).max(1)) as f64
    }
}

/// Warmup → measure → done phase driver (same protocol as the
/// `sec5-delegation` figure; the `collapse` figure shares it).
pub(crate) struct Controller {
    pub(crate) phase: Arc<AtomicU8>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) measured_ns: Arc<AtomicU64>,
    pub(crate) join: std::thread::JoinHandle<()>,
}

pub(crate) fn start_controller(profile: &Profile) -> Controller {
    let phase = Arc::new(AtomicU8::new(PHASE_WARMUP));
    let stop = Arc::new(AtomicBool::new(false));
    let measured_ns = Arc::new(AtomicU64::new(0));
    let join = {
        let phase = phase.clone();
        let stop = stop.clone();
        let measured_ns = measured_ns.clone();
        let warmup = std::time::Duration::from_millis(profile.warmup_ms);
        let duration = std::time::Duration::from_millis(profile.duration_ms);
        std::thread::spawn(move || {
            std::thread::sleep(warmup);
            let t0 = now_ns();
            // Relaxed protocol flags; `measured_ns` is read only after
            // join(), which orders it.
            phase.store(PHASE_MEASURE, Ordering::Relaxed);
            std::thread::sleep(duration);
            phase.store(PHASE_DONE, Ordering::Relaxed);
            measured_ns.store(now_ns() - t0, Ordering::Relaxed);
            stop.store(true, Ordering::Relaxed);
        })
    };
    Controller {
        phase,
        stop,
        measured_ns,
        join,
    }
}

/// Drive pre-registered delegation handles: worker `i` submits ops of
/// `base_units` (worker 0: `HOG_FACTOR`×) and thinks `think_units`
/// between ops. Workers land on cores `shift..` so an RCL server can
/// keep core 0 to itself.
fn drive_handles<H>(
    profile: &Profile,
    topo: &Topology,
    handles: Vec<H>,
    shift: usize,
    base_units: u64,
    think_units: u64,
) -> RunOut
where
    H: DelegationHandle<Op = u64, Out = ()> + Send + 'static,
{
    let n = handles.len();
    let ctl = start_controller(profile);
    let handles = Mutex::new(handles.into_iter().map(Some).collect::<Vec<_>>());
    let phase_ref = &ctl.phase;
    let per_worker = run_on_topology_with_stop(
        topo,
        n,
        false, // manual (possibly shifted) pinning below
        ctl.stop.clone(),
        |ctx| {
            let core = CoreId((ctx.index + shift) % topo.cores().len());
            register_on_core(topo, core);
            if profile.pin {
                if let Some(cpu) = topo.core(core).os_cpu {
                    let _ = asl_runtime::affinity::pin_to_cpu(cpu);
                }
            }
            let units = if ctx.index == 0 {
                base_units * HOG_FACTOR
            } else {
                base_units
            };
            let h = handles.lock().unwrap()[ctx.index].take().expect("handle");
            let mut ops = 0u64;
            while phase_ref.load(Ordering::Relaxed) != PHASE_DONE {
                let recording = phase_ref.load(Ordering::Relaxed) == PHASE_MEASURE;
                h.apply(units);
                if recording {
                    ops += 1;
                }
                execute_units(think_units);
            }
            ops
        },
    );
    ctl.join.join().expect("controller panicked");
    RunOut {
        per_worker,
        elapsed_ns: ctl.measured_ns.load(Ordering::Relaxed),
    }
}

/// Drive a registry spec through the guard API on the same workload
/// (epoch-wrapped when the spec carries an SLO).
fn drive_spec(
    profile: &Profile,
    topo: &Topology,
    spec: &LockSpec,
    n: usize,
    base_units: u64,
    think_units: u64,
) -> RunOut {
    let lock = spec.make_dyn();
    let arena = Arc::new(CacheLineArena::new(FIG1_LINES));
    let slo = spec.epoch_slo();
    let ctl = start_controller(profile);
    let phase_ref = &ctl.phase;
    let lock_ref = &lock;
    let arena_ref = &arena;
    let per_worker = run_on_topology_with_stop(topo, n, profile.pin, ctl.stop.clone(), |ctx| {
        let units = if ctx.index == 0 {
            base_units * HOG_FACTOR
        } else {
            base_units
        };
        let critical = || {
            let _held = lock_ref.lock();
            arena_ref.rmw(0, FIG1_LINES);
            execute_units(units);
        };
        let mut ops = 0u64;
        while phase_ref.load(Ordering::Relaxed) != PHASE_DONE {
            let recording = phase_ref.load(Ordering::Relaxed) == PHASE_MEASURE;
            match slo {
                Some(slo) => epoch::with_epoch(0, slo, critical),
                None => critical(),
            }
            if recording {
                ops += 1;
            }
            execute_units(think_units);
        }
        ops
    });
    ctl.join.join().expect("controller panicked");
    RunOut {
        per_worker,
        elapsed_ns: ctl.measured_ns.load(Ordering::Relaxed),
    }
}

/// Build the op-apply function every delegation lock in the sweep
/// runs: same cache-line RMW + emulated work as the guard path.
fn delegated_apply(arena: Arc<CacheLineArena>) -> impl Fn(&mut (), u64) + Send + Sync + 'static {
    move |_, units| {
        arena.rmw(0, FIG1_LINES);
        execute_units(units);
    }
}

/// One delegation-lock cell of the sweep.
fn run_delegation_lock(
    profile: &Profile,
    topo: &Topology,
    name: &str,
    threads: usize,
    base_units: u64,
    think_units: u64,
) -> RunOut {
    let arena = Arc::new(CacheLineArena::new(FIG1_LINES));
    let apply = delegated_apply(arena);
    match name {
        "flatcomb" => {
            let fc = FlatCombiner::new((), apply);
            let handles: Vec<_> = (0..threads).map(|_| fc.register()).collect();
            drive_handles(profile, topo, handles, 0, base_units, think_units)
        }
        "ccsynch" => {
            let cc = CcSynch::new((), apply);
            let handles: Vec<_> = (0..threads).map(|_| cc.register()).collect();
            drive_handles(profile, topo, handles, 0, base_units, think_units)
        }
        "fc-ban" => {
            let fb = FcBan::new((), apply);
            let handles: Vec<_> = (0..threads).map(|_| fb.register()).collect();
            drive_handles(profile, topo, handles, 0, base_units, think_units)
        }
        "rcl" => {
            // The server owns big core 0; clients shift onto cores
            // 1.. (so at 8 requested threads only 7 clients run).
            let lock = RclLock::new((), apply);
            let server = {
                let lock = lock.clone();
                let topo = topo.clone();
                std::thread::spawn(move || {
                    register_on_core(&topo, CoreId(0));
                    if let Some(cpu) = topo.core(CoreId(0)).os_cpu {
                        let _ = asl_runtime::affinity::pin_to_cpu(cpu);
                    }
                    lock.serve();
                })
            };
            let clients = threads.min(topo.cores().len() - 1);
            let handles: Vec<_> = (0..clients).map(|_| lock.register()).collect();
            let out = drive_handles(profile, topo, handles, 1, base_units, think_units);
            lock.shutdown();
            server.join().expect("rcl server panicked");
            out
        }
        other => unreachable!("unknown delegation lock {other}"),
    }
}

/// The `delegation` figure: reordering vs delegation under one
/// 10×-hold-time hog, with per-thread fairness shares.
pub fn delegation(profile: &Profile) -> Vec<Table> {
    let topo = Topology::apple_m1();
    let base_units = FIG1_LINES as u64 * CS_UNITS_PER_LINE;
    let think_units = FIG1_NCS_UNITS;
    let guard_specs = [
        LockSpec::Mcs,
        LockSpec::asl(Some(100_000)),
        LockSpec::asl(None),
    ];
    let delegated = ["flatcomb", "ccsynch", "rcl", "fc-ban"];

    let mut table = Table::new(
        "delegation",
        "reordering vs delegation, skewed hold times (worker 0 holds 10x longer)",
        &[
            "lock",
            "threads",
            "thpt",
            "thpt_ops_s",
            "hog_share",
            "min_share",
            "max_share",
            "hog_usage",
        ],
    );
    for &threads in &[2usize, 4, 8] {
        let mut record = |label: &str, out: &RunOut| {
            let thpt = out.throughput();
            let (hog, min, max) = out.shares();
            let usage = out.hog_usage();
            table.push_row(vec![
                label.to_string(),
                threads.to_string(),
                fmt_ops(thpt),
                format!("{thpt:.0}"),
                format!("{hog:.3}"),
                format!("{min:.3}"),
                format!("{max:.3}"),
                format!("{usage:.3}"),
            ]);
            table.push_sample(label, threads, thpt);
            table.push_sample(&format!("{label}@share=hog"), threads, hog);
            table.push_sample(&format!("{label}@share=min"), threads, min);
            table.push_sample(&format!("{label}@share=max"), threads, max);
            table.push_sample(&format!("{label}@usage=hog"), threads, usage);
        };
        for spec in &guard_specs {
            let out = drive_spec(profile, &topo, spec, threads, base_units, think_units);
            record(&spec.label(), &out);
        }
        for name in delegated {
            let out = run_delegation_lock(profile, &topo, name, threads, base_units, think_units);
            record(name, &out);
        }
    }
    table.note("worker 0 is the hog (10x CS length); shares are fractions of completed ops");
    table.note("hog_usage weights the hog's ops 10x: its share of lock *time* (fair = 1/threads)");
    table.note("fc-ban evens usage by banning the hog for its overage, so its op share drops too");
    table.note("rcl: server burns big core 0, so the 8-thread cell runs 7 clients");
    table.note("@share=hog/min/max sample rows carry fractions, not ops/s");
    vec![table]
}
