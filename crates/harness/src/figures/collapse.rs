//! `collapse` — scalability collapse at saturation, bare vs GCR.
//!
//! The headline chart for the concurrency-restriction layer: sweep
//! thread counts through and far past the core count ({2, 8, 32, 128}
//! on the 8-core emulated topology) for representative lock families
//! — TAS (unfair spin), ticket (FIFO spin, the worst collapser: every
//! waiter *must* run in ticket order), MCS (FIFO queue spin), and
//! LibASL-MAX (reordering) — each bare and behind the `gcr-` wrapper.
//!
//! Bare spin locks collapse once runnable threads exceed cores: the
//! holder loses its quantum to waiters who can do nothing with
//! theirs, so throughput falls off a cliff while p99 explodes. The
//! GCR wrapper admits a bounded set and parks the rest passively, so
//! its curve stays flat where the bare curve dives — the acceptance
//! bar is gcr ≥ 2× bare at 128 threads for at least two families.
//!
//! `--out` lands the samples in `BENCH_collapse.json`: per
//! (lock, threads) cell, throughput plus measured p99/p999 full-op
//! latency. This figure is the CI perf gate (`repro diff
//! baselines/BENCH_collapse.json ...`), so keep its cells cheap.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use asl_core::epoch;
use asl_runtime::clock::now_ns;
use asl_runtime::spawn::run_on_topology_with_stop;
use asl_runtime::topology::Topology;
use asl_runtime::work::execute_units;
use asl_runtime::CacheLineArena;

use crate::hist::Hist;
use crate::locks::LockSpec;
use crate::report::{fmt_ops, Table};
use crate::scenario::{CS_UNITS_PER_LINE, FIG1_LINES};

use super::delegation::{start_controller, PHASE_DONE, PHASE_MEASURE};
use super::Profile;

/// Per-worker measured ops + full-op latency histogram.
struct CellOut {
    per_worker: Vec<(u64, Hist)>,
    elapsed_ns: u64,
}

impl CellOut {
    fn throughput(&self) -> f64 {
        let total: u64 = self.per_worker.iter().map(|(ops, _)| ops).sum();
        total as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    fn latencies(&self) -> Hist {
        let mut all = Hist::new();
        for (_, h) in &self.per_worker {
            all.merge(h);
        }
        all
    }
}

/// One (lock, threads) cell: the Bench-1-style fixed critical section
/// (cache-line RMW + emulated work) with short think time between ops,
/// epoch-wrapped when the spec carries an SLO. Thread counts beyond
/// the topology share cores via the round-robin assignment — exactly
/// the oversubscription this figure is about.
fn drive_cell(profile: &Profile, topo: &Topology, spec: &LockSpec, n: usize) -> CellOut {
    let base_units = FIG1_LINES as u64 * CS_UNITS_PER_LINE;
    // Think time is deliberately short (2x the critical section):
    // collapse is a *contention* phenomenon, so the lock must stay
    // the bottleneck for the admitted set. A think-dominated cell
    // (fig1's 9x) measures the scheduler instead — every lock looks
    // the same once each thread only wants the lock 10% of the time.
    let think_units = 2 * base_units;
    let lock = spec.make_dyn();
    let arena = Arc::new(CacheLineArena::new(FIG1_LINES));
    let slo = spec.epoch_slo();
    let ctl = start_controller(profile);
    let phase_ref = &ctl.phase;
    let lock_ref = &lock;
    let arena_ref = &arena;
    let per_worker = run_on_topology_with_stop(topo, n, profile.pin, ctl.stop.clone(), |_ctx| {
        let critical = || {
            let _held = lock_ref.lock();
            arena_ref.rmw(0, FIG1_LINES);
            execute_units(base_units);
        };
        let mut ops = 0u64;
        let mut hist = Hist::new();
        while phase_ref.load(Ordering::Relaxed) != PHASE_DONE {
            let recording = phase_ref.load(Ordering::Relaxed) == PHASE_MEASURE;
            let t0 = now_ns();
            match slo {
                Some(slo) => epoch::with_epoch(0, slo, critical),
                None => critical(),
            }
            if recording {
                ops += 1;
                hist.record(now_ns().saturating_sub(t0));
            }
            execute_units(think_units);
        }
        (ops, hist)
    });
    ctl.join.join().expect("controller panicked");
    CellOut {
        per_worker,
        elapsed_ns: ctl.measured_ns.load(Ordering::Relaxed),
    }
}

/// The families swept, bare and wrapped. TAS and ticket are the
/// canonical collapsers; MCS shows queue-lock convoying; LibASL-MAX
/// shows reordering alone does not fix oversubscription.
fn families() -> Vec<LockSpec> {
    vec![
        "tas".parse().expect("tas"),
        LockSpec::Ticket,
        LockSpec::Mcs,
        LockSpec::asl(None),
    ]
}

/// The `collapse` figure: throughput + p99 across the saturation
/// cliff, bare vs `gcr-` for each family.
pub fn collapse(profile: &Profile) -> Vec<Table> {
    let topo = Topology::apple_m1();
    let mut table = Table::new(
        "collapse",
        "scalability collapse at threads >> cores: bare locks vs the gcr- admission wrapper",
        &["lock", "threads", "thpt", "thpt_ops_s", "p99_us", "p999_us"],
    );
    for &threads in &[2usize, 8, 32, 128] {
        for family in &families() {
            for wrapped in [false, true] {
                let spec = if wrapped {
                    LockSpec::Gcr(Box::new(family.clone()))
                } else {
                    family.clone()
                };
                let out = drive_cell(profile, &topo, &spec, threads);
                let thpt = out.throughput();
                let lat = out.latencies();
                let (p99, p999) = (lat.p99(), lat.p999());
                table.push_row(vec![
                    spec.label(),
                    threads.to_string(),
                    fmt_ops(thpt),
                    format!("{thpt:.0}"),
                    format!("{:.1}", p99 as f64 / 1_000.0),
                    format!("{:.1}", p999 as f64 / 1_000.0),
                ]);
                table.push_latency_sample(&spec.label(), threads, thpt, p99, p999);
            }
        }
    }
    table.note("cores = 8 (emulated M1 topology); 32- and 128-thread cells are oversubscribed");
    table.note("gcr- wrappers admit a bounded set into the inner lock and park the rest passively");
    table.note("p99/p999 are full-op latencies (lock + CS + release), measured per op");
    vec![table]
}
