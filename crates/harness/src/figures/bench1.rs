//! Figures 8a–8d and 8h/8i: the Bench-1 epoch workload.
//!
//! Bench-1: every operation is one epoch containing four critical
//! sections of different lengths under two different locks (64 shared
//! cache lines in total), with fixed think time between epochs.
//! LibASL SLO settings are anchored to the measured MCS P99 (see
//! `figures` module docs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use asl_runtime::clock::now_ns;
use asl_runtime::spawn::run_on_topology_with_stop;
use asl_runtime::{AtomicAffinity, CoreKind};

use crate::locks::LockSpec;
use crate::report::{fmt_us, Table};
use crate::scenario::{LengthModel, MicroScenario};

use super::micro::{comparison_row, COMPARISON_COLS};
use super::{run_micro, seed_tls_rng, with_tls_rng, Profile};

/// Measured MCS P99 on Bench-1 (the anchor all SLOs derive from).
fn mcs_anchor(profile: &Profile) -> u64 {
    let scenario = MicroScenario::bench1(&LockSpec::Mcs);
    let r = run_micro(profile, &scenario, 8);
    r.overall.p99().max(1_000)
}

/// Figure 8a: Bench-1 comparison bars across all competitors.
pub fn fig8a(profile: &Profile) -> Vec<Table> {
    let anchor = mcs_anchor(profile);
    // The paper's SLO picks (25/50/65 µs) sit at ~1.7x/3.3x/4.3x its
    // measured MCS P99 of 15 µs; reuse those multipliers.
    let slo_a = anchor * 17 / 10;
    let slo_b = anchor * 33 / 10;
    let slo_c = anchor * 43 / 10;

    // LibASL-OPT: offline search for the best static window whose P99
    // still meets slo_b (the paper pairs OPT with LibASL-50).
    let mut best: Option<(u64, f64, u64)> = None;
    for w in [anchor / 4, anchor / 2, anchor, anchor * 2] {
        let scenario = MicroScenario::bench1(&LockSpec::AslOpt { window_ns: w });
        let r = run_micro(profile, &scenario, 8);
        let p99 = r.overall.p99();
        if p99 <= slo_b && best.map(|(_, t, _)| r.throughput > t).unwrap_or(true) {
            best = Some((w, r.throughput, p99));
        }
    }
    let opt_window = best.map(|(w, _, _)| w).unwrap_or(anchor / 2);

    let specs = vec![
        LockSpec::Pthread,
        LockSpec::Tas(AtomicAffinity::big_wins()),
        LockSpec::Ticket,
        LockSpec::ShflPb(10),
        LockSpec::Mcs,
        LockSpec::asl(Some(0)),
        LockSpec::asl(Some(slo_a)),
        LockSpec::AslOpt {
            window_ns: opt_window,
        },
        LockSpec::asl(Some(slo_b)),
        LockSpec::asl(Some(slo_c)),
        LockSpec::asl(None),
    ];

    let mut table = Table::new("fig8a", "Bench-1 performance comparison", &COMPARISON_COLS);
    for spec in &specs {
        let scenario = MicroScenario::bench1(spec);
        let r = run_micro(profile, &scenario, 8);
        table.push_row(comparison_row(&spec.label(), &r));
        table.push_sample(&spec.label(), 8, r.throughput);
    }
    table.note(format!(
        "SLO anchor: measured MCS P99 = {}us; LibASL SLOs at 1.7x/3.3x/4.3x anchor",
        anchor / 1_000
    ));
    table.note(format!(
        "LibASL-OPT static window = {}us",
        opt_window / 1_000
    ));
    vec![table]
}

/// Figure 8b: Bench-1 under an SLO sweep.
pub fn fig8b(profile: &Profile) -> Vec<Table> {
    let anchor = mcs_anchor(profile);
    let mut table = Table::new(
        "fig8b",
        "Bench-1 with variant SLOs",
        &[
            "slo_us",
            "big_p99_us",
            "little_p99_us",
            "overall_p99_us",
            "thpt_ops_s",
        ],
    );
    let hi = anchor * 6;
    let steps = 10usize;
    for i in 0..=steps {
        let slo = hi * i as u64 / steps as u64;
        let spec = LockSpec::asl(Some(slo));
        let scenario = MicroScenario::bench1(&spec);
        let r = run_micro(profile, &scenario, 8);
        table.push_row(vec![
            format!("{:.1}", slo as f64 / 1_000.0),
            fmt_us(r.big.p99()),
            fmt_us(r.little.p99()),
            fmt_us(r.overall.p99()),
            format!("{:.0}", r.throughput),
        ]);
        table.push_sample(&spec.label(), 8, r.throughput);
    }
    table.note(format!(
        "MCS P99 anchor = {}us; below it LibASL falls back to FIFO",
        anchor / 1_000
    ));
    vec![table]
}

/// Figure 8c (Bench-3): epochs of mixed lengths at different ratios.
pub fn fig8c(profile: &Profile) -> Vec<Table> {
    const LONG_FACTOR: u64 = 16;
    // SLO: the measured MCS P99 when *all* epochs are long, so that at
    // ratio=100% LibASL must fall back to FIFO (normalized thpt -> 1).
    let slo = {
        let mut scenario = MicroScenario::bench1(&LockSpec::Mcs);
        scenario.length = LengthModel::Mixed {
            long_ratio: 1.0,
            long_factor: LONG_FACTOR,
        };
        run_micro(profile, &scenario, 8).overall.p99().max(1_000)
    };

    let mut table = Table::new(
        "fig8c",
        "Bench-3: mixed short/long epochs (normalized to MCS)",
        &[
            "long_pct",
            "mcs_thpt",
            "libasl_thpt",
            "libasl_norm",
            "opt_norm",
            "little_p99_us",
            "overall_p99_us",
        ],
    );
    for long_pct in [0u64, 20, 40, 60, 80, 100] {
        let ratio = long_pct as f64 / 100.0;
        let mix = LengthModel::Mixed {
            long_ratio: ratio,
            long_factor: LONG_FACTOR,
        };

        let mut mcs = MicroScenario::bench1(&LockSpec::Mcs);
        mcs.length = mix.clone();
        let r_mcs = run_micro(profile, &mcs, 8);

        let mut asl = MicroScenario::bench1(&LockSpec::asl(Some(slo)));
        asl.length = mix.clone();
        let r_asl = run_micro(profile, &asl, 8);

        // OPT: offline choice among candidate static windows — the
        // best throughput meeting the SLO, else (measurement noise
        // pushed everything over) the closest-to-SLO candidate.
        let mut opt_best = 0.0f64;
        let mut fallback: Option<(u64, f64)> = None;
        for w in [slo / 8, slo / 4, slo / 2, slo] {
            let mut opt = MicroScenario::bench1(&LockSpec::AslOpt { window_ns: w });
            opt.length = mix.clone();
            let r = run_micro(profile, &opt, 8);
            let p99 = r.overall.p99();
            if p99 <= slo && r.throughput > opt_best {
                opt_best = r.throughput;
            }
            if fallback.map(|(p, _)| p99 < p).unwrap_or(true) {
                fallback = Some((p99, r.throughput));
            }
        }
        if opt_best == 0.0 {
            opt_best = fallback.map(|(_, t)| t).unwrap_or(0.0);
        }

        table.push_row(vec![
            long_pct.to_string(),
            format!("{:.0}", r_mcs.throughput),
            format!("{:.0}", r_asl.throughput),
            format!("{:.2}", r_asl.throughput / r_mcs.throughput.max(1.0)),
            format!("{:.2}", opt_best / r_mcs.throughput.max(1.0)),
            fmt_us(r_asl.little.p99()),
            fmt_us(r_asl.overall.p99()),
        ]);
        table.push_sample(
            &format!("{}@long={long_pct}", LockSpec::Mcs.label()),
            8,
            r_mcs.throughput,
        );
        table.push_sample(
            &format!("{}@long={long_pct}", LockSpec::asl(Some(slo)).label()),
            8,
            r_asl.throughput,
        );
    }
    table.note(format!(
        "long epochs {LONG_FACTOR}x longer; SLO = all-long MCS P99 = {}us",
        slo / 1_000
    ));
    vec![table]
}

/// Figure 8d (Bench-2): per-epoch latency timeline under abrupt
/// workload changes, showing the reorder window re-adapting.
pub fn fig8d(profile: &Profile) -> Vec<Table> {
    let anchor = mcs_anchor(profile);
    let slo = anchor * 4;

    // Phase schedule (fractions of the total run), mirroring the
    // paper's 350 ms trace: base, heavy(x128->scaled), base, random,
    // impossible(x1024->scaled).
    let total_ms = (profile.duration_ms * 3).max(350);
    let phases: &[(f64, u64, &str)] = &[
        (2.0 / 7.0, 1, "base"),
        (2.0 / 7.0, 3, "long(feasible)"),
        (1.0 / 7.0, 1, "base"),
        (1.0 / 7.0, u64::MAX, "random"),
        (1.0 / 7.0, 32, "impossible"),
    ];

    let multiplier = Arc::new(AtomicU64::new(1));
    let scenario = {
        let mut s = MicroScenario::bench1(&LockSpec::asl(Some(slo)));
        s.length = LengthModel::Dynamic(multiplier.clone());
        Arc::new(s)
    };

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let t_start = now_ns();

    // Controller: walk the phase schedule.
    let controller = {
        let multiplier = multiplier.clone();
        let stop = stop.clone();
        let phases: Vec<(f64, u64)> = phases.iter().map(|(f, m, _)| (*f, *m)).collect();
        std::thread::spawn(move || {
            for (frac, mult) in phases {
                multiplier.store(mult, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(
                    (total_ms as f64 * frac) as u64,
                ));
            }
            stop.store(true, Ordering::Relaxed);
        })
    };

    // Workers: record (timestamp, latency, class) per epoch.
    let topo = asl_runtime::Topology::apple_m1();
    let traces: Vec<Vec<(u64, u64, CoreKind)>> =
        run_on_topology_with_stop(&topo, 8, profile.pin, stop.clone(), |ctx| {
            asl_core::epoch::reset_thread_epochs();
            seed_tls_rng(ctx.index);
            let mut trace = Vec::with_capacity(1 << 14);
            while !ctx.stopped() {
                let lat = with_tls_rng(|rng| scenario.run_op(rng));
                trace.push((now_ns() - t_start, lat, ctx.assignment.kind));
            }
            trace
        });
    controller.join().unwrap();

    // Summary per phase.
    let mut summary = Table::new(
        "fig8d",
        "Bench-2: self-adaptive reorder window under workload changes",
        &[
            "phase",
            "multiplier",
            "little_p99_us",
            "little_viol_pct",
            "slo_us",
        ],
    );
    let mut t_edge = 0.0f64;
    for (frac, mult, name) in phases {
        let t0 = (t_edge * total_ms as f64 * 1e6) as u64;
        t_edge += frac;
        let t1 = (t_edge * total_ms as f64 * 1e6) as u64;
        let mut hist = crate::hist::Hist::new();
        let mut viol = 0u64;
        let mut n = 0u64;
        for trace in &traces {
            for &(t, lat, kind) in trace {
                if kind == CoreKind::Little && t >= t0 && t < t1 {
                    hist.record(lat);
                    n += 1;
                    if lat > slo {
                        viol += 1;
                    }
                }
            }
        }
        let mult_str = if *mult == u64::MAX {
            "rand".to_string()
        } else {
            format!("{mult}x")
        };
        summary.push_row(vec![
            name.to_string(),
            mult_str,
            fmt_us(hist.p99()),
            format!("{:.1}", 100.0 * viol as f64 / n.max(1) as f64),
            format!("{:.1}", slo as f64 / 1_000.0),
        ]);
    }
    summary.note(format!(
        "SLO = 4x MCS anchor = {}us; trace length {total_ms}ms",
        slo / 1_000
    ));

    // Downsampled trace for plotting.
    let mut all: Vec<(u64, u64, CoreKind)> = traces.into_iter().flatten().collect();
    all.sort_unstable_by_key(|&(t, _, _)| t);
    let keep = 1_200usize;
    let step = (all.len() / keep).max(1);
    let mut trace_table = Table::new(
        "fig8d-trace",
        "Bench-2 latency trace (downsampled)",
        &["t_ms", "latency_us", "class"],
    );
    for (t, lat, kind) in all.into_iter().step_by(step) {
        trace_table.push_row(vec![
            format!("{:.1}", t as f64 / 1e6),
            format!("{:.1}", lat as f64 / 1e3),
            kind.label().to_string(),
        ]);
    }
    vec![summary, trace_table]
}

/// Figures 8h/8i (Bench-6): blocking locks under 2x core
/// over-subscription.
pub fn fig8hi(profile: &Profile) -> Vec<Table> {
    let threads = 16; // 2 per core on the 8-core topology

    // Anchor on the blocking pthread mutex tail.
    let anchor = {
        let scenario = MicroScenario::bench1(&LockSpec::Pthread);
        run_micro(profile, &scenario, threads)
            .overall
            .p99()
            .max(1_000)
    };

    let specs = vec![
        LockSpec::Pthread,
        LockSpec::McsStp,
        LockSpec::AslBlocking { slo_ns: Some(0) },
        LockSpec::AslBlocking {
            slo_ns: Some(anchor),
        },
        LockSpec::AslBlocking {
            slo_ns: Some(anchor * 2),
        },
        LockSpec::AslBlocking { slo_ns: None },
    ];
    let mut t8h = Table::new(
        "fig8h",
        "Bench-6: blocking locks, 2x over-subscription",
        &COMPARISON_COLS,
    );
    for spec in &specs {
        let scenario = MicroScenario::bench1(spec);
        let r = run_micro(profile, &scenario, threads);
        t8h.push_row(comparison_row(&spec.label(), &r));
        t8h.push_sample(&spec.label(), threads, r.throughput);
    }
    t8h.note(format!(
        "16 threads on 8 cores; SLO anchor = pthread P99 = {}us",
        anchor / 1_000
    ));

    let mut t8i = Table::new(
        "fig8i",
        "Bench-6 with variant SLOs",
        &[
            "slo_us",
            "big_p99_us",
            "little_p99_us",
            "overall_p99_us",
            "thpt_ops_s",
        ],
    );
    for i in 0..=6u64 {
        let slo = anchor * i / 2; // 0 .. 3x anchor
        let scenario = MicroScenario::bench1(&LockSpec::AslBlocking { slo_ns: Some(slo) });
        let r = run_micro(profile, &scenario, threads);
        t8i.push_row(vec![
            format!("{:.1}", slo as f64 / 1_000.0),
            fmt_us(r.big.p99()),
            fmt_us(r.little.p99()),
            fmt_us(r.overall.p99()),
            format!("{:.0}", r.throughput),
        ]);
    }
    vec![t8h, t8i]
}
