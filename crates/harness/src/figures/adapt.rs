//! `repro adapt` — the contention-adaptive lock's morph point vs
//! thread count.
//!
//! Fissile-style substrate morphing (see `asl_locks::adaptive`): the
//! lock starts as a TAS and promotes itself to a FIFO ticket funnel
//! when its telemetry shows a sustained contended streak. This figure
//! sweeps thread count over a short-critical-section hammer and
//! reports, per point, the telemetry the morph decision is made from
//! — contended ratio, spin iterations, morph counters — plus the
//! substrate the lock ended the run in. At one thread the lock must
//! finish in TAS mode with zero morphs; as threads grow the morph
//! point appears and the lock ends in queue mode.
//!
//! The oracle is telemetry (counters), not timing: throughput is
//! reported for context, but the morph columns are what reproduce the
//! claim.

use std::sync::Arc;

use asl_locks::{Adaptive, AdaptiveMode, RawLock};
use asl_runtime::clock::now_ns;
use asl_runtime::work::execute_units;
use asl_runtime::CacheLineArena;

use crate::report::Table;
use crate::runner::run_timed;

use super::Profile;

/// Cache lines each critical section touches.
const CS_LINES: usize = 4;
/// Emulated units inside the critical section.
const CS_UNITS: u64 = 400;
/// Emulated think time between acquisitions. Zero: the figure wants
/// the lock near-saturated so the morph point appears as soon as a
/// second thread exists (including on over-subscribed CI hosts,
/// where contended streaks otherwise need parallel hardware).
const NCS_UNITS: u64 = 0;

/// The `adapt` figure driver.
pub fn adapt(profile: &Profile) -> Vec<Table> {
    let mut table = Table::new(
        "adapt",
        "contention-adaptive lock: morph point vs thread count",
        &[
            "threads",
            "thpt_ops_s",
            "acquisitions",
            "contended_pct",
            "spin_iters",
            "morphs_to_queue",
            "morphs_to_tas",
            "final_mode",
        ],
    );
    for threads in [1usize, 2, 4, 8] {
        let lock = Arc::new(Adaptive::new());
        let arena = Arc::new(CacheLineArena::new(CS_LINES));
        let cfg = profile.config(threads);
        let r = {
            let lock = lock.clone();
            let arena = arena.clone();
            run_timed(&cfg, move |_| {
                let t0 = now_ns();
                let token = lock.lock();
                arena.rmw(0, CS_LINES);
                execute_units(CS_UNITS);
                lock.unlock(token);
                let latency = now_ns() - t0;
                execute_units(NCS_UNITS);
                latency
            })
        };
        let snap = lock.telemetry().snapshot();
        let mode = match lock.mode() {
            AdaptiveMode::Tas => "tas",
            AdaptiveMode::Queue => "queue",
            AdaptiveMode::Restricted => "restricted",
        };
        table.push_row(vec![
            threads.to_string(),
            format!("{:.0}", r.throughput),
            snap.acquisitions.to_string(),
            format!("{:.1}", 100.0 * snap.contention_ratio()),
            snap.spin_iters.to_string(),
            lock.morphs_to_queue().to_string(),
            lock.morphs_to_tas().to_string(),
            mode.to_string(),
        ]);
        table.push_sample("adaptive", threads, r.throughput);
    }
    table.note(format!(
        "TAS -> queue after {} consecutive contended acquisitions; \
         queue -> TAS after {} idle arrivals; oracle is telemetry, not timing",
        asl_locks::adaptive::DEFAULT_PROMOTE_AFTER,
        asl_locks::adaptive::DEFAULT_DEMOTE_AFTER,
    ));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_never_morphs() {
        // The deterministic end of the figure's claim: an uncontended
        // hammer stays in TAS mode with zero morphs.
        let profile = Profile {
            duration_ms: 40,
            warmup_ms: 10,
            pin: false,
        };
        let tables = adapt(&profile);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4);
        let one_thread = &t.rows[0];
        assert_eq!(one_thread[0], "1");
        assert_eq!(one_thread[5], "0", "1 thread: no morph to queue");
        assert_eq!(one_thread[7], "tas", "1 thread: ends in TAS mode");
        assert_eq!(t.samples.len(), 4);
        assert_eq!(t.samples[0].lock, "adaptive");
    }
}
