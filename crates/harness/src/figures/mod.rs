//! Per-figure reproduction drivers.
//!
//! Each driver regenerates one paper figure (or a group sharing a
//! workload) as [`Table`]s: the same series the paper plots, in text
//! form. Absolute values differ from the paper (our substrate is an
//! emulated AMP, not an Apple M1); the *shape* — who wins, by what
//! rough factor, where crossovers sit — is the reproduction target.
//!
//! LibASL SLO settings are anchored to the *measured* MCS P99 of the
//! same workload (the paper picks absolute values hand-tuned to its
//! hardware; anchoring keeps the comparisons meaningful on any host).

pub mod adapt;
pub mod bench1;
pub mod collapse;
pub mod db;
pub mod delegation;
pub mod extra;
pub mod kv;
pub mod micro;
pub mod overhead;
pub mod rw;
pub mod sim;

use std::cell::RefCell;
use std::time::Duration;

use asl_runtime::topology::Topology;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::report::Table;
use crate::runner::{run_timed_with_setup, RunConfig, RunResult};
use crate::scenario::MicroScenario;

/// Measurement effort per data point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Measurement window per point (ms).
    pub duration_ms: u64,
    /// Warmup per point (ms).
    pub warmup_ms: u64,
    /// Pin threads to physical CPUs.
    pub pin: bool,
}

impl Profile {
    /// Fast mode for CI / smoke runs.
    pub fn quick() -> Self {
        Profile {
            duration_ms: 120,
            warmup_ms: 40,
            pin: true,
        }
    }

    /// Paper-style mode (longer, steadier points).
    pub fn full() -> Self {
        Profile {
            duration_ms: 600,
            warmup_ms: 150,
            pin: true,
        }
    }

    /// Runner config on the default M1-like topology.
    pub fn config(&self, threads: usize) -> RunConfig {
        self.config_on(Topology::apple_m1(), threads)
    }

    /// Runner config on an explicit topology.
    pub fn config_on(&self, topology: Topology, threads: usize) -> RunConfig {
        RunConfig {
            topology,
            threads,
            duration: Duration::from_millis(self.duration_ms),
            warmup: Duration::from_millis(self.warmup_ms),
            pin: self.pin,
        }
    }
}

thread_local! {
    static TLS_RNG: RefCell<SmallRng> = RefCell::new(SmallRng::seed_from_u64(42));
}

/// Seed this worker's scenario RNG (called from runner setup).
pub fn seed_tls_rng(thread_idx: usize) {
    TLS_RNG.with(|r| *r.borrow_mut() = SmallRng::seed_from_u64(0x5EED_0000 + thread_idx as u64));
}

/// Run `f` with this worker's scenario RNG.
pub fn with_tls_rng<R>(f: impl FnOnce(&mut SmallRng) -> R) -> R {
    TLS_RNG.with(|r| f(&mut r.borrow_mut()))
}

/// Run a micro-scenario for one data point: workers reset their epoch
/// state, seed their RNG, then hammer `scenario.run_op`.
pub fn run_micro(profile: &Profile, scenario: &MicroScenario, threads: usize) -> RunResult {
    run_micro_on(profile, Topology::apple_m1(), scenario, threads)
}

/// [`run_micro`] on an explicit topology (Hikey970, Intel-DVFS, ...).
pub fn run_micro_on(
    profile: &Profile,
    topology: Topology,
    scenario: &MicroScenario,
    threads: usize,
) -> RunResult {
    let cfg = profile.config_on(topology, threads);
    run_timed_with_setup(
        &cfg,
        |ctx| {
            asl_core::epoch::reset_thread_epochs();
            seed_tls_rng(ctx.index);
        },
        |_octx| with_tls_rng(|rng| scenario.run_op(rng)),
    )
}

/// One-off CLI sweep: run the Bench-1 micro-benchmark under a single
/// named lock (`repro --lock <name>`); any registry name works, so
/// every experiment point is addressable from the command line.
pub fn single_lock(profile: &Profile, spec: &crate::locks::LockSpec) -> Table {
    let scenario = MicroScenario::bench1(spec);
    let r = run_micro(profile, &scenario, 8);
    let mut t = Table::new(
        &format!("lock-{spec}"),
        &format!("Bench-1 micro-benchmark under `{spec}` (8 threads, M1-like topology)"),
        &micro::COMPARISON_COLS,
    );
    t.push_row(micro::comparison_row(&spec.label(), &r));
    t.push_sample(&spec.label(), 8, r.throughput);
    t
}

/// A figure-reproduction entry point: profile in, tables out.
pub type FigureFn = fn(&Profile) -> Vec<Table>;

/// All registered figures, in paper order.
pub fn registry() -> Vec<(&'static str, FigureFn)> {
    vec![
        ("fig1", micro::fig1 as FigureFn),
        ("fig4", micro::fig4),
        ("fig5", micro::fig5),
        ("fig8a", bench1::fig8a),
        ("fig8b", bench1::fig8b),
        ("fig8c", bench1::fig8c),
        ("fig8d", bench1::fig8d),
        ("fig8ef", micro::fig8ef),
        ("fig8g", micro::fig8g),
        ("fig8hi", bench1::fig8hi),
        ("fig9-kyoto", db::fig9_kyoto),
        ("fig9-upscale", db::fig9_upscale),
        ("fig9-lmdb", db::fig9_lmdb),
        ("fig10-leveldb", db::fig10_leveldb),
        ("fig10-sqlite", db::fig10_sqlite),
        ("alt-topology", db::alt_topology),
        ("sec2-numa", extra::sec2_numa),
        ("sec5-delegation", extra::sec5_delegation),
        ("delegation", delegation::delegation),
        ("collapse", collapse::collapse),
        ("rw", rw::rw),
        ("adapt", adapt::adapt),
        ("overhead", overhead::overhead),
        ("kv", kv::kv),
        ("sim-numa", sim::sim_numa),
        ("sim-fair", sim::sim_fair),
        ("sim-oversub", sim::sim_oversub),
        ("sim-fig1", sim::sim_fig1),
        ("sim-fig8", sim::sim_fig8),
    ]
}

/// Look up one figure driver by id.
pub fn find(id: &str) -> Option<fn(&Profile) -> Vec<Table>> {
    registry()
        .into_iter()
        .find(|(n, _)| *n == id)
        .map(|(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_findable() {
        let reg = registry();
        let mut ids: Vec<_> = reg.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len(), "duplicate figure ids");
        for (id, _) in &reg {
            assert!(find(id).is_some(), "{id} not findable");
        }
        assert!(find("not-a-figure").is_none());
    }

    #[test]
    fn registry_covers_every_paper_figure() {
        let reg = registry();
        let has = |id: &str| reg.iter().any(|(n, _)| *n == id);
        // One driver per paper figure group, plus the §2.2/§5 claims
        // and the read-mostly extension.
        for id in [
            "rw",
            "adapt",
            "overhead",
            "kv",
            "fig1",
            "fig4",
            "fig5",
            "fig8a",
            "fig8b",
            "fig8c",
            "fig8d",
            "fig8ef",
            "fig8g",
            "fig8hi",
            "fig9-kyoto",
            "fig9-upscale",
            "fig9-lmdb",
            "fig10-leveldb",
            "fig10-sqlite",
            "alt-topology",
            "sec2-numa",
            "sec5-delegation",
            "delegation",
            "collapse",
            "sim-numa",
            "sim-fair",
            "sim-oversub",
            "sim-fig1",
            "sim-fig8",
        ] {
            assert!(has(id), "missing driver for {id}");
        }
    }

    #[test]
    fn profiles_sane() {
        let q = Profile::quick();
        let f = Profile::full();
        assert!(q.duration_ms < f.duration_ms);
        assert!(q.warmup_ms < q.duration_ms);
        let cfg = q.config(8);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.topology.len(), 8);
    }

    #[test]
    fn tls_rng_reseeds_per_worker() {
        seed_tls_rng(3);
        let a = with_tls_rng(rand::Rng::gen::<u64>);
        seed_tls_rng(3);
        let b = with_tls_rng(rand::Rng::gen::<u64>);
        assert_eq!(a, b, "same seed must reproduce");
        seed_tls_rng(4);
        let c = with_tls_rng(rand::Rng::gen::<u64>);
        assert_ne!(a, c, "different workers must diverge");
    }
}
