//! Figures 1, 4, 5, 8e/8f and 8g: single-lock micro-benchmarks.

use asl_runtime::AtomicAffinity;

use crate::locks::LockSpec;
use crate::report::{fmt_ops, fmt_us, Table};
use crate::scenario::{MicroScenario, FIG1_LINES, FIG1_NCS_UNITS, FIG4_LINES, FIG8G_LINES};

use super::{run_micro, Profile};

/// Scalability scan shared by Figures 1, 4, 8e/8f: thread counts
/// 1..=8 (big cores first), reporting throughput and overall P99 per
/// lock.
fn scalability_scan(
    profile: &Profile,
    id: &str,
    title: &str,
    specs: &[LockSpec],
    lines: usize,
    ncs_units: u64,
) -> Table {
    let mut cols: Vec<String> = vec!["threads".into()];
    for s in specs {
        cols.push(format!("{}_thpt_ops_s", s.label()));
        cols.push(format!("{}_p99_us", s.label()));
    }
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(id, title, &col_refs);
    for threads in 1..=8usize {
        let mut row = vec![threads.to_string()];
        for spec in specs {
            let scenario = MicroScenario::simple(spec, lines, ncs_units);
            let r = run_micro(profile, &scenario, threads);
            row.push(format!("{:.0}", r.throughput));
            row.push(fmt_us(r.overall.p99()));
            table.push_sample(&spec.label(), threads, r.throughput);
        }
        table.push_row(row);
    }
    table.note(format!(
        "critical section: RMW {lines} shared cache lines; think time {ncs_units} units"
    ));
    table
}

/// Figure 1: MCS vs TAS with *little-core affinity* — both throughput
/// and TAS latency collapse when scaling onto little cores.
pub fn fig1(profile: &Profile) -> Vec<Table> {
    let specs = [LockSpec::Mcs, LockSpec::Tas(AtomicAffinity::little_wins())];
    vec![scalability_scan(
        profile,
        "fig1",
        "throughput & latency collapse on AMP (TAS little-core-affinity)",
        &specs,
        FIG1_LINES,
        FIG1_NCS_UNITS,
    )]
}

/// Figure 4: the same scan when TAS shows *big-core affinity* — TAS
/// throughput now beats MCS but its tail latency still collapses.
pub fn fig4(profile: &Profile) -> Vec<Table> {
    let specs = [LockSpec::Mcs, LockSpec::Tas(AtomicAffinity::big_wins())];
    vec![scalability_scan(
        profile,
        "fig4",
        "TAS with big-core-affinity: higher throughput, collapsed latency",
        &specs,
        FIG4_LINES,
        FIG1_NCS_UNITS,
    )]
}

/// Figure 5: the proportional strawman — every static proportion is
/// one point on a throughput/latency trade-off curve.
pub fn fig5(profile: &Profile) -> Vec<Table> {
    let mut table = Table::new(
        "fig5",
        "static proportions trade throughput against latency",
        &["proportion", "thpt_ops_s", "p99_us"],
    );
    for n in [0u32, 1, 2, 3, 4, 5, 6, 8, 10, 13, 16, 20, 25, 29] {
        let spec = LockSpec::ShflPb(n);
        let scenario = MicroScenario::bench1(&spec);
        let r = run_micro(profile, &scenario, 8);
        table.push_row(vec![
            n.to_string(),
            format!("{:.0}", r.throughput),
            fmt_us(r.overall.p99()),
        ]);
        table.push_sample(&spec.label(), 8, r.throughput);
    }
    table.note("Bench-1 workload, 8 threads; N = big-core grants per little-core grant");
    vec![table]
}

/// Figures 8e/8f (Bench-4): scalability of LibASL under the Figure-4
/// setup, with SLOs anchored at {MCS-p99-at-8t fractions}.
pub fn fig8ef(profile: &Profile) -> Vec<Table> {
    // Anchor: measured MCS P99 with all 8 cores (the paper's SLO 12us
    // equals the TAS tail latency; 50us is a loose SLO).
    let anchor = {
        let scenario = MicroScenario::simple(&LockSpec::Mcs, FIG4_LINES, FIG1_NCS_UNITS);
        let r = run_micro(profile, &scenario, 8);
        r.overall.p99().max(1_000)
    };
    let slo_tight = anchor; // ~ the FIFO tail: barely feasible
    let slo_loose = anchor * 4;
    let specs = [
        LockSpec::Mcs,
        LockSpec::Tas(AtomicAffinity::big_wins()),
        LockSpec::asl(Some(0)),
        LockSpec::asl(Some(slo_tight)),
        LockSpec::asl(Some(slo_loose)),
        LockSpec::asl(None),
    ];
    let mut t = scalability_scan(
        profile,
        "fig8ef",
        "Bench-4 scalability: throughput (8e) and overall tail latency (8f)",
        &specs,
        FIG4_LINES,
        FIG1_NCS_UNITS,
    );
    t.note(format!(
        "SLOs anchored to measured MCS P99 at 8 threads: tight={}us loose={}us",
        slo_tight / 1_000,
        slo_loose / 1_000
    ));
    vec![t]
}

/// Figure 8g (Bench-5): throughput speedup of LibASL-MAX over each
/// baseline across contention levels (think time 10^n units).
pub fn fig8g(profile: &Profile) -> Vec<Table> {
    let baselines: Vec<(String, LockSpec, usize)> = vec![
        ("mcs-4big".into(), LockSpec::Mcs, 4),
        ("tas".into(), LockSpec::Tas(AtomicAffinity::big_wins()), 8),
        ("ticket".into(), LockSpec::Ticket, 8),
        ("mcs".into(), LockSpec::Mcs, 8),
        ("pthread".into(), LockSpec::Pthread, 8),
        ("shfl-pb10".into(), LockSpec::ShflPb(10), 8),
    ];
    let mut cols: Vec<String> = vec!["ncs_units".into(), "libasl_thpt".into()];
    for (name, _, _) in &baselines {
        cols.push(format!("speedup_vs_{name}"));
    }
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "fig8g",
        "LibASL speedup across contention levels (Bench-5)",
        &col_refs,
    );
    for exp in 0..=5u32 {
        let ncs = 10u64.pow(exp);
        let asl = {
            let s = MicroScenario::simple(&LockSpec::asl(None), FIG8G_LINES, ncs);
            run_micro(profile, &s, 8).throughput
        };
        table.push_sample(
            &format!("{}@ncs={ncs}", LockSpec::asl(None).label()),
            8,
            asl,
        );
        let mut row = vec![ncs.to_string(), format!("{asl:.0}")];
        for (_, spec, threads) in &baselines {
            let s = MicroScenario::simple(spec, FIG8G_LINES, ncs);
            let base = run_micro(profile, &s, *threads).throughput;
            row.push(format!("{:.2}", asl / base.max(1.0)));
            table.push_sample(&format!("{}@ncs={ncs}", spec.label()), *threads, base);
        }
        table.push_row(row);
    }
    table.note("LibASL runs with no SLO (maximum reordering); mcs-4big uses only the 4 big cores");
    vec![table]
}

/// Render a bar-figure row for one lock spec (shared with bench1/db
/// figure drivers).
pub fn comparison_row(label: &str, r: &crate::runner::RunResult) -> Vec<String> {
    vec![
        label.to_string(),
        fmt_ops(r.throughput),
        format!("{:.0}", r.throughput),
        fmt_us(r.big.p99()),
        fmt_us(r.little.p99()),
        fmt_us(r.overall.p99()),
    ]
}

/// Column set matching [`comparison_row`].
pub const COMPARISON_COLS: [&str; 6] = [
    "lock",
    "thpt",
    "thpt_ops_s",
    "big_p99_us",
    "little_p99_us",
    "overall_p99_us",
];
