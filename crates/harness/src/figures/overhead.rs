//! `overhead` — uncontended acquire+release latency across access
//! layers.
//!
//! Uncontended / light-contention latency is where lock designs win
//! or lose (Fissile Locks; the scalability-collapse literature), yet
//! the repo's bench trajectory had throughput figures only. This
//! figure anchors the *latency* trajectory: for every lock in the
//! registry it measures single-threaded acquire+release ns/op through
//! each access layer the workspace offers —
//!
//! * **static** — the concrete lock type behind an RAII
//!   [`Guard`]/[`WriteGuard`] (monomorphized, no vtable);
//! * **dyn** — the same lock behind [`LockSpec::make_dyn`]'s
//!   `Arc<dyn PlainLock>` facade (one virtual call + token
//!   encode/decode per op), which is what the harness and the
//!   database engines use;
//! * **instr-off** — the `instrumented-<name>` spec with profiling
//!   *off*: the telemetry wrapper must fast-exit before any counter
//!   RMW, so this column is expected to sit within noise (single-digit
//!   ns) of `dyn`;
//! * **instr-on** — the same spec with profiling *on* (counts +
//!   hold/wait sampling), which pays the documented clock-read cost.
//!
//! `repro overhead --out DIR` additionally emits
//! `DIR/BENCH_overhead.json` with one `lock@layer=<layer>` record per
//! cell, giving CI a machine-readable per-PR latency baseline.

use asl_core::{AslBlockingLock, AslClhLock, AslRwLock, AslShflLock, AslSpinLock, AslTicketLock};
use asl_locks::api::{Guard, WriteGuard};
use asl_locks::plain::PlainLock;
use asl_locks::shuffle::{ClassLocalPolicy, ShuffleLock};
use asl_locks::telemetry::{self, Instrumented, InstrumentedRw};
use asl_locks::{
    bridge_apply, Adaptive, Bravo, CcSynch, ClhLock, CnaLock, CohortLock, DelegatedMutex, FcBan,
    FlatCombiner, MalthusianLock, McsLock, McsStpLock, ProportionalLock, PthreadMutex, RawLock,
    RawRwLock, RclLock, RwTicketLock, TasLock, TicketLock,
};
use asl_runtime::clock::now_ns;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use super::Profile;
use crate::locks::{registry, AslSubstrate, BravoInner, LockSpec, StaticWindowLock};
use crate::report::Table;

/// The access layers measured, in column order (also the `@layer=`
/// suffixes in `BENCH_overhead.json`).
pub const LAYERS: [&str; 4] = ["static", "dyn", "instr-off", "instr-on"];

/// One prepared measurement leg: warmed up at build time, each call
/// runs one timed batch and returns its mean ns/op.
type Leg = Box<dyn FnMut() -> f64>;

/// Single-threaded latency meter: batches of `iters` operations,
/// best-of-`reps` (minimum filters scheduler preemption noise, which
/// dominates p50 on an oversubscribed 1-CPU host).
///
/// The four layers of one row are measured as *interleaved* batches
/// (rep 0 of every layer, then rep 1, ...), not as four back-to-back
/// `reps`-batch blocks. Periodic host activity — daemon wakeups,
/// timer beats — lasts longer than one layer's block of adjacent
/// batches, so with block measurement it poisons every rep of
/// whichever layer it lands on, and because the sweep's timing is
/// deterministic it lands on the *same* cell run after run,
/// masquerading as a per-lock regression. Interleaving spreads one
/// layer's reps across the whole row's wall time; a burst now costs
/// at most one rep per layer and the minimum stays clean.
pub(crate) struct Meter {
    iters: u64,
    reps: u32,
}

impl Meter {
    pub(crate) fn from_profile(profile: &Profile) -> Self {
        Meter {
            // ~250 ops per configured millisecond keeps quick mode
            // under a second per layer sweep and full mode steady.
            iters: (profile.duration_ms * 250).clamp(2_000, 200_000),
            reps: if profile.duration_ms < 300 { 3 } else { 5 },
        }
    }

    /// Prepare a leg around `op`: warm up now (fault in nodes,
    /// trainers, branch caches), time one batch per call.
    fn leg(&self, mut op: impl FnMut() + 'static) -> Leg {
        for _ in 0..self.iters / 4 {
            op();
        }
        let iters = self.iters;
        Box::new(move || {
            let t0 = now_ns();
            for _ in 0..iters {
                op();
            }
            let dt = now_ns().saturating_sub(t0).max(1);
            dt as f64 / iters as f64
        })
    }

    /// Statically dispatched guard round-trip on a concrete
    /// [`RawLock`], optionally under a static [`Instrumented`] wrap.
    fn raw<L: RawLock + 'static>(&self, lock: L, instr: bool) -> Leg {
        if instr {
            let lock = Instrumented::new(lock);
            self.leg(move || {
                let _g = Guard::new(&lock);
            })
        } else {
            self.leg(move || {
                let _g = Guard::new(&lock);
            })
        }
    }

    /// Statically dispatched write-guard round-trip on a concrete
    /// [`RawRwLock`] (the write side mirrors what exclusive call
    /// sites pay).
    fn rw<L: RawRwLock + 'static>(&self, lock: L, instr: bool) -> Leg {
        if instr {
            let lock = InstrumentedRw::new(lock);
            self.leg(move || {
                let _g = WriteGuard::new(&lock);
            })
        } else {
            self.leg(move || {
                let _g = WriteGuard::new(&lock);
            })
        }
    }

    /// Concrete [`PlainLock`] round-trip (for lock types that only
    /// exist behind the plain facade, like LibASL-OPT).
    fn plain<P: PlainLock + 'static>(&self, lock: P) -> Leg {
        self.leg(move || {
            let t = lock.acquire();
            lock.release(t);
        })
    }

    /// Dynamically dispatched guard round-trip through a built spec.
    ///
    /// One lock object is built per rep, all alive together, and each
    /// batch measures a different one. Where the allocator happens to
    /// place one lock/cell/wrapper graph deep into a sweep can alias
    /// its hot lines (a steady several-ns/op penalty), and freed
    /// blocks are reused most-recent-first, so rebuilding at the same
    /// point reproduces the same unlucky placement — only objects
    /// *concurrently* alive are forced onto distinct addresses. The
    /// best-of-reps minimum then discards pathological placements
    /// along with timing noise.
    fn dyn_spec(&self, spec: &LockSpec) -> Leg {
        let locks: Vec<_> = (0..self.reps).map(|_| spec.make_dyn()).collect();
        for lock in &locks {
            for _ in 0..self.iters / 8 {
                let _g = lock.lock();
            }
        }
        let iters = self.iters;
        let mut idx = 0usize;
        Box::new(move || {
            let lock = &locks[idx % locks.len()];
            idx += 1;
            let t0 = now_ns();
            for _ in 0..iters {
                let _g = lock.lock();
            }
            let dt = now_ns().saturating_sub(t0).max(1);
            dt as f64 / iters as f64
        })
    }
}

/// Prepare `spec`'s statically dispatched leg: a match mirroring
/// [`LockSpec::make_lock_raw`], but monomorphized per concrete lock
/// type. `instr` wraps the concrete type in a static
/// [`Instrumented`]/[`InstrumentedRw`] (how `instrumented-<name>`
/// registry entries are measured at this layer; nesting beyond one
/// wrap measures as one).
fn static_leg(spec: &LockSpec, m: &Meter, instr: bool) -> Leg {
    match spec {
        LockSpec::Instrumented(inner) => static_leg(inner, m, true),
        LockSpec::Pthread => m.raw(PthreadMutex::new(), instr),
        LockSpec::Tas(aff) => m.raw(TasLock::with_affinity(*aff), instr),
        LockSpec::Ticket => m.raw(TicketLock::new(), instr),
        LockSpec::Mcs => m.raw(McsLock::new(), instr),
        LockSpec::McsStp => m.raw(McsStpLock::new(), instr),
        LockSpec::ShflPb(n) => m.raw(ProportionalLock::new(*n), instr),
        LockSpec::Cna => m.raw(CnaLock::new(), instr),
        LockSpec::Cohort => m.raw(CohortLock::new(), instr),
        LockSpec::Malthusian(None) => m.raw(MalthusianLock::new(), instr),
        LockSpec::Malthusian(Some(p)) => m.raw(MalthusianLock::with_period(*p), instr),
        // The GCR wrapper is generic over its inner lock, so the
        // "static" layer here is the concrete GcrPlain facade over
        // the inner spec's plain lock (the gate cost is identical;
        // only the inner dispatch differs, measured by dyn_ns).
        LockSpec::Gcr(inner) => m.plain(asl_locks::GcrPlain::new(inner.make_lock_raw())),
        LockSpec::ShuffleClassLocal { max_skips } => {
            m.raw(ShuffleLock::new(ClassLocalPolicy::new(*max_skips)), instr)
        }
        LockSpec::Asl { substrate, .. } => match substrate {
            AslSubstrate::Mcs => m.raw(AslSpinLock::default(), instr),
            AslSubstrate::Clh => m.raw(AslClhLock::new(ClhLock::new()), instr),
            AslSubstrate::Ticket => m.raw(AslTicketLock::new(TicketLock::new()), instr),
            AslSubstrate::ShflFifo => m.raw(
                AslShflLock::new(ShuffleLock::new(asl_locks::shuffle::FifoPolicy)),
                instr,
            ),
        },
        // LibASL-OPT only exists behind the plain facade; its static
        // layer is the concrete (non-virtual) PlainLock impl. The
        // registry carries no instrumented-libasl-opt entry, so the
        // static-instrumented combination cannot be requested.
        LockSpec::AslOpt { window_ns } => m.plain(StaticWindowLock::new(*window_ns)),
        LockSpec::AslBlocking { .. } => m.raw(AslBlockingLock::new_blocking(), instr),
        LockSpec::Adaptive => m.raw(Adaptive::new(), instr),
        LockSpec::RwTicket => m.rw(RwTicketLock::new(), instr),
        LockSpec::BravoRw(inner) => match inner {
            BravoInner::Tas => m.rw(Bravo::new(TasLock::new()), instr),
            BravoInner::Ticket => m.rw(Bravo::new(TicketLock::new()), instr),
            BravoInner::Mcs => m.rw(Bravo::new(McsLock::new()), instr),
            BravoInner::Clh => m.rw(Bravo::new(ClhLock::new()), instr),
            BravoInner::Asl => m.rw(Bravo::new(AslSpinLock::default()), instr),
        },
        LockSpec::AslRw { .. } => m.rw(AslRwLock::default(), instr),
        // Delegation locks exist only behind the plain facade (the
        // baton bridge is itself the concrete PlainLock impl); like
        // LibASL-OPT they have no static-instrumented combination.
        LockSpec::Flatcomb => {
            let mirror = Arc::new(AtomicBool::new(false));
            let inner = FlatCombiner::new(0u64, bridge_apply(mirror.clone()));
            m.plain(DelegatedMutex::new("flatcomb", inner, mirror))
        }
        LockSpec::CcSynch => {
            let mirror = Arc::new(AtomicBool::new(false));
            let inner = CcSynch::new(0u64, bridge_apply(mirror.clone()));
            m.plain(DelegatedMutex::new("ccsynch", inner, mirror))
        }
        LockSpec::Rcl => {
            let mirror = Arc::new(AtomicBool::new(false));
            let inner = RclLock::new(0u64, bridge_apply(mirror.clone()));
            let server = inner.start();
            m.plain(DelegatedMutex::new("rcl", inner, mirror).keep_alive(server))
        }
        LockSpec::FcBan => {
            let mirror = Arc::new(AtomicBool::new(false));
            let inner = FcBan::new(0u64, bridge_apply(mirror.clone()));
            m.plain(DelegatedMutex::new("fc-ban", inner, mirror))
        }
    }
}

/// Build the overhead table for an explicit spec list (unit tests use
/// a short list; the figure driver passes the whole registry).
pub(crate) fn overhead_table(m: &Meter, specs: &[LockSpec]) -> Table {
    let mut t = Table::new(
        "overhead",
        "uncontended acquire+release latency (ns/op, 1 thread) per access layer",
        &[
            "lock",
            "static_ns",
            "dyn_ns",
            "instr_off_ns",
            "instr_on_ns",
            "instr_off_delta_ns",
        ],
    );
    // The instrumentation layers are the *column* axis: each layer is
    // measured with the global telemetry gates forced to its own
    // state, then the caller's state is restored.
    let was_profiling = telemetry::profiling();
    let was_recording = telemetry::recording();
    let registry_mark = telemetry::registered_len();
    for spec in specs {
        telemetry::set_profiling(false);
        let mut stat_leg = static_leg(spec, m, false);
        let mut dyn_leg = m.dyn_spec(spec);
        // Already-instrumented registry entries are measured as
        // themselves, not re-wrapped — a nested
        // Instrumented(Instrumented(..)) would pay two cells and make
        // that row incomparable to the rest of the baseline.
        let ispec = if matches!(spec, LockSpec::Instrumented(_)) {
            spec.clone()
        } else {
            LockSpec::Instrumented(Box::new(spec.clone()))
        };
        let mut off_leg = m.dyn_spec(&ispec);
        // The instr-on leg builds (and warms up) under profiling so
        // its trained state matches its measured state.
        telemetry::set_profiling(true);
        let mut on_leg = m.dyn_spec(&ispec);
        telemetry::set_profiling(false);
        // Interleave the layers' batches (see [`Meter`]): each rep
        // cycle measures one batch of every layer.
        let mut best = [f64::INFINITY; 4];
        for _ in 0..m.reps {
            best[0] = best[0].min(stat_leg());
            best[1] = best[1].min(dyn_leg());
            best[2] = best[2].min(off_leg());
            telemetry::set_profiling(true);
            best[3] = best[3].min(on_leg());
            telemetry::set_profiling(false);
        }
        let [stat, dy, off, on] = best;

        let label = spec.label();
        for (layer, ns) in LAYERS.iter().zip([stat, dy, off, on]) {
            // ops/s keeps BENCH_overhead.json schema-compatible with
            // the throughput figures; ns/op = 1e9 / ops_per_sec.
            t.push_sample(&format!("{label}@layer={layer}"), 1, 1e9 / ns.max(1e-9));
        }
        t.push_row(vec![
            label,
            format!("{stat:.1}"),
            format!("{dy:.1}"),
            format!("{off:.1}"),
            format!("{on:.1}"),
            format!("{:+.1}", off - dy),
        ]);
    }
    // The instrumented legs registered cells in the process-wide
    // telemetry registry, and what those cells hold is this figure's
    // own measurement-loop counts — not workload telemetry. Drop
    // exactly those (scoped truncate, not a wholesale clear — foreign
    // cells registered before this figure stay reported) so the
    // per-figure profile epilogue doesn't print a spurious stats
    // table; the latency table above is the deliverable.
    telemetry::truncate_registered(registry_mark);
    telemetry::set_profiling(was_profiling);
    telemetry::set_recording(was_recording);
    t.note("single-threaded, best-of-reps batch means; instr_off_delta = instr-off minus dyn (target: within noise)");
    t.note("layers: static guard / dyn facade / instrumented-<name> with profiling off / with profiling on");
    t
}

/// Figure driver: the full registry sweep.
pub fn overhead(profile: &Profile) -> Vec<Table> {
    let m = Meter::from_profile(profile);
    let specs: Vec<LockSpec> = registry().into_iter().map(|e| e.spec).collect();
    vec![overhead_table(&m, &specs)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Meter {
        Meter {
            iters: 500,
            reps: 2,
        }
    }

    #[test]
    fn covers_every_layer_for_each_spec() {
        let _gate = crate::telemetry_test_lock();
        let specs = vec![LockSpec::Mcs, LockSpec::Adaptive];
        let t = overhead_table(&tiny(), &specs);
        assert_eq!(t.rows.len(), specs.len());
        assert_eq!(t.samples.len(), specs.len() * LAYERS.len());
        for spec in &specs {
            for layer in LAYERS {
                let key = format!("{spec}@layer={layer}");
                assert!(
                    t.samples.iter().any(|s| s.lock == key && s.threads == 1),
                    "missing sample {key}"
                );
            }
        }
        // All measurements are positive, finite latencies.
        for s in &t.samples {
            assert!(s.ops_per_sec.is_finite() && s.ops_per_sec > 0.0);
        }
    }

    #[test]
    fn restores_telemetry_gates() {
        // Under the shared gate lock: other tests in this binary arm
        // the same process-wide flags.
        let _gate = crate::telemetry_test_lock();
        telemetry::set_profiling(false);
        let _ = overhead_table(&tiny(), &[LockSpec::Ticket]);
        assert!(!telemetry::profiling(), "figure must restore profiling");
        assert!(!telemetry::recording(), "figure must restore recording");
        assert!(
            !telemetry::snapshots()
                .iter()
                .any(|(l, _)| l.contains("instrumented-ticket")),
            "figure must drop its measurement cells from the registry"
        );
    }

    #[test]
    fn static_layer_handles_every_registry_family() {
        // The static dispatch match must not panic for any catalogued
        // spec (a gap here silently drops a lock from the baseline).
        let m = tiny();
        for entry in registry() {
            let ns = static_leg(&entry.spec, &m, false)();
            assert!(
                ns.is_finite() && ns > 0.0,
                "{}: bad static ns {ns}",
                entry.spec
            );
        }
    }
}
