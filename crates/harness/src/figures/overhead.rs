//! `overhead` — uncontended acquire+release latency across access
//! layers.
//!
//! Uncontended / light-contention latency is where lock designs win
//! or lose (Fissile Locks; the scalability-collapse literature), yet
//! the repo's bench trajectory had throughput figures only. This
//! figure anchors the *latency* trajectory: for every lock in the
//! registry it measures single-threaded acquire+release ns/op through
//! each access layer the workspace offers —
//!
//! * **static** — the concrete lock type behind an RAII
//!   [`Guard`]/[`WriteGuard`] (monomorphized, no vtable);
//! * **dyn** — the same lock behind [`LockSpec::make_dyn`]'s
//!   `Arc<dyn PlainLock>` facade (one virtual call + token
//!   encode/decode per op), which is what the harness and the
//!   database engines use;
//! * **instr-off** — the `instrumented-<name>` spec with profiling
//!   *off*: the telemetry wrapper must fast-exit before any counter
//!   RMW, so this column is expected to sit within noise (single-digit
//!   ns) of `dyn`;
//! * **instr-on** — the same spec with profiling *on* (counts +
//!   hold/wait sampling), which pays the documented clock-read cost.
//!
//! `repro overhead --out DIR` additionally emits
//! `DIR/BENCH_overhead.json` with one `lock@layer=<layer>` record per
//! cell, giving CI a machine-readable per-PR latency baseline.

use asl_core::{AslBlockingLock, AslClhLock, AslRwLock, AslShflLock, AslSpinLock, AslTicketLock};
use asl_locks::api::{Guard, WriteGuard};
use asl_locks::plain::PlainLock;
use asl_locks::shuffle::{ClassLocalPolicy, ShuffleLock};
use asl_locks::telemetry::{self, Instrumented, InstrumentedRw};
use asl_locks::{
    Adaptive, Bravo, ClhLock, CnaLock, CohortLock, MalthusianLock, McsLock, McsStpLock,
    ProportionalLock, PthreadMutex, RawLock, RawRwLock, RwTicketLock, TasLock, TicketLock,
};
use asl_runtime::clock::now_ns;

use super::Profile;
use crate::locks::{registry, AslSubstrate, BravoInner, LockSpec, StaticWindowLock};
use crate::report::Table;

/// The access layers measured, in column order (also the `@layer=`
/// suffixes in `BENCH_overhead.json`).
pub const LAYERS: [&str; 4] = ["static", "dyn", "instr-off", "instr-on"];

/// Single-threaded latency meter: batches of `iters` operations,
/// best-of-`reps` (minimum filters scheduler preemption noise, which
/// dominates p50 on an oversubscribed 1-CPU host).
pub(crate) struct Meter {
    iters: u64,
    reps: u32,
}

impl Meter {
    pub(crate) fn from_profile(profile: &Profile) -> Self {
        Meter {
            // ~250 ops per configured millisecond keeps quick mode
            // under a second per layer sweep and full mode steady.
            iters: (profile.duration_ms * 250).clamp(2_000, 200_000),
            reps: if profile.duration_ms < 300 { 3 } else { 5 },
        }
    }

    /// Best observed mean ns per `op()` call.
    fn ns_per_op(&self, mut op: impl FnMut()) -> f64 {
        for _ in 0..self.iters / 4 {
            op(); // warmup: fault in nodes, trainers, branch caches
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.reps {
            let t0 = now_ns();
            for _ in 0..self.iters {
                op();
            }
            let dt = now_ns().saturating_sub(t0).max(1);
            best = best.min(dt as f64 / self.iters as f64);
        }
        best
    }

    /// Statically dispatched guard round-trip on a concrete
    /// [`RawLock`], optionally under a static [`Instrumented`] wrap.
    fn raw<L: RawLock>(&self, lock: L, instr: bool) -> f64 {
        if instr {
            let lock = Instrumented::new(lock);
            self.ns_per_op(|| {
                let _g = Guard::new(&lock);
            })
        } else {
            self.ns_per_op(|| {
                let _g = Guard::new(&lock);
            })
        }
    }

    /// Statically dispatched write-guard round-trip on a concrete
    /// [`RawRwLock`] (the write side mirrors what exclusive call
    /// sites pay).
    fn rw<L: RawRwLock>(&self, lock: L, instr: bool) -> f64 {
        if instr {
            let lock = InstrumentedRw::new(lock);
            self.ns_per_op(|| {
                let _g = WriteGuard::new(&lock);
            })
        } else {
            self.ns_per_op(|| {
                let _g = WriteGuard::new(&lock);
            })
        }
    }

    /// Concrete [`PlainLock`] round-trip (for lock types that only
    /// exist behind the plain facade, like LibASL-OPT).
    fn plain<P: PlainLock>(&self, lock: &P) -> f64 {
        self.ns_per_op(|| {
            let t = lock.acquire();
            lock.release(t);
        })
    }

    /// Dynamically dispatched guard round-trip through a built spec.
    fn dyn_spec(&self, spec: &LockSpec) -> f64 {
        let lock = spec.make_dyn();
        self.ns_per_op(|| {
            let _g = lock.lock();
        })
    }
}

/// Measure `spec` through the statically dispatched layer: a match
/// mirroring [`LockSpec::make_lock_raw`], but monomorphized per
/// concrete lock type. `instr` wraps the concrete type in a static
/// [`Instrumented`]/[`InstrumentedRw`] (how `instrumented-<name>`
/// registry entries are measured at this layer; nesting beyond one
/// wrap measures as one).
fn static_ns(spec: &LockSpec, m: &Meter, instr: bool) -> f64 {
    match spec {
        LockSpec::Instrumented(inner) => static_ns(inner, m, true),
        LockSpec::Pthread => m.raw(PthreadMutex::new(), instr),
        LockSpec::Tas(aff) => m.raw(TasLock::with_affinity(*aff), instr),
        LockSpec::Ticket => m.raw(TicketLock::new(), instr),
        LockSpec::Mcs => m.raw(McsLock::new(), instr),
        LockSpec::McsStp => m.raw(McsStpLock::new(), instr),
        LockSpec::ShflPb(n) => m.raw(ProportionalLock::new(*n), instr),
        LockSpec::Cna => m.raw(CnaLock::new(), instr),
        LockSpec::Cohort => m.raw(CohortLock::new(), instr),
        LockSpec::Malthusian => m.raw(MalthusianLock::new(), instr),
        LockSpec::ShuffleClassLocal { max_skips } => {
            m.raw(ShuffleLock::new(ClassLocalPolicy::new(*max_skips)), instr)
        }
        LockSpec::Asl { substrate, .. } => match substrate {
            AslSubstrate::Mcs => m.raw(AslSpinLock::default(), instr),
            AslSubstrate::Clh => m.raw(AslClhLock::new(ClhLock::new()), instr),
            AslSubstrate::Ticket => m.raw(AslTicketLock::new(TicketLock::new()), instr),
            AslSubstrate::ShflFifo => m.raw(
                AslShflLock::new(ShuffleLock::new(asl_locks::shuffle::FifoPolicy)),
                instr,
            ),
        },
        // LibASL-OPT only exists behind the plain facade; its static
        // layer is the concrete (non-virtual) PlainLock impl. The
        // registry carries no instrumented-libasl-opt entry, so the
        // static-instrumented combination cannot be requested.
        LockSpec::AslOpt { window_ns } => m.plain(&StaticWindowLock::new(*window_ns)),
        LockSpec::AslBlocking { .. } => m.raw(AslBlockingLock::new_blocking(), instr),
        LockSpec::Adaptive => m.raw(Adaptive::new(), instr),
        LockSpec::RwTicket => m.rw(RwTicketLock::new(), instr),
        LockSpec::BravoRw(inner) => match inner {
            BravoInner::Tas => m.rw(Bravo::new(TasLock::new()), instr),
            BravoInner::Ticket => m.rw(Bravo::new(TicketLock::new()), instr),
            BravoInner::Mcs => m.rw(Bravo::new(McsLock::new()), instr),
            BravoInner::Clh => m.rw(Bravo::new(ClhLock::new()), instr),
            BravoInner::Asl => m.rw(Bravo::new(AslSpinLock::default()), instr),
        },
        LockSpec::AslRw { .. } => m.rw(AslRwLock::default(), instr),
    }
}

/// Build the overhead table for an explicit spec list (unit tests use
/// a short list; the figure driver passes the whole registry).
pub(crate) fn overhead_table(m: &Meter, specs: &[LockSpec]) -> Table {
    let mut t = Table::new(
        "overhead",
        "uncontended acquire+release latency (ns/op, 1 thread) per access layer",
        &[
            "lock",
            "static_ns",
            "dyn_ns",
            "instr_off_ns",
            "instr_on_ns",
            "instr_off_delta_ns",
        ],
    );
    // The instrumentation layers are the *column* axis: each layer is
    // measured with the global telemetry gates forced to its own
    // state, then the caller's state is restored.
    let was_profiling = telemetry::profiling();
    let was_recording = telemetry::recording();
    let registry_mark = telemetry::registered_len();
    for spec in specs {
        telemetry::set_profiling(false);
        let stat = static_ns(spec, m, false);
        let dy = m.dyn_spec(spec);
        // Already-instrumented registry entries are measured as
        // themselves, not re-wrapped — a nested
        // Instrumented(Instrumented(..)) would pay two cells and make
        // that row incomparable to the rest of the baseline.
        let ispec = if matches!(spec, LockSpec::Instrumented(_)) {
            spec.clone()
        } else {
            LockSpec::Instrumented(Box::new(spec.clone()))
        };
        let off = m.dyn_spec(&ispec);
        telemetry::set_profiling(true);
        let on = m.dyn_spec(&ispec);
        telemetry::set_profiling(false);

        let label = spec.label();
        for (layer, ns) in LAYERS.iter().zip([stat, dy, off, on]) {
            // ops/s keeps BENCH_overhead.json schema-compatible with
            // the throughput figures; ns/op = 1e9 / ops_per_sec.
            t.push_sample(&format!("{label}@layer={layer}"), 1, 1e9 / ns.max(1e-9));
        }
        t.push_row(vec![
            label,
            format!("{stat:.1}"),
            format!("{dy:.1}"),
            format!("{off:.1}"),
            format!("{on:.1}"),
            format!("{:+.1}", off - dy),
        ]);
    }
    // The instrumented legs registered cells in the process-wide
    // telemetry registry, and what those cells hold is this figure's
    // own measurement-loop counts — not workload telemetry. Drop
    // exactly those (scoped truncate, not a wholesale clear — foreign
    // cells registered before this figure stay reported) so the
    // per-figure profile epilogue doesn't print a spurious stats
    // table; the latency table above is the deliverable.
    telemetry::truncate_registered(registry_mark);
    telemetry::set_profiling(was_profiling);
    telemetry::set_recording(was_recording);
    t.note("single-threaded, best-of-reps batch means; instr_off_delta = instr-off minus dyn (target: within noise)");
    t.note("layers: static guard / dyn facade / instrumented-<name> with profiling off / with profiling on");
    t
}

/// Figure driver: the full registry sweep.
pub fn overhead(profile: &Profile) -> Vec<Table> {
    let m = Meter::from_profile(profile);
    let specs: Vec<LockSpec> = registry().into_iter().map(|e| e.spec).collect();
    vec![overhead_table(&m, &specs)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Meter {
        Meter {
            iters: 500,
            reps: 2,
        }
    }

    #[test]
    fn covers_every_layer_for_each_spec() {
        let _gate = crate::telemetry_test_lock();
        let specs = vec![LockSpec::Mcs, LockSpec::Adaptive];
        let t = overhead_table(&tiny(), &specs);
        assert_eq!(t.rows.len(), specs.len());
        assert_eq!(t.samples.len(), specs.len() * LAYERS.len());
        for spec in &specs {
            for layer in LAYERS {
                let key = format!("{spec}@layer={layer}");
                assert!(
                    t.samples.iter().any(|s| s.lock == key && s.threads == 1),
                    "missing sample {key}"
                );
            }
        }
        // All measurements are positive, finite latencies.
        for s in &t.samples {
            assert!(s.ops_per_sec.is_finite() && s.ops_per_sec > 0.0);
        }
    }

    #[test]
    fn restores_telemetry_gates() {
        // Under the shared gate lock: other tests in this binary arm
        // the same process-wide flags.
        let _gate = crate::telemetry_test_lock();
        telemetry::set_profiling(false);
        let _ = overhead_table(&tiny(), &[LockSpec::Ticket]);
        assert!(!telemetry::profiling(), "figure must restore profiling");
        assert!(!telemetry::recording(), "figure must restore recording");
        assert!(
            !telemetry::snapshots()
                .iter()
                .any(|(l, _)| l.contains("instrumented-ticket")),
            "figure must drop its measurement cells from the registry"
        );
    }

    #[test]
    fn static_layer_handles_every_registry_family() {
        // The static dispatch match must not panic for any catalogued
        // spec (a gap here silently drops a lock from the baseline).
        let m = tiny();
        for entry in registry() {
            let ns = static_ns(&entry.spec, &m, false);
            assert!(
                ns.is_finite() && ns > 0.0,
                "{}: bad static ns {ns}",
                entry.spec
            );
        }
    }
}
