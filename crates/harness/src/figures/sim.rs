//! `sim-*` — the real lock zoo on a *modeled* machine.
//!
//! These figures run the unmodified lock implementations through the
//! deterministic virtual-time engine ([`asl_sim::exec`]) instead of
//! real threads. That buys three things the wall-clock figures cannot
//! offer:
//!
//! * **Machines we don't have** — a 4-socket × 16-core NUMA box
//!   ([`Topology::numa`]), arbitrary big/little perf ratios — on any
//!   host, including single-CPU CI.
//! * **Exact counts** — short/long-term fairness as precise grant
//!   traces and per-thread op counts, not sampled approximations.
//! * **Byte-identical reruns** — the same seed reproduces every
//!   figure bit for bit (`BENCH_sim-*.json` is diffable in CI).
//!
//! Virtual durations scale with the profile: each configured
//! wall-clock millisecond buys 2 µs of virtual time, keeping quick
//! mode CI-fast while full mode runs longer traces.

use std::sync::Arc;

use asl_core::AslSpinLock;
use asl_runtime::atomic_model::AtomicAffinity;
use asl_runtime::topology::Topology;
use asl_sim::exec::{run_lock, ZooConfig, ZooResult};

use super::Profile;
use crate::locks::LockSpec;
use crate::report::{fmt_ops, fmt_us, Table};

/// Schedule seed shared by every sim figure: fixed, so `--out` files
/// are byte-identical across runs (change it and every trace legally
/// changes).
const SEED: u64 = 42;

/// Virtual nanoseconds simulated per configured wall-clock
/// millisecond of profile duration.
const VIRT_NS_PER_MS: u64 = 2_000;

fn cfg(profile: &Profile, topology: Topology, threads: usize) -> ZooConfig {
    let mut c = ZooConfig::quick(topology, threads, SEED);
    c.duration_ns = (profile.duration_ms * VIRT_NS_PER_MS).max(100_000);
    c.cs_units = 600;
    c.ncs_units = 600;
    c
}

fn spec_lock(spec: &LockSpec) -> Arc<dyn asl_locks::plain::PlainLock> {
    spec.make_lock_raw()
}

/// Percentage helper for class shares.
fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// `sim-numa` — CNA and cohort on a modeled 4-socket × 16-core NUMA
/// machine: class batching cuts cross-socket lock handoffs versus
/// FIFO MCS, with exact handoff and batch counts.
pub fn sim_numa(profile: &Profile) -> Vec<Table> {
    let topo = || Topology::numa(4, 16);
    let mut t = Table::new(
        "sim-numa",
        "real zoo on a modeled 4-socket x 16-core NUMA machine (64 threads, virtual time)",
        &[
            "lock",
            "ops",
            "thpt",
            "local_handoffs",
            "remote_handoffs",
            "remote_pct",
            "max_class_batch",
        ],
    );
    for spec in [
        LockSpec::Mcs,
        LockSpec::Ticket,
        LockSpec::Cna,
        LockSpec::Cohort,
        LockSpec::Malthusian(None),
    ] {
        let r = run_lock(&cfg(profile, topo(), 64), spec_lock(&spec));
        t.push_sample(&spec.label(), 64, r.throughput);
        t.push_row(vec![
            spec.label(),
            r.total_ops.to_string(),
            fmt_ops(r.throughput),
            r.handoffs_local.to_string(),
            r.handoffs_remote.to_string(),
            format!("{:.1}", 100.0 * r.remote_fraction()),
            r.max_class_batch.to_string(),
        ]);
    }
    t.note("modeled machine: Topology::numa(4,16); sockets 0-1 form the big class, 2-3 the little class");
    t.note("exact counts from the deterministic grant trace — same seed, byte-identical output");
    vec![t]
}

/// `sim-fair` — exact short/long-term fairness counts on the M1-like
/// topology: per-class op shares (long-term) and the longest
/// same-class grant run (short-term), per policy.
pub fn sim_fair(profile: &Profile) -> Vec<Table> {
    let mut t = Table::new(
        "sim-fair",
        "exact fairness accounting on the modeled M1 (8 threads, virtual time)",
        &[
            "lock",
            "big_ops",
            "little_ops",
            "little_share_pct",
            "max_class_batch",
            "p99_big_us",
            "p99_little_us",
        ],
    );
    let specs = [
        LockSpec::Ticket,
        LockSpec::Mcs,
        LockSpec::Tas(AtomicAffinity::little_wins()),
        LockSpec::Cna,
        LockSpec::ShflPb(10),
    ];
    for spec in &specs {
        let r = run_lock(&cfg(profile, Topology::apple_m1(), 8), spec_lock(spec));
        t.push_sample(&spec.label(), 8, r.throughput);
        t.push_row(fair_row(&spec.label(), &r));
    }
    // LibASL with an SLO: the workload wraps every op in an epoch, so
    // Algorithm-2 window feedback runs live on the virtual clock.
    let mut asl = cfg(profile, Topology::apple_m1(), 8);
    asl.slo_ns = Some(60_000);
    let r = run_lock(&asl, Arc::new(AslSpinLock::default()));
    t.push_sample("libasl-60us", 8, r.throughput);
    t.push_row(fair_row("libasl-60us", &r));
    t.note("long-term fairness = per-class op shares; short-term = longest same-class grant run");
    t.note("counts are exact (full grant trace), not sampled");
    vec![t]
}

fn fair_row(label: &str, r: &ZooResult) -> Vec<String> {
    vec![
        label.to_string(),
        r.big_ops.to_string(),
        r.little_ops.to_string(),
        format!("{:.1}", pct(r.little_ops, r.total_ops)),
        r.max_class_batch.to_string(),
        fmt_us(r.p99_big),
        fmt_us(r.p99_little),
    ]
}

/// `sim-oversub` — an oversubscription sweep on a modeled 4-core
/// machine: spinning collapses once threads outnumber cores (waiting
/// burns whole scheduling quanta), spin-then-park and the blocking
/// mutex keep going — the cores a parked thread frees are exact in
/// virtual time.
pub fn sim_oversub(profile: &Profile) -> Vec<Table> {
    let topo = || Topology::custom(2, 2, 1.0);
    let mut t = Table::new(
        "sim-oversub",
        "oversubscription on a modeled 4-core machine (virtual time)",
        &["lock", "threads", "ops", "thpt", "p99_us"],
    );
    for threads in [4usize, 8, 16] {
        for spec in [LockSpec::Mcs, LockSpec::McsStp, LockSpec::Pthread] {
            let mut c = cfg(profile, topo(), threads);
            // Oversubscription physics needs several 50 µs scheduling
            // quanta per core to show: run an order of magnitude
            // longer than the other sim figures.
            c.duration_ns = (c.duration_ns * 10).max(1_000_000);
            let r = run_lock(&c, spec_lock(&spec));
            t.push_sample(&spec.label(), threads, r.throughput);
            t.push_row(vec![
                spec.label(),
                threads.to_string(),
                r.total_ops.to_string(),
                fmt_ops(r.throughput),
                fmt_us(r.p99_overall),
            ]);
        }
    }
    t.note("4 cores; 8 and 16 threads are 2x and 4x oversubscribed");
    t.note("parked virtual threads free their core; spinners hold it for a full quantum");
    vec![t]
}

/// `sim-fig1` — the paper's Figure-1 shapes on asymmetric modeled
/// machines: FIFO throughput collapses when little cores join, and
/// little-core atomic affinity starves big cores.
pub fn sim_fig1(profile: &Profile) -> Vec<Table> {
    let amp = || Topology::custom(4, 4, 3.0);
    let mut t = Table::new(
        "sim-fig1",
        "paper Fig.1 shapes on a modeled 4-big/4-little ratio-3 machine (virtual time)",
        &["config", "threads", "thpt", "big_share_pct", "p99_big_us"],
    );
    let mut push = |label: &str, threads: usize, r: &ZooResult| {
        t.push_sample(label, threads, r.throughput);
        t.push_row(vec![
            label.to_string(),
            threads.to_string(),
            fmt_ops(r.throughput),
            format!("{:.1}", pct(r.big_ops, r.total_ops)),
            fmt_us(r.p99_big),
        ]);
    };
    // Fig 1a: a FIFO lock on 4 big cores, then with 4 little cores
    // added — adding cores *reduces* throughput.
    let fifo4 = run_lock(&cfg(profile, amp(), 4), spec_lock(&LockSpec::Ticket));
    push("fifo-4big", 4, &fifo4);
    let fifo8 = run_lock(&cfg(profile, amp(), 8), spec_lock(&LockSpec::Ticket));
    push("fifo-8amp", 8, &fifo8);
    // Fig 1b: little-core atomic affinity hands the TAS race to
    // little cores; big-core share and tail collapse.
    let tas_neutral = run_lock(
        &cfg(profile, amp(), 8),
        spec_lock(&LockSpec::Tas(AtomicAffinity::Neutral)),
    );
    push("tas-neutral-8amp", 8, &tas_neutral);
    let tas_little = run_lock(
        &cfg(profile, amp(), 8),
        spec_lock(&LockSpec::Tas(AtomicAffinity::little_wins())),
    );
    push("tas-little-8amp", 8, &tas_little);
    t.note("fifo-8amp vs fifo-4big reproduces the Fig.1a collapse; tas-little vs tas-neutral the Fig.1b starvation");
    vec![t]
}

/// `sim-fig8` — the paper's Figure-8 SLO sweep with the *real* LibASL
/// lock: reordering windows grow with the SLO, buying throughput;
/// little-core P99 stays anchored to the SLO line.
pub fn sim_fig8(profile: &Profile) -> Vec<Table> {
    let amp = || Topology::custom(4, 4, 3.0);
    let mut t = Table::new(
        "sim-fig8",
        "paper Fig.8 shape: real LibASL under an SLO sweep (8 threads, virtual time)",
        &[
            "config",
            "thpt",
            "little_ops",
            "p99_little_us",
            "max_wait_little_us",
        ],
    );
    // Algorithm-2's window feedback needs many epochs to converge to
    // its SLO-specific plateau: run long enough for a few hundred
    // epochs per thread.
    let slo_cfg = |slo_ns: Option<u64>| {
        let mut c = cfg(profile, amp(), 8);
        c.duration_ns = (c.duration_ns * 20).max(4_000_000);
        // Heavier critical sections than the other sim figures, so the
        // fully-reordered tail lands *inside* the SLO sweep range and
        // each SLO point settles on a different window plateau.
        c.cs_units = 2_000;
        c.slo_ns = slo_ns;
        c
    };
    let fifo = run_lock(&slo_cfg(None), spec_lock(&LockSpec::Mcs));
    t.push_sample("mcs", 8, fifo.throughput);
    t.push_row(vec![
        "mcs".into(),
        fmt_ops(fifo.throughput),
        fifo.little_ops.to_string(),
        fmt_us(fifo.p99_little),
        fmt_us(fifo.max_wait_little),
    ]);
    for slo_us in [15u64, 35, 60] {
        let c = slo_cfg(Some(slo_us * 1_000));
        let r = run_lock(&c, Arc::new(AslSpinLock::default()));
        let label = format!("libasl-{slo_us}us");
        t.push_sample(&label, 8, r.throughput);
        t.push_row(vec![
            label,
            fmt_ops(r.throughput),
            r.little_ops.to_string(),
            fmt_us(r.p99_little),
            fmt_us(r.max_wait_little),
        ]);
    }
    t.note("the lock under test is the unmodified AslSpinLock incl. Algorithm-2 feedback, on the virtual clock");
    t.note("paper Fig.8b shape: throughput grows with the SLO; the little-core tail tracks the SLO line");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Profile {
        Profile {
            duration_ms: 60,
            warmup_ms: 10,
            pin: false,
        }
    }

    #[test]
    fn sim_figures_are_deterministic() {
        // The acceptance bar for the whole family: run twice, compare
        // every sample bit for bit (the JSON is rendered from these).
        let a = sim_fair(&tiny());
        let b = sim_fair(&tiny());
        assert_eq!(a[0].samples, b[0].samples);
        assert_eq!(a[0].rows, b[0].rows);
    }

    #[test]
    fn sim_fig1_reproduces_the_collapse() {
        let t = &sim_fig1(&tiny())[0];
        let thpt = |label: &str| {
            t.samples
                .iter()
                .find(|s| s.lock == label)
                .expect(label)
                .ops_per_sec
        };
        // Fig 1a: adding little cores must not help FIFO.
        assert!(thpt("fifo-8amp") < thpt("fifo-4big"));
        // Fig 1b: little affinity shrinks the big-core share.
        let share = |label: &str| {
            let row = t.rows.iter().find(|r| r[0] == label).expect(label);
            row[3].parse::<f64>().unwrap()
        };
        assert!(share("tas-little-8amp") < share("tas-neutral-8amp"));
    }

    #[test]
    fn sim_oversub_parking_wins() {
        let t = &sim_oversub(&tiny())[0];
        let ops = |lock: &str, threads: usize| {
            t.samples
                .iter()
                .find(|s| s.lock == lock && s.threads == threads)
                .expect(lock)
                .ops_per_sec
        };
        // At 4x oversubscription the parking locks must beat the pure
        // spinlock.
        assert!(ops("mcs-stp", 16) > ops("mcs", 16));
    }
}
