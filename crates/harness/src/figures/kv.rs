//! `kv` — the sharded KV service under open-loop traffic.
//!
//! The serving-side extension of the paper's SLO story: instead of
//! threads on cores re-acquiring a lock in a loop, a population of
//! 10⁵–10⁶ *simulated clients* (one async task each) fires requests at
//! a sharded KV store on an open-loop schedule. Each shard is guarded
//! by an async mutex whose wait-queue policy comes from the lock
//! registry via [`LockSpec::async_policy`]:
//!
//! * `mcs` → FIFO handoff (the async analogue of an MCS queue),
//! * `libasl-<slo>` → deadline order, window bounded by the SLO,
//! * `libasl-max` → pure earliest-deadline-first (unbounded window).
//!
//! Every request's deadline anchors at its *scheduled* arrival
//! (scheduled + SLO), and latency is measured from that same instant —
//! so deadline order is exactly the order that minimizes maximum
//! lateness (EDF optimality), while FIFO wakes in *poll* order, which
//! executor queueing scrambles under load. The gap between the two is
//! the p99.9 this figure reports, swept over
//! {lock family} × {arrival rate} × {shard count}, plus a bursty-
//! arrival table where queue depth (and therefore reordering freedom)
//! is largest.

use std::sync::Arc;

use asl_dbsim::arrival::ArrivalProcess;
use asl_dbsim::kv::{KvConfig, ShardedKv};
use asl_dbsim::openloop::{run_open_loop, OpenLoopConfig, OpenLoopReport};

use super::Profile;
use crate::hist::Hist;
use crate::locks::LockSpec;
use crate::report::{fmt_ops, fmt_us, Table};

/// Executor workers serving the store (the paper machine's big-core
/// count: four service cores).
const WORKERS: usize = 4;

/// Per-request SLO anchoring every deadline (and the `libasl-<slo>`
/// competitor's reorder-window bound).
const SLO_NS: u64 = 100_000;

/// Big-core critical-section cost of one request (index probe +
/// record copy), in wall nanoseconds.
const CS_NS: u64 = 1_500;

/// Offered-load sweep (requests/second).
const RATES: [f64; 3] = [200_000.0, 500_000.0, 1_000_000.0];

/// Middle of [`RATES`], used for the shard sweep and burst table.
const MID_RATE: f64 = 500_000.0;

/// Shard counts beyond the default, swept at [`MID_RATE`]. The
/// [`BASE_SHARDS`] midpoint already appears in the rate sweep, so the
/// shard table adds only the extremes (labels stay unique).
const SHARDS: [usize; 2] = [1, 16];

/// Default shard count for the rate sweep.
const BASE_SHARDS: usize = 4;

/// The lock lineup: FIFO baseline and two SLO-aware points.
fn lineup() -> [LockSpec; 3] {
    [
        LockSpec::Mcs,
        LockSpec::asl(Some(SLO_NS)),
        LockSpec::asl(None),
    ]
}

/// Simulated clients per configured wall-clock millisecond of profile
/// duration (quick: 120 ms → 120k clients; full: 600 ms → 600k).
const CLIENTS_PER_MS: usize = 1_000;

fn clients(profile: &Profile) -> usize {
    (profile.duration_ms as usize)
        .saturating_mul(CLIENTS_PER_MS)
        .max(10_000)
}

fn base_cfg(profile: &Profile, seed_salt: u64) -> OpenLoopConfig {
    OpenLoopConfig {
        clients: clients(profile),
        rate_per_sec: MID_RATE,
        process: ArrivalProcess::Poisson,
        theta: Some(asl_dbsim::workload::YCSB_THETA),
        read_fraction: 0.5,
        slo_ns: Some(SLO_NS),
        workers: WORKERS,
        seed: 0x0A51_0000 ^ seed_salt,
    }
}

/// One measured cell: build the store for `spec`, drive it open-loop,
/// reduce latencies to a histogram.
fn run_cell(spec: &LockSpec, shards: usize, cfg: &OpenLoopConfig) -> (OpenLoopReport, Hist) {
    let kv = Arc::new(ShardedKv::new(KvConfig {
        shards,
        policy: spec.async_policy(),
        cs_units: asl_runtime::work::units_for_ns(CS_NS),
        ..KvConfig::default()
    }));
    // Fill every key so the 50% read half of the mix hits.
    kv.prefill(1);
    let report = run_open_loop(kv, cfg);
    let mut hist = Hist::new();
    for &l in &report.latencies_ns {
        hist.record(l);
    }
    (report, hist)
}

const COLS: [&str; 8] = [
    "lock", "shards", "rate", "clients", "thpt", "p50_us", "p99_us", "p999_us",
];

fn push_cell(t: &mut Table, spec: &LockSpec, shards: usize, rate: f64, cfg: &OpenLoopConfig) {
    let (report, hist) = run_cell(spec, shards, cfg);
    let arrival_tag = match cfg.process {
        ArrivalProcess::Poisson => String::new(),
        p => format!(",arrival={}", p.label()),
    };
    let label = format!(
        "{}@rate={}k,shards={}{}",
        spec.label(),
        (rate / 1e3) as u64,
        shards,
        arrival_tag
    );
    t.push_latency_sample(
        &label,
        cfg.workers,
        report.throughput,
        hist.p99(),
        hist.p999(),
    );
    t.push_row(vec![
        spec.label(),
        shards.to_string(),
        fmt_ops(rate),
        report.completed.to_string(),
        fmt_ops(report.throughput),
        fmt_us(hist.percentile(50.0)),
        fmt_us(hist.p99()),
        fmt_us(hist.p999()),
    ]);
}

/// `kv` — throughput and tail latency of the sharded KV service under
/// open-loop Poisson (and bursty) traffic, per shard-lock policy.
pub fn kv(profile: &Profile) -> Vec<Table> {
    let n = clients(profile);
    let mut rates = Table::new(
        "kv-rates",
        &format!(
            "sharded KV service, open-loop Poisson arrivals ({n} clients, {BASE_SHARDS} shards, {WORKERS} workers)"
        ),
        &COLS,
    );
    for (i, spec) in lineup().iter().enumerate() {
        for (j, &rate) in RATES.iter().enumerate() {
            let cfg = OpenLoopConfig {
                rate_per_sec: rate,
                ..base_cfg(profile, (i * RATES.len() + j) as u64)
            };
            push_cell(&mut rates, spec, BASE_SHARDS, rate, &cfg);
        }
    }
    note_common(&mut rates);

    let mut shards = Table::new(
        "kv-shards",
        &format!(
            "shard-count sweep at {} req/s ({n} clients)",
            fmt_ops(MID_RATE)
        ),
        &COLS,
    );
    for (i, spec) in lineup().iter().enumerate() {
        for (j, &s) in SHARDS.iter().enumerate() {
            let cfg = base_cfg(profile, 0x100 + (i * SHARDS.len() + j) as u64);
            push_cell(&mut shards, spec, s, MID_RATE, &cfg);
        }
    }
    shards.note("fewer shards = hotter shard locks; the policy gap widens as shards shrink");
    shards.note(format!(
        "the shards={BASE_SHARDS} midpoint is the rate={} row of kv-rates",
        fmt_ops(MID_RATE)
    ));

    let mut burst = Table::new(
        "kv-burst",
        &format!(
            "bursty arrivals (64-deep bursts) at {} req/s ({n} clients, {BASE_SHARDS} shards)",
            fmt_ops(MID_RATE)
        ),
        &COLS,
    );
    for (i, spec) in lineup().iter().enumerate() {
        let cfg = OpenLoopConfig {
            process: ArrivalProcess::Burst { burst: 64 },
            ..base_cfg(profile, 0x200 + i as u64)
        };
        push_cell(&mut burst, spec, BASE_SHARDS, MID_RATE, &cfg);
    }
    burst.note("bursts fill the wait queues at one instant, so wake policy (not arrival order) sets the tail");

    vec![rates, shards, burst]
}

fn note_common(t: &mut Table) {
    t.note(format!(
        "one async task per simulated client; deadline = scheduled arrival + {}us SLO",
        SLO_NS / 1_000
    ));
    t.note("latency measured from the scheduled (not actual) start: coordinated-omission-free");
    t.note("zipfian keys (theta=0.99), YCSB-A mix, 50% reads over a prefilled store");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny profile so the test drives the full figure path (three
    /// tables, latency samples attached) in well under a second.
    fn tiny() -> Profile {
        Profile {
            duration_ms: 1, // floor kicks in: 10k clients
            warmup_ms: 0,
            pin: false,
        }
    }

    #[test]
    fn kv_figure_produces_latency_samples_for_every_cell() {
        let tables = kv(&tiny());
        assert_eq!(tables.len(), 3);
        let cells: usize = tables.iter().map(|t| t.samples.len()).sum();
        assert_eq!(
            cells,
            lineup().len() * (RATES.len() + SHARDS.len() + 1),
            "every (lock, rate/shard/burst) cell must emit one sample"
        );
        for t in &tables {
            assert_eq!(t.rows.len(), t.samples.len());
            for s in &t.samples {
                assert!(s.ops_per_sec > 0.0, "{}: zero throughput", s.lock);
                let p99 = s.p99_ns.expect("kv samples carry p99");
                let p999 = s.p999_ns.expect("kv samples carry p999");
                assert!(p999 >= p99, "{}: p999 {} < p99 {}", s.lock, p999, p99);
            }
        }
        // Sample labels are unique (the BENCH json key contract).
        let mut labels: Vec<_> = tables
            .iter()
            .flat_map(|t| t.samples.iter().map(|s| s.lock.clone()))
            .collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n, "duplicate sample labels");
    }

    #[test]
    fn lineup_spans_fifo_and_slo_policies() {
        use asl_locks::AsyncPolicy;
        let policies: Vec<_> = lineup().iter().map(LockSpec::async_policy).collect();
        assert!(policies.contains(&AsyncPolicy::Fifo));
        assert!(policies.contains(&AsyncPolicy::Slo { slo_ns: SLO_NS }));
        assert!(policies.contains(&AsyncPolicy::Slo { slo_ns: u64::MAX }));
    }
}
