//! `repro rw` — the read-mostly scaling figure: exclusive vs
//! reader-writer substrates across YCSB read fractions.
//!
//! The paper's database evaluation (and our Fig. 9/10 drivers) funnel
//! every request through exclusive locks, which makes the read-mostly
//! YCSB-B/C mixes degenerate: 95%–100% of operations serialize on
//! locks they only need shared. This figure quantifies what the
//! reader-writer layer buys: the upscaledb-like engine (one global
//! tree lock — the sharpest exclusive-vs-shared contrast in Table 1)
//! swept over read fraction ∈ {0.5, 0.95, 1.0} × thread count, under
//! exclusive baselines (`mcs`, `libasl-max`) and the three rw
//! substrates (`rw-ticket`, `bravo-mcs`, `libasl-rw-max`).
//!
//! Expected shape: at YCSB-A (50% writes) the substrates are close —
//! writer drains dominate; as the read fraction grows the rw locks
//! pull away, and at YCSB-C the exclusive locks flatline with thread
//! count while the rw locks keep scaling.

use std::sync::Arc;

use asl_dbsim::upscale::UpscaleDb;
use asl_dbsim::workload::Mix;
use asl_runtime::Topology;

use crate::locks::LockSpec;
use crate::report::{fmt_us, Table};

use super::db::{run_engine_point, SpecFactory};
use super::Profile;

/// YCSB read fractions swept (A, B, C).
const READ_FRACTIONS: [f64; 3] = [0.5, 0.95, 1.0];

/// Thread counts swept (on the 8-core M1-like topology).
const THREADS: [usize; 3] = [2, 4, 8];

fn competitors() -> Vec<LockSpec> {
    vec![
        LockSpec::Mcs,
        LockSpec::asl(None),
        LockSpec::RwTicket,
        "bravo-mcs".parse().expect("registry name"),
        LockSpec::AslRw { slo_ns: None },
    ]
}

fn run_point(
    profile: &Profile,
    spec: &LockSpec,
    mix: Mix,
    threads: usize,
) -> crate::runner::RunResult {
    let engine = Arc::new(UpscaleDb::with_mix(&SpecFactory(spec.clone()), mix));
    run_engine_point(profile, Topology::apple_m1(), engine, spec, threads)
}

/// The `rw` figure driver: one table, a row per
/// lock × read-fraction × thread-count point.
pub fn rw(profile: &Profile) -> Vec<Table> {
    let mut table = Table::new(
        "rw",
        "read-mostly scaling: exclusive vs reader-writer locks (upscaledb)",
        &[
            "lock",
            "read_frac",
            "threads",
            "thpt_ops_s",
            "overall_p99_us",
            "little_p99_us",
        ],
    );
    for spec in competitors() {
        for &frac in &READ_FRACTIONS {
            for &threads in &THREADS {
                let r = run_point(profile, &spec, Mix::new(frac), threads);
                table.push_row(vec![
                    spec.label(),
                    format!("{frac:.2}"),
                    threads.to_string(),
                    format!("{:.0}", r.throughput),
                    fmt_us(r.overall.p99()),
                    fmt_us(r.little.p99()),
                ]);
                table.push_sample(
                    &format!("{}@rf={frac:.2}", spec.label()),
                    threads,
                    r.throughput,
                );
            }
        }
    }
    table.note(
        "Op::Read takes shared guards: rw substrates overlap reads, exclusive \
         substrates serialize them (YCSB-B/C = 95%/100% reads)"
            .to_string(),
    );
    let labels = asl_dbsim::Engine::lock_labels(&UpscaleDb::with_mix(
        &SpecFactory(LockSpec::Mcs),
        Mix::ycsb_a(),
    ))
    .join(", ");
    table.note(format!(
        "engine locks (telemetry labels under --profile): {labels}"
    ));
    vec![table]
}
