//! Timed multi-threaded experiment runner.
//!
//! Reproduces the paper's measurement protocol: `n` threads bound
//! big-cores-first on a virtual topology, a warmup phase, then a
//! fixed measurement window; throughput is completed operations per
//! second and latency is collected per core class so reports can show
//! Big P99 / Little P99 / Overall P99 side by side.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use asl_runtime::clock::now_ns;
use asl_runtime::spawn::{run_on_topology_with_stop, ThreadCtx};
use asl_runtime::topology::Topology;
use asl_runtime::CoreKind;

use crate::hist::Hist;

/// Phases of a timed run.
const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_DONE: u8 = 2;

/// Configuration for a timed run.
#[derive(Clone)]
pub struct RunConfig {
    /// The virtual AMP to run on.
    pub topology: Topology,
    /// Worker count (may exceed core count for over-subscription).
    pub threads: usize,
    /// Measurement window.
    pub duration: Duration,
    /// Warmup (not recorded) before measuring.
    pub warmup: Duration,
    /// Pin workers to physical CPUs.
    pub pin: bool,
}

impl RunConfig {
    /// Conventional config: all 8 cores of an M1-like topology.
    pub fn m1_default() -> Self {
        RunConfig {
            topology: Topology::apple_m1(),
            threads: 8,
            duration: Duration::from_millis(400),
            warmup: Duration::from_millis(100),
            pin: true,
        }
    }

    /// Scale measurement and warmup durations by `f` (quick modes).
    pub fn scaled(mut self, f: f64) -> Self {
        self.duration = Duration::from_secs_f64(self.duration.as_secs_f64() * f);
        self.warmup = Duration::from_secs_f64((self.warmup.as_secs_f64() * f).max(0.02));
        self
    }
}

/// Per-class and overall outcome of a timed run.
pub struct RunResult {
    /// Measurement window actually used.
    pub elapsed: Duration,
    /// Operations completed inside the measurement window.
    pub total_ops: u64,
    /// Operations per second.
    pub throughput: f64,
    /// Latency across all workers.
    pub overall: Hist,
    /// Latency of workers on big cores.
    pub big: Hist,
    /// Latency of workers on little cores.
    pub little: Hist,
    /// Ops completed by big-core workers.
    pub big_ops: u64,
    /// Ops completed by little-core workers.
    pub little_ops: u64,
    /// Per-lock telemetry registered during the run (empty unless
    /// `asl_locks::telemetry` profiling is on — `repro --profile`).
    pub telemetry: Vec<(String, asl_locks::telemetry::TelemetrySnapshot)>,
}

impl RunResult {
    /// Overall P99 in microseconds (convenience for reports).
    pub fn p99_us(&self) -> f64 {
        self.overall.p99() as f64 / 1_000.0
    }
}

/// Worker-side view of a run: drives one operation at a time.
pub struct OpCtx<'a> {
    /// Spawn context (index, assignment, stop flag).
    pub thread: &'a ThreadCtx,
    phase: &'a AtomicU8,
}

impl OpCtx<'_> {
    /// True while the measurement (or warmup) should continue.
    #[inline]
    pub fn running(&self) -> bool {
        self.phase.load(Ordering::Relaxed) != PHASE_DONE
    }

    /// True when samples should be recorded.
    #[inline]
    pub fn recording(&self) -> bool {
        self.phase.load(Ordering::Relaxed) == PHASE_MEASURE
    }
}

/// Run `op` repeatedly on every worker for the configured window.
///
/// `op` performs one operation (one epoch / one request) and returns
/// the latency to record in nanoseconds.
pub fn run_timed<F>(cfg: &RunConfig, op: F) -> RunResult
where
    F: Fn(&OpCtx) -> u64 + Sync,
{
    run_timed_with_setup(cfg, |_| {}, op)
}

/// [`run_timed`] with a per-worker setup hook executed after core
/// registration and before the first operation (used to reset
/// per-thread epoch state).
pub fn run_timed_with_setup<S, F>(cfg: &RunConfig, setup: S, op: F) -> RunResult
where
    S: Fn(&ThreadCtx) + Sync,
    F: Fn(&OpCtx) -> u64 + Sync,
{
    let phase = Arc::new(AtomicU8::new(PHASE_WARMUP));
    let stop = Arc::new(AtomicBool::new(false));
    let measured_ns = Arc::new(AtomicU64::new(0));

    // Controller flips phases on schedule.
    let controller = {
        let phase = phase.clone();
        let stop = stop.clone();
        let measured_ns = measured_ns.clone();
        let warmup = cfg.warmup;
        let duration = cfg.duration;
        std::thread::spawn(move || {
            std::thread::sleep(warmup);
            let t0 = now_ns();
            // Ordering audit: these are measurement-protocol flags,
            // not synchronization of shared data. Workers poll
            // `phase` with relaxed loads already — the window edges
            // are inherently fuzzy by one op — and `measured_ns` is
            // read only after `controller.join()`, whose
            // happens-before edge orders it. `Relaxed` suffices on
            // every store.
            phase.store(PHASE_MEASURE, Ordering::Relaxed);
            std::thread::sleep(duration);
            phase.store(PHASE_DONE, Ordering::Relaxed);
            measured_ns.store(now_ns() - t0, Ordering::Relaxed);
            stop.store(true, Ordering::Relaxed);
        })
    };

    struct WorkerOut {
        kind: CoreKind,
        ops: u64,
        hist: Hist,
    }

    let phase_ref = &phase;
    let outs: Vec<WorkerOut> =
        run_on_topology_with_stop(&cfg.topology, cfg.threads, cfg.pin, stop.clone(), |ctx| {
            setup(ctx);
            let octx = OpCtx {
                thread: ctx,
                phase: phase_ref,
            };
            let mut hist = Hist::new();
            let mut ops = 0u64;
            while octx.running() {
                let was_recording = octx.recording();
                let latency = op(&octx);
                // Count an op only if it *started* during measurement;
                // ops spanning the end are counted (paper counts
                // executed critical sections in the window).
                if was_recording {
                    ops += 1;
                    hist.record(latency);
                }
            }
            WorkerOut {
                kind: ctx.assignment.kind,
                ops,
                hist,
            }
        });

    controller.join().expect("controller panicked");

    // Relaxed: `controller.join()` above provides the happens-before.
    let elapsed = Duration::from_nanos(measured_ns.load(Ordering::Relaxed).max(1));
    let mut overall = Hist::new();
    let mut big = Hist::new();
    let mut little = Hist::new();
    let (mut big_ops, mut little_ops) = (0u64, 0u64);
    for o in &outs {
        overall.merge(&o.hist);
        match o.kind {
            CoreKind::Big => {
                big.merge(&o.hist);
                big_ops += o.ops;
            }
            CoreKind::Little => {
                little.merge(&o.hist);
                little_ops += o.ops;
            }
        }
    }
    let total_ops = big_ops + little_ops;
    RunResult {
        elapsed,
        total_ops,
        throughput: total_ops as f64 / elapsed.as_secs_f64(),
        overall,
        big,
        little,
        big_ops,
        little_ops,
        telemetry: asl_locks::telemetry::snapshots(),
    }
}

/// Run until `target_ops` operations complete across all workers;
/// returns the elapsed wall time (for Criterion `iter_custom`).
pub fn run_until_ops<F>(topology: &Topology, threads: usize, target_ops: u64, op: F) -> Duration
where
    F: Fn(&ThreadCtx) -> u64 + Sync,
{
    let done = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = std::time::Instant::now();
    {
        let done = done.clone();
        let stop2 = stop.clone();
        run_on_topology_with_stop(topology, threads, false, stop.clone(), move |ctx| {
            while !ctx.stopped() {
                let _ = op(ctx);
                if done.fetch_add(1, Ordering::Relaxed) + 1 >= target_ops {
                    stop2.store(true, Ordering::Relaxed);
                    break;
                }
            }
        });
    }
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::work::execute_units;

    fn quick_cfg(threads: usize) -> RunConfig {
        RunConfig {
            topology: Topology::apple_m1(),
            threads,
            duration: Duration::from_millis(80),
            warmup: Duration::from_millis(20),
            pin: false,
        }
    }

    #[test]
    fn measures_throughput_and_latency() {
        let cfg = quick_cfg(4);
        let r = run_timed(&cfg, |_| {
            let t0 = now_ns();
            execute_units(200);
            now_ns() - t0
        });
        assert!(r.total_ops > 0);
        assert!(r.throughput > 0.0);
        assert!(!r.overall.is_empty());
        assert_eq!(r.total_ops, r.big_ops + r.little_ops);
        assert_eq!(r.overall.count(), r.total_ops);
    }

    #[test]
    fn class_split_matches_topology() {
        let cfg = quick_cfg(8); // 4 big + 4 little
        let r = run_timed(&cfg, |_| {
            let t0 = now_ns();
            execute_units(500);
            now_ns() - t0
        });
        assert!(r.big_ops > 0);
        assert!(r.little_ops > 0);
        // Little cores run 3x slower on pure emulated work.
        let big_rate = r.big_ops as f64 / 4.0;
        let little_rate = r.little_ops as f64 / 4.0;
        assert!(
            big_rate > little_rate * 1.5,
            "big {big_rate} vs little {little_rate}"
        );
    }

    #[test]
    fn little_latency_exceeds_big() {
        let cfg = quick_cfg(8);
        let r = run_timed(&cfg, |_| {
            let t0 = now_ns();
            execute_units(1_000);
            now_ns() - t0
        });
        assert!(
            r.little.percentile(50.0) > r.big.percentile(50.0),
            "little p50 {} <= big p50 {}",
            r.little.percentile(50.0),
            r.big.percentile(50.0)
        );
    }

    #[test]
    fn run_until_ops_completes() {
        let topo = Topology::symmetric(4);
        let d = run_until_ops(&topo, 4, 10_000, |_| {
            execute_units(10);
            0
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn scaled_config() {
        let cfg = RunConfig::m1_default().scaled(0.5);
        assert_eq!(cfg.duration, Duration::from_millis(200));
    }
}
