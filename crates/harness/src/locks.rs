//! Runtime lock selection for experiments: the string-addressable
//! lock registry.
//!
//! A [`LockSpec`] names one competitor from the paper's evaluation —
//! a baseline (`pthread`, TAS, ticket, MCS, SHFL-PB10) or a LibASL
//! configuration (`LibASL-X` = SLO X, `LibASL-MAX` = maximum window,
//! `LibASL-OPT` = static window, blocking variants, alternative FIFO
//! substrates) — or one of the reader-writer substrates (`rw-ticket`,
//! `bravo-<inner>`, `libasl-rw-<slo>`): [`LockSpec::make_rw_lock`]
//! materializes *any* spec at rw call sites (exclusive specs
//! degenerate shared mode to an exclusive acquisition) and
//! [`LockSpec::make_lock`] materializes rw specs at exclusive call
//! sites (every acquisition takes the write side). Every spec
//! round-trips through its printed name:
//! [`LockSpec`] implements both `Display` and `FromStr`, and
//! `spec.to_string().parse()` is the identity. [`registry`] enumerates
//! every catalogued spec with a one-line description (the `repro locks`
//! CLI listing), and [`LockSpec::make_dyn`] materializes a spec into a
//! guard-based [`DynLock`].
//!
//! ```
//! use asl_harness::locks::LockSpec;
//!
//! let spec: LockSpec = "libasl-70us".parse().unwrap();
//! assert_eq!(spec.to_string(), "libasl-70us");
//!
//! let lock = spec.make_dyn();
//! {
//!     let _held = lock.lock();     // RAII guard, released on drop
//!     assert!(lock.is_locked());
//! }
//! assert!(!lock.is_locked());
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use asl_core::{AslBlockingLock, AslLock, AslRwLock, AslSpinLock, ReorderableLock, SpinWait};
use asl_locks::api::{DynLock, DynRwLock};
use asl_locks::plain::{ExclusiveRw, PlainLock, PlainRwLock, PlainToken, WriteHalf};
use asl_locks::shuffle::{ClassLocalPolicy, FifoPolicy, ShuffleLock};
use asl_locks::telemetry;
use asl_locks::{
    bridge_apply, Adaptive, AsyncPolicy, Bravo, CcSynch, ClhLock, CnaLock, CohortLock,
    DelegatedMutex, FcBan, FlatCombiner, GcrPlain, MalthusianLock, McsLock, McsStpLock,
    ProportionalLock, PthreadMutex, RclLock, RwTicketLock, TasLock, TicketLock,
};
use asl_runtime::registry::is_big_core;
use asl_runtime::AtomicAffinity;
use std::sync::atomic::AtomicBool;

/// FIFO substrate under the LibASL dispatch layer (one type parameter
/// at the `AslLock` level, one name fragment here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AslSubstrate {
    /// MCS queue lock — the paper's default.
    Mcs,
    /// CLH queue lock.
    Clh,
    /// Ticket lock.
    Ticket,
    /// Shuffle framework in pass-through (FIFO) mode.
    ShflFifo,
}

impl AslSubstrate {
    /// Name fragment between `libasl-` and the SLO (`""` for the
    /// default MCS substrate).
    fn tag(&self) -> &'static str {
        match self {
            AslSubstrate::Mcs => "",
            AslSubstrate::Clh => "clh-",
            AslSubstrate::Ticket => "ticket-",
            AslSubstrate::ShflFifo => "shfl-",
        }
    }
}

/// Exclusive substrate under the BRAVO reader-bias wrapper (the
/// `Bravo<L>` type upgrades *any* [`asl_locks::RawLock`]; the registry
/// catalogues these members, mirroring [`AslSubstrate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BravoInner {
    /// Test-and-set spinlock (the BRAVO paper's own base case).
    Tas,
    /// FIFO ticket lock.
    Ticket,
    /// FIFO MCS queue lock.
    Mcs,
    /// CLH queue lock.
    Clh,
    /// LibASL (max window): SLO-aware writer reordering under reader
    /// bias.
    Asl,
}

impl BravoInner {
    /// Name fragment after `bravo-`.
    fn tag(&self) -> &'static str {
        match self {
            BravoInner::Tas => "tas",
            BravoInner::Ticket => "ticket",
            BravoInner::Mcs => "mcs",
            BravoInner::Clh => "clh",
            BravoInner::Asl => "libasl",
        }
    }
}

/// Which lock to run an experiment under.
#[derive(Debug, Clone, PartialEq)]
pub enum LockSpec {
    /// glibc-style blocking mutex.
    Pthread,
    /// Test-and-set spinlock with an affinity model.
    Tas(AtomicAffinity),
    /// FIFO ticket lock.
    Ticket,
    /// FIFO MCS lock.
    Mcs,
    /// Spin-then-park MCS (blocking FIFO).
    McsStp,
    /// Proportional two-queue lock, `N` big grants per little grant.
    ShflPb(u32),
    /// Compact NUMA-aware lock on core classes (§2.2 comparator).
    Cna,
    /// Cohort lock (C-BO-MCS) on core classes (§2.2 comparator).
    Cohort,
    /// Malthusian MCS (culling + reintroduction, §2.2 comparator);
    /// `Some(n)` reintroduces a culled waiter every `n` handovers,
    /// `None` keeps the lock's default period.
    Malthusian(Option<u32>),
    /// ShflLock framework with the NUMA-local-analog class policy.
    ShuffleClassLocal {
        /// Consecutive out-of-order grants before forcing FIFO.
        max_skips: u32,
    },
    /// LibASL with an SLO-annotated epoch (`None` = no epoch =
    /// LibASL-MAX, maximum reordering) over a chosen FIFO substrate.
    Asl {
        /// FIFO lock under the reorderable layer (MCS by default).
        substrate: AslSubstrate,
        /// Epoch SLO in ns; `None` disables epochs (max window).
        slo_ns: Option<u64>,
    },
    /// LibASL-OPT: static reorder window, no feedback.
    AslOpt {
        /// The fixed window (ns).
        window_ns: u64,
    },
    /// Blocking LibASL (pthread mutex + nanosleep standby).
    AslBlocking {
        /// Epoch SLO in ns; `None` = max window.
        slo_ns: Option<u64>,
    },
    /// Phase-fair ticket reader-writer lock.
    RwTicket,
    /// BRAVO reader-bias wrapper over an exclusive substrate.
    BravoRw(BravoInner),
    /// Reader-writer LibASL: reacquisition-based reader batching over
    /// the reorderable MCS writer substrate.
    AslRw {
        /// Epoch SLO in ns; `None` disables epochs (max window).
        slo_ns: Option<u64>,
    },
    /// Contention-adaptive lock: TAS that morphs to a FIFO queue
    /// under sustained contention (Fissile-style).
    Adaptive,
    /// Flat-combining delegation behind the generic bridge (§5).
    Flatcomb,
    /// CC-Synch combining queue behind the generic bridge (§5).
    CcSynch,
    /// RCL-style server lock behind the generic bridge; constructing
    /// the spec spawns (and owns) the server thread.
    Rcl,
    /// Usage-fair banning combiner behind the generic bridge.
    FcBan,
    /// Telemetry-recording wrapper over any other spec
    /// (`instrumented-<name>`): acquisitions land in the process-wide
    /// telemetry registry under the spec's label.
    Instrumented(Box<LockSpec>),
    /// Concurrency-restriction wrapper over any other spec
    /// (`gcr-<name>`): admission control bounds how many threads
    /// compete inside the inner lock; the rest park passively.
    Gcr(Box<LockSpec>),
}

impl LockSpec {
    /// LibASL over the default MCS substrate (`None` = max window).
    pub fn asl(slo_ns: Option<u64>) -> Self {
        Self::asl_on(AslSubstrate::Mcs, slo_ns)
    }

    /// LibASL over an explicit FIFO substrate.
    pub fn asl_on(substrate: AslSubstrate, slo_ns: Option<u64>) -> Self {
        LockSpec::Asl { substrate, slo_ns }
    }

    /// Registry-style label ("mcs", "libasl-50us", ...) — same as the
    /// `Display` form.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Whether the workload should wrap requests in an epoch, and the
    /// SLO to use.
    pub fn epoch_slo(&self) -> Option<u64> {
        match self {
            LockSpec::Asl { slo_ns, .. }
            | LockSpec::AslBlocking { slo_ns }
            | LockSpec::AslRw { slo_ns } => *slo_ns,
            LockSpec::Instrumented(inner) | LockSpec::Gcr(inner) => inner.epoch_slo(),
            _ => None,
        }
    }

    /// The async wait-queue policy this spec maps to when it guards a
    /// KV-service shard: the LibASL family becomes the SLO-aware
    /// deadline-ordered queue (a missing SLO — `libasl-max` — means an
    /// unbounded reorder window, i.e. pure earliest-deadline-first),
    /// every thread-oriented spec degenerates to FIFO handoff, the
    /// async analogue of an MCS queue.
    pub fn async_policy(&self) -> AsyncPolicy {
        match self {
            LockSpec::Asl { slo_ns, .. }
            | LockSpec::AslBlocking { slo_ns }
            | LockSpec::AslRw { slo_ns } => AsyncPolicy::Slo {
                slo_ns: slo_ns.unwrap_or(u64::MAX),
            },
            LockSpec::Instrumented(inner) | LockSpec::Gcr(inner) => inner.async_policy(),
            _ => AsyncPolicy::Fifo,
        }
    }

    /// Whether this spec names a genuine reader-writer lock (shared
    /// acquisitions overlap). Exclusive specs still work at rw call
    /// sites through the [`ExclusiveRw`] degeneration.
    pub fn is_rw(&self) -> bool {
        match self {
            LockSpec::RwTicket | LockSpec::BravoRw(_) | LockSpec::AslRw { .. } => true,
            LockSpec::Instrumented(inner) => inner.is_rw(),
            // A gcr-wrapped rw spec degenerates to exclusive: the
            // admission gate serializes entries, so shared overlap
            // behind it would be misleading — and the write-half
            // degeneration is exactly the collapse case GCR targets.
            LockSpec::Gcr(_) => false,
            _ => false,
        }
    }

    /// Build `n` independent guard-based lock handles for this spec.
    pub fn make_locks(&self, n: usize) -> Vec<DynLock> {
        (0..n).map(|_| self.make_dyn()).collect()
    }

    /// Build one guard-based lock handle.
    pub fn make_dyn(&self) -> DynLock {
        DynLock::new(self.make_lock())
    }

    /// Build one shared lock object (the token-level factory used by
    /// the engines' [`asl_dbsim::LockFactory`] plumbing; prefer
    /// [`LockSpec::make_dyn`] at call sites that lock directly).
    ///
    /// `instrumented-<name>` specs carry a telemetry wrapper that
    /// records while `asl_locks::telemetry::recording` (or profiling)
    /// is armed and fast-exits to a near-zero passthrough otherwise;
    /// every other spec is transparently instrumented (and filed in
    /// the process-wide registry under its label) while
    /// `asl_locks::telemetry::profiling` is on — the `repro
    /// --profile` mode.
    pub fn make_lock(&self) -> Arc<dyn PlainLock> {
        let raw = self.make_lock_raw();
        if matches!(self, LockSpec::Instrumented(_)) {
            raw // already recording
        } else {
            telemetry::maybe_instrument(&self.label(), raw)
        }
    }

    /// [`LockSpec::make_lock`] without any telemetry wrapping.
    pub fn make_lock_raw(&self) -> Arc<dyn PlainLock> {
        match self {
            LockSpec::Pthread => Arc::new(PthreadMutex::new()),
            LockSpec::Tas(aff) => Arc::new(TasLock::with_affinity(*aff)),
            LockSpec::Ticket => Arc::new(TicketLock::new()),
            LockSpec::Mcs => Arc::new(McsLock::new()),
            LockSpec::McsStp => Arc::new(McsStpLock::new()),
            LockSpec::ShflPb(n) => Arc::new(ProportionalLock::new(*n)),
            LockSpec::Cna => Arc::new(CnaLock::new()),
            LockSpec::Cohort => Arc::new(CohortLock::new()),
            LockSpec::Malthusian(None) => Arc::new(MalthusianLock::new()),
            LockSpec::Malthusian(Some(p)) => Arc::new(MalthusianLock::with_period(*p)),
            LockSpec::ShuffleClassLocal { max_skips } => {
                Arc::new(ShuffleLock::new(ClassLocalPolicy::new(*max_skips)))
            }
            LockSpec::Asl { substrate, .. } => match substrate {
                AslSubstrate::Mcs => Arc::new(AslSpinLock::default()),
                AslSubstrate::Clh => Arc::new(AslLock::new(ClhLock::new())),
                AslSubstrate::Ticket => Arc::new(AslLock::new(TicketLock::new())),
                AslSubstrate::ShflFifo => Arc::new(AslLock::new(ShuffleLock::new(FifoPolicy))),
            },
            LockSpec::AslOpt { window_ns } => Arc::new(StaticWindowLock::new(*window_ns)),
            LockSpec::AslBlocking { .. } => Arc::new(AslBlockingLock::new_blocking()),
            LockSpec::Adaptive => Arc::new(Adaptive::new()),
            // Delegation locks behind the generic baton bridge: the
            // protected state is the baton word, ops are Lock/Unlock
            // transfers. Under --profile the native constructors also
            // register `<label>.combine` (and `.ban`) wait cells.
            LockSpec::Flatcomb => {
                let mirror = Arc::new(AtomicBool::new(false));
                let inner = FlatCombiner::new(0u64, bridge_apply(mirror.clone()));
                Arc::new(DelegatedMutex::new("flatcomb", inner, mirror))
            }
            LockSpec::CcSynch => {
                let mirror = Arc::new(AtomicBool::new(false));
                let inner = if telemetry::profiling() {
                    CcSynch::instrumented(0u64, bridge_apply(mirror.clone()), &self.label())
                } else {
                    CcSynch::new(0u64, bridge_apply(mirror.clone()))
                };
                Arc::new(DelegatedMutex::new("ccsynch", inner, mirror))
            }
            LockSpec::Rcl => {
                let mirror = Arc::new(AtomicBool::new(false));
                let inner = if telemetry::profiling() {
                    RclLock::instrumented(0u64, bridge_apply(mirror.clone()), &self.label())
                } else {
                    RclLock::new(0u64, bridge_apply(mirror.clone()))
                };
                let server = inner.start();
                Arc::new(DelegatedMutex::new("rcl", inner, mirror).keep_alive(server))
            }
            LockSpec::FcBan => {
                let mirror = Arc::new(AtomicBool::new(false));
                let inner = if telemetry::profiling() {
                    FcBan::instrumented(0u64, bridge_apply(mirror.clone()), &self.label())
                } else {
                    FcBan::new(0u64, bridge_apply(mirror.clone()))
                };
                Arc::new(DelegatedMutex::new("fc-ban", inner, mirror))
            }
            LockSpec::Instrumented(inner) => {
                telemetry::instrument(&self.label(), inner.make_lock_raw())
            }
            // The inner spec keeps its own telemetry/profiling
            // wrapping (under its own label); the gate goes outside
            // so passive parking is invisible to the inner lock.
            LockSpec::Gcr(inner) => Arc::new(GcrPlain::new(inner.make_lock())),
            // rw specs at exclusive call sites: every acquisition
            // takes the write side.
            LockSpec::RwTicket | LockSpec::BravoRw(_) | LockSpec::AslRw { .. } => {
                Arc::new(WriteHalf::new(self.make_rw_lock_raw()))
            }
        }
    }

    /// Build one guard-based reader-writer lock handle.
    pub fn make_dyn_rw(&self) -> DynRwLock {
        DynRwLock::new(self.make_rw_lock())
    }

    /// Build one shared reader-writer lock object. Rw specs
    /// materialize their native rwlock; exclusive specs degenerate
    /// through [`ExclusiveRw`] (shared mode = exclusive acquisition),
    /// so every registry name works at rw call sites. Telemetry
    /// wrapping follows [`LockSpec::make_lock`].
    pub fn make_rw_lock(&self) -> Arc<dyn PlainRwLock> {
        let raw = self.make_rw_lock_raw();
        if matches!(self, LockSpec::Instrumented(_)) {
            raw // already recording
        } else {
            telemetry::maybe_instrument_rw(&self.label(), raw)
        }
    }

    /// [`LockSpec::make_rw_lock`] without any telemetry wrapping.
    pub fn make_rw_lock_raw(&self) -> Arc<dyn PlainRwLock> {
        match self {
            LockSpec::RwTicket => Arc::new(RwTicketLock::new()),
            LockSpec::BravoRw(inner) => match inner {
                BravoInner::Tas => Arc::new(Bravo::new(TasLock::new())),
                BravoInner::Ticket => Arc::new(Bravo::new(TicketLock::new())),
                BravoInner::Mcs => Arc::new(Bravo::new(McsLock::new())),
                BravoInner::Clh => Arc::new(Bravo::new(ClhLock::new())),
                BravoInner::Asl => Arc::new(Bravo::new(AslSpinLock::default())),
            },
            LockSpec::AslRw { .. } => Arc::new(AslRwLock::default()),
            LockSpec::Instrumented(inner) if inner.is_rw() => {
                telemetry::instrument_rw(&self.label(), inner.make_rw_lock_raw())
            }
            _ => Arc::new(ExclusiveRw::new(self.make_lock_raw())),
        }
    }
}

impl fmt::Display for LockSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockSpec::Pthread => f.write_str("pthread"),
            LockSpec::Tas(aff) => f.write_str(&fmt_tas(aff)),
            LockSpec::Ticket => f.write_str("ticket"),
            LockSpec::Mcs => f.write_str("mcs"),
            LockSpec::McsStp => f.write_str("mcs-stp"),
            LockSpec::ShflPb(n) => write!(f, "shfl-pb{n}"),
            LockSpec::Cna => f.write_str("cna"),
            LockSpec::Cohort => f.write_str("cohort"),
            LockSpec::Malthusian(None) => f.write_str("malthusian"),
            LockSpec::Malthusian(Some(p)) => write!(f, "malthusian-{p}"),
            LockSpec::ShuffleClassLocal { max_skips } => write!(f, "shfl-local{max_skips}"),
            LockSpec::Asl {
                substrate,
                slo_ns: None,
            } => {
                write!(f, "libasl-{}max", substrate.tag())
            }
            LockSpec::Asl {
                substrate,
                slo_ns: Some(s),
            } => {
                write!(f, "libasl-{}{}", substrate.tag(), fmt_slo(*s))
            }
            LockSpec::AslOpt { window_ns } => write!(f, "libasl-opt-{}", fmt_slo(*window_ns)),
            LockSpec::AslBlocking { slo_ns: None } => f.write_str("libasl-blk-max"),
            LockSpec::AslBlocking { slo_ns: Some(s) } => write!(f, "libasl-blk-{}", fmt_slo(*s)),
            LockSpec::RwTicket => f.write_str("rw-ticket"),
            LockSpec::BravoRw(inner) => write!(f, "bravo-{}", inner.tag()),
            LockSpec::AslRw { slo_ns: None } => f.write_str("libasl-rw-max"),
            LockSpec::AslRw { slo_ns: Some(s) } => write!(f, "libasl-rw-{}", fmt_slo(*s)),
            LockSpec::Adaptive => f.write_str("adaptive"),
            LockSpec::Flatcomb => f.write_str("flatcomb"),
            LockSpec::CcSynch => f.write_str("ccsynch"),
            LockSpec::Rcl => f.write_str("rcl"),
            LockSpec::FcBan => f.write_str("fc-ban"),
            LockSpec::Instrumented(inner) => write!(f, "instrumented-{inner}"),
            LockSpec::Gcr(inner) => write!(f, "gcr-{inner}"),
        }
    }
}

fn fmt_tas(aff: &AtomicAffinity) -> String {
    const DP: u64 = AtomicAffinity::DEFAULT_PENALTY;
    match aff {
        AtomicAffinity::Neutral => "tas".into(),
        AtomicAffinity::BigWins { penalty_units: DP } => "tas-big".into(),
        AtomicAffinity::BigWins { penalty_units } => format!("tas-big-p{penalty_units}"),
        AtomicAffinity::LittleWins { penalty_units: DP } => "tas-little".into(),
        AtomicAffinity::LittleWins { penalty_units } => format!("tas-little-p{penalty_units}"),
    }
}

/// Failure to parse a [`LockSpec`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLockSpecError {
    name: String,
}

impl fmt::Display for ParseLockSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown lock spec {:?} (try `repro locks` for the registry)",
            self.name
        )
    }
}

impl std::error::Error for ParseLockSpecError {}

impl FromStr for LockSpec {
    type Err = ParseLockSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseLockSpecError {
            name: s.to_string(),
        };
        let spec = match s {
            "pthread" => LockSpec::Pthread,
            "tas" => LockSpec::Tas(AtomicAffinity::Neutral),
            "tas-big" => LockSpec::Tas(AtomicAffinity::big_wins()),
            "tas-little" => LockSpec::Tas(AtomicAffinity::little_wins()),
            "ticket" => LockSpec::Ticket,
            "mcs" => LockSpec::Mcs,
            "mcs-stp" => LockSpec::McsStp,
            "adaptive" => LockSpec::Adaptive,
            "flatcomb" => LockSpec::Flatcomb,
            "ccsynch" => LockSpec::CcSynch,
            "rcl" => LockSpec::Rcl,
            "fc-ban" => LockSpec::FcBan,
            "cna" => LockSpec::Cna,
            "cohort" => LockSpec::Cohort,
            "malthusian" => LockSpec::Malthusian(None),
            "rw-ticket" => LockSpec::RwTicket,
            "bravo-tas" => LockSpec::BravoRw(BravoInner::Tas),
            "bravo-ticket" => LockSpec::BravoRw(BravoInner::Ticket),
            "bravo-mcs" => LockSpec::BravoRw(BravoInner::Mcs),
            "bravo-clh" => LockSpec::BravoRw(BravoInner::Clh),
            "bravo-libasl" => LockSpec::BravoRw(BravoInner::Asl),
            _ => {
                if let Some(inner) = s.strip_prefix("instrumented-") {
                    LockSpec::Instrumented(Box::new(inner.parse().map_err(|_| err())?))
                } else if let Some(inner) = s.strip_prefix("gcr-") {
                    LockSpec::Gcr(Box::new(inner.parse().map_err(|_| err())?))
                } else if let Some(p) = s.strip_prefix("malthusian-") {
                    let period: u32 = p.parse().map_err(|_| err())?;
                    if period == 0 {
                        return Err(err());
                    }
                    LockSpec::Malthusian(Some(period))
                } else if let Some(p) = s.strip_prefix("tas-big-p") {
                    LockSpec::Tas(AtomicAffinity::BigWins {
                        penalty_units: p.parse().map_err(|_| err())?,
                    })
                } else if let Some(p) = s.strip_prefix("tas-little-p") {
                    LockSpec::Tas(AtomicAffinity::LittleWins {
                        penalty_units: p.parse().map_err(|_| err())?,
                    })
                } else if let Some(n) = s.strip_prefix("shfl-pb") {
                    LockSpec::ShflPb(n.parse().map_err(|_| err())?)
                } else if let Some(n) = s.strip_prefix("shfl-local") {
                    LockSpec::ShuffleClassLocal {
                        max_skips: n.parse().map_err(|_| err())?,
                    }
                } else if let Some(w) = s.strip_prefix("libasl-opt-") {
                    LockSpec::AslOpt {
                        window_ns: parse_slo(w).ok_or_else(err)?,
                    }
                } else if let Some(rest) = s.strip_prefix("libasl-rw-") {
                    LockSpec::AslRw {
                        slo_ns: parse_max_or_slo(rest).ok_or_else(err)?,
                    }
                } else if let Some(rest) = s.strip_prefix("libasl-blk-") {
                    LockSpec::AslBlocking {
                        slo_ns: parse_max_or_slo(rest).ok_or_else(err)?,
                    }
                } else if let Some(rest) = s.strip_prefix("libasl-") {
                    let (substrate, rest) = if let Some(r) = rest.strip_prefix("clh-") {
                        (AslSubstrate::Clh, r)
                    } else if let Some(r) = rest.strip_prefix("ticket-") {
                        (AslSubstrate::Ticket, r)
                    } else if let Some(r) = rest.strip_prefix("shfl-") {
                        (AslSubstrate::ShflFifo, r)
                    } else {
                        (AslSubstrate::Mcs, rest)
                    };
                    LockSpec::Asl {
                        substrate,
                        slo_ns: parse_max_or_slo(rest).ok_or_else(err)?,
                    }
                } else {
                    return Err(err());
                }
            }
        };
        Ok(spec)
    }
}

/// `"max"` → no epoch; otherwise an SLO duration.
fn parse_max_or_slo(s: &str) -> Option<Option<u64>> {
    if s == "max" {
        Some(None)
    } else {
        parse_slo(s).map(Some)
    }
}

/// Parse a duration in the registry's `Display` form: `"70us"`,
/// `"4ms"`, `"250ns"`, or a bare nanosecond count.
fn parse_slo(s: &str) -> Option<u64> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else {
        (s, 1)
    };
    digits.parse::<u64>().ok().and_then(|n| n.checked_mul(mult))
}

fn fmt_slo(ns: u64) -> String {
    // Only collapse to a coarser unit when exact, so the printed name
    // parses back to the same spec (`from_str ∘ to_string` identity).
    if ns >= 1_000_000 && ns % 1_000_000 == 0 {
        format!("{}ms", ns / 1_000_000)
    } else if ns >= 1_000 && ns % 1_000 == 0 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// One registry entry: a nameable lock spec plus a one-line
/// description for the `repro locks` listing.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The spec; its name is `spec.to_string()`.
    pub spec: LockSpec,
    /// One-line human description.
    pub description: &'static str,
}

/// Every catalogued lock spec. Each entry's printed name parses back
/// to the same spec; SLO-parameterized families are represented by
/// canonical members (any other SLO is reachable by name, e.g.
/// `"libasl-25us"`).
pub fn registry() -> Vec<RegistryEntry> {
    let e = |spec, description| RegistryEntry { spec, description };
    vec![
        e(
            LockSpec::Pthread,
            "glibc-style spin-then-futex blocking mutex",
        ),
        e(
            LockSpec::Tas(AtomicAffinity::Neutral),
            "test-and-set spinlock, neutral atomics",
        ),
        e(
            LockSpec::Tas(AtomicAffinity::big_wins()),
            "test-and-set spinlock, big cores win contended atomics",
        ),
        e(
            LockSpec::Tas(AtomicAffinity::little_wins()),
            "test-and-set spinlock, little cores win contended atomics",
        ),
        e(LockSpec::Ticket, "FIFO ticket lock"),
        e(LockSpec::Mcs, "FIFO MCS queue lock (paper baseline)"),
        e(
            LockSpec::McsStp,
            "spin-then-park MCS, the blocking FIFO strawman",
        ),
        e(
            LockSpec::ShflPb(10),
            "proportional lock, 10 big grants per little grant",
        ),
        e(
            LockSpec::ShuffleClassLocal { max_skips: 16 },
            "ShflLock framework, class-local policy (16-skip bound)",
        ),
        e(LockSpec::Cna, "compact NUMA-aware lock on core classes"),
        e(
            LockSpec::Cohort,
            "lock cohorting (C-BO-MCS) on core classes",
        ),
        e(
            LockSpec::Malthusian(None),
            "Malthusian MCS: culling + reintroduction (any period: malthusian-<n>)",
        ),
        e(
            LockSpec::asl(Some(70_000)),
            "LibASL, 70us SLO epochs (any SLO: libasl-<dur>)",
        ),
        e(
            LockSpec::asl(None),
            "LibASL, maximum reorder window (no epochs)",
        ),
        e(
            LockSpec::asl_on(AslSubstrate::Clh, Some(70_000)),
            "LibASL over the CLH substrate, 70us SLO",
        ),
        e(
            LockSpec::asl_on(AslSubstrate::Clh, None),
            "LibASL over the CLH substrate, max window",
        ),
        e(
            LockSpec::asl_on(AslSubstrate::Ticket, None),
            "LibASL over the ticket substrate, max window",
        ),
        e(
            LockSpec::asl_on(AslSubstrate::ShflFifo, None),
            "LibASL over the shuffle(FIFO) substrate, max window",
        ),
        e(
            LockSpec::AslOpt { window_ns: 50_000 },
            "LibASL-OPT: static 50us reorder window, no feedback",
        ),
        e(
            LockSpec::AslBlocking {
                slo_ns: Some(70_000),
            },
            "blocking LibASL (futex + nanosleep standby), 70us SLO",
        ),
        e(
            LockSpec::AslBlocking { slo_ns: None },
            "blocking LibASL, maximum window",
        ),
        e(
            LockSpec::RwTicket,
            "phase-fair ticket rwlock: readers overlap, phases alternate",
        ),
        e(
            LockSpec::BravoRw(BravoInner::Mcs),
            "BRAVO reader bias over MCS (bravo-{tas,ticket,mcs,clh,libasl})",
        ),
        e(
            LockSpec::BravoRw(BravoInner::Tas),
            "BRAVO reader bias over the TAS spinlock",
        ),
        e(
            LockSpec::BravoRw(BravoInner::Asl),
            "BRAVO reader bias over LibASL-max: SLO reordering + shared reads",
        ),
        e(
            LockSpec::AslRw {
                slo_ns: Some(70_000),
            },
            "reader-writer LibASL, 70us SLO epochs (any SLO: libasl-rw-<dur>)",
        ),
        e(
            LockSpec::AslRw { slo_ns: None },
            "reader-writer LibASL, maximum reorder window",
        ),
        e(
            LockSpec::Adaptive,
            "contention-adaptive: TAS that morphs to a FIFO queue under load",
        ),
        e(
            LockSpec::Flatcomb,
            "flat-combining delegation (publication array) via the op bridge",
        ),
        e(
            LockSpec::CcSynch,
            "CC-Synch combining queue: cache-local combiner handoff",
        ),
        e(
            LockSpec::Rcl,
            "RCL-style server lock: dedicated server thread polls client slots",
        ),
        e(
            LockSpec::FcBan,
            "usage-fair banning combiner: overdrawn threads wait out overage",
        ),
        e(
            LockSpec::Instrumented(Box::new(LockSpec::Mcs)),
            "telemetry-recording MCS (any name: instrumented-<name>)",
        ),
        e(
            LockSpec::Gcr(Box::new(LockSpec::Mcs)),
            "concurrency-restricted MCS (any name: gcr-<name>)",
        ),
    ]
}

/// LibASL-OPT: the paper's "optimal policy" comparator that "directly
/// chooses a static window (no window adjustment)". Big cores lock
/// immediately, little cores always stand by for the fixed window.
pub struct StaticWindowLock {
    inner: ReorderableLock<McsLock, SpinWait>,
    window_ns: u64,
}

impl StaticWindowLock {
    /// Create with the given fixed reorder window.
    pub fn new(window_ns: u64) -> Self {
        StaticWindowLock {
            inner: ReorderableLock::new(McsLock::new()),
            window_ns,
        }
    }

    /// The fixed window (ns).
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

impl PlainLock for StaticWindowLock {
    #[inline]
    fn acquire(&self) -> PlainToken {
        let tok = if is_big_core() {
            self.inner.lock_immediately()
        } else {
            self.inner.lock_reorder(self.window_ns)
        };
        PlainToken::issue(self, tok.into_raw(), 0)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        self.inner
            .try_lock()
            .map(|t| PlainToken::issue(self, t.into_raw(), 0))
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        let (raw, _) = token.redeem(self);
        // SAFETY: `redeem` checked (in debug builds) that this lock
        // issued the token; the word is an unreleased MCS token.
        self.inner
            .unlock(unsafe { asl_locks::mcs::McsToken::from_raw(raw) });
    }
    fn held(&self) -> bool {
        self.inner.is_locked()
    }
    fn lock_name(&self) -> &'static str {
        "libasl-opt"
    }
}

/// The paper's standard competitor set for bar-chart figures
/// (Fig. 8a, 9a/d/g, 10a/d): baselines plus LibASL at the given SLOs
/// and LibASL-MAX. `affinity` configures the TAS lock's bias for the
/// scenario being reproduced.
pub fn standard_lineup(affinity: AtomicAffinity, slos_ns: &[u64]) -> Vec<LockSpec> {
    let mut v = vec![
        LockSpec::Pthread,
        LockSpec::Tas(affinity),
        LockSpec::Ticket,
        LockSpec::ShflPb(10),
        LockSpec::Mcs,
        LockSpec::asl(Some(0)),
    ];
    for &slo in slos_ns {
        v.push(LockSpec::asl(Some(slo)));
    }
    v.push(LockSpec::asl(None));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(LockSpec::Mcs.label(), "mcs");
        assert_eq!(LockSpec::ShflPb(10).label(), "shfl-pb10");
        assert_eq!(LockSpec::asl(Some(50_000)).label(), "libasl-50us");
        assert_eq!(LockSpec::asl(Some(4_000_000)).label(), "libasl-4ms");
        assert_eq!(LockSpec::asl(None).label(), "libasl-max");
        assert_eq!(
            LockSpec::AslOpt { window_ns: 1_000 }.label(),
            "libasl-opt-1us"
        );
        assert_eq!(
            LockSpec::asl_on(AslSubstrate::Clh, Some(25_000)).label(),
            "libasl-clh-25us"
        );
        // Non-round SLOs keep an exact printed form.
        assert_eq!(LockSpec::asl(Some(1_500)).label(), "libasl-1500ns");
        assert_eq!(LockSpec::CcSynch.label(), "ccsynch");
        assert_eq!(LockSpec::Rcl.label(), "rcl");
        assert_eq!(LockSpec::FcBan.label(), "fc-ban");
        assert_eq!(LockSpec::Flatcomb.label(), "flatcomb");
    }

    #[test]
    fn parse_known_names() {
        for (name, spec) in [
            ("pthread", LockSpec::Pthread),
            ("tas", LockSpec::Tas(AtomicAffinity::Neutral)),
            ("tas-big", LockSpec::Tas(AtomicAffinity::big_wins())),
            (
                "tas-little-p42",
                LockSpec::Tas(AtomicAffinity::LittleWins { penalty_units: 42 }),
            ),
            ("mcs", LockSpec::Mcs),
            ("mcs-stp", LockSpec::McsStp),
            ("shfl-pb10", LockSpec::ShflPb(10)),
            ("shfl-local8", LockSpec::ShuffleClassLocal { max_skips: 8 }),
            ("libasl-70us", LockSpec::asl(Some(70_000))),
            ("libasl-max", LockSpec::asl(None)),
            ("libasl-0ns", LockSpec::asl(Some(0))),
            ("libasl-clh-max", LockSpec::asl_on(AslSubstrate::Clh, None)),
            (
                "libasl-ticket-4ms",
                LockSpec::asl_on(AslSubstrate::Ticket, Some(4_000_000)),
            ),
            (
                "libasl-shfl-max",
                LockSpec::asl_on(AslSubstrate::ShflFifo, None),
            ),
            ("libasl-opt-50us", LockSpec::AslOpt { window_ns: 50_000 }),
            (
                "libasl-blk-70us",
                LockSpec::AslBlocking {
                    slo_ns: Some(70_000),
                },
            ),
            ("libasl-blk-max", LockSpec::AslBlocking { slo_ns: None }),
            ("rw-ticket", LockSpec::RwTicket),
            ("bravo-tas", LockSpec::BravoRw(BravoInner::Tas)),
            ("bravo-ticket", LockSpec::BravoRw(BravoInner::Ticket)),
            ("bravo-mcs", LockSpec::BravoRw(BravoInner::Mcs)),
            ("bravo-clh", LockSpec::BravoRw(BravoInner::Clh)),
            ("bravo-libasl", LockSpec::BravoRw(BravoInner::Asl)),
            (
                "libasl-rw-70us",
                LockSpec::AslRw {
                    slo_ns: Some(70_000),
                },
            ),
            ("libasl-rw-max", LockSpec::AslRw { slo_ns: None }),
            (
                "libasl-rw-1500ns",
                LockSpec::AslRw {
                    slo_ns: Some(1_500),
                },
            ),
            ("adaptive", LockSpec::Adaptive),
            ("flatcomb", LockSpec::Flatcomb),
            ("ccsynch", LockSpec::CcSynch),
            ("rcl", LockSpec::Rcl),
            ("fc-ban", LockSpec::FcBan),
            (
                "instrumented-mcs",
                LockSpec::Instrumented(Box::new(LockSpec::Mcs)),
            ),
            (
                "instrumented-libasl-70us",
                LockSpec::Instrumented(Box::new(LockSpec::asl(Some(70_000)))),
            ),
            (
                "instrumented-rw-ticket",
                LockSpec::Instrumented(Box::new(LockSpec::RwTicket)),
            ),
        ] {
            assert_eq!(name.parse::<LockSpec>().unwrap(), spec, "{name}");
        }
    }

    #[test]
    fn rw_specs_materialize_shared_locks() {
        for name in ["rw-ticket", "bravo-mcs", "bravo-libasl", "libasl-rw-max"] {
            let spec: LockSpec = name.parse().unwrap();
            assert!(spec.is_rw(), "{name} must be an rw spec");
            let lock = spec.make_dyn_rw();
            {
                let _r1 = lock.read();
                let _r2 = lock
                    .try_read()
                    .unwrap_or_else(|| panic!("{name}: reads must overlap"));
                assert!(
                    lock.try_write().is_none(),
                    "{name}: readers exclude writers"
                );
            }
            {
                let _w = lock.write();
                assert!(lock.try_read().is_none(), "{name}: writer excludes readers");
            }
            assert!(!lock.is_locked(), "{name}: all guards released");
        }
    }

    #[test]
    fn exclusive_specs_degenerate_at_rw_call_sites() {
        let spec = LockSpec::Mcs;
        assert!(!spec.is_rw());
        let lock = spec.make_dyn_rw();
        let r = lock.read();
        assert!(lock.try_read().is_none(), "exclusive substrate: no overlap");
        drop(r);
        assert!(!lock.is_locked());
    }

    #[test]
    fn rw_specs_work_at_exclusive_call_sites() {
        // make_dyn on an rw spec hands out the write side.
        for name in ["rw-ticket", "bravo-ticket", "libasl-rw-70us"] {
            let spec: LockSpec = name.parse().unwrap();
            let lock = spec.make_dyn();
            {
                let _held = lock.lock();
                assert!(lock.is_locked(), "{name}");
                assert!(lock.try_lock().is_none(), "{name}: write side is exclusive");
            }
            assert!(!lock.is_locked(), "{name}");
        }
    }

    #[test]
    fn rw_epoch_slo_follows_asl_family() {
        assert_eq!(LockSpec::AslRw { slo_ns: Some(9) }.epoch_slo(), Some(9));
        assert_eq!(LockSpec::AslRw { slo_ns: None }.epoch_slo(), None);
        assert_eq!(LockSpec::RwTicket.epoch_slo(), None);
    }

    #[test]
    fn instrumented_specs_record_for_every_registry_name() {
        // `instrumented-<name>` works for every catalogued name, and
        // acquisitions land in the process-wide telemetry registry
        // under the full label. Counter recording is gated on the
        // process-wide recording flag (zero-cost-when-off), so arm it
        // for the duration of this test — under the shared gate lock,
        // because the overhead-figure tests toggle and assert the
        // same global state.
        let _gate = crate::telemetry_test_lock();
        // Drop guard: the gate must disarm even when an assertion
        // below panics, or the armed global state cascades into
        // spurious failures of later gated tests.
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                telemetry::clear_registered();
                telemetry::set_recording(false);
            }
        }
        let _disarm = Disarm;
        telemetry::set_recording(true);
        for entry in registry() {
            let spec = LockSpec::Instrumented(Box::new(entry.spec.clone()));
            let label = spec.label();
            let lock = spec.make_dyn();
            {
                let _held = lock.lock();
                assert!(lock.is_locked(), "{label}");
            }
            assert!(!lock.is_locked(), "{label}");
            let snaps = telemetry::snapshots();
            let total: u64 = snaps
                .iter()
                .filter(|(l, _)| l.starts_with(&label))
                .map(|(_, s)| s.acquisitions)
                .sum();
            assert!(total >= 1, "{label}: no telemetry recorded ({snaps:?})");
        }
    }

    #[test]
    fn instrumented_rw_spec_shares_reads() {
        let spec: LockSpec = "instrumented-rw-ticket".parse().unwrap();
        assert!(spec.is_rw());
        let lock = spec.make_dyn_rw();
        {
            let _r1 = lock.read();
            let _r2 = lock.try_read().expect("instrumented reads overlap");
            assert!(lock.try_write().is_none());
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn adaptive_spec_morphs_under_guard_contention() {
        use asl_runtime::relax::Spin;
        use std::sync::Arc as StdArc;

        // Registry-addressable adaptive lock, driven through the
        // typed interface for the mode oracle.
        let spec: LockSpec = "adaptive".parse().unwrap();
        assert_eq!(spec.label(), "adaptive");

        let lock = StdArc::new(Adaptive::with_thresholds(2, u32::MAX));
        assert_eq!(lock.mode(), asl_locks::AdaptiveMode::Tas);
        let t = asl_locks::RawLock::lock(&*lock);
        let before = lock.telemetry().snapshot().contended;
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    let t = asl_locks::RawLock::lock(&*l);
                    asl_locks::RawLock::unlock(&*l, t);
                })
            })
            .collect();
        let mut spin = Spin::new();
        while lock.telemetry().snapshot().contended < before + 2 {
            spin.relax();
        }
        asl_locks::RawLock::unlock(&*lock, t);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.mode(), asl_locks::AdaptiveMode::Queue);
        assert!(lock.morphs_to_queue() >= 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "mc",
            "libasl-",
            "libasl-opt-",
            "shfl-pb",
            "tas-big-p",
            "libasl-xyz",
            "bravo-",
            "bravo-xyz",
            "libasl-rw-",
            "rw-",
            "libasl-rw-xyz",
            "instrumented-",
            "instrumented-nope",
        ] {
            assert!(bad.parse::<LockSpec>().is_err(), "{bad:?} should not parse");
        }
        // Durations that would overflow u64 nanoseconds are rejected,
        // not wrapped.
        for overflow in [
            "libasl-20000000000000000000ms",
            "libasl-opt-99999999999999999999us",
        ] {
            assert!(
                overflow.parse::<LockSpec>().is_err(),
                "{overflow:?} must not wrap"
            );
        }
        let err = "nope".parse::<LockSpec>().unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn registry_round_trips_and_is_unique() {
        let reg = registry();
        let mut names = Vec::new();
        for entry in &reg {
            let name = entry.spec.to_string();
            let parsed: LockSpec = name.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(parsed, entry.spec, "{name} must round-trip");
            assert!(!entry.description.is_empty());
            names.push(name);
        }
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "registry names must be unique");
    }

    #[test]
    fn registry_locks_all_acquire_via_guards() {
        for entry in registry() {
            let lock = entry.spec.make_dyn();
            {
                let _held = lock.lock();
                assert!(lock.is_locked(), "{}", entry.spec);
            }
            assert!(!lock.is_locked(), "{}", entry.spec);
            let held = lock.try_lock().expect("free lock must try_lock");
            held.unlock();
        }
    }

    #[test]
    fn epoch_slo_only_for_asl() {
        assert_eq!(LockSpec::Mcs.epoch_slo(), None);
        assert_eq!(LockSpec::asl(Some(5)).epoch_slo(), Some(5));
        assert_eq!(
            LockSpec::AslBlocking { slo_ns: Some(7) }.epoch_slo(),
            Some(7)
        );
    }

    #[test]
    fn async_policy_bridges_the_registry() {
        assert_eq!(LockSpec::Mcs.async_policy(), AsyncPolicy::Fifo);
        assert_eq!(LockSpec::Ticket.async_policy(), AsyncPolicy::Fifo);
        assert_eq!(
            LockSpec::asl(Some(50_000)).async_policy(),
            AsyncPolicy::Slo { slo_ns: 50_000 }
        );
        assert_eq!(
            LockSpec::asl(None).async_policy(),
            AsyncPolicy::Slo { slo_ns: u64::MAX },
            "libasl-max = unbounded reorder window = pure EDF"
        );
        assert_eq!(
            LockSpec::Instrumented(Box::new(LockSpec::asl(Some(9)))).async_policy(),
            AsyncPolicy::Slo { slo_ns: 9 }
        );
    }

    #[test]
    fn make_locks_distinct_instances() {
        let locks = LockSpec::Mcs.make_locks(2);
        let held = locks[0].lock();
        assert!(!locks[1].is_locked(), "instances must be independent");
        held.unlock();
    }

    #[test]
    fn lineup_contains_expected_competitors() {
        let l = standard_lineup(AtomicAffinity::Neutral, &[25_000, 50_000]);
        let labels: Vec<_> = l.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"pthread".to_string()));
        assert!(labels.contains(&"mcs".to_string()));
        assert!(labels.contains(&"shfl-pb10".to_string()));
        assert!(labels.contains(&"libasl-25us".to_string()));
        assert!(labels.contains(&"libasl-max".to_string()));
    }

    #[test]
    fn static_window_lock_behaves() {
        let l = StaticWindowLock::new(1_000);
        assert_eq!(l.window_ns(), 1_000);
        let l = DynLock::of(l);
        let held = l.lock();
        assert!(l.is_locked());
        held.unlock();
        assert!(!l.is_locked());
    }
}
