//! Runtime lock selection for experiments.
//!
//! A [`LockSpec`] names one competitor from the paper's evaluation —
//! a baseline (`pthread`, TAS, ticket, MCS, SHFL-PB10) or a LibASL
//! configuration (`LibASL-X` = SLO X, `LibASL-MAX` = maximum window,
//! `LibASL-OPT` = static window, blocking variants). [`LockSetup`]
//! materializes the spec into lock instances plus the epoch/SLO
//! annotation the workload should apply.

use std::sync::Arc;

use asl_core::{AslBlockingLock, AslSpinLock, ReorderableLock, SpinWait};
use asl_locks::plain::{PlainLock, PlainToken};
use asl_locks::shuffle::ClassLocalPolicy;
use asl_locks::{
    CnaLock, CohortLock, MalthusianLock, McsLock, McsStpLock, ProportionalLock, PthreadMutex,
    ShuffleLock, TasLock, TicketLock,
};
use asl_runtime::registry::is_big_core;
use asl_runtime::AtomicAffinity;

/// Which lock to run an experiment under.
#[derive(Debug, Clone, PartialEq)]
pub enum LockSpec {
    /// glibc-style blocking mutex.
    Pthread,
    /// Test-and-set spinlock with an affinity model.
    Tas(AtomicAffinity),
    /// FIFO ticket lock.
    Ticket,
    /// FIFO MCS lock.
    Mcs,
    /// Spin-then-park MCS (blocking FIFO).
    McsStp,
    /// Proportional two-queue lock, `N` big grants per little grant.
    ShflPb(u32),
    /// Compact NUMA-aware lock on core classes (§2.2 comparator).
    Cna,
    /// Cohort lock (C-BO-MCS) on core classes (§2.2 comparator).
    Cohort,
    /// Malthusian MCS (culling + reintroduction, §2.2 comparator).
    Malthusian,
    /// ShflLock framework with the NUMA-local-analog class policy.
    ShuffleClassLocal {
        /// Consecutive out-of-order grants before forcing FIFO.
        max_skips: u32,
    },
    /// LibASL with an SLO-annotated epoch (`None` = no epoch =
    /// LibASL-MAX, maximum reordering).
    Asl {
        /// Epoch SLO in ns; `None` disables epochs (max window).
        slo_ns: Option<u64>,
    },
    /// LibASL-OPT: static reorder window, no feedback.
    AslOpt {
        /// The fixed window (ns).
        window_ns: u64,
    },
    /// Blocking LibASL (pthread mutex + nanosleep standby).
    AslBlocking {
        /// Epoch SLO in ns; `None` = max window.
        slo_ns: Option<u64>,
    },
}

impl LockSpec {
    /// Paper-style label ("MCS Lock", "LibASL-50", ...).
    pub fn label(&self) -> String {
        match self {
            LockSpec::Pthread => "pthread".into(),
            LockSpec::Tas(_) => "tas".into(),
            LockSpec::Ticket => "ticket".into(),
            LockSpec::Mcs => "mcs".into(),
            LockSpec::McsStp => "mcs-stp".into(),
            LockSpec::ShflPb(n) => format!("shfl-pb{n}"),
            LockSpec::Cna => "cna".into(),
            LockSpec::Cohort => "cohort".into(),
            LockSpec::Malthusian => "malthusian".into(),
            LockSpec::ShuffleClassLocal { max_skips } => format!("shfl-local{max_skips}"),
            LockSpec::Asl { slo_ns: None } => "libasl-max".into(),
            LockSpec::Asl { slo_ns: Some(s) } => format!("libasl-{}", fmt_slo(*s)),
            LockSpec::AslOpt { window_ns } => format!("libasl-opt({})", fmt_slo(*window_ns)),
            LockSpec::AslBlocking { slo_ns: None } => "libasl-blk-max".into(),
            LockSpec::AslBlocking { slo_ns: Some(s) } => format!("libasl-blk-{}", fmt_slo(*s)),
        }
    }

    /// Whether the workload should wrap requests in an epoch, and the
    /// SLO to use.
    pub fn epoch_slo(&self) -> Option<u64> {
        match self {
            LockSpec::Asl { slo_ns } | LockSpec::AslBlocking { slo_ns } => *slo_ns,
            _ => None,
        }
    }

    /// Build `n` independent lock instances for this spec.
    pub fn make_locks(&self, n: usize) -> Vec<Arc<dyn PlainLock>> {
        (0..n).map(|_| self.make_lock()).collect()
    }

    /// Build one lock instance.
    pub fn make_lock(&self) -> Arc<dyn PlainLock> {
        match self {
            LockSpec::Pthread => Arc::new(PthreadMutex::new()),
            LockSpec::Tas(aff) => Arc::new(TasLock::with_affinity(*aff)),
            LockSpec::Ticket => Arc::new(TicketLock::new()),
            LockSpec::Mcs => Arc::new(McsLock::new()),
            LockSpec::McsStp => Arc::new(McsStpLock::new()),
            LockSpec::ShflPb(n) => Arc::new(ProportionalLock::new(*n)),
            LockSpec::Cna => Arc::new(CnaLock::new()),
            LockSpec::Cohort => Arc::new(CohortLock::new()),
            LockSpec::Malthusian => Arc::new(MalthusianLock::new()),
            LockSpec::ShuffleClassLocal { max_skips } => {
                Arc::new(ShuffleLock::new(ClassLocalPolicy::new(*max_skips)))
            }
            LockSpec::Asl { .. } => Arc::new(AslSpinLock::default()),
            LockSpec::AslOpt { window_ns } => Arc::new(StaticWindowLock::new(*window_ns)),
            LockSpec::AslBlocking { .. } => Arc::new(AslBlockingLock::new_blocking()),
        }
    }
}

fn fmt_slo(ns: u64) -> String {
    if ns >= 1_000_000 && ns % 1_000_000 == 0 {
        format!("{}ms", ns / 1_000_000)
    } else if ns >= 1_000 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// LibASL-OPT: the paper's "optimal policy" comparator that "directly
/// chooses a static window (no window adjustment)". Big cores lock
/// immediately, little cores always stand by for the fixed window.
pub struct StaticWindowLock {
    inner: ReorderableLock<McsLock, SpinWait>,
    window_ns: u64,
}

impl StaticWindowLock {
    /// Create with the given fixed reorder window.
    pub fn new(window_ns: u64) -> Self {
        StaticWindowLock { inner: ReorderableLock::new(McsLock::new()), window_ns }
    }

    /// The fixed window (ns).
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

impl PlainLock for StaticWindowLock {
    fn acquire(&self) -> PlainToken {
        let tok = if is_big_core() {
            self.inner.lock_immediately()
        } else {
            self.inner.lock_reorder(self.window_ns)
        };
        PlainToken(tok.into_raw(), 0)
    }
    fn try_acquire(&self) -> Option<PlainToken> {
        self.inner.try_lock().map(|t| PlainToken(t.into_raw(), 0))
    }
    fn release(&self, token: PlainToken) {
        // SAFETY: token came from acquire/try_acquire on this lock.
        self.inner.unlock(unsafe { asl_locks::mcs::McsToken::from_raw(token.0) });
    }
    fn held(&self) -> bool {
        self.inner.is_locked()
    }
    fn lock_name(&self) -> &'static str {
        "libasl-opt"
    }
}

/// The paper's standard competitor set for bar-chart figures
/// (Fig. 8a, 9a/d/g, 10a/d): baselines plus LibASL at the given SLOs
/// and LibASL-MAX. `affinity` configures the TAS lock's bias for the
/// scenario being reproduced.
pub fn standard_lineup(affinity: AtomicAffinity, slos_ns: &[u64]) -> Vec<LockSpec> {
    let mut v = vec![
        LockSpec::Pthread,
        LockSpec::Tas(affinity),
        LockSpec::Ticket,
        LockSpec::ShflPb(10),
        LockSpec::Mcs,
        LockSpec::Asl { slo_ns: Some(0) },
    ];
    for &slo in slos_ns {
        v.push(LockSpec::Asl { slo_ns: Some(slo) });
    }
    v.push(LockSpec::Asl { slo_ns: None });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(LockSpec::Mcs.label(), "mcs");
        assert_eq!(LockSpec::ShflPb(10).label(), "shfl-pb10");
        assert_eq!(LockSpec::Asl { slo_ns: Some(50_000) }.label(), "libasl-50us");
        assert_eq!(LockSpec::Asl { slo_ns: Some(4_000_000) }.label(), "libasl-4ms");
        assert_eq!(LockSpec::Asl { slo_ns: None }.label(), "libasl-max");
        assert_eq!(LockSpec::AslOpt { window_ns: 1_000 }.label(), "libasl-opt(1us)");
    }

    #[test]
    fn epoch_slo_only_for_asl() {
        assert_eq!(LockSpec::Mcs.epoch_slo(), None);
        assert_eq!(LockSpec::Asl { slo_ns: Some(5) }.epoch_slo(), Some(5));
        assert_eq!(LockSpec::AslBlocking { slo_ns: Some(7) }.epoch_slo(), Some(7));
    }

    #[test]
    fn all_specs_make_working_locks() {
        let specs = [
            LockSpec::Pthread,
            LockSpec::Tas(AtomicAffinity::Neutral),
            LockSpec::Ticket,
            LockSpec::Mcs,
            LockSpec::McsStp,
            LockSpec::ShflPb(10),
            LockSpec::Cna,
            LockSpec::Cohort,
            LockSpec::Malthusian,
            LockSpec::ShuffleClassLocal { max_skips: 16 },
            LockSpec::Asl { slo_ns: Some(1_000) },
            LockSpec::AslOpt { window_ns: 500 },
            LockSpec::AslBlocking { slo_ns: None },
        ];
        for spec in &specs {
            let lock = spec.make_lock();
            let t = lock.acquire();
            assert!(lock.held(), "{}", spec.label());
            lock.release(t);
            assert!(!lock.held(), "{}", spec.label());
        }
    }

    #[test]
    fn make_locks_distinct_instances() {
        let locks = LockSpec::Mcs.make_locks(2);
        let t = locks[0].acquire();
        assert!(!locks[1].held(), "instances must be independent");
        locks[0].release(t);
    }

    #[test]
    fn lineup_contains_expected_competitors() {
        let l = standard_lineup(AtomicAffinity::Neutral, &[25_000, 50_000]);
        let labels: Vec<_> = l.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"pthread".to_string()));
        assert!(labels.contains(&"mcs".to_string()));
        assert!(labels.contains(&"shfl-pb10".to_string()));
        assert!(labels.contains(&"libasl-25us".to_string()));
        assert!(labels.contains(&"libasl-max".to_string()));
    }

    #[test]
    fn static_window_lock_behaves() {
        let l = StaticWindowLock::new(1_000);
        assert_eq!(l.window_ns(), 1_000);
        let t = l.acquire();
        assert!(l.held());
        l.release(t);
        assert!(!l.held());
    }
}
