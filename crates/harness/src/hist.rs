//! Log-linear latency histogram.
//!
//! HDR-histogram-style layout: values are bucketed by octave
//! (power of two) and 32 linear sub-buckets per octave, giving a
//! worst-case relative error of ~3% — plenty for tail-latency *shape*
//! comparisons. Covers 1 ns .. ~18 s in 2048 counters.

const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS; // 32
const OCTAVES: usize = 64 - SUB_BITS as usize; // value fits u64
const BUCKETS: usize = OCTAVES * SUB_COUNT;

/// A mergeable latency histogram (nanosecond domain).
#[derive(Clone)]
pub struct Hist {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Hist {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index_for(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros(); // floor(log2(v))
        if msb < SUB_BITS {
            // Small values land in the first linear region, exactly.
            return v as usize;
        }
        // Octave o >= 1 covers [2^(o+SUB_BITS-1), 2^(o+SUB_BITS)) in
        // SUB_COUNT equal steps: the sub index is the SUB_BITS bits
        // right below the most-significant bit.
        let octave = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        let idx = octave * SUB_COUNT + sub;
        idx.min(BUCKETS - 1)
    }

    /// Upper bound (ns) of the bucket at `idx` — the value reported
    /// for percentiles falling in that bucket.
    fn value_for(idx: usize) -> u64 {
        if idx < SUB_COUNT {
            return idx as u64;
        }
        let octave = (idx / SUB_COUNT) as u32;
        let sub = (idx % SUB_COUNT) as u64;
        let base = 1u64 << (octave + SUB_BITS - 1);
        let step = (base >> SUB_BITS).max(1);
        base + (sub + 1) * step - 1
    }

    /// Record one latency sample (ns).
    #[inline]
    pub fn record(&mut self, value_ns: u64) {
        self.counts[Self::index_for(value_ns)] += 1;
        self.total += 1;
        self.sum += value_ns as u128;
        self.min = self.min.min(value_ns);
        self.max = self.max.max(value_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at percentile `p` (0 < p <= 100), with ~3% bucket error.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Same rank rule as the exact path, so the two percentile
        // implementations differ only by bucket rounding.
        let rank = asl_runtime::stats::percentile_rank(self.total, p);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return Self::value_for(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// P99 shorthand (the paper's default tail percentile).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// P99.9 shorthand — the serving-side tail the KV figure reports
    /// (one request in a thousand; where FIFO queue-jumping costs and
    /// SLO-aware reordering gains actually live).
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Cumulative distribution: `(latency_ns, cumulative_fraction)`
    /// per non-empty bucket — the paper's CDF plots (Figs. 9c/f/i,
    /// 10c/f).
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.total == 0 {
            return out;
        }
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((
                Self::value_for(idx).min(self.max),
                cum as f64 / self.total as f64,
            ));
        }
        out
    }

    /// Fraction of samples at or below `value_ns`.
    pub fn fraction_below(&self, value_ns: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let limit = Self::index_for(value_ns);
        let below: u64 = self.counts[..=limit].iter().sum();
        below as f64 / self.total as f64
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn single_value() {
        let mut h = Hist::new();
        h.record(1_000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 1_000);
        assert_eq!(h.max(), 1_000);
        let p = h.percentile(50.0);
        assert!((p as f64 - 1_000.0).abs() / 1_000.0 < 0.05, "p50={p}");
    }

    #[test]
    fn percentile_accuracy_uniform() {
        let mut h = Hist::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 50_000.0), (90.0, 90_000.0), (99.0, 99_000.0)] {
            let got = h.percentile(p) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.05, "p{p}: got {got}, want ~{expect} (err {err:.3})");
        }
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut all = Hist::new();
        for i in 0..1_000u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.p99(), all.p99());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let mut h = Hist::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            for _ in 0..20 {
                h.record(v);
            }
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut last = 0.0;
        let mut last_v = 0;
        for (v, f) in &cdf {
            assert!(*f >= last && *v >= last_v);
            last = *f;
            last_v = *v;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_below() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let f = h.fraction_below(500);
        assert!((f - 0.5).abs() < 0.06, "fraction {f}");
        assert!(h.fraction_below(0) < 0.01);
        assert!(h.fraction_below(10_000) > 0.999);
    }

    #[test]
    fn bucket_upper_bound_is_tight() {
        // value_for(index_for(v)) must bound v from above within one
        // sub-bucket step (~3.2% relative for v >= 32, exact below).
        for v in (1u64..=4096).chain([49_999, 50_000, 99_000, (1 << 20) + 7, (1 << 40) + 12_345]) {
            let ub = Hist::value_for(Hist::index_for(v));
            assert!(ub >= v, "v={v} ub={ub}");
            assert!(ub as f64 <= v as f64 * 1.04 + 1.0, "v={v} ub={ub}");
        }
    }

    #[test]
    fn zero_maps_to_smallest_bucket() {
        let mut h = Hist::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn cross_validates_against_exact_percentile() {
        // The histogram and the exact sorted-samples helper share one
        // rank rule (asl_runtime::stats::percentile_rank), so on the
        // same data they must agree to within the histogram's ~4%
        // bucket rounding — at every percentile and several sizes.
        for n in [1u64, 2, 10, 997, 10_000] {
            let mut h = Hist::new();
            let mut raw: Vec<u64> = Vec::new();
            for i in 0..n {
                let v = (i * 7919 + 13) % 200_000 + 1;
                h.record(v);
                raw.push(v);
            }
            for p in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
                let exact = asl_runtime::stats::percentile(&mut raw, p);
                let approx = h.percentile(p);
                assert!(
                    approx >= exact,
                    "n={n} p={p}: bucket upper bound {approx} below exact {exact}"
                );
                assert!(
                    approx as f64 <= exact as f64 * 1.04 + 1.0,
                    "n={n} p={p}: {approx} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn p999_matches_exact_oracle() {
        // The shorthand must agree with the exact 99.9th percentile of
        // the raw samples to within bucket rounding, including the
        // small-n regime where p99.9 degenerates to the max.
        for n in [1u64, 10, 1_000, 50_000] {
            let mut h = Hist::new();
            let mut raw: Vec<u64> = Vec::new();
            for i in 0..n {
                let v = (i * 104_729 + 31) % 1_000_000 + 1;
                h.record(v);
                raw.push(v);
            }
            let exact = asl_runtime::stats::percentile(&mut raw, 99.9);
            let approx = h.p999();
            assert_eq!(approx, h.percentile(99.9));
            assert!(approx >= exact, "n={n}: {approx} below exact {exact}");
            assert!(
                approx as f64 <= exact as f64 * 1.04 + 1.0,
                "n={n}: {approx} vs exact {exact}"
            );
        }
        assert!(Hist::new().p999() == 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Hist::new();
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(100.0) > 0);
    }
}
