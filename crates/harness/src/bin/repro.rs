//! `repro` — regenerate the paper's figures.
//!
//! ```text
//! repro list                 # available figure ids
//! repro locks                # the string-addressable lock registry
//! repro fig8a                # one figure (full profile)
//! repro fig1 fig4 --quick    # several figures, quick profile
//! repro --lock libasl-70us   # Bench-1 under one named lock
//! repro fig1 --profile       # + per-lock telemetry stats tables
//! repro all --quick --out results/
//! repro sim --quick --out simA/    # deterministic-simulator family
//! repro diff old/BENCH_fig8a.json new/BENCH_fig8a.json   # regression gate
//! repro diff baselines/BENCH_collapse.json a.json b.json c.json  # median-of-3 gate
//! ```
//!
//! Each figure prints aligned text tables; with `--out DIR` every
//! table is also written as `DIR/<table-id>.csv` and every figure's
//! machine-readable throughput points as `DIR/BENCH_<figure>.json`
//! (schema: figure id, lock name, threads, ops/s). With `--profile`,
//! every lock the registry materializes is wrapped in a telemetry
//! recorder and a per-lock stats table is printed after each figure.

use std::io::Write as _;

use asl_harness::figures::{self, Profile};
use asl_harness::locks::{registry, LockSpec};
use asl_harness::report::{render_bench_json, telemetry_table, Table};
use asl_locks::telemetry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }

    // `repro diff <old.json> <new.json> [--noise F]` is its own
    // subcommand with its own exit discipline (1 = regression).
    if args[0] == "diff" {
        run_diff(&args[1..]);
    }

    // `repro torture [--quick] [--seed N] [--sim|--os] [--lock NAME]
    // [--out DIR]` — the locktorture-style fault-schedule sweep
    // (exit 1 = an invariant oracle failed).
    if args[0] == "torture" {
        std::process::exit(asl_harness::torture::run_torture(&args[1..]));
    }

    let mut quick = false;
    let mut profile_locks = false;
    let mut out_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut lock_names: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--profile" => profile_locks = true,
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }));
            }
            "--lock" => {
                i += 1;
                lock_names.push(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--lock requires a registry name (try `repro locks`)");
                    std::process::exit(2);
                }));
            }
            "list" => {
                for (id, _) in figures::registry() {
                    println!("{id}");
                }
                return;
            }
            "locks" => {
                list_locks();
                return;
            }
            "all" => ids.extend(
                figures::registry()
                    .into_iter()
                    .map(|(id, _)| id.to_string()),
            ),
            // The deterministic-simulator figure family as one word.
            "sim" => ids.extend(
                figures::registry()
                    .into_iter()
                    .map(|(id, _)| id.to_string())
                    .filter(|id| id.starts_with("sim-")),
            ),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
                std::process::exit(2);
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    ids.dedup();

    if ids.is_empty() && lock_names.is_empty() {
        usage();
        std::process::exit(2);
    }

    let profile = if quick {
        Profile::quick()
    } else {
        Profile::full()
    };
    eprintln!(
        "profile: {} ({}ms/point, warmup {}ms, pin={}{})",
        if quick { "quick" } else { "full" },
        profile.duration_ms,
        profile.warmup_ms,
        profile.pin,
        if profile_locks {
            ", lock telemetry on"
        } else {
            ""
        }
    );

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create --out dir");
    }

    telemetry::set_profiling(profile_locks);
    // Explicitly requested `instrumented-*` locks should report even
    // without --profile: arm count recording (no timing) so their
    // wrappers don't fast-exit. Library users get the zero-cost
    // default; asking for an instrumented lock by name is opt-in.
    if !profile_locks && lock_names.iter().any(|n| n.starts_with("instrumented-")) {
        telemetry::set_recording(true);
    }

    let mut failed = false;

    // One-off single-lock sweeps: `--lock <name>` (repeatable).
    for name in &lock_names {
        let spec: LockSpec = match name.parse() {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("{e}");
                failed = true;
                continue;
            }
        };
        eprintln!("running --lock {spec} ...");
        telemetry::clear_registered();
        let table = figures::single_lock(&profile, &spec);
        emit(&table, &out_dir);
        finish_figure(&format!("lock-{spec}"), &[table], &out_dir);
    }

    for id in &ids {
        let Some(driver) = figures::find(id) else {
            eprintln!("unknown figure id: {id} (try `repro list`)");
            failed = true;
            continue;
        };
        eprintln!("running {id} ...");
        let t0 = std::time::Instant::now();
        telemetry::clear_registered();
        let tables = driver(&profile);
        for table in &tables {
            emit(table, &out_dir);
        }
        finish_figure(id, &tables, &out_dir);
        eprintln!("{id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if failed {
        std::process::exit(1);
    }
}

/// Per-figure epilogue: the per-lock telemetry table (whenever any
/// lock recorded — `--profile` wraps everything and arms sampling;
/// `instrumented-*` specs record counts while the recording gate is
/// armed) and the machine-readable `BENCH_<figure>.json` (under
/// `--out`).
fn finish_figure(id: &str, tables: &[Table], out_dir: &Option<String>) {
    let stats = telemetry_table(id);
    if !stats.rows.is_empty() {
        emit(&stats, out_dir);
    }
    if let Some(dir) = out_dir {
        let samples: Vec<_> = tables.iter().flat_map(|t| t.samples.clone()).collect();
        if !samples.is_empty() {
            let path = format!("{dir}/BENCH_{id}.json");
            let mut f = std::fs::File::create(&path).expect("create bench json");
            f.write_all(render_bench_json(id, &samples).as_bytes())
                .expect("write bench json");
            eprintln!("wrote {path}");
        }
    }
}

fn emit(table: &Table, out_dir: &Option<String>) {
    println!("{}", table.render_text());
    if let Some(dir) = out_dir {
        let path = format!("{dir}/{}.csv", table.id);
        let mut f = std::fs::File::create(&path).expect("create csv");
        f.write_all(table.render_csv().as_bytes())
            .expect("write csv");
        eprintln!("wrote {path}");
    }
}

/// `repro diff old.json new.json [new2.json ...] [--noise F]`:
/// compare per-cell ops/s between a baseline and the per-cell
/// **median** of one or more new BENCH files; exit 1 iff a cell
/// regressed by more than the noise bound (default 10%), 2 on usage
/// errors. Passing several new files is how CI de-noises the gate:
/// run the figure N times, let the median vote the outlier run out.
fn run_diff(args: &[String]) -> ! {
    const USAGE: &str = "usage: repro diff <old.json> <new.json>... [--noise 0.10]";
    let mut noise = 0.10f64;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--noise" => {
                i += 1;
                noise = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|n: &f64| (0.0..10.0).contains(n))
                    .unwrap_or_else(|| {
                        eprintln!("--noise requires a fraction, e.g. 0.10");
                        std::process::exit(2);
                    });
            }
            other if other.starts_with('-') => {
                eprintln!("unknown diff flag: {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
            _ => paths.push(args[i].clone()),
        }
        i += 1;
    }
    if paths.len() < 2 {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let old_path = paths.remove(0);
    match asl_harness::diff::diff_files_median(&old_path, &paths, noise) {
        Ok(report) => {
            if paths.len() > 1 {
                println!("(new side: per-cell median of {} runs)", paths.len());
            }
            println!("{report}");
            std::process::exit(if report.regressed() { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn list_locks() {
    let reg = registry();
    let width = reg
        .iter()
        .map(|e| e.spec.to_string().len())
        .max()
        .unwrap_or(0);
    for entry in reg {
        println!("{:<width$}  {}", entry.spec.to_string(), entry.description);
    }
    println!(
        "\nSLO-parameterized families accept any duration, e.g. libasl-25us,\n\
         libasl-clh-4ms, libasl-opt-500ns, libasl-blk-1ms. Prefix any name\n\
         with `instrumented-` to record telemetry for it (counts via --lock;\n\
         full hold/wait sampling under --profile; near-zero otherwise)."
    );
}

fn usage() {
    eprintln!(
        "usage: repro [--quick|--full] [--profile] [--out DIR] [--lock NAME]... <figure-id>... | all | list | locks\n\
         \u{20}      repro diff <old.json> <new.json>... [--noise 0.10]   # exit 1 on regression (several new files: median)\n\
         \u{20}      repro torture [--quick] [--seed N] [--sim|--os] [--lock NAME] [--out DIR]   # fault-schedule sweep, exit 1 on oracle failure\n\
         figure ids: fig1 fig4 fig5 fig8a fig8b fig8c fig8d fig8ef fig8g fig8hi\n\
         \u{20}          fig9-kyoto fig9-upscale fig9-lmdb fig10-leveldb fig10-sqlite alt-topology\n\
         \u{20}          sec2-numa sec5-delegation delegation collapse rw adapt overhead kv\n\
         \u{20}          sim-numa sim-fair sim-oversub sim-fig1 sim-fig8 (or `sim` for the family)\n\
         lock names: see `repro locks` (e.g. mcs, ccsynch, fc-ban, gcr-mcs, libasl-70us)"
    );
}
