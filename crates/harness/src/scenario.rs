//! The paper's micro-benchmark bodies.
//!
//! All of Figures 1, 4, 5 and 8 share one skeleton: each operation
//! (an *epoch* in LibASL terms) acquires one or more locks, reads-
//! modifies-writes shared cache lines inside each critical section,
//! and executes emulated non-critical work between operations.
//! [`MicroScenario`] parameterizes that skeleton:
//!
//! * `sections` — the critical sections per epoch (Bench-1 uses
//!   "4 critical sections of different lengths protected by 2
//!   different locks"; Figure 1 uses a single 4-line section).
//! * `cs_units_per_line` — emulated per-line processing cost, which
//!   is what makes little-core critical sections slower.
//! * `ncs_units` — the paper's "fixed number of NOP instructions
//!   between two lock acquisitions".
//! * `length` — epoch-length models for Bench-2 (phase changes) and
//!   Bench-3 (mixed short/long epochs).
//! * `epoch_slo` — when set, each operation runs inside epoch 0 with
//!   this SLO (the LibASL configurations).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use asl_core::epoch;
use asl_locks::api::DynLock;
use asl_runtime::clock::now_ns;
use asl_runtime::work::execute_units;
use asl_runtime::CacheLineArena;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::locks::LockSpec;

/// Emulated processing cost per cache line inside a critical section
/// (raw units on a big core; little cores scale it by the topology's
/// perf ratio).
pub const CS_UNITS_PER_LINE: u64 = 30;

/// One critical section within an epoch.
#[derive(Debug, Clone, Copy)]
pub struct CsSpec {
    /// Index into [`MicroScenario::locks`].
    pub lock_idx: usize,
    /// Shared cache lines to read-modify-write.
    pub lines: usize,
}

/// How epoch lengths vary across operations.
#[derive(Clone)]
pub enum LengthModel {
    /// Every epoch identical.
    Fixed,
    /// Bench-3: a `long_ratio` fraction of epochs are `long_factor`×
    /// longer (extra emulated work).
    Mixed {
        /// Fraction of long epochs in `[0, 1]`.
        long_ratio: f64,
        /// Work multiplier of long epochs.
        long_factor: u64,
    },
    /// Bench-2: a shared multiplier the driver changes at runtime;
    /// `u64::MAX` means "randomize per op in 1..=4" (heterogeneous
    /// but individually SLO-feasible lengths — the paper's random
    /// phase stays within the SLO, so the drawn lengths must remain
    /// feasible; infeasibility is exercised by the explicit
    /// "impossible" phase instead).
    Dynamic(Arc<AtomicU64>),
}

/// A configured micro-benchmark.
pub struct MicroScenario {
    /// The lock instances used by `sections`.
    pub locks: Vec<DynLock>,
    /// Shared cache-line arena.
    pub arena: Arc<CacheLineArena>,
    /// Critical sections per epoch.
    pub sections: Vec<CsSpec>,
    /// Emulated per-line cost (see [`CS_UNITS_PER_LINE`]).
    pub cs_units_per_line: u64,
    /// Emulated work between epochs.
    pub ncs_units: u64,
    /// Epoch-length model.
    pub length: LengthModel,
    /// `Some(slo)` wraps every op in epoch 0 with that SLO.
    pub epoch_slo: Option<u64>,
}

impl MicroScenario {
    /// Single-lock scenario: one `lines`-line critical section and
    /// `ncs_units` of think time (Figures 1/4/5/8e/8f/8g).
    pub fn simple(spec: &LockSpec, lines: usize, ncs_units: u64) -> Self {
        MicroScenario {
            locks: spec.make_locks(1),
            arena: Arc::new(CacheLineArena::new(lines.max(1))),
            sections: vec![CsSpec { lock_idx: 0, lines }],
            cs_units_per_line: CS_UNITS_PER_LINE,
            ncs_units,
            length: LengthModel::Fixed,
            epoch_slo: spec.epoch_slo(),
        }
    }

    /// Bench-1 (Figures 8a-8d): "4 critical sections of different
    /// lengths protected by 2 different locks ... 64 \[lines\] in
    /// total", 600·27 emulated units between epochs.
    pub fn bench1(spec: &LockSpec) -> Self {
        MicroScenario {
            locks: spec.make_locks(2),
            arena: Arc::new(CacheLineArena::new(64)),
            sections: vec![
                CsSpec {
                    lock_idx: 0,
                    lines: 8,
                },
                CsSpec {
                    lock_idx: 1,
                    lines: 16,
                },
                CsSpec {
                    lock_idx: 0,
                    lines: 24,
                },
                CsSpec {
                    lock_idx: 1,
                    lines: 16,
                },
            ],
            cs_units_per_line: CS_UNITS_PER_LINE,
            ncs_units: 600 * 27 / 10, // scaled: see DESIGN.md §2 (unit != nop)
            length: LengthModel::Fixed,
            epoch_slo: spec.epoch_slo(),
        }
    }

    /// Execute one operation; returns the recorded latency (ns):
    /// the epoch latency when epochs are enabled, otherwise the span
    /// from first acquire to last release (the paper's "from
    /// acquiring to releasing").
    #[inline]
    pub fn run_op(&self, rng: &mut SmallRng) -> u64 {
        let factor = match &self.length {
            LengthModel::Fixed => 1,
            LengthModel::Mixed {
                long_ratio,
                long_factor,
            } => {
                if rng.gen_bool(*long_ratio) {
                    *long_factor
                } else {
                    1
                }
            }
            LengthModel::Dynamic(m) => {
                let f = m.load(Ordering::Relaxed);
                if f == u64::MAX {
                    rng.gen_range(1..=4)
                } else {
                    f.max(1)
                }
            }
        };
        let latency = match self.epoch_slo {
            Some(slo) => {
                let (_, lat) = epoch::with_epoch_timed(0, slo, || self.critical_work(factor));
                lat
            }
            None => {
                let t0 = now_ns();
                self.critical_work(factor);
                now_ns() - t0
            }
        };
        execute_units(self.ncs_units);
        latency
    }

    #[inline]
    fn critical_work(&self, factor: u64) {
        for (i, cs) in self.sections.iter().enumerate() {
            let _held = self.locks[cs.lock_idx].lock();
            self.arena.rmw(i * 8, cs.lines);
            execute_units(cs.lines as u64 * self.cs_units_per_line * factor);
        } // critical section ends when `_held` drops
    }

    /// Total emulated critical-section units per epoch (big-core).
    pub fn cs_units_total(&self) -> u64 {
        self.sections
            .iter()
            .map(|s| s.lines as u64 * self.cs_units_per_line)
            .sum()
    }
}

/// Deterministic per-worker RNG.
pub fn worker_rng(thread_idx: usize) -> SmallRng {
    SmallRng::seed_from_u64(0x5EED_0000 + thread_idx as u64)
}

/// Paper parameter: Figure 1 critical section size (cache lines).
pub const FIG1_LINES: usize = 4;
/// Paper parameter: Figure 4 / Bench-4 critical section size.
pub const FIG4_LINES: usize = 64;
/// Paper parameter: Bench-5 critical section size.
pub const FIG8G_LINES: usize = 2;
/// Think-time units for Figures 1/4 (the paper's "400*27 NOPs",
/// scaled to emulated units — see DESIGN.md §2).
pub const FIG1_NCS_UNITS: u64 = 400 * 27 / 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_scenario_runs() {
        let s = MicroScenario::simple(&LockSpec::Mcs, 4, 100);
        let mut rng = worker_rng(0);
        let lat = s.run_op(&mut rng);
        assert!(lat > 0);
        assert!(s.arena.total() >= 4, "rmw must touch the arena");
        assert_eq!(s.cs_units_total(), 4 * CS_UNITS_PER_LINE);
    }

    #[test]
    fn bench1_shape_matches_paper() {
        let s = MicroScenario::bench1(&LockSpec::Mcs);
        assert_eq!(s.locks.len(), 2, "two distinct locks");
        assert_eq!(s.sections.len(), 4, "four critical sections");
        let lines: usize = s.sections.iter().map(|c| c.lines).sum();
        assert_eq!(lines, 64, "64 lines in total");
        let mut rng = worker_rng(1);
        let lat = s.run_op(&mut rng);
        assert!(lat > 0);
    }

    #[test]
    fn epoch_slo_drives_epoch_path() {
        asl_runtime::registry::unregister(); // big core: no window changes
        let s = MicroScenario::simple(&LockSpec::asl(Some(1_000_000)), 2, 10);
        assert_eq!(s.epoch_slo, Some(1_000_000));
        let mut rng = worker_rng(2);
        let lat = s.run_op(&mut rng);
        assert!(lat > 0);
    }

    #[test]
    fn mixed_lengths_produce_bimodal_latency() {
        let mut s = MicroScenario::simple(&LockSpec::Mcs, 2, 0);
        s.length = LengthModel::Mixed {
            long_ratio: 0.5,
            long_factor: 50,
        };
        let mut rng = worker_rng(3);
        let lats: Vec<u64> = (0..200).map(|_| s.run_op(&mut rng)).collect();
        let max = *lats.iter().max().unwrap();
        let min = *lats.iter().min().unwrap();
        assert!(max > min * 5, "expected bimodal spread, got {min}..{max}");
    }

    #[test]
    fn dynamic_multiplier_scales_latency() {
        let m = Arc::new(AtomicU64::new(1));
        let mut s = MicroScenario::simple(&LockSpec::Mcs, 2, 0);
        s.length = LengthModel::Dynamic(m.clone());
        let mut rng = worker_rng(4);
        let short: u64 = (0..50).map(|_| s.run_op(&mut rng)).sum();
        m.store(64, Ordering::Relaxed);
        let long: u64 = (0..50).map(|_| s.run_op(&mut rng)).sum();
        assert!(long > short * 4, "short={short} long={long}");
    }

    #[test]
    fn worker_rng_deterministic() {
        let mut a = worker_rng(7);
        let mut b = worker_rng(7);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
