//! `repro diff` — compare two `BENCH_<figure>.json` files cell by
//! cell and flag throughput deltas beyond a noise bound.
//!
//! Seeds ROADMAP item 5 (regression gating): CI regenerates a figure
//! and diffs it against a committed baseline. A cell is the
//! `(lock, threads)` pair; the compared quantity is `ops_per_sec`.
//! `@key=value` label suffixes are part of the cell key (that's how
//! figures sweep a second parameter, e.g. `mcs@layer=dyn`) — except
//! the fairness annotations `@share=`/`@usage=`, which carry
//! fractions rather than throughput and are skipped.
//!
//! Verdicts per cell: within noise, improved (delta > noise, worth a
//! look but never fatal), or **regressed** (delta < -noise — the only
//! verdict that makes [`DiffReport::regressed`] true). Cells present
//! on one side only are reported but don't fail the diff: benches
//! grow columns over time and a missing cell is a schema change, not
//! a slowdown.

use std::fmt;

/// One `(lock, threads) -> ops/s` cell parsed from a bench file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    pub lock: String,
    pub threads: usize,
    pub ops_per_sec: f64,
}

/// A parsed `BENCH_<figure>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    pub figure: String,
    pub cells: Vec<BenchCell>,
}

/// Pull the string value of `"key": "..."` out of a line of our own
/// `render_bench_json` output (names never contain escapes).
fn field_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Pull the numeric value of `"key": 123.4` out of a line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = line[line.find(&needle)? + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the line-oriented JSON `render_bench_json` emits. Tolerant:
/// anything that isn't a recognizable result line is ignored, so the
/// format can grow fields without breaking old binaries.
pub fn parse_bench_json(text: &str) -> Result<BenchFile, String> {
    let figure = text
        .lines()
        .find_map(|l| field_str(l, "figure"))
        .ok_or_else(|| "no \"figure\" field found".to_string())?;
    let mut cells = Vec::new();
    for line in text.lines() {
        let Some(lock) = field_str(line, "lock") else {
            continue;
        };
        let Some(threads) = field_num(line, "threads") else {
            continue;
        };
        let Some(ops_per_sec) = field_num(line, "ops_per_sec") else {
            continue;
        };
        cells.push(BenchCell {
            lock,
            threads: threads as usize,
            ops_per_sec,
        });
    }
    if cells.is_empty() {
        return Err(format!("no result cells found for figure {figure}"));
    }
    Ok(BenchFile { figure, cells })
}

/// Per-cell verdict of a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// |delta| within the noise bound.
    Within,
    /// Faster by more than the noise bound.
    Improved,
    /// Slower by more than the noise bound — the failing verdict.
    Regressed,
    /// Present only in the old file.
    MissingInNew,
    /// Present only in the new file.
    OnlyInNew,
}

/// One compared cell.
#[derive(Debug, Clone)]
pub struct DiffLine {
    pub lock: String,
    pub threads: usize,
    pub old_ops: Option<f64>,
    pub new_ops: Option<f64>,
    pub verdict: Verdict,
}

impl DiffLine {
    /// Relative delta `(new - old) / old`, when both sides exist.
    pub fn delta(&self) -> Option<f64> {
        match (self.old_ops, self.new_ops) {
            (Some(o), Some(n)) if o > 0.0 => Some((n - o) / o),
            _ => None,
        }
    }
}

/// Full result of comparing two bench files.
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub old_figure: String,
    pub new_figure: String,
    pub noise: f64,
    pub lines: Vec<DiffLine>,
    /// Annotation rows (`@`-labelled) skipped on either side.
    pub skipped: usize,
}

impl DiffReport {
    /// True iff any cell regressed beyond the noise bound.
    pub fn regressed(&self) -> bool {
        self.lines.iter().any(|l| l.verdict == Verdict::Regressed)
    }

    pub fn count(&self, v: Verdict) -> usize {
        self.lines.iter().filter(|l| l.verdict == v).count()
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "diff: {} -> {} (noise bound {:.0}%)",
            self.old_figure,
            self.new_figure,
            self.noise * 100.0
        )?;
        let width = self
            .lines
            .iter()
            .map(|l| l.lock.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for l in &self.lines {
            let tag = match l.verdict {
                Verdict::Within => "  ok",
                Verdict::Improved => "  up",
                Verdict::Regressed => "REGR",
                Verdict::MissingInNew => "MISS",
                Verdict::OnlyInNew => " new",
            };
            let delta = l
                .delta()
                .map(|d| format!("{:+6.1}%", d * 100.0))
                .unwrap_or_else(|| "      -".to_string());
            writeln!(
                f,
                "{tag}  {:<width$}  t={:<3}  old={:>12}  new={:>12}  {delta}",
                l.lock,
                l.threads,
                l.old_ops.map(|v| format!("{v:.0}")).unwrap_or_default(),
                l.new_ops.map(|v| format!("{v:.0}")).unwrap_or_default(),
            )?;
        }
        if self.skipped > 0 {
            writeln!(f, "({} share/usage annotation rows skipped)", self.skipped)?;
        }
        write!(
            f,
            "{} within, {} improved, {} regressed, {} missing, {} new",
            self.count(Verdict::Within),
            self.count(Verdict::Improved),
            self.count(Verdict::Regressed),
            self.count(Verdict::MissingInNew),
            self.count(Verdict::OnlyInNew),
        )
    }
}

/// Fairness annotation rows carry fractions (shares), not
/// throughput; every other `@key=value` suffix is a real sweep
/// parameter and part of the cell key.
fn is_annotation(lock: &str) -> bool {
    lock.contains("@share=") || lock.contains("@usage=")
}

/// Compare two parsed bench files. `noise` is the relative bound
/// (0.10 = 10%); a cell regresses when `(new-old)/old < -noise`.
pub fn diff(old: &BenchFile, new: &BenchFile, noise: f64) -> DiffReport {
    let mut lines = Vec::new();
    let mut skipped = 0usize;
    let mut seen = Vec::new();
    for o in &old.cells {
        if is_annotation(&o.lock) {
            skipped += 1;
            continue;
        }
        seen.push((o.lock.clone(), o.threads));
        let n = new
            .cells
            .iter()
            .find(|c| c.lock == o.lock && c.threads == o.threads);
        let (new_ops, verdict) = match n {
            None => (None, Verdict::MissingInNew),
            Some(n) => {
                let d = if o.ops_per_sec > 0.0 {
                    (n.ops_per_sec - o.ops_per_sec) / o.ops_per_sec
                } else {
                    0.0
                };
                let v = if d < -noise {
                    Verdict::Regressed
                } else if d > noise {
                    Verdict::Improved
                } else {
                    Verdict::Within
                };
                (Some(n.ops_per_sec), v)
            }
        };
        lines.push(DiffLine {
            lock: o.lock.clone(),
            threads: o.threads,
            old_ops: Some(o.ops_per_sec),
            new_ops,
            verdict,
        });
    }
    for n in &new.cells {
        if is_annotation(&n.lock) {
            skipped += 1;
            continue;
        }
        if !seen.contains(&(n.lock.clone(), n.threads)) {
            lines.push(DiffLine {
                lock: n.lock.clone(),
                threads: n.threads,
                old_ops: None,
                new_ops: Some(n.ops_per_sec),
                verdict: Verdict::OnlyInNew,
            });
        }
    }
    DiffReport {
        old_figure: old.figure.clone(),
        new_figure: new.figure.clone(),
        noise,
        lines,
        skipped,
    }
}

/// Collapse several runs of the same figure into one file holding the
/// per-cell **median** ops/s — the CI gate regenerates a figure
/// `N` times and compares the median, so one descheduled run can't
/// fail (or mask) the gate. Cells are keyed `(lock, threads)`; a cell
/// missing from some runs takes the median of the runs that have it.
pub fn median_bench(runs: &[BenchFile]) -> BenchFile {
    assert!(!runs.is_empty(), "median of zero runs");
    let mut cells: Vec<BenchCell> = Vec::new();
    for c in runs.iter().flat_map(|r| &r.cells) {
        if cells
            .iter()
            .any(|seen| seen.lock == c.lock && seen.threads == c.threads)
        {
            continue;
        }
        let mut vals: Vec<f64> = runs
            .iter()
            .flat_map(|r| &r.cells)
            .filter(|o| o.lock == c.lock && o.threads == c.threads)
            .map(|o| o.ops_per_sec)
            .collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        let mid = vals.len() / 2;
        let median = if vals.len() % 2 == 1 {
            vals[mid]
        } else {
            (vals[mid - 1] + vals[mid]) / 2.0
        };
        cells.push(BenchCell {
            lock: c.lock.clone(),
            threads: c.threads,
            ops_per_sec: median,
        });
    }
    BenchFile {
        figure: runs[0].figure.clone(),
        cells,
    }
}

/// Convenience: read, parse, and diff two files on disk.
pub fn diff_files(old_path: &str, new_path: &str, noise: f64) -> Result<DiffReport, String> {
    diff_files_median(old_path, &[new_path.to_string()], noise)
}

/// Diff a baseline against the per-cell median of several new runs
/// (the `repro diff old.json new1.json new2.json ...` form).
pub fn diff_files_median(
    old_path: &str,
    new_paths: &[String],
    noise: f64,
) -> Result<DiffReport, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let old = parse_bench_json(&read(old_path)?).map_err(|e| format!("{old_path}: {e}"))?;
    let mut runs = Vec::new();
    for p in new_paths {
        runs.push(parse_bench_json(&read(p)?).map_err(|e| format!("{p}: {e}"))?);
    }
    if runs.is_empty() {
        return Err("no new files to diff against".to_string());
    }
    Ok(diff(&old, &median_bench(&runs), noise))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{render_bench_json, BenchSample};

    fn sample(lock: &str, threads: usize, ops: f64) -> BenchSample {
        BenchSample {
            lock: lock.to_string(),
            threads,
            ops_per_sec: ops,
            p99_ns: None,
            p999_ns: None,
        }
    }

    fn bench(cells: &[(&str, usize, f64)]) -> BenchFile {
        let samples: Vec<_> = cells.iter().map(|(l, t, o)| sample(l, *t, *o)).collect();
        parse_bench_json(&render_bench_json("fig", &samples)).unwrap()
    }

    #[test]
    fn parses_render_bench_json_output() {
        let samples = vec![sample("mcs", 8, 1234.56), sample("ticket", 4, 99.0)];
        let f = parse_bench_json(&render_bench_json("fig8a", &samples)).unwrap();
        assert_eq!(f.figure, "fig8a");
        assert_eq!(f.cells.len(), 2);
        assert_eq!(f.cells[0].lock, "mcs");
        assert_eq!(f.cells[0].threads, 8);
        assert!((f.cells[0].ops_per_sec - 1234.6).abs() < 0.01);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_bench_json("not json at all").is_err());
        assert!(parse_bench_json("{\"figure\": \"x\", \"results\": []}").is_err());
    }

    #[test]
    fn within_noise_is_clean() {
        let old = bench(&[("mcs", 8, 1000.0)]);
        let new = bench(&[("mcs", 8, 950.0)]);
        let r = diff(&old, &new, 0.10);
        assert!(!r.regressed());
        assert_eq!(r.lines[0].verdict, Verdict::Within);
    }

    #[test]
    fn regression_beyond_noise_flags() {
        let old = bench(&[("mcs", 8, 1000.0), ("ticket", 8, 1000.0)]);
        let new = bench(&[("mcs", 8, 800.0), ("ticket", 8, 1300.0)]);
        let r = diff(&old, &new, 0.10);
        assert!(r.regressed());
        assert_eq!(r.lines[0].verdict, Verdict::Regressed);
        assert_eq!(r.lines[1].verdict, Verdict::Improved);
        let shown = r.to_string();
        assert!(shown.contains("REGR"), "{shown}");
        assert!(shown.contains("1 regressed"), "{shown}");
    }

    #[test]
    fn noise_bound_is_configurable() {
        let old = bench(&[("mcs", 8, 1000.0)]);
        let new = bench(&[("mcs", 8, 800.0)]);
        assert!(diff(&old, &new, 0.10).regressed());
        assert!(!diff(&old, &new, 0.25).regressed());
    }

    #[test]
    fn missing_and_new_cells_reported_not_fatal() {
        let old = bench(&[("mcs", 8, 1000.0), ("gone", 8, 1.0)]);
        let new = bench(&[("mcs", 8, 1000.0), ("added", 8, 2.0)]);
        let r = diff(&old, &new, 0.10);
        assert!(!r.regressed());
        assert_eq!(r.count(Verdict::MissingInNew), 1);
        assert_eq!(r.count(Verdict::OnlyInNew), 1);
    }

    #[test]
    fn share_annotation_rows_are_skipped_but_sweep_suffixes_compare() {
        let old = bench(&[
            ("fc-ban", 8, 1000.0),
            ("fc-ban@share=hog", 8, 0.5),
            ("mcs@layer=dyn", 1, 1000.0),
        ]);
        let new = bench(&[
            ("fc-ban", 8, 1000.0),
            ("fc-ban@share=hog", 8, 0.03),
            ("mcs@layer=dyn", 1, 500.0),
        ]);
        let r = diff(&old, &new, 0.10);
        assert_eq!(r.skipped, 2, "share rows must not be treated as ops/s");
        assert_eq!(r.lines.len(), 2);
        assert!(r.regressed(), "@layer cells are real throughput cells");
        let regr: Vec<_> = r
            .lines
            .iter()
            .filter(|l| l.verdict == Verdict::Regressed)
            .collect();
        assert_eq!(regr.len(), 1);
        assert_eq!(regr[0].lock, "mcs@layer=dyn");
    }

    #[test]
    fn median_of_three_discards_the_outlier_run() {
        let baseline = bench(&[("mcs", 8, 1000.0)]);
        // One descheduled run craters; the median must not regress.
        let runs = [
            bench(&[("mcs", 8, 980.0)]),
            bench(&[("mcs", 8, 100.0)]),
            bench(&[("mcs", 8, 1010.0)]),
        ];
        let med = median_bench(&runs);
        assert!((med.cells[0].ops_per_sec - 980.0).abs() < f64::EPSILON);
        assert!(!diff(&baseline, &med, 0.10).regressed());
        // ...but a consistent slowdown across runs still fails.
        let slow = [
            bench(&[("mcs", 8, 500.0)]),
            bench(&[("mcs", 8, 480.0)]),
            bench(&[("mcs", 8, 510.0)]),
        ];
        assert!(diff(&baseline, &median_bench(&slow), 0.10).regressed());
    }

    #[test]
    fn median_of_even_runs_averages_the_middle_pair() {
        let runs = [bench(&[("mcs", 8, 100.0)]), bench(&[("mcs", 8, 300.0)])];
        let med = median_bench(&runs);
        assert!((med.cells[0].ops_per_sec - 200.0).abs() < f64::EPSILON);
    }

    #[test]
    fn same_file_diffs_clean() {
        let old = bench(&[("mcs", 2, 10.0), ("mcs", 4, 20.0), ("mcs", 8, 30.0)]);
        let r = diff(&old, &old, 0.10);
        assert!(!r.regressed());
        assert_eq!(r.count(Verdict::Within), 3);
    }
}
