//! Lock-torture: adversarial fault schedules swept across the lock
//! registry, with invariant oracles.
//!
//! Modeled on the kernel's `locktorture`, adapted to two backends:
//!
//! * **Sim bouts** run on the deterministic virtual machine
//!   ([`asl_sim::exec::run_threads`]) with a
//!   [`FaultInjector`] wrapped
//!   around every virtual thread's substrate handle. The whole bout —
//!   grant order, wait times, fault counters — is a pure function of
//!   the seed, so the report is byte-identical across runs and a
//!   failing schedule replays exactly from `--seed`.
//! * **OS bouts** run on real threads with the injector installed
//!   over the OS substrate, plus a
//!   [`StallWatchdog`] as a
//!   liveness oracle. Timings are wall-clock and the report is *not*
//!   expected to be byte-stable; the oracles still are.
//!
//! Oracles checked per bout:
//!
//! * **mutual-exclusion** — an `UnsafeCell<u64>` counter incremented
//!   in every critical section must end at `threads × ops`, and an
//!   atomic in-CS gauge must never observe two holders.
//! * **completion / no-lost-wakeup** — every thread finishes its op
//!   quota (OS bouts bound this with a wall-clock timeout; a sim bout
//!   that loses a wakeup hangs the baton scheduler and fails loudly).
//! * **fifo** (sim, FIFO locks only) — grant order must equal arrival
//!   order. Arrival indices are taken with no substrate call between
//!   the `fetch_add` and the enqueue, so on the serialized virtual
//!   machine arrival order *is* queue order and the check is exact.
//! * **bounded-starvation** (sim) — max wait may not exceed the mean
//!   wait by more than a per-schedule factor.
//! * **watchdog-silent** (OS) — the stall watchdog must not fire:
//!   injected stalls are microseconds, far under its bounds.
//!
//! Three named schedules reproduce the hand-analyzed adversarial
//! cases as exact tests (see `tests/torture_schedules.rs`):
//! [`schedule_holder_preemption`], [`schedule_gcr_spurious`],
//! [`schedule_panic_delegated`].

use std::cell::UnsafeCell;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use asl_locks::ccsynch::CcSynch;
use asl_locks::gcr::{GcrConfig, GcrPlain};
use asl_locks::watchdog::{StallWatchdog, WatchSample, WatchdogConfig};
use asl_locks::PlainLock;
use asl_runtime::clock::{self, ms};
use asl_runtime::fault::{FaultInjector, FaultPlan, FaultState};
use asl_runtime::topology::Topology;
use asl_sim::exec::{run_threads, ZooConfig};

use crate::locks::LockSpec;

/// One checked invariant: name, verdict, and the evidence line.
#[derive(Clone, Debug)]
pub struct Oracle {
    /// Invariant name (`mutual-exclusion`, `fifo`, …).
    pub name: &'static str,
    /// Did it hold?
    pub pass: bool,
    /// Deterministic evidence string (counts, bounds).
    pub detail: String,
}

impl Oracle {
    fn new(name: &'static str, pass: bool, detail: String) -> Self {
        Oracle { name, pass, detail }
    }
}

/// Everything one bout produced: the schedule, the fault counters,
/// and the oracle verdicts.
#[derive(Clone, Debug)]
pub struct BoutReport {
    /// Bout title, e.g. `sim/mcs` or a named schedule.
    pub title: String,
    /// Lock label.
    pub lock: String,
    /// `"sim"` or `"os"`.
    pub mode: &'static str,
    /// [`FaultPlan::describe`] of the schedule driven.
    pub plan: String,
    /// Injected-fault counter summary.
    pub faults: String,
    /// Virtual time (sim) — 0 for OS bouts (wall time is not
    /// report-stable).
    pub vtime_ns: u64,
    /// FNV digest over the grant trace (sim) — the replay fingerprint.
    pub digest: u64,
    /// Oracle verdicts.
    pub oracles: Vec<Oracle>,
}

impl BoutReport {
    /// All oracles held.
    pub fn passed(&self) -> bool {
        self.oracles.iter().all(|o| o.pass)
    }

    /// Deterministic multi-line rendering (for sim bouts; OS bouts
    /// omit wall times so the *shape* is stable even if counts vary).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "## bout {}", self.title);
        let _ = writeln!(s, "lock: {}", self.lock);
        let _ = writeln!(s, "mode: {}", self.mode);
        let _ = writeln!(s, "plan: {}", self.plan);
        if self.mode == "sim" {
            let _ = writeln!(s, "virtual_time_ns: {}", self.vtime_ns);
            let _ = writeln!(s, "digest: {:#018x}", self.digest);
            let _ = writeln!(s, "faults: {}", self.faults);
        }
        for o in &self.oracles {
            let _ = writeln!(
                s,
                "oracle {}: {} ({})",
                o.name,
                if o.pass { "PASS" } else { "FAIL" },
                o.detail
            );
        }
        s
    }
}

fn fault_summary(state: &FaultState) -> String {
    let st = state.stats();
    format!(
        "polls={} parks={} clock_reads={} ops={} \
         poll_stalls={} wake_stalls={} spurious={} clock_jumps={} panics={}",
        st.polls,
        st.parks,
        st.clock_reads,
        st.ops,
        st.poll_stalls,
        st.wake_stalls,
        st.spurious_wakes,
        st.clock_jumps,
        st.panics,
    )
}

/// One grant observed inside the critical section.
#[derive(Clone, Copy, Debug)]
struct Grant {
    tid: u32,
    arrival: u64,
    wait_ns: u64,
}

fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn grant_digest(grants: &[Grant]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for g in grants {
        h = fnv_fold(h, g.tid as u64);
        h = fnv_fold(h, g.arrival);
        h = fnv_fold(h, g.wait_ns);
    }
    h
}

/// Shared per-bout instrumentation: the ME counter/gauge, the arrival
/// ticket, and the grant trace.
struct BoutShared {
    counter: UnsafeCell<u64>,
    in_cs: AtomicU64,
    me_violations: AtomicU64,
    arrivals: AtomicU64,
    grants: Mutex<Vec<Grant>>,
}

// SAFETY: `counter` is only written while holding the lock under
// torture — that exclusion is exactly what the bout verifies, and the
// atomic gauge independently detects any overlap.
unsafe impl Sync for BoutShared {}

impl BoutShared {
    fn new() -> Self {
        BoutShared {
            counter: UnsafeCell::new(0),
            in_cs: AtomicU64::new(0),
            me_violations: AtomicU64::new(0),
            arrivals: AtomicU64::new(0),
            grants: Mutex::new(Vec::new()),
        }
    }

    /// One tortured operation: arrive, acquire, mutate, release.
    fn op(&self, lock: &dyn PlainLock, tid: usize) {
        let t0 = clock::now_ns();
        let arrival = self.arrivals.fetch_add(1, Ordering::SeqCst);
        let token = lock.acquire();
        let wait_ns = clock::now_ns().saturating_sub(t0);
        if self.in_cs.fetch_add(1, Ordering::SeqCst) != 0 {
            self.me_violations.fetch_add(1, Ordering::SeqCst);
        }
        // SAFETY: inside the critical section (see Sync impl).
        unsafe { *self.counter.get() += 1 };
        self.grants.lock().unwrap().push(Grant {
            tid: tid as u32,
            arrival,
            wait_ns,
        });
        self.in_cs.fetch_sub(1, Ordering::SeqCst);
        lock.release(token);
    }

    fn me_oracle(&self, expected: u64) -> Oracle {
        let count = unsafe { *self.counter.get() };
        let viol = self.me_violations.load(Ordering::SeqCst);
        Oracle::new(
            "mutual-exclusion",
            count == expected && viol == 0,
            format!("counter={count} expected={expected} overlaps={viol}"),
        )
    }
}

/// Parameters for one sim bout.
#[derive(Clone, Debug)]
pub struct SimBout {
    /// Virtual threads.
    pub threads: usize,
    /// Acquisitions per thread.
    pub ops: u64,
    /// Schedule seed (thread staggering + fault decisions).
    pub seed: u64,
    /// Fault schedule.
    pub plan: FaultPlan,
    /// Check exact arrival-order FIFO (only for FIFO locks).
    pub fifo: bool,
    /// `Some(k)`: max wait ≤ k × mean wait.
    pub starvation_factor: Option<u64>,
}

/// Run one deterministic bout on the modeled machine.
pub fn sim_bout(
    title: &str,
    lock_label: &str,
    lock: Arc<dyn PlainLock>,
    cfg: &SimBout,
) -> BoutReport {
    let state = FaultState::new(cfg.plan.clone());
    let mut zc = ZooConfig::quick(Topology::apple_m1(), cfg.threads, cfg.seed);
    zc.fault = Some(state.clone());
    let shared = BoutShared::new();

    let vtime_ns = run_threads(&zc, |tid| {
        for _ in 0..cfg.ops {
            shared.op(lock.as_ref(), tid);
        }
    });

    let grants = shared.grants.lock().unwrap().clone();
    let expected = cfg.threads as u64 * cfg.ops;
    let mut oracles = vec![
        shared.me_oracle(expected),
        Oracle::new(
            "completion",
            grants.len() as u64 == expected,
            format!(
                "grants={} expected={expected} vtime_ns={vtime_ns}",
                grants.len()
            ),
        ),
    ];
    if cfg.fifo {
        let out_of_order = grants
            .windows(2)
            .filter(|w| w[1].arrival < w[0].arrival)
            .count();
        oracles.push(Oracle::new(
            "fifo",
            out_of_order == 0,
            format!("out_of_order_grants={out_of_order}"),
        ));
    }
    if let Some(factor) = cfg.starvation_factor {
        let max = grants.iter().map(|g| g.wait_ns).max().unwrap_or(0);
        let mean = if grants.is_empty() {
            0
        } else {
            grants.iter().map(|g| g.wait_ns).sum::<u64>() / grants.len() as u64
        };
        let bound = mean.saturating_mul(factor).max(1);
        oracles.push(Oracle::new(
            "bounded-starvation",
            max <= bound,
            format!("max_wait_ns={max} mean_wait_ns={mean} bound_ns={bound} (factor {factor})"),
        ));
    }

    BoutReport {
        title: title.to_string(),
        lock: lock_label.to_string(),
        mode: "sim",
        plan: cfg.plan.describe(),
        faults: fault_summary(&state),
        vtime_ns,
        digest: grant_digest(&grants),
        oracles,
    }
}

/// Parameters for one OS bout.
#[derive(Clone, Debug)]
pub struct OsBout {
    /// Real threads.
    pub threads: usize,
    /// Acquisitions per thread.
    pub ops: u64,
    /// Fault schedule.
    pub plan: FaultPlan,
    /// No-lost-wakeup bound: the whole bout must finish within this.
    pub timeout: Duration,
}

/// Run one bout on real threads with the injector over the OS
/// substrate and a stall watchdog as the liveness oracle.
pub fn os_bout(
    title: &str,
    lock_label: &str,
    lock: Arc<dyn PlainLock>,
    cfg: &OsBout,
) -> BoutReport {
    let state = FaultState::new(cfg.plan.clone());
    let shared = Arc::new(BoutShared::new());
    let acquisitions = Arc::new(AtomicU64::new(0));
    let hold_started = Arc::new(AtomicU64::new(0));
    let waiting = Arc::new(AtomicU64::new(0));

    let dog = StallWatchdog::new(WatchdogConfig {
        hold_bound_ns: ms(500),
        wait_bound_ns: ms(2000),
        poll: Duration::from_millis(20),
    });
    {
        let (a, h, w) = (acquisitions.clone(), hold_started.clone(), waiting.clone());
        dog.watch(format!("torture/{lock_label}"), move || WatchSample {
            acquisitions: a.load(Ordering::Relaxed),
            hold_started_ns: h.load(Ordering::Relaxed),
            waiters: w.load(Ordering::Relaxed),
            admitted: String::new(),
        });
    }

    let (done_tx, done_rx) = std::sync::mpsc::channel::<usize>();
    let mut handles = Vec::new();
    for tid in 0..cfg.threads {
        let lock = lock.clone();
        let state = state.clone();
        let shared = shared.clone();
        let (acq, hold, waitg) = (acquisitions.clone(), hold_started.clone(), waiting.clone());
        let done = done_tx.clone();
        let ops = cfg.ops;
        handles.push(std::thread::spawn(move || {
            let _guard = FaultInjector::install_over_os(&state);
            for _ in 0..ops {
                waitg.fetch_add(1, Ordering::Relaxed);
                let t0 = clock::now_ns();
                let arrival = shared.arrivals.fetch_add(1, Ordering::SeqCst);
                let token = lock.acquire();
                waitg.fetch_sub(1, Ordering::Relaxed);
                hold.store(clock::now_ns().max(1), Ordering::Relaxed);
                if shared.in_cs.fetch_add(1, Ordering::SeqCst) != 0 {
                    shared.me_violations.fetch_add(1, Ordering::SeqCst);
                }
                // SAFETY: inside the critical section.
                unsafe { *shared.counter.get() += 1 };
                shared.grants.lock().unwrap().push(Grant {
                    tid: tid as u32,
                    arrival,
                    wait_ns: clock::now_ns().saturating_sub(t0),
                });
                shared.in_cs.fetch_sub(1, Ordering::SeqCst);
                hold.store(0, Ordering::Relaxed);
                acq.fetch_add(1, Ordering::Relaxed);
                lock.release(token);
            }
            let _ = done.send(tid);
        }));
    }
    drop(done_tx);

    let deadline = std::time::Instant::now() + cfg.timeout;
    let mut finished = 0usize;
    while finished < cfg.threads {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        match done_rx.recv_timeout(left) {
            Ok(_) => finished += 1,
            Err(_) => break,
        }
    }
    let completed = finished == cfg.threads;
    if completed {
        for h in handles {
            let _ = h.join();
        }
    } else {
        // A wedged bout: leak the stuck workers rather than hang the
        // runner — the failed oracle is the deliverable.
        for h in handles {
            drop(h);
        }
    }

    let expected = cfg.threads as u64 * cfg.ops;
    let stalls = dog.stalls();
    let reports = dog.take_reports();
    let oracles = vec![
        shared.me_oracle(if completed { expected } else { 0 }),
        Oracle::new(
            "no-lost-wakeup",
            completed,
            format!(
                "finished_threads={finished}/{} within {:?}",
                cfg.threads, cfg.timeout
            ),
        ),
        Oracle::new(
            "watchdog-silent",
            stalls == 0,
            format!(
                "stall_reports={stalls}{}",
                if reports.is_empty() {
                    String::new()
                } else {
                    format!(" first=[{}]", reports[0].render())
                }
            ),
        ),
    ];

    BoutReport {
        title: title.to_string(),
        lock: lock_label.to_string(),
        mode: "os",
        plan: cfg.plan.describe(),
        faults: fault_summary(&state),
        vtime_ns: 0,
        digest: 0,
        oracles,
    }
}

/// The default mixed schedule for registry sweeps: periodic
/// holder/waker stalls, spurious park returns, and coarse clock
/// jumps — no planned panics (token-based paths would leak tokens).
pub fn sweep_plan(seed: u64) -> FaultPlan {
    FaultPlan::stalls(seed, 64, 20_000)
        .with_spurious(8)
        .with_clock_jumps(128, 10_000)
}

/// Locks swept in sim mode, with their FIFO promise.
pub fn sim_sweep_locks() -> Vec<(&'static str, bool)> {
    vec![
        ("tas", false),
        ("ticket", true),
        ("mcs", true),
        ("mcs-stp", true),
        ("gcr-mcs", false),
    ]
}

/// Locks swept in OS mode.
pub fn os_sweep_locks() -> Vec<&'static str> {
    vec![
        "pthread", "tas", "ticket", "mcs", "mcs-stp", "adaptive", "gcr-mcs", "ccsynch",
    ]
}

fn lock_for(name: &str) -> Arc<dyn PlainLock> {
    let spec: LockSpec = name.parse().unwrap_or_else(|e| panic!("lock {name}: {e}"));
    spec.make_lock_raw()
}

/// Named schedule 1: the lock holder is preempted (stalled) in the
/// middle of the MCS handover — stalls fire at both poll and wake
/// boundaries, so the grant can land while the successor is stalled
/// coming back from `park`/relax. FIFO must survive exactly.
pub fn schedule_holder_preemption(seed: u64) -> BoutReport {
    let cfg = SimBout {
        threads: 6,
        ops: 60,
        seed,
        plan: FaultPlan::stalls(seed, 24, 40_000).with_spurious(8),
        fifo: true,
        starvation_factor: Some(64),
    };
    sim_bout("schedule/holder-preemption", "mcs", lock_for("mcs"), &cfg)
}

/// Named schedule 2: spurious wake-ups hammer GCR's passive queue
/// while a tiny reintroduction period keeps pulling passive waiters
/// back — the admission bound must hold (modulo the force-admits)
/// and nobody may be lost.
pub fn schedule_gcr_spurious(seed: u64) -> BoutReport {
    let inner: Arc<dyn PlainLock> = lock_for("mcs");
    let gcr = Arc::new(GcrPlain::with_config(
        inner,
        GcrConfig {
            initial_limit: 2,
            min_limit: 2,
            max_limit: 2,
            reintroduce_period: 2,
            ctl_period: 0,
            ..GcrConfig::default()
        },
    ));
    let cfg = SimBout {
        threads: 8,
        ops: 40,
        seed,
        plan: FaultPlan::stalls(seed, 96, 15_000).with_spurious(2),
        fifo: false,
        starvation_factor: None,
    };
    let mut report = sim_bout(
        "schedule/gcr-spurious-reintroduction",
        "gcr(mcs)",
        gcr.clone(),
        &cfg,
    );
    let peak = gcr.peak_active();
    let reintroduced = gcr.reintroduced();
    // Force-admits deliberately overshoot the bound by one at a time.
    report.oracles.push(Oracle::new(
        "admission-bound",
        peak <= gcr.limit() + 2,
        format!("peak_active={peak} limit={}", gcr.limit()),
    ));
    report.oracles.push(Oracle::new(
        "reintroduction-live",
        reintroduced >= 1,
        format!("reintroduced={reintroduced}"),
    ));
    report
}

/// Named schedule 3: a planned panic fires *inside* a delegated
/// operation while a combiner is executing it. The combiner must
/// survive (the panic is re-raised on the submitting thread), every
/// other op must land, and the structure must keep serving.
pub fn schedule_panic_delegated(seed: u64) -> BoutReport {
    const THREADS: usize = 4;
    const OPS: u64 = 40;
    const PANIC_AT: u64 = 17;

    let plan = FaultPlan::quiet(seed).with_panic_at(PANIC_AT);
    let state = FaultState::new(plan.clone());
    let mut zc = ZooConfig::quick(Topology::apple_m1(), THREADS, seed);
    zc.fault = Some(state.clone());

    let op_state = state.clone();
    let cc = CcSynch::new(0u64, move |v: &mut u64, add: u64| {
        // Count this delegated op against the fault plan — the
        // planned index panics here, on the combiner's stack.
        op_state.on_critical_op();
        *v += add;
        *v
    });
    let caught = AtomicU64::new(0);
    let applied = AtomicU64::new(0);

    let vtime_ns = run_threads(&zc, |_tid| {
        let h = cc.register();
        for _ in 0..OPS {
            // The submitter whose op hit the planned panic sees it
            // re-raised; the bout (and the combiner) carries on.
            match catch_unwind(AssertUnwindSafe(|| h.apply(1))) {
                Ok(_) => {
                    applied.fetch_add(1, Ordering::SeqCst);
                }
                Err(_) => {
                    caught.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    });

    let total = THREADS as u64 * OPS;
    let applied = applied.load(Ordering::SeqCst);
    let caught = caught.load(Ordering::SeqCst);
    let stats = state.stats();
    let value = cc.into_inner();

    let oracles = vec![
        Oracle::new(
            "panic-delivered",
            caught == 1 && stats.panics == 1,
            format!("caught={caught} injected={}", stats.panics),
        ),
        Oracle::new(
            "combiner-survives",
            applied == total - 1,
            format!("applied={applied} expected={}", total - 1),
        ),
        Oracle::new(
            "state-consistent",
            value == total - 1,
            format!("value={value} expected={}", total - 1),
        ),
    ];
    BoutReport {
        title: "schedule/panic-in-delegated-op".to_string(),
        lock: "ccsynch(raw)".to_string(),
        mode: "sim",
        plan: plan.describe(),
        faults: fault_summary(&state),
        vtime_ns,
        digest: fnv_fold(fnv_fold(0xCBF2_9CE4_8422_2325, applied), value),
        oracles,
    }
}

/// Options parsed from `repro torture` flags.
#[derive(Clone, Debug)]
pub struct TortureOpts {
    /// Replay seed.
    pub seed: u64,
    /// Smaller sweep for CI smoke.
    pub quick: bool,
    /// Run the deterministic sim sweep + named schedules.
    pub sim: bool,
    /// Run the OS-thread sweep.
    pub os: bool,
    /// Restrict sweeps to one lock label.
    pub lock: Option<String>,
    /// Output directory.
    pub out: std::path::PathBuf,
}

impl Default for TortureOpts {
    fn default() -> Self {
        TortureOpts {
            seed: 42,
            quick: false,
            sim: true,
            os: true,
            lock: None,
            out: std::path::PathBuf::from("torture-out"),
        }
    }
}

fn render_run(header: &str, seed: u64, bouts: &[BoutReport]) -> String {
    let mut s = format!("# lock-torture report ({header})\nseed: {seed}\n\n");
    for b in bouts {
        s.push_str(&b.render());
        s.push('\n');
    }
    let failed: Vec<&str> = bouts
        .iter()
        .filter(|b| !b.passed())
        .map(|b| b.title.as_str())
        .collect();
    if failed.is_empty() {
        let _ = writeln!(s, "verdict: PASS ({} bouts)", bouts.len());
    } else {
        let _ = writeln!(s, "verdict: FAIL ({})", failed.join(", "));
    }
    s
}

/// Run the sim side of a torture sweep: registry bouts plus the three
/// named schedules. Fully deterministic for a fixed seed.
pub fn run_sim_sweep(opts: &TortureOpts) -> Vec<BoutReport> {
    let (threads, ops) = if opts.quick { (4, 40) } else { (6, 200) };
    let mut bouts = Vec::new();
    for (name, fifo) in sim_sweep_locks() {
        if opts.lock.as_deref().is_some_and(|l| l != name) {
            continue;
        }
        let cfg = SimBout {
            threads,
            ops,
            seed: opts.seed,
            plan: sweep_plan(opts.seed),
            fifo,
            starvation_factor: if fifo { Some(64) } else { None },
        };
        bouts.push(sim_bout(&format!("sim/{name}"), name, lock_for(name), &cfg));
    }
    if opts.lock.is_none() {
        bouts.push(schedule_holder_preemption(opts.seed));
        bouts.push(schedule_gcr_spurious(opts.seed));
        bouts.push(schedule_panic_delegated(opts.seed));
    }
    bouts
}

/// Run the OS side of a torture sweep.
pub fn run_os_sweep(opts: &TortureOpts) -> Vec<BoutReport> {
    let (threads, ops) = if opts.quick { (4, 300) } else { (8, 2_000) };
    let mut bouts = Vec::new();
    for name in os_sweep_locks() {
        if opts.lock.as_deref().is_some_and(|l| l != name) {
            continue;
        }
        let cfg = OsBout {
            threads,
            ops,
            plan: sweep_plan(opts.seed),
            timeout: Duration::from_secs(120),
        };
        bouts.push(os_bout(&format!("os/{name}"), name, lock_for(name), &cfg));
    }
    bouts
}

/// CLI entry: parse `repro torture` flags, run the requested sweeps,
/// write `TORTURE_sim.txt` / `TORTURE_os.txt`, and return the exit
/// code (0 = every oracle held).
pub fn run_torture(args: &[String]) -> i32 {
    let mut opts = TortureOpts::default();
    let mut explicit_mode = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--sim" => {
                if !explicit_mode {
                    opts.os = false;
                }
                explicit_mode = true;
                opts.sim = true;
            }
            "--os" => {
                if !explicit_mode {
                    opts.sim = false;
                }
                explicit_mode = true;
                opts.os = true;
            }
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => {
                    eprintln!("torture: --seed needs an integer");
                    return 2;
                }
            },
            "--lock" => match it.next() {
                Some(v) => opts.lock = Some(v.clone()),
                None => {
                    eprintln!("torture: --lock needs a label");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(v) => opts.out = std::path::PathBuf::from(v),
                None => {
                    eprintln!("torture: --out needs a directory");
                    return 2;
                }
            },
            other => {
                eprintln!("torture: unknown flag {other}");
                return 2;
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all(&opts.out) {
        eprintln!("torture: cannot create {}: {e}", opts.out.display());
        return 2;
    }

    let mut all_pass = true;
    if opts.sim {
        let bouts = run_sim_sweep(&opts);
        let text = render_run("sim", opts.seed, &bouts);
        let path = opts.out.join("TORTURE_sim.txt");
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("torture: cannot write {}: {e}", path.display());
            return 2;
        }
        print!("{text}");
        println!("wrote {}", path.display());
        all_pass &= bouts.iter().all(BoutReport::passed);
    }
    if opts.os {
        let bouts = run_os_sweep(&opts);
        let text = render_run("os", opts.seed, &bouts);
        let path = opts.out.join("TORTURE_os.txt");
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("torture: cannot write {}: {e}", path.display());
            return 2;
        }
        print!("{text}");
        println!("wrote {}", path.display());
        all_pass &= bouts.iter().all(BoutReport::passed);
    }
    if all_pass {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_bout_is_deterministic_and_green() {
        let cfg = SimBout {
            threads: 4,
            ops: 20,
            seed: 7,
            plan: sweep_plan(7),
            fifo: true,
            starvation_factor: Some(64),
        };
        let a = sim_bout("sim/ticket", "ticket", lock_for("ticket"), &cfg);
        let b = sim_bout("sim/ticket", "ticket", lock_for("ticket"), &cfg);
        assert!(a.passed(), "oracles failed:\n{}", a.render());
        assert_eq!(a.render(), b.render(), "sim bout not replayable");
    }

    #[test]
    fn os_bout_smoke_on_tas() {
        let cfg = OsBout {
            threads: 3,
            ops: 200,
            plan: sweep_plan(5),
            timeout: Duration::from_secs(60),
        };
        let r = os_bout("os/tas", "tas", lock_for("tas"), &cfg);
        assert!(r.passed(), "oracles failed:\n{}", r.render());
    }

    #[test]
    fn torture_flag_parsing_rejects_unknown() {
        assert_eq!(run_torture(&["--bogus".to_string()]), 2);
    }
}
