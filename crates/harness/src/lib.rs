//! # asl-harness — measurement and paper-figure reproduction
//!
//! Everything needed to regenerate the paper's evaluation:
//!
//! * [`hist`] — log-linear latency histogram (HDR-style) with
//!   percentiles, CDFs and merging.
//! * [`runner`] — timed multi-threaded experiment runner over a
//!   virtual AMP topology, with warmup/measure phases and per-core-
//!   class result breakdown (the paper reports Big P99 / Little P99 /
//!   Overall P99 separately).
//! * [`locks`] — runtime lock selection: every baseline and every
//!   LibASL configuration as an `Arc<dyn PlainLock>` plus epoch/SLO
//!   annotation metadata.
//! * [`scenario`] — the paper's micro-benchmark bodies (Bench-1..6,
//!   Figures 1/4/5/8) parameterized by lock, cache-line count and
//!   inter-acquisition work.
//! * [`figures`] — one driver per paper figure, each returning
//!   [`report::Table`] rows that mirror the published series.
//! * [`report`] — markdown/CSV emitters.
//!
//! The `repro` binary ties it together:
//! `repro fig8a`, `repro all --quick`, `repro list`.

pub mod diff;
pub mod figures;
pub mod hist;
pub mod locks;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod torture;

pub use hist::Hist;
pub use runner::{run_timed, RunConfig, RunResult};

/// Serializes unit tests that touch `asl_locks::telemetry`'s
/// process-wide state (the recording/profiling gates and the cell
/// registry). `cargo test` runs this crate's tests on parallel
/// threads of one process, so any two tests that toggle a gate, or
/// that register cells while another clears them, race without this.
#[cfg(test)]
pub(crate) fn telemetry_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    // A panicking holder doesn't corrupt the (unit) state.
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}
