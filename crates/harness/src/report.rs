//! Result tables: the harness's common output format.
//!
//! Every figure driver produces a [`Table`]; the `repro` binary
//! renders it as aligned text for the terminal and CSV for plotting.
//! Alongside the formatted rows, drivers attach machine-readable
//! [`BenchSample`]s (lock name, thread count, ops/s) that `repro
//! --out` serializes as `BENCH_<figure>.json`, and [`telemetry_table`]
//! renders the process-wide per-lock telemetry collected under
//! `repro --profile`.

use asl_locks::telemetry::{self, TelemetrySnapshot};

/// One machine-readable throughput measurement backing a table row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSample {
    /// Registry lock name (`LockSpec` label). Figures that sweep a
    /// second parameter besides the lock and thread count append it
    /// as an `@key=value` suffix (`mcs@rf=0.95`) so every (figure,
    /// lock, threads) key maps to exactly one throughput.
    pub lock: String,
    /// Worker threads the point ran with.
    pub threads: usize,
    /// Measured operations per second.
    pub ops_per_sec: f64,
    /// P99 request latency (ns), for figures that measure latency
    /// (the KV service); `None` for throughput-only figures.
    pub p99_ns: Option<u64>,
    /// P99.9 request latency (ns); `None` for throughput-only figures.
    pub p999_ns: Option<u64>,
}

/// One reproduced figure (or sub-figure).
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier, e.g. "fig8a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (workload parameters, caveats).
    pub notes: Vec<String>,
    /// Machine-readable throughput points behind the rows.
    pub samples: Vec<BenchSample>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Append a row; must match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Attach one machine-readable throughput point.
    pub fn push_sample(&mut self, lock: &str, threads: usize, ops_per_sec: f64) {
        self.samples.push(BenchSample {
            lock: lock.to_string(),
            threads,
            ops_per_sec,
            p99_ns: None,
            p999_ns: None,
        });
    }

    /// Attach one machine-readable throughput + tail-latency point
    /// (serving-side figures that report p99/p999 alongside ops/s).
    pub fn push_latency_sample(
        &mut self,
        lock: &str,
        threads: usize,
        ops_per_sec: f64,
        p99_ns: u64,
        p999_ns: u64,
    ) {
        self.samples.push(BenchSample {
            lock: lock.to_string(),
            threads,
            ops_per_sec,
            p99_ns: Some(p99_ns),
            p999_ns: Some(p999_ns),
        });
    }

    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {} — {}\n", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; cells are simple numerics/labels).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Serialize samples as the `BENCH_<figure>.json` document: figure
/// id, then one record per (lock, threads, ops/s) point.
pub fn render_bench_json(figure: &str, samples: &[BenchSample]) -> String {
    let mut out = format!(
        "{{\n  \"figure\": {},\n  \"results\": [\n",
        json_str(figure)
    );
    for (i, s) in samples.iter().enumerate() {
        let mut tail = String::new();
        if let Some(p99) = s.p99_ns {
            tail.push_str(&format!(", \"p99_ns\": {p99}"));
        }
        if let Some(p999) = s.p999_ns {
            tail.push_str(&format!(", \"p999_ns\": {p999}"));
        }
        out.push_str(&format!(
            "    {{\"lock\": {}, \"threads\": {}, \"ops_per_sec\": {:.1}{}}}{}\n",
            json_str(&s.lock),
            s.threads,
            s.ops_per_sec,
            tail,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the process-wide per-lock telemetry (collected while
/// `asl_locks::telemetry` profiling is on) as a stats table for one
/// figure. Locks with zero recorded acquisitions are skipped.
pub fn telemetry_table(figure_id: &str) -> Table {
    let mut t = Table::new(
        &format!("{figure_id}-profile"),
        &format!("per-lock telemetry for {figure_id}"),
        &[
            "lock",
            "acquisitions",
            "contended",
            "contended_pct",
            "spin_iters",
            "avg_hold_us",
            "avg_wait_us",
        ],
    );
    for (label, snap) in telemetry::snapshots() {
        if snap.acquisitions == 0 {
            continue;
        }
        t.push_row(telemetry_row(&label, &snap));
    }
    t.note("telemetry sampled via Instrumented wrappers (--profile or instrumented-* specs)");
    t
}

fn telemetry_row(label: &str, s: &TelemetrySnapshot) -> Vec<String> {
    vec![
        label.to_string(),
        s.acquisitions.to_string(),
        s.contended.to_string(),
        format!("{:.1}", 100.0 * s.contention_ratio()),
        s.spin_iters.to_string(),
        format!("{:.2}", s.avg_hold_ns() / 1_000.0),
        format!("{:.2}", s.avg_wait_ns() / 1_000.0),
    ]
}

/// Format ops/sec compactly (e.g. "2.41M", "853k").
pub fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Format nanoseconds as microseconds with one decimal.
pub fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new("figX", "demo", &["lock", "thpt"]);
        t.push_row(vec!["mcs".into(), "1.2M".into()]);
        t.note("quick mode");
        let text = t.render_text();
        assert!(text.contains("figX"));
        assert!(text.contains("mcs"));
        assert!(text.contains("note: quick mode"));
        let csv = t.render_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("lock,thpt"));
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ops(2_410_000.0), "2.41M");
        assert_eq!(fmt_ops(853_000.0), "853k");
        assert_eq!(fmt_ops(12.0), "12");
        assert_eq!(fmt_us(1_500), "1.5");
    }

    #[test]
    fn bench_json_schema() {
        let mut t = Table::new("fig1", "demo", &["lock"]);
        t.push_sample("mcs", 8, 1234.56);
        t.push_sample("libasl-max", 4, 99.0);
        let json = render_bench_json("fig1", &t.samples);
        assert!(json.contains("\"figure\": \"fig1\""));
        assert!(json.contains("\"lock\": \"mcs\""));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.contains("\"ops_per_sec\": 1234.6"));
        // Exactly one trailing comma (two records).
        assert_eq!(json.matches("},").count(), 1);
        // Throughput-only samples must not emit latency fields.
        assert!(!json.contains("p99_ns"));
    }

    #[test]
    fn bench_json_latency_fields() {
        let mut t = Table::new("kv", "demo", &["lock"]);
        t.push_latency_sample("async-slo@rate=500k", 4, 480_000.0, 90_000, 240_000);
        t.push_sample("mcs", 4, 1_000.0);
        let json = render_bench_json("kv", &t.samples);
        assert!(json.contains("\"p99_ns\": 90000"));
        assert!(json.contains("\"p999_ns\": 240000"));
        assert_eq!(json.matches("},").count(), 1);
        // The latency fields ride inside the record, before its close.
        let rec = json
            .lines()
            .find(|l| l.contains("async-slo"))
            .expect("record present");
        assert!(rec.trim_end().ends_with("\"p999_ns\": 240000},"));
    }

    #[test]
    fn json_strings_escaped() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("\n"), "\"\\u000a\"");
    }

    #[test]
    fn telemetry_table_skips_idle_cells() {
        use std::sync::Arc;
        // The cell registry is process-global and the overhead-figure
        // tests clear it wholesale — serialize on the shared gate.
        let _gate = crate::telemetry_test_lock();
        let busy = Arc::new(telemetry::TelemetryCell::new());
        busy.record_acquisition(true);
        telemetry::register_cell("report-test-busy", busy);
        telemetry::register_cell(
            "report-test-idle",
            Arc::new(telemetry::TelemetryCell::new()),
        );
        let t = telemetry_table("figX");
        assert_eq!(t.id, "figX-profile");
        assert!(
            t.rows.iter().any(|r| r[0] == "report-test-busy"),
            "recorded cell must appear: {:?}",
            t.rows
        );
        assert!(
            !t.rows.iter().any(|r| r[0] == "report-test-idle"),
            "idle cell must be skipped"
        );
    }
}
