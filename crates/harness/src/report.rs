//! Result tables: the harness's common output format.
//!
//! Every figure driver produces a [`Table`]; the `repro` binary
//! renders it as aligned text for the terminal and CSV for plotting.

/// One reproduced figure (or sub-figure).
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier, e.g. "fig8a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (workload parameters, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; must match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {} — {}\n", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; cells are simple numerics/labels).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format ops/sec compactly (e.g. "2.41M", "853k").
pub fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Format nanoseconds as microseconds with one decimal.
pub fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new("figX", "demo", &["lock", "thpt"]);
        t.push_row(vec!["mcs".into(), "1.2M".into()]);
        t.note("quick mode");
        let text = t.render_text();
        assert!(text.contains("figX"));
        assert!(text.contains("mcs"));
        assert!(text.contains("note: quick mode"));
        let csv = t.render_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("lock,thpt"));
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ops(2_410_000.0), "2.41M");
        assert_eq!(fmt_ops(853_000.0), "853k");
        assert_eq!(fmt_ops(12.0), "12");
        assert_eq!(fmt_us(1_500), "1.5");
    }
}
