//! # asl-sim — deterministic discrete-event lock simulation
//!
//! A virtual-time model of the paper's experimental setup: `N`
//! threads, one per core of an asymmetric machine, each cycling
//! *non-critical section → acquire → critical section → release*.
//! Little cores take `perf_ratio×` longer for both sections. Lock
//! behaviour is modelled per policy:
//!
//! * [`SimLockKind::Fifo`] — strict arrival-order handover
//!   (MCS/ticket).
//! * [`SimLockKind::TasAffinity`] — on release, a weighted coin among
//!   the waiters picks the winner (the asymmetric atomic success rate
//!   of §2.2).
//! * [`SimLockKind::Proportional`] — two class queues, `n` big grants
//!   per little grant (SHFL-PB).
//! * [`SimLockKind::Reorderable`] — the LibASL model: big threads
//!   enqueue immediately; little threads stand by for their reorder
//!   window (static, or driven by the paper's Algorithm-2 feedback
//!   against an SLO), joining the FIFO queue on expiry.
//!
//! Everything is seeded and deterministic: the same [`SimConfig`]
//! yields the same [`SimResult`] — which makes figure *shapes*
//! assertable in unit tests without wall-clock noise, complementing
//! the real-thread harness.
//!
//! ## Two engines
//!
//! * The **analytic** engine above ([`run`]) models each policy with
//!   hand-written queueing rules — fast, but only as faithful as the
//!   model.
//! * The **execution** engine ([`exec::run_lock`]) steps the *real*,
//!   unmodified lock implementations cooperatively in virtual time on
//!   a modeled machine (cache-line transfer costs, remote sockets,
//!   little-core slowdown, core oversubscription), via the
//!   [`asl_runtime::substrate`] backend. The analytic models are kept
//!   as cross-validation oracles for its figure shapes.

pub mod exec;

mod engine;
mod model;

pub use engine::{run, SimResult};
pub use exec::{run_lock, run_rw, CostModel, ZooConfig, ZooResult, ZooRwResult};
pub use model::{ArrivalProcess, SimConfig, SimLockKind};

/// Exact percentile over raw simulated samples (the workspace-shared
/// definition — see [`asl_runtime::stats`]).
pub fn percentile(samples: &mut [u64], p: f64) -> u64 {
    asl_runtime::stats::percentile(samples, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(lock: SimLockKind) -> SimConfig {
        SimConfig {
            topology: asl_runtime::Topology::custom(4, 4, 3.0),
            threads: 8,
            cs_ns: 2_000,
            ncs_ns: 2_000,
            duration_ns: 400_000_000, // 400 simulated ms
            lock,
            slo_ns: None,
            seed: 7,
            jitter: 0.05,
            arrival: ArrivalProcess::Fixed,
        }
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = run(&base_cfg(SimLockKind::Fifo));
        let b = run(&base_cfg(SimLockKind::Fifo));
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.big_ops, b.big_ops);
        assert_eq!(a.p99_overall, b.p99_overall);
    }

    #[test]
    fn different_seed_different_trace() {
        let mut c1 = base_cfg(SimLockKind::Fifo);
        c1.seed = 1;
        let mut c2 = base_cfg(SimLockKind::Fifo);
        c2.seed = 2;
        // Jitter differs, so op counts will almost surely differ.
        assert_ne!(run(&c1).total_ops, run(&c2).total_ops);
    }

    #[test]
    fn fifo_throughput_collapses_on_amp() {
        // Paper Figure 1a: adding little cores to a contended FIFO
        // lock *reduces* throughput (>30% collapse at ratio 3).
        let mut big_only = base_cfg(SimLockKind::Fifo);
        big_only.threads = 4;
        let all = base_cfg(SimLockKind::Fifo);
        let t4 = run(&big_only).throughput;
        let t8 = run(&all).throughput;
        assert!(
            t8 < t4 * 0.8,
            "expected FIFO collapse: 4 big cores {t4:.0} ops/s vs 8 cores {t8:.0} ops/s"
        );
    }

    #[test]
    fn reorderable_max_recovers_throughput() {
        // Paper Figure 8e: LibASL-MAX throughput "does not drop at
        // all" — it should roughly match the 4-big-core FIFO level.
        let mut big_only = base_cfg(SimLockKind::Fifo);
        big_only.threads = 4;
        let t4 = run(&big_only).throughput;
        let asl = run(&base_cfg(SimLockKind::Reorderable {
            feedback: false,
            static_window_ns: Some(100_000_000),
        }));
        let t8 = run(&base_cfg(SimLockKind::Fifo)).throughput;
        assert!(
            asl.throughput > t8 * 1.3,
            "LibASL {} vs FIFO {}",
            asl.throughput,
            t8
        );
        assert!(
            asl.throughput > t4 * 0.8,
            "LibASL {} vs 4-big FIFO {}",
            asl.throughput,
            t4
        );
    }

    #[test]
    fn tas_little_affinity_starves_big_cores() {
        // Paper Figure 1b/3b: little-core affinity gives little cores
        // most acquisitions and collapses big-core latency.
        let r = run(&base_cfg(SimLockKind::TasAffinity {
            big_weight: 1.0,
            little_weight: 50.0,
        }));
        assert!(
            r.little_ops > r.big_ops * 2,
            "little {} vs big {}",
            r.little_ops,
            r.big_ops
        );
        assert!(r.p99_big > r.p99_little * 2, "big tail must collapse");
    }

    #[test]
    fn tas_big_affinity_boosts_throughput_but_collapses_little_latency() {
        // Paper Figure 4: big-core affinity beats FIFO on throughput;
        // little cores pay with tail latency.
        let fifo = run(&base_cfg(SimLockKind::Fifo));
        let tas = run(&base_cfg(SimLockKind::TasAffinity {
            big_weight: 50.0,
            little_weight: 1.0,
        }));
        assert!(tas.throughput > fifo.throughput * 1.1);
        assert!(tas.p99_little > fifo.p99_little * 2);
    }

    #[test]
    fn class_batching_collapses_like_fifo() {
        // §2.2: NUMA-style long-term fairness (CNA/cohort batching)
        // still gives little cores an equal long-run share, so the
        // throughput collapse vs 4 big cores persists at any batch.
        let mut big_only = base_cfg(SimLockKind::Fifo);
        big_only.threads = 4;
        let t4 = run(&big_only).throughput;
        for batch in [4, 64, 256] {
            let r = run(&base_cfg(SimLockKind::ClassBatched { batch }));
            assert!(
                r.throughput < t4 * 0.8,
                "batch {batch}: expected collapse, got {:.0} vs 4-big {:.0}",
                r.throughput,
                t4
            );
            // Long-term fairness: both classes progress.
            assert!(r.big_ops > 0 && r.little_ops > 0);
        }
    }

    #[test]
    fn class_batching_beats_fifo_slightly_on_amp() {
        // Batching amortizes handovers within a class, so it should
        // not do *worse* than strict FIFO on the same workload.
        let fifo = run(&base_cfg(SimLockKind::Fifo));
        let batched = run(&base_cfg(SimLockKind::ClassBatched { batch: 64 }));
        assert!(
            batched.throughput > fifo.throughput * 0.85,
            "batched {:.0} vs fifo {:.0}",
            batched.throughput,
            fifo.throughput
        );
    }

    #[test]
    fn proportional_trades_latency_for_throughput() {
        // Paper Figure 5: larger proportion -> more throughput, longer
        // tail.
        let lo = run(&base_cfg(SimLockKind::Proportional { n: 1 }));
        let hi = run(&base_cfg(SimLockKind::Proportional { n: 20 }));
        assert!(hi.throughput > lo.throughput);
        assert!(hi.p99_overall >= lo.p99_overall);
    }

    #[test]
    fn slo_feedback_keeps_little_tail_near_slo() {
        // Paper Figure 8b: little-core P99 sticks to the SLO line.
        let slo = 60_000u64; // 60 µs, comfortably above the FIFO tail
        let mut cfg = base_cfg(SimLockKind::Reorderable {
            feedback: true,
            static_window_ns: None,
        });
        cfg.slo_ns = Some(slo);
        let r = run(&cfg);
        assert!(
            r.p99_little <= slo * 13 / 10,
            "little P99 {} overshoots SLO {}",
            r.p99_little,
            slo
        );
        // And reordering must have bought throughput over plain FIFO.
        let fifo = run(&base_cfg(SimLockKind::Fifo));
        assert!(
            r.throughput >= fifo.throughput,
            "{} < {}",
            r.throughput,
            fifo.throughput
        );
    }

    #[test]
    fn larger_slo_larger_throughput() {
        // Paper Figure 8b: throughput grows with the SLO.
        let mut lo = base_cfg(SimLockKind::Reorderable {
            feedback: true,
            static_window_ns: None,
        });
        lo.slo_ns = Some(30_000);
        let mut hi = lo.clone();
        hi.slo_ns = Some(300_000);
        let r_lo = run(&lo);
        let r_hi = run(&hi);
        assert!(
            r_hi.throughput > r_lo.throughput,
            "SLO 300us {} <= SLO 30us {}",
            r_hi.throughput,
            r_lo.throughput
        );
    }

    #[test]
    fn impossible_slo_falls_back_to_fifo() {
        // Paper §3.4: "when the SLO is impossible to achieve even
        // without reordering, LibASL falls back to a FIFO lock".
        let mut cfg = base_cfg(SimLockKind::Reorderable {
            feedback: true,
            static_window_ns: None,
        });
        cfg.slo_ns = Some(1); // unachievable
        let asl = run(&cfg);
        let fifo = run(&base_cfg(SimLockKind::Fifo));
        let ratio = asl.throughput / fifo.throughput;
        assert!(
            (0.85..1.15).contains(&ratio),
            "expected FIFO-like throughput, ratio {ratio:.2}"
        );
    }

    #[test]
    fn poisson_think_time_is_deterministic_and_distinct() {
        let mut cfg = base_cfg(SimLockKind::Fifo);
        cfg.arrival = ArrivalProcess::Poisson;
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.total_ops, b.total_ops, "same seed, same trace");
        assert_eq!(a.p99_overall, b.p99_overall);
        let fixed = run(&base_cfg(SimLockKind::Fifo));
        assert_ne!(
            a.total_ops, fixed.total_ops,
            "poisson arrivals must change the trace"
        );
    }

    #[test]
    fn bursty_arrivals_fatten_the_fifo_tail() {
        // A burst dumps the whole little-core cohort on the queue at
        // one instant; FIFO's tail should be no better than under
        // evenly spread think times.
        let mut burst = base_cfg(SimLockKind::Fifo);
        burst.arrival = ArrivalProcess::Burst { burst: 16 };
        let smooth = run(&base_cfg(SimLockKind::Fifo));
        let bursty = run(&burst);
        assert!(bursty.total_ops > 0);
        assert!(
            bursty.p99_overall >= smooth.p99_overall,
            "burst p99 {} vs smooth p99 {}",
            bursty.p99_overall,
            smooth.p99_overall
        );
    }

    #[test]
    fn percentile_helper() {
        let mut v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&mut v, 99.0), 99);
        assert_eq!(percentile(&mut v, 50.0), 50);
        assert_eq!(percentile(&mut Vec::new(), 99.0), 0);
    }
}
