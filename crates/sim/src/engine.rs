//! The discrete-event engine.
//!
//! One event loop over virtual time. Threads cycle NCS → Arrive →
//! (wait per lock model) → CS → Release. The lock models mirror the
//! real implementations' *ordering* semantics; waiting mechanics
//! (spinning, probing) are abstracted away — a standby competitor in
//! the reorderable model acquires the instant the lock frees with an
//! empty FIFO queue, a slightly optimistic stand-in for the paper's
//! exponential-back-off probing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use asl_dbsim::arrival::{ArrivalGen, ArrivalProcess};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::model::{SimConfig, SimLockKind};
use crate::percentile;

const DEFAULT_MAX_WINDOW_NS: u64 = 100_000_000;
const INIT_WINDOW_NS: u64 = 10_000;
const UNIT_FLOOR_NS: u64 = 100;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Thread finished its NCS and requests the lock.
    Arrive(usize),
    /// Thread finished its CS and releases the lock.
    Release(usize),
    /// A standby window expired (generation-stamped).
    WindowExpire(usize, u64),
}

/// Deterministically ordered event queue (time, then insertion seq).
struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payload: Vec<Ev>,
    seq: u64,
}

impl EventQueue {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payload: Vec::new(),
            seq: 0,
        }
    }

    fn push(&mut self, t: u64, ev: Ev) {
        // seq doubles as the payload index (every event pushed once).
        self.payload.push(ev);
        self.heap.push(Reverse((t, self.seq)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, Ev)> {
        self.heap
            .pop()
            .map(|Reverse((t, s))| (t, self.payload[s as usize]))
    }
}

struct ThreadState {
    big: bool,
    mult: f64,
    request_time: u64,
    window: u64,
    unit: u64,
    standby_gen: u64,
    in_standby: bool,
    /// Think-time sampler (per-thread: burst streams carry state).
    arrivals: ArrivalGen,
}

struct LockModel {
    kind: SimLockKind,
    holder: Option<usize>,
    fifo: VecDeque<usize>,
    tas_waiters: Vec<usize>,
    big_q: VecDeque<usize>,
    little_q: VecDeque<usize>,
    bigs_since_little: u32,
    /// ClassBatched: is the current batch running on big cores?
    cur_class_big: bool,
    /// ClassBatched: consecutive same-class grants so far.
    class_run: u32,
    /// (tid, request_time) of standby competitors.
    standby: Vec<(usize, u64)>,
}

/// Outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Operations completed in the measurement window.
    pub total_ops: u64,
    /// Ops by big-core threads.
    pub big_ops: u64,
    /// Ops by little-core threads.
    pub little_ops: u64,
    /// Ops per (simulated) second.
    pub throughput: f64,
    /// Exact P99 of acquire→release latency, big-core threads (ns).
    pub p99_big: u64,
    /// Exact P99, little-core threads (ns).
    pub p99_little: u64,
    /// Exact P99, all threads (ns).
    pub p99_overall: u64,
}

struct Sim<'a> {
    cfg: &'a SimConfig,
    rng: SmallRng,
    threads: Vec<ThreadState>,
    lock: LockModel,
    q: EventQueue,
}

impl Sim<'_> {
    fn jittered(&mut self, base: f64) -> u64 {
        if self.cfg.jitter <= 0.0 {
            base.max(1.0) as u64
        } else {
            let f = 1.0 + self.rng.gen_range(-self.cfg.jitter..self.cfg.jitter);
            (base * f).max(1.0) as u64
        }
    }

    fn grant(&mut self, tid: usize, t: u64) {
        self.lock.holder = Some(tid);
        let cs = self.jittered(self.cfg.cs_ns as f64 * self.threads[tid].mult);
        self.q.push(t + cs, Ev::Release(tid));
    }

    fn dispatch_next(&mut self, t: u64) {
        if self.lock.holder.is_some() {
            return;
        }
        let next = match &self.lock.kind {
            SimLockKind::Fifo => self.lock.fifo.pop_front(),
            SimLockKind::TasAffinity {
                big_weight,
                little_weight,
            } => {
                if self.lock.tas_waiters.is_empty() {
                    None
                } else {
                    let weights: Vec<f64> = self
                        .lock
                        .tas_waiters
                        .iter()
                        .map(|&w| {
                            if self.threads[w].big {
                                *big_weight
                            } else {
                                *little_weight
                            }
                        })
                        .collect();
                    let total: f64 = weights.iter().sum();
                    let mut pick = self.rng.gen_range(0.0..total);
                    let mut chosen = weights.len() - 1;
                    for (i, w) in weights.iter().enumerate() {
                        if pick < *w {
                            chosen = i;
                            break;
                        }
                        pick -= w;
                    }
                    Some(self.lock.tas_waiters.swap_remove(chosen))
                }
            }
            SimLockKind::Proportional { n } => {
                let little_due = self.lock.bigs_since_little >= *n;
                if little_due && !self.lock.little_q.is_empty() {
                    self.lock.bigs_since_little = 0;
                    self.lock.little_q.pop_front()
                } else if !self.lock.big_q.is_empty() {
                    self.lock.bigs_since_little += 1;
                    self.lock.big_q.pop_front()
                } else if !self.lock.little_q.is_empty() {
                    self.lock.bigs_since_little = 0;
                    self.lock.little_q.pop_front()
                } else {
                    None
                }
            }
            SimLockKind::ClassBatched { batch } => {
                let batch = *batch;
                let (cur, other): (&mut VecDeque<usize>, &mut VecDeque<usize>) =
                    if self.lock.cur_class_big {
                        (&mut self.lock.big_q, &mut self.lock.little_q)
                    } else {
                        (&mut self.lock.little_q, &mut self.lock.big_q)
                    };
                if self.lock.class_run < batch && !cur.is_empty() {
                    self.lock.class_run += 1;
                    cur.pop_front()
                } else if !other.is_empty() {
                    // Batch exhausted (or cohort empty): switch class.
                    self.lock.cur_class_big = !self.lock.cur_class_big;
                    self.lock.class_run = 1;
                    other.pop_front()
                } else if !cur.is_empty() {
                    // Other class has nobody waiting: keep batching.
                    self.lock.class_run = 1;
                    cur.pop_front()
                } else {
                    None
                }
            }
            SimLockKind::Reorderable { .. } => {
                if let Some(tid) = self.lock.fifo.pop_front() {
                    Some(tid)
                } else if !self.lock.standby.is_empty() {
                    // The longest-waiting standby competitor's probe
                    // finds the free lock first.
                    let (idx, _) = self
                        .lock
                        .standby
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, rt))| rt)
                        .expect("non-empty");
                    let (tid, _) = self.lock.standby.swap_remove(idx);
                    self.threads[tid].in_standby = false;
                    self.threads[tid].standby_gen += 1; // cancel expiry
                    Some(tid)
                } else {
                    None
                }
            }
        };
        if let Some(tid) = next {
            self.grant(tid, t);
        }
    }

    fn arrive(&mut self, tid: usize, t: u64) {
        self.threads[tid].request_time = t;
        let kind = self.lock.kind.clone();
        match kind {
            SimLockKind::Fifo => {
                if self.lock.holder.is_none() && self.lock.fifo.is_empty() {
                    self.grant(tid, t);
                } else {
                    self.lock.fifo.push_back(tid);
                }
            }
            SimLockKind::TasAffinity { .. } => {
                if self.lock.holder.is_none() && self.lock.tas_waiters.is_empty() {
                    self.grant(tid, t);
                } else {
                    self.lock.tas_waiters.push(tid);
                }
            }
            SimLockKind::Proportional { .. } => {
                if self.lock.holder.is_none()
                    && self.lock.big_q.is_empty()
                    && self.lock.little_q.is_empty()
                {
                    self.grant(tid, t);
                } else if self.threads[tid].big {
                    self.lock.big_q.push_back(tid);
                } else {
                    self.lock.little_q.push_back(tid);
                }
            }
            SimLockKind::ClassBatched { .. } => {
                if self.lock.holder.is_none()
                    && self.lock.big_q.is_empty()
                    && self.lock.little_q.is_empty()
                {
                    self.lock.cur_class_big = self.threads[tid].big;
                    self.lock.class_run = 1;
                    self.grant(tid, t);
                } else if self.threads[tid].big {
                    self.lock.big_q.push_back(tid);
                } else {
                    self.lock.little_q.push_back(tid);
                }
            }
            SimLockKind::Reorderable {
                feedback,
                static_window_ns,
            } => {
                let free = self.lock.holder.is_none() && self.lock.fifo.is_empty();
                if self.threads[tid].big {
                    if free {
                        self.grant(tid, t);
                    } else {
                        self.lock.fifo.push_back(tid);
                    }
                } else if free {
                    self.grant(tid, t);
                } else {
                    let window = if feedback {
                        self.threads[tid].window
                    } else {
                        static_window_ns.unwrap_or(DEFAULT_MAX_WINDOW_NS)
                    }
                    .min(DEFAULT_MAX_WINDOW_NS);
                    self.threads[tid].in_standby = true;
                    self.threads[tid].standby_gen += 1;
                    let gen = self.threads[tid].standby_gen;
                    self.lock.standby.push((tid, t));
                    self.q
                        .push(t.saturating_add(window), Ev::WindowExpire(tid, gen));
                }
            }
        }
    }
}

/// Run one simulation to completion.
pub fn run(cfg: &SimConfig) -> SimResult {
    assert!(cfg.threads >= 1);
    assert!(cfg.threads <= cfg.topology.len(), "one thread per core");

    let threads: Vec<ThreadState> = (0..cfg.threads)
        .map(|tid| ThreadState {
            big: cfg.is_big(tid),
            mult: cfg.multiplier(tid),
            request_time: 0,
            window: INIT_WINDOW_NS,
            unit: UNIT_FLOOR_NS,
            standby_gen: 0,
            in_standby: false,
            arrivals: ArrivalGen::from_mean_gap(
                cfg.arrival,
                cfg.ncs_ns as f64 * cfg.multiplier(tid),
            ),
        })
        .collect();

    let mut sim = Sim {
        cfg,
        rng: SmallRng::seed_from_u64(cfg.seed),
        threads,
        lock: LockModel {
            kind: cfg.lock.clone(),
            holder: None,
            fifo: VecDeque::new(),
            tas_waiters: Vec::new(),
            big_q: VecDeque::new(),
            little_q: VecDeque::new(),
            bigs_since_little: 0,
            cur_class_big: true,
            class_run: 0,
            standby: Vec::new(),
        },
        q: EventQueue::new(),
    };

    // Stagger initial arrivals to avoid lockstep.
    for tid in 0..cfg.threads {
        let t0 = sim.rng.gen_range(0..cfg.ncs_ns.max(2));
        sim.q.push(t0, Ev::Arrive(tid));
    }

    let warmup = cfg.duration_ns / 10;
    let mut big_samples: Vec<u64> = Vec::new();
    let mut little_samples: Vec<u64> = Vec::new();
    let (mut big_ops, mut little_ops) = (0u64, 0u64);

    while let Some((t, ev)) = sim.q.pop() {
        if t > cfg.duration_ns {
            break;
        }
        match ev {
            Ev::Arrive(tid) => sim.arrive(tid, t),
            Ev::WindowExpire(tid, gen) => {
                if sim.threads[tid].in_standby && sim.threads[tid].standby_gen == gen {
                    sim.threads[tid].in_standby = false;
                    sim.lock.standby.retain(|&(w, _)| w != tid);
                    sim.lock.fifo.push_back(tid);
                    sim.dispatch_next(t);
                }
            }
            Ev::Release(tid) => {
                sim.lock.holder = None;
                let latency = t - sim.threads[tid].request_time;
                if t >= warmup {
                    if sim.threads[tid].big {
                        big_ops += 1;
                        big_samples.push(latency);
                    } else {
                        little_ops += 1;
                        little_samples.push(latency);
                    }
                }
                // Algorithm-2 feedback on little threads (one
                // acquisition == one epoch in this model).
                if let SimLockKind::Reorderable { feedback: true, .. } = sim.lock.kind {
                    if !sim.threads[tid].big {
                        if let Some(slo) = cfg.slo_ns {
                            let st = &mut sim.threads[tid];
                            if latency > slo {
                                st.window >>= 1;
                                st.unit = (st.window / 100).max(UNIT_FLOOR_NS);
                            } else {
                                st.window = (st.window + st.unit).min(DEFAULT_MAX_WINDOW_NS);
                            }
                        }
                    }
                }
                // Fixed keeps the classic jittered-constant think
                // time (bit-identical to earlier revisions); the
                // stochastic processes own their randomness.
                let ncs = match cfg.arrival {
                    ArrivalProcess::Fixed => {
                        sim.jittered(cfg.ncs_ns as f64 * sim.threads[tid].mult)
                    }
                    _ => sim.threads[tid].arrivals.next_gap_ns(&mut sim.rng),
                };
                sim.q.push(t.saturating_add(ncs), Ev::Arrive(tid));
                sim.dispatch_next(t);
            }
        }
    }

    let measured_s = (cfg.duration_ns - warmup) as f64 / 1e9;
    let total_ops = big_ops + little_ops;
    let mut overall: Vec<u64> = big_samples
        .iter()
        .chain(little_samples.iter())
        .copied()
        .collect();
    SimResult {
        total_ops,
        big_ops,
        little_ops,
        throughput: total_ops as f64 / measured_s,
        p99_big: percentile(&mut big_samples, 99.0),
        p99_little: percentile(&mut little_samples, 99.0),
        p99_overall: percentile(&mut overall, 99.0),
    }
}
