//! Cooperative virtual-time execution of the **real** lock zoo.
//!
//! Where the analytic engine ([`crate::run`]) *models* each lock
//! policy,
//! this module executes the unmodified lock implementations —
//! anything [`PlainLock`] or [`PlainRwLock`], i.e. the whole
//! `asl-locks`/`asl-core` zoo including `AslLock`'s SLO feedback —
//! against a modeled machine:
//!
//! * Each simulated thread is an OS thread with an installed
//!   [`asl_runtime::substrate`] backend. The engine steps **exactly
//!   one** thread at a time (baton passing over per-thread condvars),
//!   so every shared-memory operation of the real lock code is
//!   serialized and the whole run is a pure function of the config —
//!   same seed, byte-identical trace.
//! * Every substrate hook (clock read, failed spin probe, emulated
//!   work, park, sleep) *charges* the calling virtual thread on its
//!   virtual clock using a [`CostModel`] derived from the
//!   [`Topology`]: little cores stretch work by `perf_ratio`,
//!   cross-socket lock handoffs pay a remote cache-line transfer,
//!   parking pays a syscall-shaped penalty.
//! * Cores are resources: two virtual threads bound to the same core
//!   (oversubscription — [`Topology::assignment_for_thread`] wraps)
//!   serialize on the core's clock and pay [`CostModel::switch_ns`]
//!   per context switch, while parked/sleeping threads leave the core
//!   free — which is exactly why spin-then-park beats pure spinning
//!   once oversubscribed.
//!
//! The scheduler always runs the runnable thread with the smallest
//! virtual key (ties broken by thread id), with a small slack band
//! ([`CostModel::resched_slack_ns`]) to batch consecutive probes of
//! one waiter. Causality skew between threads is therefore bounded by
//! the slack plus one charge — small against every modeled effect.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use asl_locks::plain::{PlainLock, PlainRwLock};
use asl_runtime::atomic_model::AtomicAffinity;
use asl_runtime::topology::{CoreId, CoreKind, Topology};
use asl_runtime::{registry, substrate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::percentile;

/// Epoch id the simulated workload uses when an SLO is configured.
pub const SIM_EPOCH_ID: usize = 9;

/// Per-operation virtual-time charges (all in virtual nanoseconds).
///
/// The defaults model a commodity NUMA part: a remote-socket
/// cache-line transfer costs ~10× a local one, a park/unpark round
/// trip and a context switch cost microseconds, a failed spin probe
/// costs tens of nanoseconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// One failed lock probe ([`asl_runtime::relax::Spin::relax`]).
    pub poll_ns: u64,
    /// One clock read ([`asl_runtime::clock::now_ns`]).
    pub clock_read_ns: u64,
    /// One unit of emulated work
    /// ([`asl_runtime::work::execute_raw_units`]) on a big core.
    pub work_unit_ns: u64,
    /// Lock handoff between cores of the same socket (local
    /// cache-line transfer).
    pub handoff_local_ns: u64,
    /// Lock handoff across sockets (remote cache-line transfer).
    pub handoff_remote_ns: u64,
    /// One park → wake round trip (futex / `thread::park`).
    pub park_ns: u64,
    /// Context switch when a core changes its running thread.
    pub switch_ns: u64,
    /// Scheduling quantum: how long one thread may monopolize a core
    /// that co-resident threads are waiting for.
    pub quantum_ns: u64,
    /// Reschedule hysteresis: the running thread keeps the baton while
    /// it is within this band of the minimum virtual key. Purely a
    /// simulation-speed knob; bounds inter-thread causality skew.
    pub resched_slack_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            poll_ns: 25,
            clock_read_ns: 8,
            work_unit_ns: 1,
            handoff_local_ns: 40,
            handoff_remote_ns: 400,
            park_ns: 1_500,
            switch_ns: 2_000,
            quantum_ns: 50_000,
            resched_slack_ns: 400,
        }
    }
}

impl CostModel {
    /// Cache-line-transfer cost of a lock handoff from `from` to `to`
    /// on `topo`: local within a socket, remote across sockets.
    pub fn handoff_ns(&self, topo: &Topology, from: CoreId, to: CoreId) -> u64 {
        if topo.socket_of(from) == topo.socket_of(to) {
            self.handoff_local_ns
        } else {
            self.handoff_remote_ns
        }
    }

    /// One failed atomic probe by a thread on a `kind` core: the base
    /// poll stretched by the core's work multiplier, plus the atomic
    /// model's post-fail penalty for the disfavoured class.
    pub fn poll_cost_ns(&self, topo: &Topology, kind: CoreKind, affinity: AtomicAffinity) -> u64 {
        let base = (self.poll_ns as f64 * topo.work_multiplier(kind)) as u64;
        base + affinity.post_fail_penalty(kind) * self.work_unit_ns
    }

    /// Virtual duration of `units` of emulated work on a `kind` core.
    pub fn work_ns(&self, topo: &Topology, kind: CoreKind, units: u64) -> u64 {
        ((units * self.work_unit_ns) as f64 * topo.work_multiplier(kind)) as u64
    }
}

/// One simulated zoo experiment: N threads cycling *non-critical
/// section → acquire → critical section → release* on one lock.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// The modeled machine — same [`Topology`] real-thread runs use.
    pub topology: Topology,
    /// Virtual threads; bound via
    /// [`Topology::assignment_for_thread`], so more threads than
    /// cores oversubscribes the machine.
    pub threads: usize,
    /// Critical-section length in work units (stretched by
    /// `perf_ratio` on little cores).
    pub cs_units: u64,
    /// Non-critical-section length in work units.
    pub ncs_units: u64,
    /// Virtual run length (ns).
    pub duration_ns: u64,
    /// Schedule seed (staggers thread start times).
    pub seed: u64,
    /// Wrap each operation in an epoch with this SLO — drives
    /// `AslLock`'s Algorithm-2 window feedback.
    pub slo_ns: Option<u64>,
    /// Per-operation charges.
    pub cost: CostModel,
    /// Optional fault schedule: when set, every virtual thread's
    /// substrate handle is wrapped in a
    /// [`asl_runtime::fault::FaultInjector`] sharing this state, so
    /// the modeled machine runs the *faulted* schedule — still fully
    /// deterministic, because the baton-passing scheduler serializes
    /// the shared fault counters (see `asl_runtime::fault`).
    pub fault: Option<Arc<asl_runtime::fault::FaultState>>,
}

impl ZooConfig {
    /// A short experiment (300 virtual µs) sized for unit tests and
    /// doctests.
    pub fn quick(topology: Topology, threads: usize, seed: u64) -> Self {
        ZooConfig {
            topology,
            threads,
            cs_units: 1_000,
            ncs_units: 1_000,
            duration_ns: 300_000,
            seed,
            slo_ns: None,
            cost: CostModel::default(),
            fault: None,
        }
    }
}

/// Outcome of [`run_lock`]. Every field is a deterministic function
/// of the [`ZooConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZooResult {
    /// Completed acquisitions.
    pub total_ops: u64,
    /// Acquisitions by big-core threads.
    pub big_ops: u64,
    /// Acquisitions by little-core threads.
    pub little_ops: u64,
    /// Acquisitions per thread (exact long-term fairness counts).
    pub per_thread_ops: Vec<u64>,
    /// Whether each thread ran on a big core.
    pub thread_is_big: Vec<bool>,
    /// Ops per *virtual* second.
    pub throughput: f64,
    /// Exact acquire-latency percentiles (virtual ns) by class.
    pub p50_big: u64,
    /// P99, big-core threads.
    pub p99_big: u64,
    /// P50, little-core threads.
    pub p50_little: u64,
    /// P99, little-core threads.
    pub p99_little: u64,
    /// P99 across all threads.
    pub p99_overall: u64,
    /// Worst acquire latency seen by a big-core thread.
    pub max_wait_big: u64,
    /// Worst acquire latency seen by a little-core thread.
    pub max_wait_little: u64,
    /// Lock handoffs that stayed within a socket.
    pub handoffs_local: u64,
    /// Lock handoffs that crossed sockets.
    pub handoffs_remote: u64,
    /// Holder thread id per acquisition, in grant order (exact
    /// short-term fairness trace).
    pub grants: Vec<u32>,
    /// Longest run of consecutive grants within one core class.
    pub max_class_batch: u64,
    /// Final virtual time (max over threads).
    pub virtual_ns: u64,
}

impl ZooResult {
    /// Fraction of handoffs that crossed sockets.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.handoffs_local + self.handoffs_remote;
        if total == 0 {
            0.0
        } else {
            self.handoffs_remote as f64 / total as f64
        }
    }
}

/// Outcome of [`run_rw`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZooRwResult {
    /// Completed read-side acquisitions.
    pub total_reads: u64,
    /// Completed write-side acquisitions.
    pub total_writes: u64,
    /// Operations per thread.
    pub per_thread_ops: Vec<u64>,
    /// Exact maximum number of read guards held concurrently (in
    /// virtual time) at any point.
    pub max_concurrent_readers: u64,
    /// Ops per virtual second.
    pub throughput: f64,
    /// Final virtual time.
    pub virtual_ns: u64,
}

const NO_THREAD: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VState {
    Ready,
    Running,
    Done,
}

struct Vthread {
    vtime: u64,
    state: VState,
    core: usize,
    socket: usize,
    big: bool,
    /// Pre-resolved per-poll charge (poll stretched by core class).
    poll_charge: u64,
    /// Virtual time of the last on-core execution: the scheduler's
    /// tie-break. Threads parked behind the same quantum-expiry key
    /// rotate least-recently-run first, so every co-resident of a core
    /// gets its quantum (a fixed tid tie-break lets two threads
    /// ping-pong and starve the rest — a preempted lock *holder* among
    /// the starved then livelocks the whole machine).
    last_ran: u64,
    ops: u64,
}

struct Shared {
    th: Vec<Vthread>,
    core_time: Vec<u64>,
    core_last: Vec<usize>,
    core_since: Vec<u64>,
    last_holder: usize,
    handoffs_local: u64,
    handoffs_remote: u64,
    grants: Vec<u32>,
    lat_big: Vec<u64>,
    lat_little: Vec<u64>,
    max_wait_big: u64,
    max_wait_little: u64,
    readers_now: u64,
    readers_max: u64,
    reads: u64,
    writes: u64,
}

/// The cooperative scheduler shared by all virtual threads of one
/// experiment.
struct SimMachine {
    cost: CostModel,
    shared: Mutex<Shared>,
    cvs: Vec<Condvar>,
}

impl SimMachine {
    fn new(cfg: &ZooConfig) -> Arc<SimMachine> {
        assert!(cfg.threads >= 1, "need at least one thread");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let stagger = (cfg.ncs_units * cfg.cost.work_unit_ns).max(64);
        let th = (0..cfg.threads)
            .map(|tid| {
                let vc = cfg.topology.assignment_for_thread(tid);
                Vthread {
                    // Seeded start offsets break the lockstep of
                    // identical loops; the only randomness in a run.
                    vtime: rng.gen_range(0..stagger),
                    state: VState::Ready,
                    core: vc.id.0,
                    socket: vc.socket,
                    big: vc.kind == CoreKind::Big,
                    poll_charge: cfg
                        .cost
                        .poll_cost_ns(&cfg.topology, vc.kind, AtomicAffinity::Neutral)
                        .max(1),
                    last_ran: 0,
                    ops: 0,
                }
            })
            .collect();
        Arc::new(SimMachine {
            cost: cfg.cost.clone(),
            shared: Mutex::new(Shared {
                th,
                core_time: vec![0; cfg.topology.len()],
                core_last: vec![NO_THREAD; cfg.topology.len()],
                core_since: vec![0; cfg.topology.len()],
                last_holder: NO_THREAD,
                handoffs_local: 0,
                handoffs_remote: 0,
                grants: Vec::new(),
                lat_big: Vec::new(),
                lat_little: Vec::new(),
                max_wait_big: 0,
                max_wait_little: 0,
                readers_now: 0,
                readers_max: 0,
                reads: 0,
                writes: 0,
            }),
            cvs: (0..cfg.threads).map(|_| Condvar::new()).collect(),
        })
    }

    /// Scheduling key of thread `t`: when it could next execute,
    /// accounting for core occupancy and the incumbent's quantum.
    fn key(&self, sh: &Shared, t: usize) -> u64 {
        let th = &sh.th[t];
        let last = sh.core_last[th.core];
        if last == t || last == NO_THREAD {
            th.vtime.max(sh.core_time[th.core])
        } else {
            // A co-resident thread occupies the core: we become
            // eligible to *preempt* it once its quantum expires —
            // deliberately ignoring the core clock, which the
            // incumbent drags forward as it spins (otherwise a
            // spinning incumbent could never be preempted and the
            // machine would livelock). The preemptee's own `advance`
            // still starts at the core clock, so time never overlaps.
            th.vtime
                .max(sh.core_since[th.core].saturating_add(self.cost.quantum_ns))
        }
    }

    /// Charge `me` for `ns` of execution. On-core charges serialize on
    /// the core's clock and pay the switch cost when the core changes
    /// hands; off-core charges (park, sleep) advance only the thread's
    /// clock and free the core.
    fn advance(&self, sh: &mut Shared, me: usize, ns: u64, on_core: bool) {
        let ns = ns.max(1);
        let core = sh.th[me].core;
        if on_core {
            let mut start = sh.th[me].vtime.max(sh.core_time[core]);
            if sh.core_last[core] != me {
                start = start.saturating_add(self.cost.switch_ns);
                sh.core_last[core] = me;
                sh.core_since[core] = start;
            }
            let end = start + ns;
            sh.th[me].vtime = end;
            sh.th[me].last_ran = end;
            sh.core_time[core] = end;
        } else {
            if sh.core_last[core] == me {
                sh.core_last[core] = NO_THREAD;
            }
            sh.th[me].vtime += ns;
        }
    }

    /// Hand the baton to the runnable thread with the smallest key if
    /// it undercuts ours by more than the slack band; block until the
    /// baton comes back.
    fn reschedule(&self, mut sh: MutexGuard<'_, Shared>, me: usize) {
        let mut best: Option<(u64, u64, usize)> = None;
        for t in 0..sh.th.len() {
            if t != me && sh.th[t].state == VState::Ready {
                let k = (self.key(&sh, t), sh.th[t].last_ran, t);
                if best.map_or(true, |b| k < b) {
                    best = Some(k);
                }
            }
        }
        if let Some((bk, _, bt)) = best {
            if bk.saturating_add(self.cost.resched_slack_ns) < self.key(&sh, me) {
                sh.th[me].state = VState::Ready;
                sh.th[bt].state = VState::Running;
                self.cvs[bt].notify_one();
                while sh.th[me].state != VState::Running {
                    sh = self.cvs[me].wait(sh).expect("sim scheduler poisoned");
                }
            }
        }
    }

    /// One yield point: charge, maybe switch, return the new vtime.
    fn step(&self, me: usize, ns: u64, on_core: bool) -> u64 {
        let mut sh = self.shared.lock().expect("sim scheduler poisoned");
        self.advance(&mut sh, me, ns, on_core);
        let v = sh.th[me].vtime;
        self.reschedule(sh, me);
        v
    }

    fn clock(&self, me: usize) -> u64 {
        self.step(me, self.cost.clock_read_ns, true)
    }

    fn poll(&self, me: usize) {
        let charge = {
            let sh = self.shared.lock().expect("sim scheduler poisoned");
            sh.th[me].poll_charge
        };
        self.step(me, charge, true);
    }

    fn charge_work_units(&self, me: usize, units: u64) {
        // Units arrive pre-scaled by the registry multiplier
        // (execute_units), so convert straight to virtual ns.
        self.step(me, units.saturating_mul(self.cost.work_unit_ns), true);
    }

    /// Record a critical-section entry: the cache-line handoff from
    /// the previous holder (local vs remote by socket), the grant
    /// trace, and the acquire latency.
    fn note_acquire(&self, me: usize, wait_ns: u64) {
        let mut sh = self.shared.lock().expect("sim scheduler poisoned");
        let mut cost = 0;
        if sh.last_holder != NO_THREAD && sh.last_holder != me {
            if sh.th[sh.last_holder].socket == sh.th[me].socket {
                sh.handoffs_local += 1;
                cost = self.cost.handoff_local_ns;
            } else {
                sh.handoffs_remote += 1;
                cost = self.cost.handoff_remote_ns;
            }
        }
        sh.last_holder = me;
        sh.grants.push(me as u32);
        sh.th[me].ops += 1;
        if sh.th[me].big {
            sh.lat_big.push(wait_ns);
            sh.max_wait_big = sh.max_wait_big.max(wait_ns);
        } else {
            sh.lat_little.push(wait_ns);
            sh.max_wait_little = sh.max_wait_little.max(wait_ns);
        }
        if cost > 0 {
            self.advance(&mut sh, me, cost, true);
        }
        self.reschedule(sh, me);
    }

    fn note_read_enter(&self, me: usize) {
        let mut sh = self.shared.lock().expect("sim scheduler poisoned");
        sh.th[me].ops += 1;
        sh.reads += 1;
        sh.readers_now += 1;
        sh.readers_max = sh.readers_max.max(sh.readers_now);
        self.reschedule(sh, me);
    }

    fn note_read_exit(&self, me: usize) {
        let mut sh = self.shared.lock().expect("sim scheduler poisoned");
        sh.readers_now -= 1;
        self.reschedule(sh, me);
    }

    fn note_write(&self, me: usize) {
        let mut sh = self.shared.lock().expect("sim scheduler poisoned");
        sh.th[me].ops += 1;
        sh.writes += 1;
        self.reschedule(sh, me);
    }

    /// Block until the scheduler grants this thread the baton.
    fn wait_start(&self, me: usize) {
        let mut sh = self.shared.lock().expect("sim scheduler poisoned");
        while sh.th[me].state != VState::Running {
            sh = self.cvs[me].wait(sh).expect("sim scheduler poisoned");
        }
    }

    /// Release the baton for good.
    fn finish(&self, me: usize) {
        let mut sh = self.shared.lock().expect("sim scheduler poisoned");
        sh.th[me].state = VState::Done;
        let core = sh.th[me].core;
        if sh.core_last[core] == me {
            sh.core_last[core] = NO_THREAD;
        }
        let next = (0..sh.th.len())
            .filter(|&t| sh.th[t].state == VState::Ready)
            .min_by_key(|&t| (self.key(&sh, t), sh.th[t].last_ran, t));
        if let Some(n) = next {
            sh.th[n].state = VState::Running;
            self.cvs[n].notify_one();
        }
    }

    /// Debugging aid: dump the scheduler state to stderr
    /// (`ASL_SIM_DEBUG=1` enables a watchdog that calls this).
    fn dump(&self) {
        let sh = self.shared.lock().expect("sim scheduler poisoned");
        eprintln!(
            "--- sim dump: cores last={:?} time={:?} since={:?}",
            sh.core_last, sh.core_time, sh.core_since
        );
        for (t, th) in sh.th.iter().enumerate() {
            eprintln!(
                "  t{t}: {:?} vtime={} core={} key={}",
                th.state,
                th.vtime,
                th.core,
                self.key(&sh, t)
            );
        }
    }

    /// Hand the baton to the globally earliest thread (run start).
    fn begin(&self) {
        let mut sh = self.shared.lock().expect("sim scheduler poisoned");
        let first = (0..sh.th.len())
            .min_by_key(|&t| (self.key(&sh, t), sh.th[t].last_ran, t))
            .expect("at least one thread");
        sh.th[first].state = VState::Running;
        self.cvs[first].notify_one();
    }
}

/// The per-thread [`substrate::Substrate`] handle tying an OS worker
/// thread to its virtual thread.
struct VthreadHandle {
    machine: Arc<SimMachine>,
    tid: usize,
}

impl substrate::Substrate for VthreadHandle {
    fn now_ns(&self) -> u64 {
        self.machine.clock(self.tid)
    }
    fn relax(&self) {
        self.machine.poll(self.tid);
    }
    fn busy_wait_ns(&self, ns: u64) {
        self.machine.step(self.tid, ns, true);
    }
    fn sleep_ns(&self, ns: u64) {
        self.machine.step(self.tid, ns, false);
    }
    fn park(&self) {
        let park = self.machine.cost.park_ns;
        self.machine.step(self.tid, park, false);
    }
    fn charge_work_units(&self, units: u64) {
        self.machine.charge_work_units(self.tid, units);
    }
}

/// Deterministic per-(thread, iteration) coin for read/write mixes.
fn splitmix(tid: u64, iter: u64) -> u64 {
    let mut z = tid
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(iter)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn with_vthread(
    machine: &Arc<SimMachine>,
    cfg: &ZooConfig,
    tid: usize,
    body: impl FnOnce(&Arc<SimMachine>),
) {
    let vc = cfg.topology.assignment_for_thread(tid);
    registry::register_on_core(&cfg.topology, vc.id);
    let handle: Arc<dyn substrate::Substrate> = Arc::new(VthreadHandle {
        machine: machine.clone(),
        tid,
    });
    // Fault schedules decorate the vthread handle, never stack on it:
    // the injector *is* the installed substrate (install refuses
    // stacking), delegating every charge to the machine.
    let handle: Arc<dyn substrate::Substrate> = match &cfg.fault {
        Some(state) => Arc::new(asl_runtime::fault::FaultInjector::wrapping(
            state.clone(),
            handle,
        )),
        None => handle,
    };
    let _sub = substrate::install(handle);
    machine.wait_start(tid);
    asl_core::epoch::reset_thread_epochs();
    body(machine);
    machine.finish(tid);
    registry::unregister();
}

/// Run an arbitrary per-thread body on the modeled machine: the
/// custom-workload escape hatch behind the torture harness.
///
/// Each closure call runs as virtual thread `tid` with the substrate
/// installed (and the fault injector, when [`ZooConfig::fault`] is
/// set), so everything inside — lock calls, clock reads, emulated
/// work — executes in deterministic virtual time. Unlike
/// [`run_lock`], the body decides its own loop/termination (the
/// duration field is ignored); it must not panic (a vthread that
/// unwinds strands the baton — catch panics inside the body).
///
/// Returns the machine's final virtual time (max over threads).
pub fn run_threads<F>(cfg: &ZooConfig, body: F) -> u64
where
    F: Fn(usize) + Send + Sync,
{
    let machine = SimMachine::new(cfg);
    std::thread::scope(|s| {
        let body = &body;
        for tid in 0..cfg.threads {
            let machine = machine.clone();
            s.spawn(move || {
                with_vthread(&machine, cfg, tid, |_m| body(tid));
            });
        }
        machine.begin();
    });
    let sh = machine.shared.lock().expect("sim scheduler poisoned");
    sh.th.iter().map(|t| t.vtime).max().unwrap_or(0)
}

/// Run the standard contended-counter workload on `lock`: `threads`
/// virtual threads cycling NCS → acquire → CS → release until
/// `duration_ns` of virtual time has passed.
///
/// Fully deterministic: the same config and lock type produce the
/// same [`ZooResult`], grant trace included.
///
/// ```
/// use std::sync::Arc;
/// use asl_runtime::Topology;
/// use asl_sim::exec::{run_lock, ZooConfig};
///
/// let cfg = ZooConfig::quick(Topology::apple_m1(), 4, 11);
/// let a = run_lock(&cfg, Arc::new(asl_locks::McsLock::new()));
/// let b = run_lock(&cfg, Arc::new(asl_locks::McsLock::new()));
/// assert!(a.total_ops > 0);
/// assert_eq!(a.grants, b.grants); // same seed ⇒ identical schedule
/// ```
pub fn run_lock(cfg: &ZooConfig, lock: Arc<dyn PlainLock>) -> ZooResult {
    let machine = SimMachine::new(cfg);
    if std::env::var_os("ASL_SIM_DEBUG").is_some() {
        let watchdog = machine.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_secs(3));
            watchdog.dump();
        });
    }
    std::thread::scope(|s| {
        for tid in 0..cfg.threads {
            let machine = machine.clone();
            let lock = lock.clone();
            s.spawn(move || {
                with_vthread(&machine, cfg, tid, |m| loop {
                    if m.clock(tid) >= cfg.duration_ns {
                        break;
                    }
                    if let Some(slo) = cfg.slo_ns {
                        asl_core::epoch::epoch_start(SIM_EPOCH_ID);
                        let t0 = m.clock(tid);
                        let token = lock.acquire();
                        let t1 = m.clock(tid);
                        m.note_acquire(tid, t1.saturating_sub(t0));
                        asl_runtime::work::execute_units(cfg.cs_units);
                        lock.release(token);
                        asl_core::epoch::epoch_end(SIM_EPOCH_ID, slo);
                    } else {
                        let t0 = m.clock(tid);
                        let token = lock.acquire();
                        let t1 = m.clock(tid);
                        m.note_acquire(tid, t1.saturating_sub(t0));
                        asl_runtime::work::execute_units(cfg.cs_units);
                        lock.release(token);
                    }
                    asl_runtime::work::execute_units(cfg.ncs_units);
                });
            });
        }
        machine.begin();
    });
    zoo_result(cfg, &machine)
}

/// Like [`run_lock`] for reader-writer locks: each operation is a
/// write with probability `write_pct`% (deterministic per thread and
/// iteration), otherwise a read. Reader overlap is tracked exactly in
/// virtual time.
pub fn run_rw(cfg: &ZooConfig, lock: Arc<dyn PlainRwLock>, write_pct: u32) -> ZooRwResult {
    let machine = SimMachine::new(cfg);
    std::thread::scope(|s| {
        for tid in 0..cfg.threads {
            let machine = machine.clone();
            let lock = lock.clone();
            s.spawn(move || {
                with_vthread(&machine, cfg, tid, |m| {
                    let mut iter = 0u64;
                    loop {
                        if m.clock(tid) >= cfg.duration_ns {
                            break;
                        }
                        if splitmix(tid as u64, iter) % 100 < u64::from(write_pct) {
                            let token = lock.acquire_write();
                            m.note_write(tid);
                            asl_runtime::work::execute_units(cfg.cs_units);
                            lock.release_write(token);
                        } else {
                            let token = lock.acquire_read();
                            m.note_read_enter(tid);
                            asl_runtime::work::execute_units(cfg.cs_units);
                            m.note_read_exit(tid);
                            lock.release_read(token);
                        }
                        asl_runtime::work::execute_units(cfg.ncs_units);
                        iter += 1;
                    }
                });
            });
        }
        machine.begin();
    });
    let sh = machine.shared.lock().expect("sim scheduler poisoned");
    let per_thread_ops: Vec<u64> = sh.th.iter().map(|t| t.ops).collect();
    let total = sh.reads + sh.writes;
    ZooRwResult {
        total_reads: sh.reads,
        total_writes: sh.writes,
        per_thread_ops,
        max_concurrent_readers: sh.readers_max,
        throughput: total as f64 / (cfg.duration_ns as f64 / 1e9),
        virtual_ns: sh.th.iter().map(|t| t.vtime).max().unwrap_or(0),
    }
}

fn zoo_result(cfg: &ZooConfig, machine: &SimMachine) -> ZooResult {
    let mut sh = machine.shared.lock().expect("sim scheduler poisoned");
    let per_thread_ops: Vec<u64> = sh.th.iter().map(|t| t.ops).collect();
    let thread_is_big: Vec<bool> = sh.th.iter().map(|t| t.big).collect();
    let big_ops: u64 = per_thread_ops
        .iter()
        .zip(&thread_is_big)
        .filter(|(_, &b)| b)
        .map(|(o, _)| o)
        .sum();
    let total_ops: u64 = per_thread_ops.iter().sum();

    // Longest run of consecutive grants within one class.
    let mut max_batch = 0u64;
    let mut run = 0u64;
    let mut run_class: Option<bool> = None;
    for &g in &sh.grants {
        let class = thread_is_big[g as usize];
        if run_class == Some(class) {
            run += 1;
        } else {
            run_class = Some(class);
            run = 1;
        }
        max_batch = max_batch.max(run);
    }

    let virtual_ns = sh.th.iter().map(|t| t.vtime).max().unwrap_or(0);
    let mut overall: Vec<u64> = sh
        .lat_big
        .iter()
        .chain(sh.lat_little.iter())
        .copied()
        .collect();
    let p99_overall = percentile(&mut overall, 99.0);
    let grants = std::mem::take(&mut sh.grants);
    ZooResult {
        total_ops,
        big_ops,
        little_ops: total_ops - big_ops,
        per_thread_ops,
        thread_is_big,
        throughput: total_ops as f64 / (cfg.duration_ns as f64 / 1e9),
        p50_big: percentile(&mut sh.lat_big, 50.0),
        p99_big: percentile(&mut sh.lat_big, 99.0),
        p50_little: percentile(&mut sh.lat_little, 50.0),
        p99_little: percentile(&mut sh.lat_little, 99.0),
        p99_overall,
        max_wait_big: sh.max_wait_big,
        max_wait_little: sh.max_wait_little,
        handoffs_local: sh.handoffs_local,
        handoffs_remote: sh.handoffs_remote,
        grants,
        max_class_batch: max_batch,
        virtual_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_cost_is_socket_aware() {
        let cost = CostModel::default();
        let numa = Topology::numa(4, 16);
        // Same socket: local; different socket: remote, ~10x.
        assert_eq!(
            cost.handoff_ns(&numa, CoreId(0), CoreId(15)),
            cost.handoff_local_ns
        );
        assert_eq!(
            cost.handoff_ns(&numa, CoreId(0), CoreId(16)),
            cost.handoff_remote_ns
        );
        assert!(cost.handoff_remote_ns > cost.handoff_local_ns);
    }

    #[test]
    fn little_core_work_stretches_by_perf_ratio() {
        let cost = CostModel::default();
        let amp = Topology::custom(4, 4, 3.0);
        let big = cost.work_ns(&amp, CoreKind::Big, 1_000);
        let little = cost.work_ns(&amp, CoreKind::Little, 1_000);
        assert_eq!(big, 1_000 * cost.work_unit_ns);
        assert_eq!(little, 3 * big);
    }

    #[test]
    fn poll_cost_reflects_atomic_model() {
        let cost = CostModel::default();
        let amp = Topology::custom(4, 4, 2.0);
        let neutral_big = cost.poll_cost_ns(&amp, CoreKind::Big, AtomicAffinity::Neutral);
        let neutral_little = cost.poll_cost_ns(&amp, CoreKind::Little, AtomicAffinity::Neutral);
        // Little polls are stretched by the perf ratio.
        assert_eq!(neutral_little, 2 * neutral_big);
        // When little cores win the atomic race, big cores pay the
        // post-fail penalty on every probe.
        let little_wins = AtomicAffinity::little_wins();
        let punished_big = cost.poll_cost_ns(&amp, CoreKind::Big, little_wins);
        assert!(punished_big > neutral_big);
        assert_eq!(
            punished_big - neutral_big,
            little_wins.post_fail_penalty(CoreKind::Big) * cost.work_unit_ns
        );
    }

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix(3, 17), splitmix(3, 17));
        assert_ne!(splitmix(3, 17), splitmix(3, 18));
    }
}
