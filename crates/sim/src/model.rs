//! Simulation configuration and lock policy models.

use asl_runtime::topology::{CoreKind, Topology};

pub use asl_dbsim::arrival::ArrivalProcess;

/// Which lock policy the simulated threads compete under.
#[derive(Debug, Clone, PartialEq)]
pub enum SimLockKind {
    /// Strict arrival-order handover (MCS / ticket).
    Fifo,
    /// Unfair atomic race: on release, one waiter wins a weighted
    /// lottery; the weights model the asymmetric TAS success rate.
    TasAffinity {
        /// Relative win weight of big-core waiters.
        big_weight: f64,
        /// Relative win weight of little-core waiters.
        little_weight: f64,
    },
    /// Two class queues; `n` big grants per little grant (SHFL-PB).
    Proportional {
        /// Big grants per little grant.
        n: u32,
    },
    /// NUMA-style class batching (CNA / cohort / Malthusian family):
    /// up to `batch` consecutive grants stay within the holder's core
    /// class, then the other class gets its turn — the long-term
    /// fairness §2.2 blames for the AMP throughput collapse.
    ClassBatched {
        /// Maximum consecutive same-class grants.
        batch: u32,
    },
    /// The LibASL reorderable model: big threads enqueue immediately,
    /// little threads stand by for their reorder window.
    Reorderable {
        /// Drive windows with the Algorithm-2 SLO feedback (requires
        /// [`SimConfig::slo_ns`]); otherwise use `static_window_ns`.
        feedback: bool,
        /// Fixed window when `feedback` is false (`None` = 100 ms).
        static_window_ns: Option<u64>,
    },
}

/// One simulated experiment.
///
/// The machine is the same [`Topology`] real-thread runs use
/// ([`Topology::apple_m1`], [`Topology::custom`], [`Topology::numa`],
/// … are all valid sim presets); threads bind to cores via
/// [`Topology::assignment_for_thread`], exactly like
/// `run_on_topology`.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The modeled machine (core classes, per-class slowdown).
    pub topology: Topology,
    /// Threads (bound big-cores-first; ≤ topology cores).
    pub threads: usize,
    /// Big-core critical-section duration (ns).
    pub cs_ns: u64,
    /// Big-core non-critical-section duration (ns).
    pub ncs_ns: u64,
    /// Simulated run length (ns).
    pub duration_ns: u64,
    /// Lock policy.
    pub lock: SimLockKind,
    /// Epoch SLO for the feedback model (ns).
    pub slo_ns: Option<u64>,
    /// RNG seed (jitter and TAS lotteries).
    pub seed: u64,
    /// Relative duration jitter in `[0, 1)` (0 = fully deterministic
    /// durations; a little jitter avoids degenerate lockstep).
    pub jitter: f64,
    /// Shape of each thread's think time between release and the next
    /// arrival (shared with the KV service's open-loop generator).
    /// [`ArrivalProcess::Fixed`] keeps the classic jittered-constant
    /// NCS; `Poisson`/`Burst` draw gaps with mean `ncs_ns × mult`
    /// (jitter then only applies to critical sections).
    pub arrival: ArrivalProcess,
}

impl SimConfig {
    /// Duration multiplier of thread `tid` under the topology's
    /// big-cores-first binding.
    pub fn multiplier(&self, tid: usize) -> f64 {
        let vc = self.topology.assignment_for_thread(tid);
        self.topology.work_multiplier(vc.kind)
    }

    /// Whether thread `tid` runs on a big core.
    pub fn is_big(&self, tid: usize) -> bool {
        self.topology.assignment_for_thread(tid).kind == CoreKind::Big
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_big_first() {
        let cfg = SimConfig {
            topology: Topology::custom(4, 4, 3.0),
            threads: 8,
            cs_ns: 1,
            ncs_ns: 1,
            duration_ns: 1,
            lock: SimLockKind::Fifo,
            slo_ns: None,
            seed: 0,
            jitter: 0.0,
            arrival: ArrivalProcess::Fixed,
        };
        assert!(cfg.is_big(0));
        assert!(cfg.is_big(3));
        assert!(!cfg.is_big(4));
        assert!(!cfg.is_big(7));
        assert_eq!(cfg.multiplier(5), 3.0);
        assert_eq!(cfg.multiplier(2), 1.0);
    }
}
