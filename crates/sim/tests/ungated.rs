//! Exact, always-on versions of assertions the real-thread suites can
//! only make conditionally.
//!
//! Two tier-1 properties used to hide behind
//! `affinity::oversubscribed()` gates, because on a small CI host the
//! OS scheduler can preempt a waiter (blowing the starvation bound) or
//! serialize readers (hiding their overlap). On the simulated machine
//! parallelism is a modeling fact, not an OS accident, so both
//! properties are asserted *exactly* and unconditionally here:
//!
//! * `crates/locks/tests/rw_api.rs` — read-side overlap of a
//!   reader-writer lock.
//! * `tests/integration_asl.rs` — the reorder-window starvation bound
//!   of the LibASL lock.

use std::sync::Arc;

use asl_core::{config, AslSpinLock};
use asl_locks::RwTicketLock;
use asl_runtime::Topology;
use asl_sim::exec::{run_lock, run_rw, ZooConfig};

/// A parallel read-only run overlaps its readers — exactly, in
/// virtual time, regardless of how many CPUs the host has.
///
/// Replaces the `!oversubscribed() && write_pct == 0` gate in
/// `rw_api.rs`, which could only ever claim `max_readers >= 2` on a
/// big-enough machine.
#[test]
fn read_only_run_overlaps_readers_exactly() {
    let mut cfg = ZooConfig::quick(Topology::symmetric(4), 4, 42);
    // Long read sections, short think time: readers spend most of
    // their virtual life inside the lock.
    cfg.cs_units = 5_000;
    cfg.ncs_units = 500;
    let r = run_rw(&cfg, Arc::new(RwTicketLock::new()), 0);
    assert_eq!(r.total_writes, 0);
    assert!(r.total_reads > 0);
    assert!(
        r.max_concurrent_readers >= 2,
        "read-only run must overlap readers, saw {}",
        r.max_concurrent_readers
    );
    // The sim makes the stronger exact claim: with 10:1 read sections
    // all four readers pile up.
    assert_eq!(
        r.max_concurrent_readers, 4,
        "all four readers should overlap in virtual time"
    );
    // And the whole thing is reproducible, not a lucky interleaving.
    let again = run_rw(&cfg, Arc::new(RwTicketLock::new()), 0);
    assert_eq!(r, again);
}

/// A write-heavy run never exceeds the reader overlap of the
/// read-only run, and writers actually execute.
#[test]
fn writers_limit_reader_overlap() {
    let mut cfg = ZooConfig::quick(Topology::symmetric(4), 4, 42);
    cfg.cs_units = 5_000;
    cfg.ncs_units = 500;
    let mixed = run_rw(&cfg, Arc::new(RwTicketLock::new()), 50);
    assert!(mixed.total_writes > 0 && mixed.total_reads > 0);
    assert!(mixed.max_concurrent_readers <= 4);
}

/// The LibASL starvation bound, exactly: a little-core thread's worst
/// acquire latency stays within its reorder window plus queue-drain
/// slack, under constant big-core pressure.
///
/// Replaces the `!oversubscribed(8)` gate in `integration_asl.rs`:
/// there, a preempted waiter can sit out arbitrarily many OS quanta,
/// so the wall-clock bound only holds on a big machine. Virtual time
/// has no such accidents — the bound is tight and unconditional.
#[test]
fn reorderable_starvation_bound_holds_exactly() {
    let prev = config::current().max_window_ns;
    // 200 µs window against a 2 ms run: small enough that a starved
    // standby would blow the bound many times over.
    config::set_max_window_ns(200_000);
    let mut cfg = ZooConfig::quick(Topology::custom(4, 4, 3.0), 8, 42);
    cfg.duration_ns = 2_000_000;
    cfg.cs_units = 300;
    cfg.ncs_units = 300;
    let r = run_lock(&cfg, Arc::new(AslSpinLock::default()));
    config::set_max_window_ns(prev);

    assert!(r.little_ops > 0, "little cores acquired at least once");
    // Bound: the 200 µs reorder window, plus draining a full FIFO
    // queue of 8 threads' critical sections (ratio-3 stretch, handoff
    // and preemption charges included) — comfortably under 3x the
    // window on this machine, and *exact*: same seed, same worst wait.
    assert!(
        r.max_wait_little < 600_000,
        "worst little-core wait {}ns exceeds the starvation bound",
        r.max_wait_little
    );
}
