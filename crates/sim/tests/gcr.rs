//! GCR admission control on the simulated machine: exact,
//! deterministic proofs of the wrapper's invariants in virtual time.
//!
//! The unit tests in `asl-locks` stress the same properties under
//! real threads, where the scheduler decides what interleavings
//! happen. Here the cooperative virtual-time engine decides, so the
//! claims are exact and reproducible bit-for-bit:
//!
//! * **admitted-set bound** — `peak_active() <= K` when no forced
//!   reintroduction fires (and `K + 1` ever, by construction);
//! * **no lost wakeups** — even at `K = 1` with every passive wait
//!   going through the park/grant protocol, every thread keeps
//!   completing ops (a lost wakeup would show up as a thread stuck
//!   passive for the whole run);
//! * **bounded passive starvation** — with a small reintroduction
//!   period every thread completes work; with reintroduction
//!   effectively disabled the passive LIFO is allowed to starve the
//!   oldest waiters, which the contrast run documents.

use std::sync::Arc;

use asl_locks::gcr::{GcrConfig, GcrPlain};
use asl_locks::McsLock;
use asl_runtime::Topology;
use asl_sim::exec::{run_lock, ZooConfig};

/// 12 virtual threads on the 8-core model: oversubscribed, the
/// regime GCR exists for.
const THREADS: usize = 12;

fn cfg(threads: usize) -> ZooConfig {
    ZooConfig::quick(Topology::apple_m1(), threads, 42)
}

fn gcr(limit: u32, reintroduce_period: u32) -> Arc<GcrPlain> {
    Arc::new(GcrPlain::with_config(
        Arc::new(McsLock::new()),
        GcrConfig {
            reintroduce_period,
            ..GcrConfig::fixed(limit)
        },
    ))
}

/// The admitted set never exceeds `K` when reintroduction is
/// disabled (period longer than any run): every admission goes
/// through a bounded CAS, so the peak is exact, and the whole result
/// is deterministic.
#[test]
fn admitted_set_bound_holds_exactly_in_virtual_time() {
    let lock = gcr(3, u32::MAX);
    let a = run_lock(&cfg(THREADS), lock.clone());
    assert!(a.total_ops > 0, "no progress under restriction");
    assert_eq!(
        a.total_ops,
        a.per_thread_ops.iter().sum::<u64>(),
        "per-thread counts out of sync"
    );
    assert!(
        lock.peak_active() <= 3,
        "admitted set exceeded K=3: peak={}",
        lock.peak_active()
    );
    assert_eq!(lock.reintroduced(), 0, "period was disabled");
    assert_eq!(lock.active(), 0, "admissions leaked past the run");
    assert_eq!(lock.passive_len(), 0, "passive waiters leaked");

    // Bit-for-bit determinism: same seed, same grant trace.
    let again = gcr(3, u32::MAX);
    let b = run_lock(&cfg(THREADS), again.clone());
    assert_eq!(a, b, "same seed must reproduce the full result");
    assert_eq!(lock.peak_active(), again.peak_active());
}

/// With a small reintroduction period the passive set cannot starve:
/// every one of the 12 threads (on 8 cores, K = 3) completes ops
/// inside the bounded virtual window. With reintroduction disabled
/// the LIFO keeps recent threads circulating — the fairness pulse is
/// load-bearing, not decorative.
#[test]
fn reintroduction_bounds_passive_starvation() {
    let fair = gcr(3, 8);
    let r = run_lock(&cfg(THREADS), fair.clone());
    assert!(
        fair.reintroduced() > 0,
        "the small period must actually pulse"
    );
    for (tid, &ops) in r.per_thread_ops.iter().enumerate() {
        assert!(
            ops > 0,
            "thread {tid} starved despite reintroduction: {:?}",
            r.per_thread_ops
        );
    }
    // K+1 is the hard ceiling once forced admissions run.
    assert!(
        fair.peak_active() <= 4,
        "K+1 bound violated: peak={}",
        fair.peak_active()
    );

    // Determinism of the fair run too.
    let again = gcr(3, 8);
    let r2 = run_lock(&cfg(THREADS), again);
    assert_eq!(r, r2, "same seed must reproduce the fair run");
}

/// The K = 1 torture case: every admission but one goes through the
/// full publish/park/grant protocol, so a single lost wakeup stalls
/// a thread for the whole run. All threads completing ops proves the
/// Dekker publish/check and the slot-transfer wake protocol leave no
/// window.
#[test]
fn no_lost_wakeups_at_k1() {
    let lock = gcr(1, 4);
    let r = run_lock(&cfg(8), lock.clone());
    assert!(r.total_ops > 0);
    assert_eq!(r.total_ops, r.per_thread_ops.iter().sum::<u64>());
    for (tid, &ops) in r.per_thread_ops.iter().enumerate() {
        assert!(
            ops > 0,
            "thread {tid} never ran at K=1: {:?} (lost wakeup?)",
            r.per_thread_ops
        );
    }
    assert_eq!(lock.peak_active().max(1), lock.peak_active());
    assert!(lock.peak_active() <= 2, "K+1 bound at K=1");
    assert_eq!(lock.active(), 0);
    assert_eq!(lock.passive_len(), 0);

    let again = gcr(1, 4);
    let r2 = run_lock(&cfg(8), again);
    assert_eq!(r, r2, "same seed must reproduce");
}
