//! The real lock zoo on the simulated machine.
//!
//! Every test here runs *unmodified* `asl-locks`/`asl-core` lock
//! implementations through the cooperative virtual-time engine
//! ([`asl_sim::exec`]) and asserts exact, deterministic properties —
//! no wall-clock noise, no `oversubscribed()` gates.

use std::sync::Arc;

use asl_core::AslSpinLock;
use asl_locks::plain::PlainLock;
use asl_locks::{
    Adaptive, BackoffLock, ClhLock, CnaLock, CohortLock, MalthusianLock, McsLock, McsStpLock,
    PthreadMutex, TasLock, TicketLock,
};
use asl_runtime::Topology;
use asl_sim::exec::{run_lock, ZooConfig};

fn quick(topology: Topology, threads: usize) -> ZooConfig {
    ZooConfig::quick(topology, threads, 42)
}

/// Every lock in the zoo runs unmodified on the modeled machine and
/// makes progress in virtual time.
#[test]
fn whole_zoo_runs_on_the_simulated_machine() {
    let zoo: Vec<(&str, Arc<dyn PlainLock>)> = vec![
        ("tas", Arc::new(TasLock::new())),
        ("ticket", Arc::new(TicketLock::new())),
        ("mcs", Arc::new(McsLock::new())),
        ("clh", Arc::new(ClhLock::new())),
        ("backoff", Arc::new(BackoffLock::new())),
        ("cna", Arc::new(CnaLock::new())),
        ("cohort", Arc::new(CohortLock::new())),
        ("malthusian", Arc::new(MalthusianLock::new())),
        ("adaptive", Arc::new(Adaptive::new())),
        ("pthread", Arc::new(PthreadMutex::new())),
        ("mcs-stp", Arc::new(McsStpLock::new())),
        ("libasl-spin", Arc::new(AslSpinLock::default())),
    ];
    assert!(zoo.len() >= 8, "acceptance floor: eight zoo locks");
    for (name, lock) in zoo {
        let r = run_lock(&quick(Topology::apple_m1(), 4), lock);
        assert!(r.total_ops > 0, "{name}: no progress in virtual time");
        assert_eq!(
            r.total_ops,
            r.grants.len() as u64,
            "{name}: grant trace out of sync"
        );
        assert_eq!(
            r.total_ops,
            r.per_thread_ops.iter().sum::<u64>(),
            "{name}: per-thread counts out of sync"
        );
        assert!(
            r.virtual_ns >= 300_000,
            "{name}: virtual clock stopped early"
        );
    }
}

/// Same seed ⇒ the entire result — grant-by-grant — is identical.
#[test]
fn same_seed_identical_trace_different_seed_differs() {
    let cfg = quick(Topology::apple_m1(), 6);
    let a = run_lock(&cfg, Arc::new(CnaLock::new()));
    let b = run_lock(&cfg, Arc::new(CnaLock::new()));
    assert_eq!(a, b, "same seed must reproduce the full result");

    let mut other = cfg.clone();
    other.seed = 43;
    let c = run_lock(&other, Arc::new(CnaLock::new()));
    assert_ne!(a.grants, c.grants, "different seed must change the trace");
}

/// Paper §2.2 NUMA comparators: on a two-socket machine whose classes
/// coincide with sockets, CNA and the cohort lock batch consecutive
/// grants within a socket, cutting cross-socket cache-line transfers
/// that FIFO MCS pays on nearly every handoff. All counts are exact.
#[test]
fn cna_and_cohort_batch_within_sockets_on_numa() {
    // numa(2, 8): socket 0 = the Big class, socket 1 = Little, so
    // class-aware batching is exactly socket-aware batching.
    let cfg = || {
        let mut c = quick(Topology::numa(2, 8), 16);
        c.duration_ns = 600_000;
        c
    };
    let mcs = run_lock(&cfg(), Arc::new(McsLock::new()));
    let cna = run_lock(&cfg(), Arc::new(CnaLock::new()));
    let cohort = run_lock(&cfg(), Arc::new(CohortLock::new()));

    assert!(mcs.total_ops > 0 && cna.total_ops > 0 && cohort.total_ops > 0);
    for (name, r) in [("cna", &cna), ("cohort", &cohort)] {
        assert!(
            r.max_class_batch > mcs.max_class_batch,
            "{name}: batch {} not larger than MCS {}",
            r.max_class_batch,
            mcs.max_class_batch
        );
        assert!(
            r.remote_fraction() < mcs.remote_fraction(),
            "{name}: remote fraction {:.2} not below MCS {:.2}",
            r.remote_fraction(),
            mcs.remote_fraction()
        );
    }
    // Long-term fairness is preserved: both classes keep progressing.
    assert!(cna.big_ops > 0 && cna.little_ops > 0);
    assert!(cohort.big_ops > 0 && cohort.little_ops > 0);
}

/// Satellite: the cost model, observed end to end through the engine.
/// A machine with a single socket never pays a remote handoff.
#[test]
fn single_socket_machine_has_no_remote_handoffs() {
    let r = run_lock(&quick(Topology::symmetric(4), 4), Arc::new(McsLock::new()));
    assert_eq!(r.handoffs_remote, 0, "one socket cannot go remote");
    assert!(r.handoffs_local > 0, "handoffs must still be charged");
}

/// Satellite: little-core critical sections stretch by `perf_ratio`,
/// so on a 1-big/1-little machine the big thread completes a
/// decisive multiple of the little thread's operations.
#[test]
fn little_core_slowdown_stretches_critical_sections() {
    let mut cfg = quick(Topology::custom(1, 1, 3.0), 2);
    cfg.duration_ns = 600_000;
    let r = run_lock(&cfg, Arc::new(TicketLock::new()));
    let (big, little) = (r.per_thread_ops[0], r.per_thread_ops[1]);
    assert!(r.thread_is_big[0] && !r.thread_is_big[1]);
    assert!(little > 0, "little thread must not starve under FIFO");
    // FIFO handover couples the two threads (the big core waits out
    // the little core's stretched CS), so the ops ratio lands between
    // 1 and the raw perf ratio.
    assert!(
        big * 2 >= little * 3,
        "ratio-3 slowdown: big {big} ops vs little {little} ops"
    );
}

/// Oversubscription: parked virtual threads free their core, so a
/// spin-then-park lock outruns a pure spinlock once threads outnumber
/// cores — the classic reason blocking locks exist.
#[test]
fn parking_beats_spinning_when_oversubscribed() {
    // 4 cores, 12 threads: every core is 3x oversubscribed.
    let cfg = || {
        let mut c = quick(Topology::custom(2, 2, 1.0), 12);
        c.duration_ns = 1_000_000;
        c
    };
    let spin = run_lock(&cfg(), Arc::new(McsLock::new()));
    let park = run_lock(&cfg(), Arc::new(McsStpLock::new()));
    assert!(
        park.total_ops > spin.total_ops,
        "parking {} ops must beat spinning {} ops at 3x oversubscription",
        park.total_ops,
        spin.total_ops
    );
}

/// The full LibASL stack — epochs, Algorithm-2 window feedback, the
/// reorderable queue — ticks in virtual time and stays deterministic.
#[test]
fn libasl_slo_feedback_runs_in_virtual_time() {
    let mut cfg = quick(Topology::custom(2, 2, 3.0), 4);
    cfg.duration_ns = 600_000;
    cfg.slo_ns = Some(50_000);
    let a = run_lock(&cfg, Arc::new(AslSpinLock::default()));
    let b = run_lock(&cfg, Arc::new(AslSpinLock::default()));
    assert!(a.total_ops > 0);
    assert!(
        a.big_ops > 0 && a.little_ops > 0,
        "both classes must progress under an achievable SLO"
    );
    assert_eq!(a, b, "SLO feedback must be deterministic in virtual time");
}
