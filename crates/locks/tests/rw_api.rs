//! Reader-writer API invariants, proptest-driven across every rw
//! substrate:
//!
//! * readers never overlap a writer; writers are mutually exclusive;
//! * `try_read`/`try_write` guards release on drop;
//! * a panic inside a read section releases without poisoning;
//! * (debug builds) cross-lock release — and cross-*mode* release —
//!   is caught by the token ownership tags.
//!
//! Concurrency assertions are scheduling-independent (pure mutual
//! exclusion); the reader-overlap observation, which needs real
//! parallelism, is gated on `affinity::oversubscribed`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use asl_locks::api::{DynRwLock, DynRwMutex, GuardedRwLock, RwLock};
use asl_locks::plain::PlainRwLock;
use asl_locks::{Bravo, McsLock, RwTicketLock, TasLock, TicketLock};
use proptest::prelude::*;

/// Hammer `lock` from several threads with a read-mostly mix and
/// assert the rwlock invariant inside every critical section:
/// a held writer implies no other holder at all.
fn check_invariants(
    lock: Arc<dyn PlainRwLock>,
    threads: u64,
    iters: u64,
    write_pct: u64,
    seed: u64,
) {
    let readers = Arc::new(AtomicU32::new(0));
    let writers = Arc::new(AtomicU32::new(0));
    let max_readers = Arc::new(AtomicU32::new(0));
    let mut handles = vec![];
    for t in 0..threads {
        let lock = lock.clone();
        let readers = readers.clone();
        let writers = writers.clone();
        let max_readers = max_readers.clone();
        handles.push(std::thread::spawn(move || {
            // Cheap xorshift so the schedule depends on the proptest
            // inputs but needs no RNG plumbing.
            let mut x = seed ^ (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for _ in 0..iters {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 100 < write_pct {
                    let tok = lock.acquire_write();
                    let w = writers.fetch_add(1, Ordering::SeqCst);
                    let r = readers.load(Ordering::SeqCst);
                    assert_eq!(w, 0, "two writers in the critical section");
                    assert_eq!(r, 0, "reader overlaps a writer");
                    writers.fetch_sub(1, Ordering::SeqCst);
                    lock.release_write(tok);
                } else {
                    let tok = lock.acquire_read();
                    let r = readers.fetch_add(1, Ordering::SeqCst) + 1;
                    let w = writers.load(Ordering::SeqCst);
                    assert_eq!(w, 0, "writer overlaps a reader");
                    max_readers.fetch_max(r, Ordering::SeqCst);
                    readers.fetch_sub(1, Ordering::SeqCst);
                    lock.release_read(tok);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(!lock.held(), "all tokens released");
    // Reader *overlap* is a scheduling property, not a correctness
    // one, and on a small host the OS may serialize readers. The
    // exact, ungated version of that assertion lives in the simulator
    // (`crates/sim/tests/ungated.rs`,
    // `read_only_run_overlaps_readers_exactly`), where parallelism is
    // a modeling fact.
}

fn substrates() -> Vec<(&'static str, Arc<dyn PlainRwLock>)> {
    vec![
        ("rw-ticket", Arc::new(RwTicketLock::new())),
        ("bravo-mcs", Arc::new(Bravo::new(McsLock::new()))),
        ("bravo-tas", Arc::new(Bravo::new(TasLock::new()))),
        ("bravo-ticket", Arc::new(Bravo::new(TicketLock::new()))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Readers never overlap a writer and writers are exclusive, for
    /// every substrate, across randomized schedules and mixes.
    #[test]
    fn rw_mutual_exclusion_invariants(
        seed in 0u64..1_000_000,
        write_pct in 0u64..60,
        iters in 200u64..600,
    ) {
        for (name, lock) in substrates() {
            let _ = name;
            check_invariants(lock, 3, iters, write_pct, seed);
        }
    }
}

#[test]
fn try_guards_release_on_drop() {
    for (name, lock) in substrates() {
        let lock = DynRwLock::new(lock);
        {
            let r = lock
                .try_read()
                .unwrap_or_else(|| panic!("{name}: free try_read"));
            assert!(
                lock.try_write().is_none(),
                "{name}: reader blocks try_write"
            );
            drop(r);
        }
        {
            let w = lock
                .try_write()
                .unwrap_or_else(|| panic!("{name}: free try_write"));
            assert!(lock.try_read().is_none(), "{name}: writer blocks try_read");
            assert!(
                lock.try_write().is_none(),
                "{name}: writer blocks try_write"
            );
            drop(w);
        }
        assert!(!lock.is_locked(), "{name}: try guards released on drop");
    }
}

#[test]
fn panic_in_read_section_releases_without_poisoning() {
    let m = Arc::new(DynRwMutex::new(
        DynRwLock::of(RwTicketLock::new()),
        vec![1u64],
    ));
    let m2 = m.clone();
    let joined = std::thread::spawn(move || {
        let g = m2.read();
        assert_eq!(g[0], 1);
        panic!("unwind with a read guard held");
    })
    .join();
    assert!(joined.is_err());
    // No poisoning: both modes acquire normally afterwards.
    assert!(!m.is_locked());
    m.write().push(2);
    assert_eq!(&*m.read(), &[1, 2]);
}

#[test]
fn panic_in_write_section_releases_static_rwlock() {
    let m = Arc::new(RwLock::<u64, RwTicketLock>::new(0));
    let m2 = m.clone();
    let joined = std::thread::spawn(move || {
        *m2.write() += 1;
        panic!("unwind with a write guard held");
    })
    .join();
    assert!(joined.is_err());
    assert!(!m.is_locked());
    assert_eq!(*m.read(), 1);
}

#[test]
fn raw_rw_guards_compose_over_every_substrate() {
    fn roundtrip<L: asl_locks::RawRwLock>(lock: L) {
        {
            let _r = lock.read_guard();
            let _r2 = lock
                .try_read_guard()
                .expect("reads overlap or serialize, never fail free");
            assert!(lock.try_write_guard().is_none());
        }
        {
            let _w = lock.write_guard();
            assert!(lock.try_read_guard().is_none());
        }
        assert!(!lock.is_locked());
    }
    roundtrip(RwTicketLock::new());
    roundtrip(Bravo::new(McsLock::new()));
    roundtrip(Bravo::new(TicketLock::new()));
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "did not issue")]
fn cross_lock_release_is_caught_in_debug_builds() {
    let a = RwTicketLock::new();
    let b = RwTicketLock::new();
    let t = a.acquire_read();
    b.release_read(t); // ownership check fires before any state damage
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "read token released through the write path")]
fn cross_mode_release_is_caught_in_debug_builds() {
    let a = RwTicketLock::new();
    let t = a.acquire_read();
    a.release_write(t); // mode check fires before any state damage
}
