//! Async-lock semantics: cancel-safety, wake ordering, guard-drop
//! release, send/sync bounds.
//!
//! Most tests here hand-poll lock futures with counting wakers, so
//! ordering and cancellation are verified *deterministically* — no
//! sleeps, no reliance on scheduler timing, and therefore no gating
//! on `affinity::oversubscribed()`. The executor-driven tests assert
//! only schedule-independent outcomes (final counts, completion).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use asl_locks::asynclock::{AsyncDynMutex, AsyncFifoMutex, AsyncGuard, AsyncMutex, AsyncPolicy};
use asl_runtime::exec::{block_on, yield_now, Executor};

/// A waker that counts its wakes (for hand-polling).
struct CountingWaker {
    wakes: AtomicUsize,
}

impl Wake for CountingWaker {
    fn wake(self: Arc<Self>) {
        self.wakes.fetch_add(1, Ordering::SeqCst);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.wakes.fetch_add(1, Ordering::SeqCst);
    }
}

fn counting_waker() -> (Arc<CountingWaker>, Waker) {
    let cw = Arc::new(CountingWaker {
        wakes: AtomicUsize::new(0),
    });
    let waker = Waker::from(cw.clone());
    (cw, waker)
}

fn poll_once<F: Future>(fut: &mut Pin<Box<F>>, waker: &Waker) -> Poll<F::Output> {
    fut.as_mut().poll(&mut Context::from_waker(waker))
}

// ---------------------------------------------------------------------------
// Guard basics
// ---------------------------------------------------------------------------

#[test]
fn guard_drop_releases() {
    let m = AsyncMutex::new(0u64);
    let (_, w) = counting_waker();
    let mut f = Box::pin(m.lock());
    let Poll::Ready(g) = poll_once(&mut f, &w) else {
        panic!("uncontended lock must complete on first poll");
    };
    assert!(m.is_locked());
    drop(g);
    assert!(!m.is_locked(), "guard drop must release");
    // Reacquire through try_lock to prove the lock is genuinely free.
    assert!(m.try_lock().is_some());
}

#[test]
fn guard_releases_on_panic_unwind() {
    let m = Arc::new(AsyncMutex::new(0u64));
    let m2 = m.clone();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let g = m2.try_lock().expect("free");
        let _hold = g;
        panic!("unwind with the guard live");
    }));
    assert!(r.is_err());
    assert!(!m.is_locked(), "unwind must release the guard");
}

// ---------------------------------------------------------------------------
// Cancel-safety
// ---------------------------------------------------------------------------

#[test]
fn dropped_pending_future_unlinks_its_slot() {
    let m = AsyncMutex::new(());
    let holder = m.try_lock().expect("free");

    let (_, w) = counting_waker();
    let mut f1 = Box::pin(m.lock());
    let mut f2 = Box::pin(m.lock());
    assert!(poll_once(&mut f1, &w).is_pending());
    assert!(poll_once(&mut f2, &w).is_pending());
    assert_eq!(m.waiters(), 2);

    // Cancel f1 mid-wait: its slot must unlink immediately.
    drop(f1);
    assert_eq!(m.waiters(), 1, "cancelled waiter must not leak its slot");

    // Release: the remaining waiter (f2) gets the handoff.
    drop(holder);
    let Poll::Ready(g) = poll_once(&mut f2, &w) else {
        panic!("surviving waiter must acquire after release");
    };
    drop(g);
    assert!(!m.is_locked());
    assert_eq!(m.waiters(), 0);
}

#[test]
fn dropped_granted_future_passes_the_lock_on() {
    // The nasty case: a waiter is *granted* (release chose it) but
    // its future is dropped before being polled again. The drop must
    // pass the lock on — here to the next waiter — not leak it held.
    let m = AsyncFifoMutex::new(());
    let holder = m.try_lock().expect("free");

    let (cw1, w1) = counting_waker();
    let (_, w2) = counting_waker();
    let mut f1 = Box::pin(m.lock());
    let mut f2 = Box::pin(m.lock());
    assert!(poll_once(&mut f1, &w1).is_pending());
    assert!(poll_once(&mut f2, &w2).is_pending());

    drop(holder); // hands off to f1 (FIFO), wakes w1
    assert_eq!(cw1.wakes.load(Ordering::SeqCst), 1, "f1 must be woken");
    drop(f1); // cancelled after grant, before claiming

    let Poll::Ready(g) = poll_once(&mut f2, &w2) else {
        panic!("grant must pass on to the next waiter");
    };
    drop(g);
    assert!(!m.is_locked(), "no leaked acquisition");
}

#[test]
fn dropped_granted_future_with_empty_queue_frees_the_lock() {
    let m = AsyncMutex::new(());
    let holder = m.try_lock().expect("free");
    let (_, w) = counting_waker();
    let mut f = Box::pin(m.lock());
    assert!(poll_once(&mut f, &w).is_pending());
    drop(holder); // grants f
    drop(f); // cancelled; no other waiter
    assert!(!m.is_locked(), "lock must come free, not stay granted");
    assert!(m.try_lock().is_some());
}

#[test]
fn cancel_loop_under_contention_never_deadlocks_or_leaks() {
    // The acceptance-criteria loop: repeatedly enqueue waiters, drop
    // some mid-wait at varying positions, release, and verify the
    // survivors still acquire and the queue drains to empty.
    let m = AsyncDynMutex::new(AsyncPolicy::Slo { slo_ns: 50_000 }, 0u64);
    for round in 0..200usize {
        let holder = m.try_lock().expect("free at round start");
        let (_, w) = counting_waker();
        let mut waiters: Vec<_> = (0..8).map(|_| Box::pin(m.lock())).collect();
        for f in &mut waiters {
            assert!(poll_once(f, &w).is_pending());
        }
        assert_eq!(m.waiters(), 8);
        // Drop a round-dependent subset mid-wait (positions rotate so
        // head, middle and tail cancellations are all exercised).
        let mut kept = Vec::new();
        for (i, f) in waiters.into_iter().enumerate() {
            if (i + round) % 3 == 0 {
                drop(f);
            } else {
                kept.push(f);
            }
        }
        drop(holder);
        // Every survivor must acquire exactly once as grants cascade.
        let mut acquired = 0;
        let mut progressed = true;
        while progressed {
            progressed = false;
            for f in &mut kept {
                if let Poll::Ready(mut g) = poll_once(f, &w) {
                    *g += 1;
                    drop(g);
                    acquired += 1;
                    progressed = true;
                }
            }
        }
        assert_eq!(acquired, kept.len(), "round {round}: all survivors acquire");
        drop(kept);
        assert_eq!(m.waiters(), 0, "round {round}: queue drained");
        assert!(!m.is_locked(), "round {round}: lock free");
    }
    assert!(*m.try_lock().expect("free at end") > 0);
}

// ---------------------------------------------------------------------------
// Wake ordering
// ---------------------------------------------------------------------------

/// Enqueue waiters with the given deadlines (plus a holder so they
/// all park), then release repeatedly and record grant order.
fn grant_order(m: &AsyncMutex<u64>, deadlines: &[u64]) -> Vec<usize> {
    let holder = m.try_lock().expect("free");
    let (_, w) = counting_waker();
    let mut futs: Vec<_> = deadlines
        .iter()
        .map(|&d| Box::pin(m.lock_with_deadline(d)))
        .collect();
    for f in &mut futs {
        assert!(poll_once(f, &w).is_pending());
    }
    drop(holder);
    let mut order = Vec::new();
    while order.len() < deadlines.len() {
        let granted = futs
            .iter_mut()
            .position(|f| {
                // Only the granted future completes; the rest stay
                // pending (no barging).
                matches!(poll_once(f, &w), Poll::Ready(_))
            })
            .expect("exactly one waiter granted per release");
        order.push(granted);
        // The Ready poll consumed the guard, dropping it at the end
        // of the closure — which releases and grants the next waiter.
    }
    order
}

#[test]
fn slo_mutex_wakes_in_deadline_order() {
    let m = AsyncMutex::with_slo(0u64, u64::MAX >> 1);
    // Arrival order 0,1,2,3 with deadlines out of order: grants must
    // follow deadlines (EDF), not arrival.
    let t0 = asl_runtime::clock::now_ns();
    let order = grant_order(
        &m,
        &[
            t0.saturating_add(4_000_000),
            t0.saturating_add(1_000_000),
            t0.saturating_add(3_000_000),
            t0.saturating_add(2_000_000),
        ],
    );
    assert_eq!(order, vec![1, 3, 2, 0], "EDF grant order");
}

#[test]
fn equal_deadlines_fall_back_to_arrival_order() {
    let m = AsyncMutex::with_slo(0u64, u64::MAX >> 1);
    let t0 = asl_runtime::clock::now_ns();
    let d = t0.saturating_add(1_000_000);
    let order = grant_order(&m, &[d, d, d]);
    assert_eq!(order, vec![0, 1, 2], "ties break by arrival sequence");
}

#[test]
fn slo_bound_caps_how_early_a_late_deadline_sorts() {
    // A waiter with a huge explicit deadline is still keyed at most
    // arrival + slo_ns ahead: with a tiny SLO bound, deadline
    // differences beyond the bound collapse and arrival order rules.
    let m = AsyncMutex::with_slo(0u64, 0);
    let t0 = asl_runtime::clock::now_ns();
    let order = grant_order(
        &m,
        &[
            t0.saturating_add(1 << 40),
            t0.saturating_add(1 << 30),
            t0.saturating_add(1 << 20),
        ],
    );
    // slo_ns = 0 => every key is its arrival time; arrival order wins.
    assert_eq!(order, vec![0, 1, 2], "window bound clamps reordering");
}

#[test]
fn fifo_mutex_wakes_in_arrival_order() {
    let m = AsyncFifoMutex::new(());
    let holder = m.try_lock().expect("free");
    let (_, w) = counting_waker();
    let mut futs: Vec<_> = (0..4).map(|_| Box::pin(m.lock())).collect();
    for f in &mut futs {
        assert!(poll_once(f, &w).is_pending());
    }
    drop(holder);
    for (i, f) in futs.iter_mut().enumerate() {
        match poll_once(f, &w) {
            Poll::Ready(g) => drop(g),
            Poll::Pending => panic!("waiter {i} must be granted in arrival order"),
        }
    }
    assert!(!m.is_locked());
}

#[test]
fn dyn_mutex_policy_controls_ordering() {
    // Same deadline pattern, two policies: SLO reorders, FIFO does not.
    let t0 = asl_runtime::clock::now_ns();
    let deadlines = [t0.saturating_add(2_000_000), t0.saturating_add(1_000_000)];
    for (policy, expect) in [
        (
            AsyncPolicy::Slo {
                slo_ns: u64::MAX >> 1,
            },
            vec![1usize, 0],
        ),
        (AsyncPolicy::Fifo, vec![0usize, 1]),
    ] {
        let m = AsyncDynMutex::new(policy, ());
        let holder = m.try_lock().expect("free");
        let (_, w) = counting_waker();
        let mut futs: Vec<_> = deadlines
            .iter()
            .map(|&d| Box::pin(m.lock_with_deadline(d)))
            .collect();
        for f in &mut futs {
            assert!(poll_once(f, &w).is_pending());
        }
        drop(holder);
        let mut order = Vec::new();
        while order.len() < futs.len() {
            let granted = futs
                .iter_mut()
                .position(|f| matches!(poll_once(f, &w), Poll::Ready(_)))
                .expect("one grant per release");
            order.push(granted);
        }
        assert_eq!(order, expect, "{policy:?}");
    }
}

#[test]
fn handoff_is_direct_no_barging() {
    // Between release and the granted waiter's claim, the lock must
    // not be stealable: try_lock fails, is_locked stays true.
    let m = AsyncMutex::new(());
    let holder = m.try_lock().expect("free");
    let (cw, w) = counting_waker();
    let mut f = Box::pin(m.lock());
    assert!(poll_once(&mut f, &w).is_pending());
    drop(holder);
    assert_eq!(cw.wakes.load(Ordering::SeqCst), 1, "waiter woken");
    assert!(m.is_locked(), "handoff keeps the lock held");
    assert!(m.try_lock().is_none(), "no barging past a granted waiter");
    let Poll::Ready(g) = poll_once(&mut f, &w) else {
        panic!("granted waiter claims on next poll");
    };
    drop(g);
}

// ---------------------------------------------------------------------------
// Send/Sync bounds
// ---------------------------------------------------------------------------

#[test]
fn send_sync_bounds() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    // The ISSUE's contract: AsyncMutex<T>: Send + Sync where T: Send.
    struct SendNotSync(#[allow(dead_code)] std::cell::Cell<u64>);
    // SAFETY(test): Cell is Send; the wrapper only adds a name.
    unsafe impl Send for SendNotSync {}
    assert_send_sync::<AsyncMutex<SendNotSync>>();
    assert_send_sync::<AsyncFifoMutex<SendNotSync>>();
    assert_send_sync::<AsyncDynMutex<SendNotSync>>();
    assert_send_sync::<AsyncMutex<Vec<u64>>>();
    // Guards move between executor workers with their task.
    assert_send::<AsyncGuard<'static, Vec<u64>>>();
    assert_send_sync::<AsyncGuard<'static, Vec<u64>>>();
}

// ---------------------------------------------------------------------------
// Executor-driven (schedule-independent outcomes only)
// ---------------------------------------------------------------------------

#[test]
fn oversubscribed_counter_is_exact() {
    // Deliberately more tasks than any host has cores, on a 2-worker
    // pool: the final count is schedule-independent, so this passes
    // identically on 1-CPU CI and a big machine — no
    // affinity::oversubscribed() gate.
    let exec = Executor::new(2);
    let m = Arc::new(AsyncMutex::with_slo(0u64, 10_000));
    let tasks: u64 = 256;
    let iters: u64 = 50;
    let handles: Vec<_> = (0..tasks)
        .map(|_| {
            let m = m.clone();
            exec.spawn(async move {
                for _ in 0..iters {
                    let mut g = m.lock().await;
                    *g += 1;
                    drop(g);
                    yield_now().await;
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(*block_on(m.lock()), tasks * iters);
    assert_eq!(m.waiters(), 0);
}

#[test]
fn cancellation_under_executor_contention() {
    // Executor-level cancel-safety: tasks that hold the lock across a
    // yield race with an executor drop that cancels whatever is still
    // queued. Afterwards the lock must be free and reacquirable.
    let m = Arc::new(AsyncFifoMutex::new(0u64));
    {
        let exec = Executor::new(2);
        let mut handles = Vec::new();
        for _ in 0..64 {
            let m = m.clone();
            handles.push(exec.spawn(async move {
                let mut g = m.lock().await;
                *g += 1;
                yield_now().await; // hold across a suspension point
                drop(g);
            }));
        }
        // Join half, then drop the executor: unfinished tasks are
        // cancelled at whatever await point they sit.
        for h in handles.drain(..32) {
            h.join();
        }
    }
    assert!(!m.is_locked(), "no task may leak the lock through cancel");
    assert_eq!(m.waiters(), 0, "no cancelled task may leak a slot");
    assert!(*block_on(m.lock()) >= 32);
}
