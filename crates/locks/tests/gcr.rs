//! GCR panic hygiene: a waiter panicking while admitted — or after
//! having waited passively — must never wedge admission. Mirrors the
//! delegation-family panic tests: the panic surfaces at the panicking
//! thread's call site, and afterwards both the surviving waiters and
//! a fresh thread keep completing critical sections.
//!
//! The load-bearing property is slot accounting: the unwind path runs
//! the guard's `unlock`, which ticks the controller, releases the
//! inner lock, and exits the gate — so a poisoned critical section
//! hands its admission slot (and any due wakeup) to the passive set
//! exactly like a clean one.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use asl_locks::api::{DynLock, GuardedLock};
use asl_locks::gcr::{Gcr, GcrConfig, GcrPlain};
use asl_locks::plain::PlainLock;
use asl_locks::{McsLock, RawLock, TasLock, TicketLock};

const WAITERS: usize = 3;

/// Scenario A: the sole admitted holder (K = 1) panics while every
/// other thread is parked passive. The unwind must release the inner
/// lock AND the admission slot, waking the passive set; otherwise the
/// waiters park forever and the join below wedges.
fn holder_panic_frees_admission<L>(lock: Arc<Gcr<L>>, name: &str)
where
    L: RawLock + Send + Sync + 'static,
{
    assert_eq!(lock.limit(), 1, "{name}: scenario needs K=1");
    drop(lock.guard()); // pre-panic sanity op

    let counter = Arc::new(AtomicU64::new(0));
    let ready = Arc::new(Barrier::new(WAITERS + 1));
    let joins: Vec<_> = (0..WAITERS)
        .map(|_| {
            let (lock, counter, ready) = (lock.clone(), counter.clone(), ready.clone());
            std::thread::spawn(move || {
                ready.wait();
                let _g = lock.guard();
                counter.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();

    let boom = catch_unwind(AssertUnwindSafe(|| {
        let _g = lock.guard();
        ready.wait();
        // Panic only once every waiter is parked passive, so the
        // unwind release is the only thing that can wake them.
        let deadline = Instant::now() + Duration::from_secs(20);
        while lock.passive_len() < WAITERS as u32 {
            assert!(
                Instant::now() < deadline,
                "{name}: waiters never went passive"
            );
            std::thread::yield_now();
        }
        panic!("poisoned critical section");
    }));
    assert!(boom.is_err(), "{name}: poisoned CS must panic");

    for j in joins {
        j.join().expect("waiter");
    }
    assert_eq!(
        counter.load(Ordering::Relaxed),
        WAITERS as u64,
        "{name}: a passive waiter was lost after the panic"
    );
    assert_eq!(lock.active(), 0, "{name}: admission slot leaked");
    assert_eq!(lock.passive_len(), 0, "{name}: passive node leaked");

    // A thread that never saw the panic still gets in.
    let fresh = {
        let lock = lock.clone();
        std::thread::spawn(move || drop(lock.guard()))
    };
    fresh.join().expect("fresh thread");
}

/// Scenario B: threads that waited passively panic inside their
/// critical section and then keep going. With K = 1 and a short
/// reintroduction period almost every acquisition follows a passive
/// park, so the poisoned ops exercise the park → grant → panic path.
fn passive_survivor_panics_and_recovers<L>(lock: Arc<Gcr<L>>, name: &str)
where
    L: RawLock + Send + Sync + 'static,
{
    const THREADS: usize = 4;
    const OPS: u64 = 40;
    const POISON: u64 = 20;

    let counter = Arc::new(AtomicU64::new(0));
    let joins: Vec<_> = (0..THREADS)
        .map(|_| {
            let (lock, counter) = (lock.clone(), counter.clone());
            std::thread::spawn(move || {
                for op in 0..OPS {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        let _g = lock.guard();
                        if op == POISON {
                            panic!("poisoned op");
                        }
                        counter.fetch_add(1, Ordering::Relaxed);
                    }));
                    assert_eq!(r.is_err(), op == POISON, "panic at the wrong op");
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("worker");
    }
    assert_eq!(
        counter.load(Ordering::Relaxed),
        THREADS as u64 * (OPS - 1),
        "{name}: ops lost around the panics"
    );
    assert_eq!(lock.active(), 0, "{name}: admission slot leaked");
    assert_eq!(lock.passive_len(), 0, "{name}: passive node leaked");
    // K = 1: forced reintroduction may overlap one extra admission,
    // never more — panics must not have widened the gate.
    assert!(
        lock.peak_active() <= 2,
        "{name}: K+1 bound broken: peak={}",
        lock.peak_active()
    );
}

fn k1<L: RawLock>(inner: L) -> Arc<Gcr<L>> {
    Arc::new(Gcr::with_config(
        inner,
        GcrConfig {
            reintroduce_period: 4,
            ..GcrConfig::fixed(1)
        },
    ))
}

#[test]
fn holder_panic_does_not_wedge_gcr_tas() {
    holder_panic_frees_admission(k1(TasLock::new()), "gcr-tas");
}

#[test]
fn holder_panic_does_not_wedge_gcr_ticket() {
    holder_panic_frees_admission(k1(TicketLock::new()), "gcr-ticket");
}

#[test]
fn holder_panic_does_not_wedge_gcr_mcs() {
    holder_panic_frees_admission(k1(McsLock::new()), "gcr-mcs");
}

#[test]
fn passive_panic_recovers_gcr_tas() {
    passive_survivor_panics_and_recovers(k1(TasLock::new()), "gcr-tas");
}

#[test]
fn passive_panic_recovers_gcr_ticket() {
    passive_survivor_panics_and_recovers(k1(TicketLock::new()), "gcr-ticket");
}

#[test]
fn passive_panic_recovers_gcr_mcs() {
    passive_survivor_panics_and_recovers(k1(McsLock::new()), "gcr-mcs");
}

/// The dyn form used by the registry (`gcr-<name>` specs) runs the
/// same protocol through `PlainLock`; its unwind path goes through
/// [`DynLock`]'s guard instead of the typed one.
fn plain_k1() -> Arc<GcrPlain> {
    Arc::new(GcrPlain::with_config(
        Arc::new(McsLock::new()),
        GcrConfig {
            reintroduce_period: 4,
            ..GcrConfig::fixed(1)
        },
    ))
}

#[test]
fn holder_panic_does_not_wedge_gcr_plain() {
    let gcr = plain_k1();
    let dl = DynLock::new(gcr.clone() as Arc<dyn PlainLock>);
    drop(dl.lock()); // pre-panic sanity op

    let counter = Arc::new(AtomicU64::new(0));
    let ready = Arc::new(Barrier::new(WAITERS + 1));
    let joins: Vec<_> = (0..WAITERS)
        .map(|_| {
            let (gcr, counter, ready) = (gcr.clone(), counter.clone(), ready.clone());
            std::thread::spawn(move || {
                ready.wait();
                let dl = DynLock::new(gcr as Arc<dyn PlainLock>);
                let _g = dl.lock();
                counter.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();

    let boom = catch_unwind(AssertUnwindSafe(|| {
        let _g = dl.lock();
        ready.wait();
        let deadline = Instant::now() + Duration::from_secs(20);
        while gcr.passive_len() < WAITERS as u32 {
            assert!(
                Instant::now() < deadline,
                "gcr-plain: waiters never went passive"
            );
            std::thread::yield_now();
        }
        panic!("poisoned critical section");
    }));
    assert!(boom.is_err(), "gcr-plain: poisoned CS must panic");

    for j in joins {
        j.join().expect("waiter");
    }
    assert_eq!(counter.load(Ordering::Relaxed), WAITERS as u64);
    assert_eq!(gcr.active(), 0, "gcr-plain: admission slot leaked");
    assert_eq!(gcr.passive_len(), 0, "gcr-plain: passive node leaked");
    drop(dl.lock()); // still usable after the panic
}

#[test]
fn passive_panic_recovers_gcr_plain() {
    const THREADS: usize = 4;
    const OPS: u64 = 40;
    const POISON: u64 = 20;

    let gcr = plain_k1();
    let counter = Arc::new(AtomicU64::new(0));
    let joins: Vec<_> = (0..THREADS)
        .map(|_| {
            let (gcr, counter) = (gcr.clone(), counter.clone());
            std::thread::spawn(move || {
                let dl = DynLock::new(gcr as Arc<dyn PlainLock>);
                for op in 0..OPS {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        let _g = dl.lock();
                        if op == POISON {
                            panic!("poisoned op");
                        }
                        counter.fetch_add(1, Ordering::Relaxed);
                    }));
                    assert_eq!(r.is_err(), op == POISON, "panic at the wrong op");
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("worker");
    }
    assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * (OPS - 1));
    assert_eq!(gcr.active(), 0, "gcr-plain: admission slot leaked");
    assert_eq!(gcr.passive_len(), 0, "gcr-plain: passive node leaked");
    assert!(gcr.peak_active() <= 2, "gcr-plain: K+1 bound broken");
}
