//! Smoke test: every lock in the zoo, driven through the guard-based
//! dynamic wrapper ([`asl_locks::api::DynLock`]), must provide mutual
//! exclusion — 4 threads × 10 000 increments of a non-atomic counter,
//! so any exclusion failure shows up as a lost update.

use std::cell::UnsafeCell;
use std::sync::Arc;

use asl_locks::api::DynLock;
use asl_locks::shuffle::{ClassLocalPolicy, FifoPolicy, ShuffleLock};
use asl_locks::{
    BackoffLock, ClhLock, CnaLock, CohortLock, FlatCombiner, MalthusianLock, McsLock, McsStpLock,
    ProportionalLock, PthreadMutex, TasLock, TicketLock,
};

const THREADS: usize = 4;
const ITERS: u64 = 10_000;

/// Non-atomic counter: only mutual exclusion keeps it race-free.
struct RacyCounter(UnsafeCell<u64>);
// SAFETY: accessed only under the lock under test.
unsafe impl Sync for RacyCounter {}
unsafe impl Send for RacyCounter {}

fn hammer(name: &str, lock: DynLock) {
    let counter = Arc::new(RacyCounter(UnsafeCell::new(0)));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let lock = lock.clone();
            let counter = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..ITERS {
                    let _held = lock.lock();
                    // SAFETY: we hold the lock under test.
                    unsafe { *counter.0.get() += 1 };
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = unsafe { *counter.0.get() };
    assert_eq!(total, THREADS as u64 * ITERS, "{name}: lost updates");
    assert!(!lock.is_locked(), "{name}: left held");
}

#[test]
fn zoo_mutual_exclusion_through_dyn_guards() {
    let zoo: Vec<(&str, DynLock)> = vec![
        ("tas", DynLock::of(TasLock::new())),
        ("ticket", DynLock::of(TicketLock::new())),
        ("backoff", DynLock::of(BackoffLock::new())),
        ("mcs", DynLock::of(McsLock::new())),
        ("clh", DynLock::of(ClhLock::new())),
        ("cna", DynLock::of(CnaLock::new())),
        ("cohort", DynLock::of(CohortLock::new())),
        ("shuffle-fifo", DynLock::of(ShuffleLock::new(FifoPolicy))),
        (
            "shuffle-classlocal",
            DynLock::of(ShuffleLock::new(ClassLocalPolicy::new(16))),
        ),
        ("proportional", DynLock::of(ProportionalLock::new(10))),
        ("malthusian", DynLock::of(MalthusianLock::new())),
        // Blocking pair: the glibc-style mutex (futex-backed on
        // Linux, spin-then-yield elsewhere) and spin-then-park MCS.
        ("pthread", DynLock::of(PthreadMutex::new())),
        ("mcs-stp", DynLock::of(McsStpLock::new())),
    ];
    for (name, lock) in zoo {
        hammer(name, lock);
    }
}

#[test]
#[cfg(target_os = "linux")]
fn zoo_futex_path_mutual_exclusion() {
    // Zero optimistic spins forces every contended acquisition down
    // the futex wait/wake path.
    hammer(
        "pthread-futex-only",
        DynLock::of(PthreadMutex::with_spin(0)),
    );
}

#[test]
fn zoo_flat_combining_counts_correctly() {
    // Flat combining is the zoo's delegation member; its "critical
    // section" is an applied operation rather than a held lock, so it
    // is exercised through its own API: same 4×10k increments, same
    // lost-update check.
    let fc = Arc::new(FlatCombiner::new(0u64, |acc: &mut u64, _op: ()| {
        *acc += 1;
        *acc
    }));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let handle = fc.register();
            std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..ITERS {
                    last = handle.apply(());
                }
                last
            })
        })
        .collect();
    let mut max_seen = 0;
    for h in handles {
        max_seen = max_seen.max(h.join().unwrap());
    }
    assert_eq!(max_seen, THREADS as u64 * ITERS, "flatcomb: lost updates");
}
