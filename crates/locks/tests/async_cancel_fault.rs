//! Async cancel-safety under fault injection (ISSUE 10 satellite).
//!
//! The dangerous window: an `AsyncMutex` waiter has been *granted*
//! the lock (releaser stored `W_GRANTED` and called its waker) but
//! the future is dropped before it is ever polled again. If the drop
//! path leaked that grant, the lock would be held forever by a ghost.
//! Here the window is stretched adversarially — the waker itself is
//! stalled by a [`FaultInjector`] (every relax poll it makes may
//! inject a holder-preemption stall, and clock reads may jump) — and
//! the lock must still pass on to the next waiter.
//!
//! All tests hand-poll with explicit wakers, so the schedule is
//! deterministic; the injector perturbs *timing inside the window*,
//! not the order of operations.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use asl_locks::asynclock::AsyncMutex;
use asl_runtime::fault::{FaultInjector, FaultPlan, FaultState};
use asl_runtime::relax::Spin;

/// A waker that simulates being preempted mid-wake: on every wake it
/// spins through the substrate (where the installed injector can
/// stall it) before recording the wake.
struct StalledWaker {
    wakes: AtomicUsize,
}

impl Wake for StalledWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        let mut spin = Spin::new();
        for _ in 0..32 {
            spin.relax();
        }
        self.wakes.fetch_add(1, Ordering::SeqCst);
    }
}

fn stalled_waker() -> (Arc<StalledWaker>, Waker) {
    let sw = Arc::new(StalledWaker {
        wakes: AtomicUsize::new(0),
    });
    let waker = Waker::from(sw.clone());
    (sw, waker)
}

fn poll_once<F: Future>(fut: &mut Pin<Box<F>>, waker: &Waker) -> Poll<F::Output> {
    fut.as_mut().poll(&mut Context::from_waker(waker))
}

/// A heavy schedule: stalls fire every 4th poll, parks return
/// spuriously, the coarse clock jumps.
fn adversarial_state(seed: u64) -> Arc<FaultState> {
    FaultState::new(
        FaultPlan::stalls(seed, 4, 2_000)
            .with_spurious(2)
            .with_clock_jumps(8, 5_000),
    )
}

/// Drop a future in the granted-but-unclaimed window while the waker
/// is being stalled by the injector: the grant must pass on to the
/// next waiter, not leak.
#[test]
fn drop_in_granted_window_passes_lock_on() {
    let state = adversarial_state(71);
    let _guard = FaultInjector::install_over_os(&state);

    let mutex = AsyncMutex::new(0u32);
    let (wb, waker_b) = stalled_waker();
    let (wc, waker_c) = stalled_waker();

    // A takes the lock outright.
    let mut fut_a = Box::pin(mutex.lock());
    let Poll::Ready(guard_a) = poll_once(&mut fut_a, &waker_b) else {
        panic!("uncontended lock must be immediate");
    };

    // B and C queue behind it.
    let mut fut_b = Box::pin(mutex.lock());
    assert!(poll_once(&mut fut_b, &waker_b).is_pending());
    let mut fut_c = Box::pin(mutex.lock());
    assert!(poll_once(&mut fut_c, &waker_c).is_pending());
    assert_eq!(mutex.waiters(), 2);

    // Release: B is granted and its (stalled) waker runs.
    drop(guard_a);
    assert_eq!(wb.wakes.load(Ordering::SeqCst), 1);
    assert!(mutex.is_locked(), "lock is held by the grant to B");

    // B's task is cancelled inside the W_GRANTED window — it never
    // polls again. The grant must move on to C, through C's equally
    // stalled waker.
    drop(fut_b);
    assert_eq!(wc.wakes.load(Ordering::SeqCst), 1, "C must be woken");
    let Poll::Ready(guard_c) = poll_once(&mut fut_c, &waker_c) else {
        panic!("C was granted; its poll must claim the lock");
    };
    assert!(mutex.is_locked());
    assert_eq!(mutex.waiters(), 0);

    drop(guard_c);
    assert!(!mutex.is_locked(), "no ghost holder after the cancel");

    // The window was genuinely stretched: the injector stalled the
    // wakers' relax polls.
    let stats = state.stats();
    assert!(
        stats.poll_stalls > 0,
        "schedule never stalled a waker: {stats:?}"
    );
}

/// Churn the granted-window cancellation: every iteration a waiter is
/// granted, cancelled unclaimed, and the lock must come back free.
#[test]
fn repeated_granted_window_cancels_never_leak() {
    let state = adversarial_state(72);
    let _guard = FaultInjector::install_over_os(&state);

    let mutex = AsyncMutex::new(());
    for round in 0..100 {
        let (_w, waker) = stalled_waker();
        let mut holder = Box::pin(mutex.lock());
        let Poll::Ready(held) = poll_once(&mut holder, &waker) else {
            panic!("round {round}: free lock must grant immediately");
        };
        let mut waiter = Box::pin(mutex.lock());
        assert!(poll_once(&mut waiter, &waker).is_pending());

        // Grant lands on `waiter` while it sits unpolled…
        drop(held);
        // …and the cancelled future must hand the lock back.
        drop(waiter);
        assert!(
            !mutex.is_locked(),
            "round {round}: grant leaked to a cancelled future"
        );
        assert_eq!(mutex.waiters(), 0, "round {round}: waiter leaked");
    }
}
