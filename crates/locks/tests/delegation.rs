//! Cross-cutting delegation semantics: every member of the family
//! (FlatCombiner, DedicatedServer, CcSynch, RclLock, FcBan) must
//! survive a panicking op without wedging, preserve each thread's
//! FIFO order for its own ops, and — for the usage-fair combiner —
//! actually suppress a hog's ops share relative to CC-Synch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use asl_locks::ccsynch::CcSynch;
use asl_locks::delegation::DelegationHandle;
use asl_locks::fcban::FcBan;
use asl_locks::flatcomb::{DedicatedServer, FlatCombiner};
use asl_locks::rcl::RclLock;
use asl_runtime::clock::busy_wait_ns;

/// Shared op language for the panic tests: `u64::MAX` panics, any
/// other value is added to the counter; returns the new total.
fn counting_apply() -> impl Fn(&mut u64, u64) -> u64 + Send + Sync + 'static {
    |state, op| {
        if op == u64::MAX {
            panic!("poisoned op");
        }
        *state += op;
        *state
    }
}

/// Drive one lock's handles through the panic scenario: thread A's
/// poisoned op panics *at A's call site*, and afterwards both A and a
/// fresh thread B still complete ops (the combiner isn't wedged).
fn panic_does_not_wedge<H>(ha: H, hb: H, lock_name: &str)
where
    H: DelegationHandle<Op = u64, Out = u64> + Send + 'static,
{
    assert_eq!(ha.apply(5), 5, "{lock_name}: pre-panic op");
    let boom = catch_unwind(AssertUnwindSafe(|| ha.apply(u64::MAX)));
    assert!(boom.is_err(), "{lock_name}: poisoned op must panic");
    // The submitter that observed the panic can keep going...
    assert_eq!(ha.apply(7), 12, "{lock_name}: same handle after panic");
    // ...and so can a different thread.
    let t = std::thread::spawn(move || hb.apply(8));
    assert_eq!(
        t.join().expect("worker"),
        20,
        "{lock_name}: other thread after panic"
    );
}

#[test]
fn panic_in_op_does_not_wedge_flatcomb() {
    let fc = FlatCombiner::new(0u64, counting_apply());
    panic_does_not_wedge(fc.register(), fc.register(), "flatcomb");
}

#[test]
fn panic_in_op_does_not_wedge_dedicated_server() {
    let ds = Arc::new(DedicatedServer::new(0u64, counting_apply()));
    let server = {
        let ds = ds.clone();
        std::thread::spawn(move || ds.serve())
    };
    panic_does_not_wedge(ds.register(), ds.register(), "fc-server");
    ds.shutdown();
    server.join().expect("server");
}

#[test]
fn panic_in_op_does_not_wedge_ccsynch() {
    let cc = CcSynch::new(0u64, counting_apply());
    panic_does_not_wedge(cc.register(), cc.register(), "ccsynch");
}

#[test]
fn panic_in_op_does_not_wedge_rcl() {
    let lock = RclLock::new(0u64, counting_apply());
    let server = lock.start();
    panic_does_not_wedge(lock.register(), lock.register(), "rcl");
    drop(server);
}

#[test]
fn panic_in_op_does_not_wedge_fcban() {
    let fb = FcBan::new(0u64, counting_apply());
    panic_does_not_wedge(fb.register(), fb.register(), "fc-ban");
}

/// Op executions are serialized (one combiner/server at a time), so
/// an external log captures global execution order without racing.
type Log = Arc<Mutex<Vec<(usize, u64)>>>;

fn log_apply(log: Log) -> impl Fn(&mut (), (usize, u64)) + Send + Sync + 'static {
    move |_, op| log.lock().unwrap().push(op)
}

/// Every thread's own ops must land in the order it submitted them,
/// whoever ends up combining. Each of 4 workers submits (worker, seq)
/// through the lock; per-worker seqs must be increasing in the log.
fn fifo_preserved<H>(handles: Vec<H>, log: Log, name: &str)
where
    H: DelegationHandle<Op = (usize, u64), Out = ()> + Send + 'static,
{
    const OPS: u64 = 500;
    let workers = handles.len();
    let joins: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(w, h)| {
            std::thread::spawn(move || {
                for seq in 0..OPS {
                    h.apply((w, seq));
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("worker");
    }
    let log = log.lock().unwrap();
    assert_eq!(log.len(), workers * OPS as usize, "{name}: ops lost");
    let mut next = vec![0u64; workers];
    for &(w, seq) in log.iter() {
        assert_eq!(seq, next[w], "{name}: worker {w} ops reordered");
        next[w] += 1;
    }
}

#[test]
fn per_thread_fifo_preserved_flatcomb() {
    let log: Log = Arc::default();
    let fc = FlatCombiner::new((), log_apply(log.clone()));
    fifo_preserved((0..4).map(|_| fc.register()).collect(), log, "flatcomb");
}

#[test]
fn per_thread_fifo_preserved_ccsynch() {
    let log: Log = Arc::default();
    let cc = CcSynch::new((), log_apply(log.clone()));
    fifo_preserved((0..4).map(|_| cc.register()).collect(), log, "ccsynch");
}

#[test]
fn per_thread_fifo_preserved_rcl() {
    let log: Log = Arc::default();
    let lock = RclLock::new((), log_apply(log.clone()));
    let server = lock.start();
    fifo_preserved((0..4).map(|_| lock.register()).collect(), log, "rcl");
    drop(server);
}

#[test]
fn per_thread_fifo_preserved_fcban() {
    let log: Log = Arc::default();
    let fb = FcBan::new((), log_apply(log.clone()));
    fifo_preserved((0..4).map(|_| fb.register()).collect(), log, "fc-ban");
}

/// Skewed-hold-time duel: worker 0's critical sections are 10× longer
/// (emulated via `busy_wait_ns` inside the op). Returns each worker's
/// share of completed ops.
fn hog_shares<H>(handles: Vec<H>, hog_ns: u64, base_ns: u64, window: Duration) -> Vec<f64>
where
    H: DelegationHandle<Op = u64, Out = ()> + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let joins: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(w, h)| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let ns = if w == 0 { hog_ns } else { base_ns };
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.apply(ns);
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let counts: Vec<u64> = joins
        .into_iter()
        .map(|j| j.join().expect("worker"))
        .collect();
    let total: u64 = counts.iter().sum::<u64>().max(1);
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

fn wait_apply() -> impl Fn(&mut (), u64) + Send + Sync + 'static {
    |_, ns| busy_wait_ns(ns)
}

/// The banning combiner must cut the hog's ops share well below what
/// CC-Synch (no usage accounting) gives it: the hog burns 10× the
/// lock time per op, so usage-fairness delays its re-entry while
/// CC-Synch admits it every round.
#[test]
fn fcban_suppresses_hog_share_vs_ccsynch() {
    const THREADS: usize = 4;
    const HOG_NS: u64 = 500_000;
    const BASE_NS: u64 = 20_000;
    let window = Duration::from_millis(250);

    let cc = CcSynch::new((), wait_apply());
    let cc_handles: Vec<_> = (0..THREADS).map(|_| cc.register()).collect();
    let cc_shares = hog_shares(cc_handles, HOG_NS, BASE_NS, window);

    // Zero slack so the first overdrawn pass already bans.
    let fb = FcBan::with_slack((), wait_apply(), 0);
    let fb_handles: Vec<_> = (0..THREADS).map(|_| fb.register()).collect();
    let fb_shares = hog_shares(fb_handles, HOG_NS, BASE_NS, window);

    let (cc_hog, fb_hog) = (cc_shares[0], fb_shares[0]);
    // CC-Synch's round-robin combining hands the hog a near-even op
    // share despite its 10x usage; the ban must at least halve it.
    assert!(
        cc_hog > 0.10,
        "ccsynch hog share unexpectedly low: {cc_shares:?}"
    );
    assert!(
        fb_hog < cc_hog * 0.5,
        "fc-ban failed to suppress the hog: ccsynch={cc_shares:?} fc-ban={fb_shares:?}"
    );
    // The peers must actually pick up the reclaimed ops.
    let fb_peer_min = fb_shares[1..].iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        fb_peer_min > fb_hog,
        "peers should out-complete the banned hog: {fb_shares:?}"
    );
}
