//! Guard-semantics tests for the RAII lock API:
//!
//! * a panic inside a critical section releases the lock on unwind
//!   (no poisoning — the next acquisition succeeds normally);
//! * dropping a `try_lock` guard releases;
//! * guards compose with every interface level (raw, generic mutex,
//!   dynamic wrapper);
//! * (debug builds) a token released against the wrong lock panics on
//!   the ownership check instead of corrupting queue nodes.

use std::sync::Arc;

use asl_locks::api::{DynLock, DynMutex, Guard, GuardedLock, Mutex};
use asl_locks::{ClhLock, McsLock, RawLock, TicketLock};

#[test]
fn panic_in_critical_section_releases_static_mutex() {
    let m = Arc::new(Mutex::<u64, McsLock>::new(0));
    let m2 = m.clone();
    let joined = std::thread::spawn(move || {
        let mut g = m2.lock();
        *g += 1;
        panic!("unwind with the lock held");
    })
    .join();
    assert!(joined.is_err());
    // No poisoning: the unwinding thread's guard released the lock.
    assert!(!m.is_locked());
    let g = m.try_lock().expect("lock must be free after the panic");
    assert_eq!(*g, 1);
}

#[test]
fn panic_in_critical_section_releases_dyn_mutex() {
    let m = Arc::new(DynMutex::new(DynLock::of(TicketLock::new()), vec![1u64]));
    let m2 = m.clone();
    let joined = std::thread::spawn(move || {
        m2.lock().push(2);
        panic!("unwind with the dyn lock held");
    })
    .join();
    assert!(joined.is_err());
    assert!(!m.is_locked());
    assert_eq!(&*m.lock(), &[1, 2]);
}

#[test]
fn try_lock_guard_drop_releases() {
    let m = Mutex::<(), ClhLock>::new(());
    let g = m.try_lock().expect("uncontended try_lock succeeds");
    assert!(m.is_locked());
    assert!(
        m.try_lock().is_none(),
        "second try_lock must fail while held"
    );
    drop(g);
    assert!(!m.is_locked());
    assert!(m.try_lock().is_some(), "released by guard drop");

    let d = DynLock::of(McsLock::new());
    let g = d.try_lock().expect("uncontended dyn try_lock succeeds");
    assert!(d.try_lock().is_none());
    drop(g);
    assert!(!d.is_locked());
}

#[test]
fn raw_guard_over_any_raw_lock() {
    fn roundtrip<L: RawLock + Default>() {
        let lock = L::default();
        {
            let _g = lock.guard();
            assert!(lock.is_locked());
            assert!(lock.try_guard().is_none());
        }
        assert!(!lock.is_locked());
    }
    roundtrip::<McsLock>();
    roundtrip::<ClhLock>();
    roundtrip::<TicketLock>();
}

#[test]
fn guard_explicit_unlock_and_token_escape() {
    let lock = McsLock::new();
    lock.guard().unlock(); // immediate explicit release
    assert!(!lock.is_locked());

    // Token escape hatch: the guard surrenders its token, the caller
    // re-adopts it into a new guard.
    let token = Guard::new(&lock).into_token();
    assert!(lock.is_locked());
    // SAFETY: token from the guard above, unreleased, same thread.
    drop(unsafe { Guard::from_token(&lock, token) });
    assert!(!lock.is_locked());
}

#[test]
fn contended_guards_provide_mutual_exclusion() {
    let m = Arc::new(Mutex::<u64, McsLock>::new(0));
    let mut handles = vec![];
    for _ in 0..4 {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..10_000 {
                *m.lock() += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*m.lock(), 40_000);
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "did not issue")]
fn cross_lock_release_panics_in_debug_builds() {
    use asl_locks::plain::PlainLock;
    let a = McsLock::new();
    let b = McsLock::new();
    let token = a.acquire();
    // Releasing a's token against b is the bug class the old API
    // allowed; the debug ownership tag catches it before any queue
    // damage.
    b.release(token);
}
