//! Test-and-set spinlock with an asymmetric-affinity model.
//!
//! The paper's unfair baseline: the holder is whoever wins the atomic
//! swap. On real AMPs the win rate is asymmetric (§2.2); here the
//! bias is injected via [`AtomicAffinity`] — after observing the lock
//! free, the disadvantaged core class spins a fixed penalty before
//! attempting the swap, so the favoured class almost always reaches
//! the swap first under contention. With `Neutral` affinity this is a
//! plain TTAS lock.

use std::sync::atomic::{AtomicBool, Ordering};

use asl_runtime::registry::current_core;
use asl_runtime::work::execute_raw_units;
use asl_runtime::AtomicAffinity;

use crate::RawLock;

/// Unfair test-and-set (TTAS) spinlock.
pub struct TasLock {
    locked: AtomicBool,
    affinity: AtomicAffinity,
}

impl TasLock {
    /// Neutral-affinity TAS lock.
    pub fn new() -> Self {
        Self::with_affinity(AtomicAffinity::Neutral)
    }

    /// TAS lock with an explicit atomic-affinity model.
    pub fn with_affinity(affinity: AtomicAffinity) -> Self {
        TasLock {
            locked: AtomicBool::new(false),
            affinity,
        }
    }

    /// The configured affinity model.
    pub fn affinity(&self) -> AtomicAffinity {
        self.affinity
    }
}

impl Default for TasLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for TasLock {
    type Token = ();

    #[inline]
    fn lock(&self) {
        // Uncontended fast path: a single atomic (the swap) and
        // nothing else — no affinity lookup, no spin-state setup.
        // Those costs are deferred to the contended path below.
        if !self.locked.swap(true, Ordering::Acquire) {
            return;
        }
        let penalty = self.affinity.post_fail_penalty(current_core().kind);
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            // Local spin until the lock looks free (TTAS).
            while self.locked.load(Ordering::Relaxed) {
                spin.relax();
            }
            // Observed free: back to pure spinning so a lost swap race
            // below doesn't leave the affinity penalty competing with
            // yield-per-poll scheduler noise.
            spin.reset();
            // The affinity model: the disadvantaged class is slower to
            // reach the swap after the release becomes visible.
            if penalty > 0 {
                execute_raw_units(penalty);
            }
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
        }
    }

    #[inline]
    fn try_lock(&self) -> Option<()> {
        if !self.locked.swap(true, Ordering::Acquire) {
            Some(())
        } else {
            None
        }
    }

    #[inline]
    fn unlock(&self, _t: ()) {
        self.locked.store(false, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    const NAME: &'static str = "tas";
}

impl crate::timed::RawTimedLock for TasLock {
    /// TAS publishes nothing while waiting, so the back-out is free:
    /// stop competing when the coarse clock passes the deadline. The
    /// timed path skips the affinity penalty — it models a waiter
    /// with somewhere else to be, not a class-biased competitor.
    fn try_lock_until(&self, deadline_ns: u64) -> Option<()> {
        if !self.locked.swap(true, Ordering::Acquire) {
            return Some(());
        }
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            // Local spin until free or expired (TTAS with a deadline).
            while self.locked.load(Ordering::Relaxed) {
                if asl_runtime::clock::coarse_now_ns() >= deadline_ns {
                    return None;
                }
                spin.relax();
            }
            spin.reset();
            if !self.locked.swap(true, Ordering::Acquire) {
                return Some(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::topology::{CoreId, Topology};
    use asl_runtime::{run_on_topology, CoreKind};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn basic_lock_unlock() {
        let l = TasLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        l.unlock(());
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let l = TasLock::new();
        l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(());
        assert!(l.try_lock().is_some());
        l.unlock(());
    }

    #[test]
    fn affinity_biases_acquisition_share() {
        // 2 big + 2 little hammer the lock; with BigWins affinity the
        // big class should take a clear majority of acquisitions.
        let topo = Topology::custom(2, 2, 1.0); // equal speed: isolate the affinity effect
        let lock = Arc::new(TasLock::with_affinity(AtomicAffinity::BigWins {
            penalty_units: 2_000,
        }));
        let big_ops = Arc::new(AtomicU64::new(0));
        let little_ops = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s2 = stop.clone();
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(150));
            s2.store(true, Ordering::Relaxed);
        });
        {
            let lock = lock.clone();
            let big_ops = big_ops.clone();
            let little_ops = little_ops.clone();
            asl_runtime::spawn::run_on_topology_with_stop(&topo, 4, false, stop, move |ctx| {
                let ctr = if ctx.assignment.kind == CoreKind::Big {
                    &big_ops
                } else {
                    &little_ops
                };
                while !ctx.stopped() {
                    lock.lock();
                    // Short critical section.
                    execute_raw_units(200);
                    lock.unlock(());
                    ctr.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        stopper.join().unwrap();
        let b = big_ops.load(Ordering::Relaxed) as f64;
        let l = little_ops.load(Ordering::Relaxed) as f64;
        assert!(b + l > 0.0, "no acquisitions at all");
        // The share itself is a wall-clock scheduling observation: on
        // an oversubscribed host the penalized class can *keep the
        // CPU* through its penalty spin and grab the just-freed lock,
        // inverting the bias. The exact, ungated version of this
        // assertion runs on the simulated machine
        // (`asl_sim::exec` unit test `poll_cost_reflects_atomic_model`
        // and the `sim-fig1` tas-little figure row).
        if !asl_runtime::affinity::oversubscribed(4) {
            assert!(b > l * 1.5, "big={b} little={l}: affinity had no effect");
        }
    }

    #[test]
    fn neutral_affinity_roughly_fair_classes() {
        let topo = Topology::custom(2, 2, 1.0);
        let lock = Arc::new(TasLock::new());
        let counts = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s2 = stop.clone();
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(100));
            s2.store(true, Ordering::Relaxed);
        });
        {
            let lock = lock.clone();
            let counts = counts.clone();
            asl_runtime::spawn::run_on_topology_with_stop(&topo, 4, false, stop, move |ctx| {
                let idx = (ctx.assignment.kind == CoreKind::Little) as usize;
                while !ctx.stopped() {
                    lock.lock();
                    execute_raw_units(200);
                    lock.unlock(());
                    counts[idx].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        stopper.join().unwrap();
        let b = counts[0].load(Ordering::Relaxed) as f64;
        let l = counts[1].load(Ordering::Relaxed) as f64;
        // Equal-speed neutral TAS should not be wildly skewed — but
        // only when the 4 threads actually run in parallel; a
        // preemption-driven schedule makes any unfair lock arbitrarily
        // skewed, so the ratio check needs real cores.
        assert!(b > 0.0 && l > 0.0);
        if !asl_runtime::affinity::oversubscribed(4) {
            let ratio = b.max(l) / b.min(l);
            assert!(
                ratio < 20.0,
                "unexpectedly extreme skew: big={b} little={l}"
            );
        }
    }

    #[test]
    fn registered_little_thread_pays_penalty_only_with_bias() {
        let topo = Topology::custom(1, 1, 1.0);
        let _ = run_on_topology(&topo, 2, false, |ctx| {
            let l = TasLock::with_affinity(AtomicAffinity::little_wins());
            let pen = l.affinity().post_fail_penalty(ctx.assignment.kind);
            match ctx.assignment.kind {
                CoreKind::Big => assert!(pen > 0),
                CoreKind::Little => assert_eq!(pen, 0),
            }
        });
        let _ = Topology::custom(1, 1, 1.0).core(CoreId(0));
    }
}
