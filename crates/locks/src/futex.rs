//! Minimal futex wrappers (Linux) with a portable fallback.
//!
//! The blocking locks (glibc-style mutex, spin-then-park MCS) need an
//! address-based wait/wake primitive. On Linux we call `futex(2)`
//! directly; elsewhere we degrade to `yield`-spinning, which keeps the
//! crate building and semantically correct (just less efficient).

use std::sync::atomic::AtomicU32;
#[cfg(not(target_os = "linux"))]
use std::sync::atomic::Ordering;

/// Block until `*atom != expected` (or a spurious wake-up).
#[inline]
pub fn futex_wait(atom: &AtomicU32, expected: u32) {
    // On a simulation substrate a kernel wait would block the whole
    // cooperative schedule; charge a bounded virtual wait instead
    // (spurious return — every caller re-checks in a loop).
    if asl_runtime::substrate::with_current(|s| s.park()).is_some() {
        return;
    }
    #[cfg(target_os = "linux")]
    unsafe {
        libc::syscall(
            libc::SYS_futex,
            atom as *const AtomicU32,
            libc::FUTEX_WAIT | libc::FUTEX_PRIVATE_FLAG,
            expected,
            std::ptr::null::<libc::timespec>(),
        );
    }
    #[cfg(not(target_os = "linux"))]
    {
        // Portable spin-then-yield stand-in: wait (bounded) for the
        // value to change. Spurious returns are allowed by the futex
        // contract — every caller re-checks in a loop.
        let mut spin = asl_runtime::relax::Spin::new();
        for _ in 0..256 {
            if atom.load(Ordering::Relaxed) != expected {
                return;
            }
            spin.relax();
        }
    }
}

/// Wake up to `n` waiters blocked on `atom`. Returns the number woken
/// (always 0 on the portable fallback).
#[inline]
pub fn futex_wake(atom: &AtomicU32, n: i32) -> i32 {
    // Simulated waiters never kernel-wait (see futex_wait): nothing to
    // wake, and skipping the syscall keeps the schedule deterministic.
    if asl_runtime::substrate::installed_here() {
        return 0;
    }
    #[cfg(target_os = "linux")]
    unsafe {
        libc::syscall(
            libc::SYS_futex,
            atom as *const AtomicU32,
            libc::FUTEX_WAKE | libc::FUTEX_PRIVATE_FLAG,
            n,
        ) as i32
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (atom, n);
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wait_returns_when_value_differs() {
        let a = AtomicU32::new(1);
        // Value mismatch: futex_wait must return immediately.
        futex_wait(&a, 0);
    }

    #[test]
    fn wake_unblocks_waiter() {
        let a = Arc::new(AtomicU32::new(0));
        let a2 = a.clone();
        let h = std::thread::spawn(move || {
            while a2.load(Ordering::Acquire) == 0 {
                futex_wait(&a2, 0);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        a.store(1, Ordering::Release);
        futex_wake(&a, 1);
        h.join().unwrap();
    }

    #[test]
    fn wake_with_no_waiters_is_fine() {
        let a = AtomicU32::new(0);
        let _ = futex_wake(&a, 8);
    }
}
