//! Telemetry-fed stall watchdog.
//!
//! A stalled lock is the worst observability case: the counters stop
//! moving and the process just hangs. [`StallWatchdog`] runs a small
//! background sampler over probe closures (one per watched lock) and,
//! past a configurable hold or no-progress bound, dumps a diagnostic
//! snapshot — lock label, how long the hold has been open, waiter
//! count, admitted set — to stderr and to an in-process report list,
//! instead of hanging silently.
//!
//! Two conditions fire, each once per stall episode (they re-arm when
//! the condition clears):
//!
//! * **hold exceeded** — the in-flight hold
//!   ([`crate::telemetry::TelemetryCell::hold_started_ns`], surfaced
//!   through [`WatchSample::hold_started_ns`]) has been open longer
//!   than [`WatchdogConfig::hold_bound_ns`]. This is the
//!   holder-preempted / holder-looping case.
//! * **no progress** — waiters exist but the acquisition counter has
//!   not advanced for [`WatchdogConfig::wait_bound_ns`]. This is the
//!   lost-wakeup / stranded-queue case, which an in-flight hold alone
//!   cannot see.
//!
//! The sampler reads wall-clock time and runs on a plain OS thread —
//! it observes, it never participates in the locking protocol, so it
//! keeps working even when every workload thread is wedged (which is
//! the point).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use asl_runtime::clock::{ms, now_ns};

/// One probe reading: everything the watchdog needs to judge a lock,
/// gathered by the watch's closure so any lock family (telemetry
/// cell, GCR gate, delegation slots) can be watched without a common
/// trait.
#[derive(Clone, Debug, Default)]
pub struct WatchSample {
    /// Total acquisitions so far (the progress counter).
    pub acquisitions: u64,
    /// When the in-flight hold began ([`now_ns`] timeline), 0 if none
    /// is open — see
    /// [`crate::telemetry::TelemetryCell::hold_started_ns`].
    pub hold_started_ns: u64,
    /// Threads currently waiting (queue depth, passive length, …).
    pub waiters: u64,
    /// Human-readable admitted-set / holder description for the dump
    /// (e.g. `"active=3/4 passive=9"`).
    pub admitted: String,
}

/// Bounds and cadence for a [`StallWatchdog`].
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Fire when an in-flight hold exceeds this (ns).
    pub hold_bound_ns: u64,
    /// Fire when waiters exist but acquisitions have not advanced for
    /// this long (ns).
    pub wait_bound_ns: u64,
    /// Sampler period.
    pub poll: Duration,
}

impl Default for WatchdogConfig {
    /// A hold of 500ms or a second of waiter starvation is far past
    /// anything the harness workloads do on purpose.
    fn default() -> Self {
        WatchdogConfig {
            hold_bound_ns: ms(500),
            wait_bound_ns: ms(1_000),
            poll: Duration::from_millis(20),
        }
    }
}

/// What tripped a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// In-flight hold exceeded [`WatchdogConfig::hold_bound_ns`].
    HoldExceeded,
    /// Waiters present, no acquisition for
    /// [`WatchdogConfig::wait_bound_ns`].
    NoProgress,
}

/// One diagnostic snapshot dumped by the watchdog.
#[derive(Clone, Debug)]
pub struct StallReport {
    /// Label the watch was registered under.
    pub label: String,
    /// Which bound tripped.
    pub kind: StallKind,
    /// How long the offending condition had lasted when sampled (ns).
    pub stalled_ns: u64,
    /// Waiter count at sampling time.
    pub waiters: u64,
    /// Admitted-set / holder description at sampling time.
    pub admitted: String,
}

impl StallReport {
    /// The one-line diagnostic the sampler prints to stderr.
    pub fn render(&self) -> String {
        format!(
            "[watchdog] {}: {:?} for {}ms (waiters={}, admitted: {})",
            self.label,
            self.kind,
            self.stalled_ns / 1_000_000,
            self.waiters,
            if self.admitted.is_empty() {
                "?"
            } else {
                &self.admitted
            },
        )
    }
}

type Probe = Box<dyn Fn() -> WatchSample + Send + Sync>;

struct Watch {
    label: String,
    probe: Probe,
    last_acquisitions: u64,
    last_progress_ns: u64,
    hold_fired: bool,
    progress_fired: bool,
}

struct Shared {
    cfg: WatchdogConfig,
    watches: Mutex<Vec<Watch>>,
    reports: Mutex<Vec<StallReport>>,
    stalls: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    fn sample_all(&self) {
        let now = now_ns();
        let mut watches = self.watches.lock().unwrap();
        for w in watches.iter_mut() {
            let s = (w.probe)();
            // Hold bound: an open hold older than the bound.
            let hold_open_ns = match s.hold_started_ns {
                0 => 0,
                t => now.saturating_sub(t),
            };
            if hold_open_ns > self.cfg.hold_bound_ns {
                if !w.hold_fired {
                    w.hold_fired = true;
                    self.report(StallReport {
                        label: w.label.clone(),
                        kind: StallKind::HoldExceeded,
                        stalled_ns: hold_open_ns,
                        waiters: s.waiters,
                        admitted: s.admitted.clone(),
                    });
                }
            } else {
                w.hold_fired = false;
            }
            // Progress bound: waiters but no acquisitions.
            if s.acquisitions != w.last_acquisitions {
                w.last_acquisitions = s.acquisitions;
                w.last_progress_ns = now;
                w.progress_fired = false;
            } else if s.waiters > 0 {
                let stuck = now.saturating_sub(w.last_progress_ns);
                if stuck > self.cfg.wait_bound_ns && !w.progress_fired {
                    w.progress_fired = true;
                    self.report(StallReport {
                        label: w.label.clone(),
                        kind: StallKind::NoProgress,
                        stalled_ns: stuck,
                        waiters: s.waiters,
                        admitted: s.admitted,
                    });
                }
            } else {
                // Nobody waiting: an idle lock is not a stalled one.
                w.last_progress_ns = now;
                w.progress_fired = false;
            }
        }
    }

    fn report(&self, r: StallReport) {
        eprintln!("{}", r.render());
        self.stalls.fetch_add(1, Ordering::Relaxed);
        self.reports.lock().unwrap().push(r);
    }
}

/// The watchdog: register watches, read reports, stops (and joins its
/// sampler thread) on drop.
pub struct StallWatchdog {
    shared: Arc<Shared>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

impl StallWatchdog {
    /// Start a sampler with `cfg`.
    pub fn new(cfg: WatchdogConfig) -> Self {
        let shared = Arc::new(Shared {
            cfg,
            watches: Mutex::new(Vec::new()),
            reports: Mutex::new(Vec::new()),
            stalls: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let s = shared.clone();
        let sampler = std::thread::Builder::new()
            .name("stall-watchdog".into())
            .spawn(move || {
                while !s.stop.load(Ordering::Relaxed) {
                    s.sample_all();
                    std::thread::sleep(s.cfg.poll);
                }
            })
            .expect("spawn watchdog sampler");
        StallWatchdog {
            shared,
            sampler: Some(sampler),
        }
    }

    /// Watch a lock: `probe` is called once per sampling period and
    /// must be cheap and non-blocking (read counters, never take the
    /// watched lock).
    pub fn watch(
        &self,
        label: impl Into<String>,
        probe: impl Fn() -> WatchSample + Send + Sync + 'static,
    ) {
        self.shared.watches.lock().unwrap().push(Watch {
            label: label.into(),
            probe: Box::new(probe),
            last_acquisitions: 0,
            last_progress_ns: now_ns(),
            hold_fired: false,
            progress_fired: false,
        });
    }

    /// Stall episodes reported so far.
    pub fn stalls(&self) -> u64 {
        self.shared.stalls.load(Ordering::Relaxed)
    }

    /// Drain the accumulated reports.
    pub fn take_reports(&self) -> Vec<StallReport> {
        std::mem::take(&mut *self.shared.reports.lock().unwrap())
    }
}

impl Default for StallWatchdog {
    fn default() -> Self {
        Self::new(WatchdogConfig::default())
    }
}

impl Drop for StallWatchdog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryCell;
    use crate::{RawLock, TasLock};

    fn fast_cfg() -> WatchdogConfig {
        WatchdogConfig {
            hold_bound_ns: ms(20),
            wait_bound_ns: ms(30),
            poll: Duration::from_millis(5),
        }
    }

    #[test]
    fn quiet_lock_never_fires() {
        let dog = StallWatchdog::new(fast_cfg());
        let cell = Arc::new(TelemetryCell::sampled());
        let c = cell.clone();
        dog.watch("idle", move || WatchSample {
            acquisitions: c.snapshot().acquisitions,
            hold_started_ns: c.hold_started_ns(),
            waiters: 0,
            admitted: String::new(),
        });
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(dog.stalls(), 0);
    }

    #[test]
    fn long_hold_fires_once_and_rearms() {
        let dog = StallWatchdog::new(fast_cfg());
        let cell = Arc::new(TelemetryCell::sampled());
        let c = cell.clone();
        dog.watch("held", move || WatchSample {
            acquisitions: c.snapshot().acquisitions,
            hold_started_ns: c.hold_started_ns(),
            waiters: 0,
            admitted: "holder=test".into(),
        });
        cell.record_acquisition(false);
        cell.note_hold_start();
        std::thread::sleep(Duration::from_millis(120));
        cell.note_hold_end();
        let reports = dog.take_reports();
        assert_eq!(reports.len(), 1, "one episode, one report");
        assert_eq!(reports[0].kind, StallKind::HoldExceeded);
        assert_eq!(reports[0].label, "held");
        assert!(reports[0].stalled_ns > ms(20));
        assert_eq!(reports[0].admitted, "holder=test");
        // A second episode fires again.
        cell.record_acquisition(false);
        cell.note_hold_start();
        std::thread::sleep(Duration::from_millis(120));
        cell.note_hold_end();
        assert_eq!(dog.take_reports().len(), 1);
        assert_eq!(dog.stalls(), 2);
    }

    #[test]
    fn stranded_waiters_fire_no_progress() {
        let dog = StallWatchdog::new(fast_cfg());
        let lock = Arc::new(TasLock::new());
        let l = lock.clone();
        // Probe a genuinely wedged lock: held elsewhere, one waiter,
        // no telemetry hold visible (the holder bypassed
        // instrumentation) — only the no-progress condition can see
        // this.
        dog.watch("wedged", move || WatchSample {
            acquisitions: 0,
            hold_started_ns: 0,
            waiters: l.is_locked() as u64,
            admitted: format!("is_locked={}", l.is_locked()),
        });
        lock.lock();
        std::thread::sleep(Duration::from_millis(150));
        lock.unlock(());
        let reports = dog.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, StallKind::NoProgress);
        assert!(reports[0].waiters > 0);
    }

    #[test]
    fn progress_suppresses_no_progress_reports() {
        let dog = StallWatchdog::new(fast_cfg());
        let acq = Arc::new(AtomicU64::new(0));
        let a = acq.clone();
        dog.watch("busy", move || WatchSample {
            acquisitions: a.load(Ordering::Relaxed),
            hold_started_ns: 0,
            waiters: 5,
            admitted: String::new(),
        });
        // Keep the counter moving faster than the wait bound.
        for _ in 0..20 {
            acq.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(8));
        }
        assert_eq!(dog.stalls(), 0);
    }
}
