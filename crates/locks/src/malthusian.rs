//! Malthusian MCS lock (Dice, EuroSys 2017 \[35\]) — the long-term-fair
//! concurrency-restricting comparator of §2.2.
//!
//! Malthusian locking reduces contention by *culling* the waiting
//! queue: excess waiters are moved to a passive list and only a small
//! active set (holder plus one waiter) circulates the lock. Long-term
//! fairness is preserved by periodically reintroducing a passive
//! waiter at the head of the queue.
//!
//! The paper's §2.2 argues this long-term fairness is exactly what
//! fails on AMP: passive little-core waiters are periodically handed
//! the lock, putting their slow critical sections back on the critical
//! path, so Malthusian throughput collapses like MCS once little cores
//! join (`repro sec2-numa`).
//!
//! Implementation notes: the passive list is a holder-managed LIFO
//! (Dice's choice — LIFO keeps recently-run threads' caches warm);
//! culling happens on unlock when the queue holds at least two
//! waiters; reintroduction happens every `reintroduce_period`
//! handovers, which bounds passive-waiter starvation.

use std::cell::{RefCell, UnsafeCell};
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use crate::RawLock;

const WAITING: u32 = 1;
const GRANTED: u32 = 0;

/// Default handovers between passive-waiter reintroductions.
pub const DEFAULT_REINTRODUCE_PERIOD: u32 = 128;

/// Queue node; `next` doubles as the passive-list link while a node
/// is culled (it is relinked before any grant).
#[repr(align(64))]
struct MalNode {
    state: AtomicU32,
    next: AtomicPtr<MalNode>,
}

impl MalNode {
    fn new() -> Self {
        MalNode {
            state: AtomicU32::new(GRANTED),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

thread_local! {
    static FREELIST: RefCell<Vec<NonNull<MalNode>>> = const { RefCell::new(Vec::new()) };
}

fn take_node() -> NonNull<MalNode> {
    FREELIST
        .with(|f| f.borrow_mut().pop())
        .unwrap_or_else(|| NonNull::from(Box::leak(Box::new(MalNode::new()))))
}

fn put_node(node: NonNull<MalNode>) {
    FREELIST.with(|f| f.borrow_mut().push(node));
}

/// Token proving acquisition of a [`MalthusianLock`].
pub struct MalthusianToken(NonNull<MalNode>);

impl MalthusianToken {
    /// Encode as a raw word (for the object-safe lock facade).
    #[inline]
    pub fn into_raw(self) -> usize {
        self.0.as_ptr() as usize
    }

    /// Rebuild from a word produced by [`MalthusianToken::into_raw`].
    ///
    /// # Safety
    /// `raw` must come from `into_raw` on an unreleased token of the
    /// same lock.
    #[inline]
    pub unsafe fn from_raw(raw: usize) -> Self {
        MalthusianToken(NonNull::new_unchecked(raw as *mut MalNode))
    }
}

impl crate::plain::TokenWords for MalthusianToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (self.into_raw(), 0)
    }
    #[inline]
    unsafe fn from_words(a: usize, _b: usize) -> Self {
        Self::from_raw(a)
    }
}

/// Holder-managed culling state (only the lock holder touches it).
struct HolderState {
    /// LIFO of culled (passive) waiters, linked through `next`.
    passive_top: *mut MalNode,
    passive_len: usize,
    handovers: u32,
}

/// MCS with Malthusian culling and periodic reintroduction.
pub struct MalthusianLock {
    tail: AtomicPtr<MalNode>,
    holder: UnsafeCell<HolderState>,
    reintroduce_period: u32,
}

// SAFETY: `holder` is only accessed by the unique lock holder; the
// grant release/acquire edge orders holder transitions.
unsafe impl Send for MalthusianLock {}
unsafe impl Sync for MalthusianLock {}

impl MalthusianLock {
    /// New unlocked lock with the default reintroduction period.
    pub fn new() -> Self {
        Self::with_period(DEFAULT_REINTRODUCE_PERIOD)
    }

    /// New lock reintroducing one passive waiter every `period`
    /// handovers (must be ≥ 1).
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn with_period(period: u32) -> Self {
        assert!(period >= 1, "reintroduction period must be >= 1");
        MalthusianLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            holder: UnsafeCell::new(HolderState {
                passive_top: ptr::null_mut(),
                passive_len: 0,
                handovers: 0,
            }),
            reintroduce_period: period,
        }
    }

    /// The configured reintroduction period.
    pub fn reintroduce_period(&self) -> u32 {
        self.reintroduce_period
    }

    /// Number of culled waiters right now (holder's view; only
    /// meaningful while the caller holds the lock — used by tests).
    pub fn passive_len(&self) -> usize {
        unsafe { (*self.holder.get()).passive_len }
    }

    fn wait_for_link(node: NonNull<MalNode>) -> *mut MalNode {
        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            let next = unsafe { node.as_ref() }.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            spin.relax();
        }
    }

    #[inline]
    fn grant(n: *mut MalNode) {
        unsafe { (*n).state.store(GRANTED, Ordering::Release) };
    }
}

impl Default for MalthusianLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for MalthusianLock {
    type Token = MalthusianToken;

    #[inline]
    fn lock(&self) -> MalthusianToken {
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` is pinned until we store the link.
            let mut spin = asl_runtime::relax::Spin::new();
            unsafe {
                (*pred).next.store(node.as_ptr(), Ordering::Release);
                while node.as_ref().state.load(Ordering::Acquire) == WAITING {
                    spin.relax();
                }
            }
        }
        MalthusianToken(node)
    }

    #[inline]
    fn try_lock(&self) -> Option<MalthusianToken> {
        if !self.tail.load(Ordering::Relaxed).is_null() {
            return None;
        }
        let node = take_node();
        unsafe {
            node.as_ref().state.store(WAITING, Ordering::Relaxed);
            node.as_ref().next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        match self.tail.compare_exchange(
            ptr::null_mut(),
            node.as_ptr(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => Some(MalthusianToken(node)),
            Err(_) => {
                put_node(node);
                None
            }
        }
    }

    fn unlock(&self, token: MalthusianToken) {
        let node = token.0;
        // SAFETY (throughout): we are the holder; nodes are pinned by
        // their spinning owners until granted.
        unsafe {
            let h = &mut *self.holder.get();
            h.handovers += 1;
            let reintroduce_due =
                h.handovers >= self.reintroduce_period && !h.passive_top.is_null();

            let mut succ = node.as_ref().next.load(Ordering::Acquire);
            if succ.is_null() {
                if h.passive_top.is_null() {
                    // Nothing anywhere: close the queue and release.
                    if self
                        .tail
                        .compare_exchange(
                            node.as_ptr(),
                            ptr::null_mut(),
                            Ordering::Release,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        put_node(node);
                        return;
                    }
                    succ = Self::wait_for_link(node);
                } else {
                    // Queue drained but passive waiters exist: revive
                    // one so the lock is never parked while work waits.
                    // `top.next` must be cleared *before* the CAS
                    // publishes it as the tail — afterwards an arrival
                    // may already be linking behind it.
                    let top = h.passive_top;
                    let rest = (*top).next.load(Ordering::Relaxed);
                    (*top).next.store(ptr::null_mut(), Ordering::Relaxed);
                    if self
                        .tail
                        .compare_exchange(node.as_ptr(), top, Ordering::Release, Ordering::Relaxed)
                        .is_ok()
                    {
                        h.passive_top = rest;
                        h.passive_len -= 1;
                        h.handovers = 0;
                        Self::grant(top);
                        put_node(node);
                        return;
                    }
                    // CAS lost to a newcomer: restore the passive
                    // link (top stays culled) and take the normal
                    // path with the newcomer as successor.
                    (*top).next.store(rest, Ordering::Relaxed);
                    succ = Self::wait_for_link(node);
                }
            }

            if reintroduce_due {
                // Long-term fairness: splice one passive waiter in
                // front of the current successor and grant it.
                let top = h.passive_top;
                h.passive_top = (*top).next.load(Ordering::Relaxed);
                h.passive_len -= 1;
                h.handovers = 0;
                (*top).next.store(succ, Ordering::Relaxed);
                Self::grant(top);
                put_node(node);
                return;
            }

            // Culling: if at least two waiters are linked, move the
            // immediate successor to the passive list and grant the
            // one behind it, shrinking the active set.
            let succ2 = (*succ).next.load(Ordering::Acquire);
            if !succ2.is_null() {
                (*succ).next.store(h.passive_top, Ordering::Relaxed);
                h.passive_top = succ;
                h.passive_len += 1;
                Self::grant(succ2);
            } else {
                Self::grant(succ);
            }
            put_node(node);
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    const NAME: &'static str = "malthusian";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn basic() {
        let l = MalthusianLock::new();
        assert!(!l.is_locked());
        let t = l.lock();
        assert!(l.is_locked());
        l.unlock(t);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_lock_contended() {
        let l = MalthusianLock::new();
        let t = l.lock();
        assert!(l.try_lock().is_none());
        l.unlock(t);
        let t2 = l.try_lock().expect("free after unlock");
        l.unlock(t2);
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        let _ = MalthusianLock::with_period(0);
    }

    #[test]
    fn period_accessor() {
        assert_eq!(MalthusianLock::with_period(3).reintroduce_period(), 3);
        assert_eq!(
            MalthusianLock::new().reintroduce_period(),
            DEFAULT_REINTRODUCE_PERIOD
        );
    }

    /// Counter whose correctness requires mutual exclusion.
    #[derive(Default)]
    struct Counter(std::cell::UnsafeCell<u64>);
    // SAFETY: test-only; accessed under the lock under test.
    unsafe impl Sync for Counter {}
    unsafe impl Send for Counter {}
    impl Counter {
        fn bump(&self) {
            unsafe { *self.0.get() += 1 }
        }
        fn get(&self) -> u64 {
            unsafe { *self.0.get() }
        }
    }

    #[test]
    fn mutual_exclusion() {
        let l = Arc::new(MalthusianLock::new());
        let v = Arc::new(Counter::default());
        let mut handles = vec![];
        for _ in 0..8 {
            let l = l.clone();
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let t = l.lock();
                    v.bump();
                    l.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.get(), 160_000);
    }

    #[test]
    fn no_waiter_lost_under_churn() {
        // Every locker must eventually complete a fixed iteration
        // count even while culling and reintroduction shuffle the
        // queue aggressively (period 2 maximizes churn).
        let l = Arc::new(MalthusianLock::with_period(2));
        let done = Arc::new(AtomicU64::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let l = l.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    let t = l.lock();
                    std::hint::black_box(());
                    l.unlock(t);
                }
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn passive_list_empty_after_quiescence() {
        // After all threads finish, the last unlock must have drained
        // or revived every culled waiter: none may be stranded.
        let l = Arc::new(MalthusianLock::with_period(1_000_000));
        let mut handles = vec![];
        for _ in 0..6 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    let t = l.lock();
                    l.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!l.is_locked());
        assert_eq!(l.passive_len(), 0, "culled waiters were stranded");
    }
}
