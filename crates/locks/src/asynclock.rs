//! SLO-aware async mutexes: `lock().await` parks the waiter as a
//! queued [`Waker`], not a blocked OS thread.
//!
//! The thread locks in this crate spin or park a *thread* per waiter;
//! at 10⁵–10⁶ concurrent clients that is the scalability collapse the
//! serving literature warns about. The async layer keeps one small
//! wait node per parked *task* instead, and reuses the paper's
//! SLO-reordering idea for wake ordering:
//!
//! * [`AsyncMutex<T>`] — deadline-ordered (EDF) wake list. Each
//!   waiter's deadline is its arrival time plus a reorder window
//!   bounded by the lock's `slo_ns` (exactly the bound
//!   `ReorderableLock::lock_reorder` clamps to), so no waiter can be
//!   overtaken by more than `slo_ns` of later arrivals —
//!   starvation-free for the same reason the paper's standby queue
//!   is. [`AsyncMutex::lock_with_deadline`] lets a request carry its
//!   *generation-time* deadline (e.g. scheduled arrival + SLO) so an
//!   open-loop service equalizes response times across requests
//!   rather than lock-arrival times — that is where the p999 win over
//!   FIFO comes from.
//! * [`AsyncFifoMutex<T>`] — strict arrival-order baseline (what a
//!   fair thread mutex would do), for comparison.
//! * [`AsyncDynMutex<T>`] — policy chosen at runtime
//!   ([`AsyncPolicy`]), the bridge the harness registry uses to
//!   resolve `LockSpec` names to async locks.
//!
//! All three hand the lock over *directly*: release marks the chosen
//! wait node `GRANTED` and wakes it without ever making the lock
//! observably free, so there is no barging and wake order is grant
//! order. Lock futures are cancel-safe — dropping one mid-wait
//! unlinks its node under the queue lock; dropping one after it was
//! granted but before it was polled passes the grant on (or frees the
//! lock) instead of deadlocking. Guards release on drop, including
//! panic unwind.
//!
//! ```
//! use asl_locks::asynclock::AsyncMutex;
//! use asl_runtime::exec::block_on;
//!
//! let hits = AsyncMutex::new(0u64);
//! block_on(async {
//!     *hits.lock().await += 1;
//!     assert_eq!(*hits.lock().await, 1);
//! });
//! ```

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use asl_runtime::clock;

/// Wake-ordering policy for an [`AsyncDynMutex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncPolicy {
    /// Strict arrival order (fair FIFO baseline).
    Fifo,
    /// Deadline order with the reorder window bounded by `slo_ns`
    /// (`u64::MAX` ≈ maximum window).
    Slo {
        /// Reorder-window bound in nanoseconds.
        slo_ns: u64,
    },
}

/// Waiting in the queue; cancel unlinks, release grants.
const W_QUEUED: u8 = 0;
/// Chosen by a release; owns the lock once polled (or via cancel).
const W_GRANTED: u8 = 1;
/// The future observed the grant and returned `Ready`.
const W_CLAIMED: u8 = 2;

struct WaitNode {
    state: AtomicU8,
}

struct Queue {
    /// Ground truth for "is the lock held". Stays `true` across a
    /// direct handoff.
    locked: bool,
    /// Wait list keyed by `(deadline_ns, seq)`: FIFO futures use
    /// deadline 0 so ordering degenerates to the arrival sequence;
    /// SLO futures use their bounded absolute deadline (EDF).
    waiters: BTreeMap<(u64, u64), (Arc<WaitNode>, Waker)>,
}

/// The policy-agnostic core: an async lock word plus the wait queue.
struct RawAsyncLock {
    inner: Mutex<Queue>,
    /// Arrival sequence for queue keys (ties and FIFO order).
    seq: AtomicU64,
    policy: AsyncPolicy,
}

impl RawAsyncLock {
    fn new(policy: AsyncPolicy) -> Self {
        RawAsyncLock {
            inner: Mutex::new(Queue {
                locked: false,
                waiters: BTreeMap::new(),
            }),
            seq: AtomicU64::new(0),
            policy,
        }
    }

    /// Queue key for a waiter arriving now with an optional explicit
    /// deadline. The window is always bounded by the policy's
    /// `slo_ns` — the same starvation-freedom clamp as
    /// `ReorderableLock::lock_reorder`.
    fn key(&self, deadline_ns: Option<u64>) -> (u64, u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        match self.policy {
            AsyncPolicy::Fifo => (0, seq),
            AsyncPolicy::Slo { slo_ns } => {
                let bound = clock::coarse_now_ns().saturating_add(slo_ns);
                (deadline_ns.unwrap_or(bound).min(bound), seq)
            }
        }
    }

    /// Release: hand off to the earliest-keyed waiter (the lock stays
    /// `locked` across the handoff — no barging), or mark free.
    fn unlock(&self) {
        let mut q = self.inner.lock().unwrap();
        debug_assert!(q.locked, "unlock of an unheld async lock");
        if let Some((&key, _)) = q.waiters.iter().next() {
            let (node, waker) = q.waiters.remove(&key).expect("first key present");
            node.state.store(W_GRANTED, Ordering::Release);
            drop(q);
            waker.wake();
        } else {
            q.locked = false;
        }
    }

    fn try_lock(&self) -> bool {
        let mut q = self.inner.lock().unwrap();
        if q.locked {
            false
        } else {
            q.locked = true;
            true
        }
    }

    fn is_locked(&self) -> bool {
        self.inner.lock().unwrap().locked
    }

    fn waiters(&self) -> usize {
        self.inner.lock().unwrap().waiters.len()
    }
}

/// Future returned by the async lock methods. Cancel-safe: see the
/// module docs.
struct RawLockFuture<'a> {
    raw: &'a RawAsyncLock,
    deadline_ns: Option<u64>,
    /// `Some` once enqueued; the key locates the node for waker
    /// refresh and cancellation.
    node: Option<(Arc<WaitNode>, (u64, u64))>,
}

impl Future for RawLockFuture<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        match &this.node {
            None => {
                let mut q = this.raw.inner.lock().unwrap();
                if !q.locked {
                    q.locked = true;
                    return Poll::Ready(());
                }
                let key = this.raw.key(this.deadline_ns);
                let node = Arc::new(WaitNode {
                    state: AtomicU8::new(W_QUEUED),
                });
                q.waiters.insert(key, (node.clone(), cx.waker().clone()));
                this.node = Some((node, key));
                Poll::Pending
            }
            Some((node, key)) => {
                // The queue lock orders this read against release's
                // GRANTED store + removal.
                let mut q = this.raw.inner.lock().unwrap();
                if node.state.load(Ordering::Acquire) == W_GRANTED {
                    node.state.store(W_CLAIMED, Ordering::Release);
                    return Poll::Ready(());
                }
                // Spurious poll while still queued: refresh the waker.
                if let Some(entry) = q.waiters.get_mut(key) {
                    entry.1 = cx.waker().clone();
                }
                Poll::Pending
            }
        }
    }
}

impl Drop for RawLockFuture<'_> {
    fn drop(&mut self) {
        let Some((node, key)) = self.node.take() else {
            return; // never enqueued (or completed on first poll)
        };
        match node.state.load(Ordering::Acquire) {
            // Claimed: ownership moved to a guard; nothing to undo.
            W_CLAIMED => {}
            // Still queued: unlink so the slot is not leaked.
            W_QUEUED => {
                let mut q = self.raw.inner.lock().unwrap();
                // Re-check under the lock: a concurrent release may
                // have granted us in the meantime (and removed the
                // entry). If removal succeeds we were still queued.
                if q.waiters.remove(&key).is_none()
                    && node.state.load(Ordering::Acquire) == W_GRANTED
                {
                    // Granted after our first check: we own the lock
                    // but will never claim it — pass it on.
                    drop(q);
                    self.raw.unlock();
                }
            }
            // Granted but never polled again: we own the lock; pass
            // it on (or free it) instead of leaking the acquisition.
            W_GRANTED => self.raw.unlock(),
            s => unreachable!("wait node state {s}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Data-carrying mutexes
// ---------------------------------------------------------------------------

macro_rules! common_mutex_impl {
    ($name:ident) => {
        impl<T> $name<T> {
            /// Acquire without waiting, if free.
            pub fn try_lock(&self) -> Option<AsyncGuard<'_, T>> {
                // `then`, not `then_some`: constructing a guard is
                // effectful (its drop releases), so it must only
                // exist when the acquisition succeeded.
                self.raw.try_lock().then(|| AsyncGuard { mutex: self })
            }

            /// Whether the lock is currently held (racy diagnostic).
            pub fn is_locked(&self) -> bool {
                self.raw.is_locked()
            }

            /// Number of parked waiters (racy diagnostic).
            pub fn waiters(&self) -> usize {
                self.raw.waiters()
            }

            /// Consume the mutex, returning the protected value.
            pub fn into_inner(self) -> T {
                self.data.into_inner()
            }

            /// Exclusive access without locking (`&mut self` proves
            /// no other handle exists).
            pub fn get_mut(&mut self) -> &mut T {
                self.data.get_mut()
            }
        }

        // SAFETY: standard mutex reasoning — the protected value
        // moves across threads with the lock (`T: Send`); `&$name<T>`
        // only hands out `&T`/`&mut T` under mutual exclusion, and
        // unlike thread locks the guard may be dropped on a different
        // worker thread than the one that acquired it, which is fine
        // because release is just queue-mutex operations.
        unsafe impl<T: Send> Send for $name<T> {}
        unsafe impl<T: Send> Sync for $name<T> {}
    };
}

/// SLO-aware async mutex: deadline-ordered wakes with the reorder
/// window bounded by `slo_ns` (see the module docs).
pub struct AsyncMutex<T> {
    raw: RawAsyncLock,
    data: UnsafeCell<T>,
}

impl<T> AsyncMutex<T> {
    /// Default reorder-window bound when none is given: 100µs, the
    /// same order as the paper's hand-tuned SLOs (Bench-1 uses 70µs).
    pub const DEFAULT_SLO_NS: u64 = 100_000;

    /// New mutex with the default SLO bound.
    pub fn new(value: T) -> Self {
        Self::with_slo(value, Self::DEFAULT_SLO_NS)
    }

    /// New mutex with an explicit reorder-window bound (ns).
    pub fn with_slo(value: T, slo_ns: u64) -> Self {
        AsyncMutex {
            raw: RawAsyncLock::new(AsyncPolicy::Slo { slo_ns }),
            data: UnsafeCell::new(value),
        }
    }

    /// The reorder-window bound (ns).
    pub fn slo_ns(&self) -> u64 {
        match self.raw.policy {
            AsyncPolicy::Slo { slo_ns } => slo_ns,
            AsyncPolicy::Fifo => unreachable!("AsyncMutex is always SLO-policied"),
        }
    }

    /// Acquire; the waiter's deadline is its arrival time plus the
    /// SLO bound.
    pub fn lock(&self) -> AsyncLockFuture<'_, T> {
        self.lock_inner(None)
    }

    /// Acquire with an explicit absolute deadline (ns, same clock as
    /// `asl_runtime::clock`). The effective deadline is still bounded
    /// by arrival + `slo_ns`, so a request that is already past its
    /// deadline goes to the head of the queue but cannot push others
    /// out by more than the SLO window.
    pub fn lock_with_deadline(&self, deadline_ns: u64) -> AsyncLockFuture<'_, T> {
        self.lock_inner(Some(deadline_ns))
    }

    fn lock_inner(&self, deadline_ns: Option<u64>) -> AsyncLockFuture<'_, T> {
        AsyncLockFuture {
            fut: RawLockFuture {
                raw: &self.raw,
                deadline_ns,
                node: None,
            },
            mutex: self,
        }
    }
}

common_mutex_impl!(AsyncMutex);

/// Strict arrival-order async mutex — the FIFO baseline the SLO-aware
/// [`AsyncMutex`] is compared against.
pub struct AsyncFifoMutex<T> {
    raw: RawAsyncLock,
    data: UnsafeCell<T>,
}

impl<T> AsyncFifoMutex<T> {
    /// New FIFO mutex.
    pub fn new(value: T) -> Self {
        AsyncFifoMutex {
            raw: RawAsyncLock::new(AsyncPolicy::Fifo),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquire in arrival order.
    pub fn lock(&self) -> AsyncFifoLockFuture<'_, T> {
        AsyncFifoLockFuture {
            fut: RawLockFuture {
                raw: &self.raw,
                deadline_ns: None,
                node: None,
            },
            mutex: self,
        }
    }
}

common_mutex_impl!(AsyncFifoMutex);

/// Async mutex with the wake-ordering policy chosen at runtime — the
/// registry bridge (`LockSpec` names resolve to an [`AsyncPolicy`],
/// FIFO-ordered specs to [`AsyncPolicy::Fifo`], LibASL specs to
/// [`AsyncPolicy::Slo`] with their SLO).
pub struct AsyncDynMutex<T> {
    raw: RawAsyncLock,
    data: UnsafeCell<T>,
}

impl<T> AsyncDynMutex<T> {
    /// New mutex under the given policy.
    pub fn new(policy: AsyncPolicy, value: T) -> Self {
        AsyncDynMutex {
            raw: RawAsyncLock::new(policy),
            data: UnsafeCell::new(value),
        }
    }

    /// The wake-ordering policy.
    pub fn policy(&self) -> AsyncPolicy {
        self.raw.policy
    }

    /// Acquire (arrival-deadline under SLO policy, arrival order
    /// under FIFO).
    pub fn lock(&self) -> AsyncDynLockFuture<'_, T> {
        self.lock_inner(None)
    }

    /// Acquire with an explicit absolute deadline; under the FIFO
    /// policy the deadline is ignored (arrival order).
    pub fn lock_with_deadline(&self, deadline_ns: u64) -> AsyncDynLockFuture<'_, T> {
        self.lock_inner(Some(deadline_ns))
    }

    fn lock_inner(&self, deadline_ns: Option<u64>) -> AsyncDynLockFuture<'_, T> {
        AsyncDynLockFuture {
            fut: RawLockFuture {
                raw: &self.raw,
                deadline_ns,
                node: None,
            },
            mutex: self,
        }
    }
}

common_mutex_impl!(AsyncDynMutex);

// ---------------------------------------------------------------------------
// Lock futures and the guard
// ---------------------------------------------------------------------------

macro_rules! lock_future_impl {
    ($future:ident, $mutex:ident) => {
        impl<'a, T> Future for $future<'a, T> {
            type Output = AsyncGuard<'a, T>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                // All fields are `Unpin` (references and plain data,
                // no self-references), so projection is safe.
                let this = self.get_mut();
                match Pin::new(&mut this.fut).poll(cx) {
                    Poll::Ready(()) => Poll::Ready(AsyncGuard { mutex: this.mutex }),
                    Poll::Pending => Poll::Pending,
                }
            }
        }
    };
}

/// Future returned by [`AsyncMutex::lock`] /
/// [`AsyncMutex::lock_with_deadline`].
#[must_use = "futures do nothing unless awaited"]
pub struct AsyncLockFuture<'a, T> {
    fut: RawLockFuture<'a>,
    mutex: &'a AsyncMutex<T>,
}
lock_future_impl!(AsyncLockFuture, AsyncMutex);

/// Future returned by [`AsyncFifoMutex::lock`].
#[must_use = "futures do nothing unless awaited"]
pub struct AsyncFifoLockFuture<'a, T> {
    fut: RawLockFuture<'a>,
    mutex: &'a AsyncFifoMutex<T>,
}
lock_future_impl!(AsyncFifoLockFuture, AsyncFifoMutex);

/// Future returned by [`AsyncDynMutex::lock`] /
/// [`AsyncDynMutex::lock_with_deadline`].
#[must_use = "futures do nothing unless awaited"]
pub struct AsyncDynLockFuture<'a, T> {
    fut: RawLockFuture<'a>,
    mutex: &'a AsyncDynMutex<T>,
}
lock_future_impl!(AsyncDynLockFuture, AsyncDynMutex);

/// RAII guard over any of the async mutexes: derefs to the protected
/// value, releases (with a direct handoff to the next waiter) on
/// drop — including panic unwind.
#[must_use = "the lock releases as soon as the guard drops"]
pub struct AsyncGuard<'a, T> {
    mutex: &'a dyn GuardTarget<T>,
}

/// Internal object-safe view the guard releases through (one guard
/// type for all three mutexes).
trait GuardTarget<T> {
    fn raw(&self) -> &RawAsyncLock;
    fn data(&self) -> &UnsafeCell<T>;
}

macro_rules! guard_target_impl {
    ($name:ident) => {
        impl<T> GuardTarget<T> for $name<T> {
            fn raw(&self) -> &RawAsyncLock {
                &self.raw
            }
            fn data(&self) -> &UnsafeCell<T> {
                &self.data
            }
        }
    };
}
guard_target_impl!(AsyncMutex);
guard_target_impl!(AsyncFifoMutex);
guard_target_impl!(AsyncDynMutex);

impl<T> Deref for AsyncGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive acquisition.
        unsafe { &*self.mutex.data().get() }
    }
}

impl<T> DerefMut for AsyncGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, and `&mut self` prevents aliasing.
        unsafe { &mut *self.mutex.data().get() }
    }
}

impl<T> Drop for AsyncGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.raw().unlock();
    }
}

// SAFETY: a guard held across an `.await` migrates between executor
// workers with its task, so it must be `Send` when the data is; the
// release path is thread-agnostic (queue-mutex operations only).
unsafe impl<T: Send> Send for AsyncGuard<'_, T> {}
// SAFETY: `&AsyncGuard` only exposes `&T`.
unsafe impl<T: Send + Sync> Sync for AsyncGuard<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use asl_runtime::exec::{block_on, Executor};

    #[test]
    fn uncontended_roundtrip() {
        let m = AsyncMutex::new(1u64);
        block_on(async {
            *m.lock().await += 41;
        });
        assert_eq!(block_on(async { *m.lock().await }), 42);
        assert!(!m.is_locked());
        assert_eq!(m.waiters(), 0);
    }

    #[test]
    fn try_lock_and_introspection() {
        let m = AsyncFifoMutex::new(5u32);
        let g = m.try_lock().expect("free");
        assert!(m.is_locked());
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(!m.is_locked());
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn get_mut_skips_locking() {
        let mut m = AsyncMutex::new(3u8);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 4);
    }

    #[test]
    fn contended_increments_on_executor() {
        let exec = Executor::new(4);
        let m = Arc::new(AsyncMutex::new(0u64));
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let m = m.clone();
                exec.spawn(async move {
                    for _ in 0..100 {
                        *m.lock().await += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(*m.try_lock().expect("all released"), 6_400);
    }

    #[test]
    fn dyn_mutex_both_policies() {
        for policy in [AsyncPolicy::Fifo, AsyncPolicy::Slo { slo_ns: 1_000 }] {
            let m = AsyncDynMutex::new(policy, 0u64);
            assert_eq!(m.policy(), policy);
            block_on(async {
                *m.lock().await += 1;
                *m.lock_with_deadline(123).await += 1;
            });
            assert_eq!(m.into_inner(), 2);
        }
    }
}
