//! TTAS spinlock with bounded exponential back-off.
//!
//! §3.4 of the paper notes that among little cores LibASL "behaves
//! similarly to the backoff spinlock"; this is that lock, and it also
//! serves as the contention-reduction reference in the ablation
//! benches.

use std::sync::atomic::{AtomicBool, Ordering};

use asl_runtime::work::execute_raw_units;

use crate::RawLock;

/// TTAS lock with binary exponential back-off between attempts.
pub struct BackoffLock {
    locked: AtomicBool,
    min_units: u64,
    max_units: u64,
}

impl BackoffLock {
    /// Default back-off bounds (64 .. 8192 raw units).
    pub fn new() -> Self {
        Self::with_bounds(64, 8192)
    }

    /// Custom back-off bounds.
    pub fn with_bounds(min_units: u64, max_units: u64) -> Self {
        assert!(min_units > 0 && max_units >= min_units);
        BackoffLock {
            locked: AtomicBool::new(false),
            min_units,
            max_units,
        }
    }
}

impl Default for BackoffLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for BackoffLock {
    type Token = ();

    #[inline]
    fn lock(&self) {
        let mut backoff = self.min_units;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            execute_raw_units(backoff);
            backoff = (backoff * 2).min(self.max_units);
            let mut spin = asl_runtime::relax::Spin::new();
            while self.locked.load(Ordering::Relaxed) {
                spin.relax();
            }
        }
    }

    #[inline]
    fn try_lock(&self) -> Option<()> {
        (!self.locked.swap(true, Ordering::Acquire)).then_some(())
    }

    #[inline]
    fn unlock(&self, _t: ()) {
        self.locked.store(false, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    const NAME: &'static str = "backoff";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic() {
        let l = BackoffLock::new();
        l.lock();
        assert!(l.is_locked());
        assert!(l.try_lock().is_none());
        l.unlock(());
        assert!(!l.is_locked());
    }

    #[test]
    #[should_panic]
    fn rejects_zero_min() {
        let _ = BackoffLock::with_bounds(0, 10);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_bounds() {
        let _ = BackoffLock::with_bounds(100, 10);
    }
}
