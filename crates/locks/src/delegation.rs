//! Delegation-lock core: the op-apply [`DelegationLock`] interface,
//! the shared publication-slot machinery, and the registry bridge.
//!
//! Delegation locks never migrate the lock to the waiter — waiters
//! ship their critical section (an `Op` value) to whichever thread
//! currently *executes* (a combiner or a dedicated server), which
//! applies it against the protected state and ships the result back.
//! The paper's §5 positions this family as the main alternative to
//! SLO-aware reordering: it hides slow cores (the executor can sit on
//! a big core) at the cost of converting critical sections into
//! operations.
//!
//! Four implementations share this interface:
//!
//! * [`FlatCombiner`](crate::flatcomb::FlatCombiner) — publication
//!   array scanned by an opportunistic combiner (Hendler et al.).
//! * [`CcSynch`](crate::ccsynch::CcSynch) — combining *queue*: the
//!   combiner walks only announced requests and hands the role off
//!   cache-locally (Fatourou & Kallimanis).
//! * [`RclLock`](crate::rcl::RclLock) — RCL-style client/server lock:
//!   a dedicated server thread polls per-client padded slots.
//! * [`FcBan`](crate::fcban::FcBan) — usage-fair banning combiner:
//!   threads whose cumulative critical-section time exceeds their
//!   proportional share are banned for the overage before they may
//!   submit again.
//!
//! The hot path is allocation-free everywhere: `Op`/`Out` values move
//! through preallocated cache-padded slots (or queue nodes), never
//! boxed closures.
//!
//! ```
//! use asl_locks::ccsynch::CcSynch;
//!
//! // Shared state `u64`, operation `u64`, result `u64`.
//! let counter = CcSynch::new(0u64, |v: &mut u64, add: u64| {
//!     *v += add;
//!     *v
//! });
//! let h = counter.try_register().expect("slot");
//! assert_eq!(h.apply(5), 5);
//! assert_eq!(h.apply(2), 7);
//! ```
//!
//! # Panics inside delegated operations
//!
//! A delegated `Op` that panics is *caught on the executor*, which
//! marks the request poisoned and keeps serving everyone else — the
//! combiner/server never wedges. The panic then re-raises on the
//! *submitting* thread as `"delegated operation panicked"` (the
//! original payload stays on the executor's side; transporting it
//! would allocate on the hot path). The protected state keeps
//! whatever partial mutation the op made — the same caveat as
//! [`std::sync::Mutex`] poisoning, minus the sticky flag.
//!
//! # The registry bridge
//!
//! [`DelegatedMutex`] adapts any delegation lock whose op type is
//! [`BridgeOp`] into a [`PlainLock`], so delegation locks are
//! addressable from the harness registry (`repro --lock ccsynch`)
//! and usable behind RAII guards. The bridge runs a generic
//! acquire/release critical section as a pair of delegated
//! operations: a `Lock` op that transfers a baton to the caller (the
//! executor never blocks in an op), and an `Unlock` op that returns
//! it. This preserves each algorithm's submission mechanics but not
//! its batching benefit — real users should delegate whole
//! operations via [`DelegationHandle::apply`].

use std::any::Any;
use std::cell::{RefCell, UnsafeCell};
use std::collections::HashMap;
use std::fmt;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::plain::{PlainLock, PlainToken};

/// Max participants a delegation structure supports (one padded slot
/// or queue node each). Claiming more reports [`SlotsExhausted`].
pub const MAX_SLOTS: usize = 64;

/// A delegation structure ran out of participant slots: more than
/// [`MAX_SLOTS`] handles were claimed over the structure's lifetime.
///
/// Slots are never recycled (a handle's slot stays claimed even after
/// the handle drops — reclaiming would race the executor's scan), so
/// long-lived structures should register once per thread and reuse
/// the handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotsExhausted {
    /// The participant cap that was hit ([`MAX_SLOTS`]).
    pub limit: usize,
}

impl fmt::Display for SlotsExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delegation slots exhausted: more than {} participants registered \
             (register once per thread and reuse the handle)",
            self.limit
        )
    }
}

impl std::error::Error for SlotsExhausted {}

/// Claim the next free slot index, or report exhaustion. The counter
/// never passes [`MAX_SLOTS`], so a failed claim cannot corrupt a
/// neighbouring slot (the silent-overflow bug this replaces).
pub(crate) fn claim_slot(next_slot: &AtomicUsize) -> Result<usize, SlotsExhausted> {
    next_slot
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            (n < MAX_SLOTS).then_some(n + 1)
        })
        .map_err(|_| SlotsExhausted { limit: MAX_SLOTS })
}

pub(crate) const SLOT_EMPTY: u32 = 0;
pub(crate) const SLOT_PENDING: u32 = 1;
pub(crate) const SLOT_DONE: u32 = 2;
/// The op panicked on the executor; no result was written.
pub(crate) const SLOT_PANICKED: u32 = 3;

/// One publication slot, cache-line padded: the owner writes `op`,
/// flips `seq` to PENDING, and spins for DONE (or PANICKED); the
/// executor does the reverse.
#[repr(align(128))]
pub(crate) struct Slot<Op, Out> {
    pub(crate) seq: AtomicU32,
    pub(crate) op: UnsafeCell<MaybeUninit<Op>>,
    pub(crate) out: UnsafeCell<MaybeUninit<Out>>,
}

// SAFETY: `op`/`out` accesses are ordered by the `seq` protocol.
unsafe impl<Op: Send, Out: Send> Send for Slot<Op, Out> {}
unsafe impl<Op: Send, Out: Send> Sync for Slot<Op, Out> {}

impl<Op, Out> Slot<Op, Out> {
    pub(crate) fn new() -> Self {
        Slot {
            seq: AtomicU32::new(SLOT_EMPTY),
            op: UnsafeCell::new(MaybeUninit::uninit()),
            out: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Publish `op` for the executor (EMPTY → PENDING).
    ///
    /// # Safety
    /// The calling thread must own this slot and the slot must be
    /// EMPTY (no outstanding publication).
    pub(crate) unsafe fn publish(&self, op: Op) {
        (*self.op.get()).write(op);
        self.seq.store(SLOT_PENDING, Ordering::Release);
    }

    /// Execute a PENDING slot's op against `data`, catching a panic
    /// so the executor survives (DONE on success, PANICKED on panic —
    /// the submitter re-raises).
    ///
    /// # Safety
    /// Caller must be the sole executor (exclusive access to `data`)
    /// and have observed `seq == PENDING` with acquire ordering.
    pub(crate) unsafe fn execute<T, F: Fn(&mut T, Op) -> Out>(&self, data: *mut T, apply: &F) {
        let op = (*self.op.get()).assume_init_read();
        match catch_unwind(AssertUnwindSafe(|| apply(&mut *data, op))) {
            Ok(out) => {
                (*self.out.get()).write(out);
                self.seq.store(SLOT_DONE, Ordering::Release);
            }
            Err(payload) => {
                // The payload cannot ride the preallocated slot
                // without boxing; drop it here and re-raise a fresh
                // panic on the submitter.
                drop(payload);
                self.seq.store(SLOT_PANICKED, Ordering::Release);
            }
        }
    }

    /// Consume a finished slot (`seq` observed DONE or PANICKED with
    /// acquire ordering): reset to EMPTY and return the result,
    /// re-raising a delegated panic.
    ///
    /// # Safety
    /// The calling thread must own this slot.
    pub(crate) unsafe fn take_result(&self, seq: u32) -> Out {
        self.seq.store(SLOT_EMPTY, Ordering::Relaxed);
        if seq == SLOT_PANICKED {
            panic!("delegated operation panicked");
        }
        debug_assert_eq!(seq, SLOT_DONE);
        (*self.out.get()).assume_init_read()
    }
}

/// A lock whose critical sections are *delegated*: participants
/// register once (claiming a padded slot or queue node) and then
/// submit operations through their [`DelegationHandle`].
///
/// Implemented by [`FlatCombiner`](crate::flatcomb::FlatCombiner),
/// [`DedicatedServer`](crate::flatcomb::DedicatedServer),
/// [`CcSynch`](crate::ccsynch::CcSynch),
/// [`RclLock`](crate::rcl::RclLock) and
/// [`FcBan`](crate::fcban::FcBan).
pub trait DelegationLock: Send + Sync {
    /// The operation shipped to the executor.
    type Op: Send;
    /// The result shipped back.
    type Out: Send;
    /// Per-participant submission handle.
    type Handle: DelegationHandle<Op = Self::Op, Out = Self::Out> + 'static;

    /// Claim a participant slot (call once per thread; the handle is
    /// reused for every submission).
    fn try_register(&self) -> Result<Self::Handle, SlotsExhausted>;

    /// Implementation name for reports (`"ccsynch"`, `"rcl"`, ...).
    fn delegation_name(&self) -> &'static str;
}

/// A registered participant of a [`DelegationLock`]: submits one
/// operation at a time and blocks until its result is back.
pub trait DelegationHandle: Send {
    /// The operation shipped to the executor.
    type Op: Send;
    /// The result shipped back.
    type Out: Send;

    /// Apply `op` to the protected state (possibly becoming the
    /// executor) and return its result.
    ///
    /// # Panics
    /// Re-raises (as a fresh panic) if the delegated op panicked on
    /// the executor.
    fn apply(&self, op: Self::Op) -> Self::Out;
}

/// The operation type of the generic critical-section bridge: a
/// baton-transfer protocol the executor can run without blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeOp {
    /// Try to take the baton for `owner` (a process-unique thread
    /// tag). Succeeds iff the baton is free.
    Lock {
        /// Process-unique tag of the acquiring thread.
        owner: u64,
    },
    /// Return the baton held by `owner`.
    Unlock {
        /// The tag that acquired.
        owner: u64,
    },
}

/// Build the apply function of a bridge: the protected state is the
/// baton (`0` = free, else the holder's thread tag); `mirror` tracks
/// held-ness for the lock-free [`PlainLock::held`] probe.
pub fn bridge_apply(
    mirror: Arc<AtomicBool>,
) -> impl Fn(&mut u64, BridgeOp) -> bool + Send + Sync + 'static {
    move |baton, op| match op {
        BridgeOp::Lock { owner } => {
            if *baton == 0 {
                *baton = owner;
                mirror.store(true, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
        BridgeOp::Unlock { owner } => {
            debug_assert_eq!(*baton, owner, "bridge unlock by non-holder");
            *baton = 0;
            mirror.store(false, Ordering::Relaxed);
            true
        }
    }
}

static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);
static NEXT_MUTEX_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Process-unique tag for the bridge's baton (0 is "free").
    static THREAD_TAG: u64 = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
    /// This thread's registered handle per [`DelegatedMutex`]
    /// instance, keyed by the mutex's process-unique id. Entries are
    /// retained for the thread's lifetime (a handle per delegated
    /// lock the thread ever touched) — registration is once per
    /// (thread, lock), as the slot cap requires.
    static BRIDGE_HANDLES: RefCell<HashMap<u64, Box<dyn Any>>> =
        RefCell::new(HashMap::new());
}

/// [`PlainLock`] adapter over any delegation lock speaking
/// [`BridgeOp`]: generic acquire/release critical sections run as
/// delegated baton transfers, making every delegation lock
/// addressable from the harness registry and the guard API.
///
/// `acquire` retries the `Lock` op (with backoff) until the baton is
/// granted; mutual exclusion comes from the delegation structure
/// serializing ops. Handles are cached per thread automatically.
///
/// # Panics
/// Acquiring from more than [`MAX_SLOTS`] distinct threads panics
/// with [`SlotsExhausted`] (the `PlainLock` interface has no error
/// channel; delegate via [`DelegationLock::try_register`] directly to
/// handle exhaustion).
pub struct DelegatedMutex<L: DelegationLock<Op = BridgeOp, Out = bool>> {
    inner: L,
    mirror: Arc<AtomicBool>,
    name: &'static str,
    id: u64,
    /// Owned attachments dropped with the mutex (e.g. the RCL server
    /// lifecycle guard, which stops and joins the server thread).
    _attachment: Option<Box<dyn Any + Send + Sync>>,
}

impl<L: DelegationLock<Op = BridgeOp, Out = bool> + 'static> DelegatedMutex<L> {
    /// Bridge `inner` under `name`; `mirror` must be the cell given
    /// to [`bridge_apply`] when `inner` was constructed.
    pub fn new(name: &'static str, inner: L, mirror: Arc<AtomicBool>) -> Self {
        DelegatedMutex {
            inner,
            mirror,
            name,
            id: NEXT_MUTEX_ID.fetch_add(1, Ordering::Relaxed),
            _attachment: None,
        }
    }

    /// Tie `attachment`'s lifetime to the mutex (dropped with it).
    pub fn keep_alive(mut self, attachment: impl Any + Send + Sync) -> Self {
        self._attachment = Some(Box::new(attachment));
        self
    }

    /// The bridged delegation lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    fn apply_bridge(&self, op: BridgeOp) -> bool {
        BRIDGE_HANDLES.with(|m| {
            let mut m = m.borrow_mut();
            let h = m
                .entry(self.id)
                .or_insert_with(|| {
                    let h = self
                        .inner
                        .try_register()
                        .unwrap_or_else(|e| panic!("{}: {e}", self.name));
                    Box::new(h)
                })
                .downcast_ref::<L::Handle>()
                .expect("bridge handle type");
            h.apply(op)
        })
    }
}

impl<L: DelegationLock<Op = BridgeOp, Out = bool> + 'static> PlainLock for DelegatedMutex<L> {
    fn acquire(&self) -> PlainToken {
        let owner = THREAD_TAG.with(|t| *t);
        let mut spin = asl_runtime::relax::Spin::new();
        while !self.apply_bridge(BridgeOp::Lock { owner }) {
            spin.relax();
        }
        PlainToken::issue(self, owner as usize, 0)
    }

    fn try_acquire(&self) -> Option<PlainToken> {
        let owner = THREAD_TAG.with(|t| *t);
        self.apply_bridge(BridgeOp::Lock { owner })
            .then(|| PlainToken::issue(self, owner as usize, 0))
    }

    fn release(&self, token: PlainToken) {
        let (owner, _) = token.redeem(self);
        self.apply_bridge(BridgeOp::Unlock {
            owner: owner as u64,
        });
    }

    fn held(&self) -> bool {
        self.mirror.load(Ordering::Relaxed)
    }

    fn lock_name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_exhausted_reports_limit() {
        let next = AtomicUsize::new(0);
        for i in 0..MAX_SLOTS {
            assert_eq!(claim_slot(&next), Ok(i));
        }
        let err = claim_slot(&next).unwrap_err();
        assert_eq!(err.limit, MAX_SLOTS);
        assert!(err.to_string().contains("64"));
        // The counter is saturated, not corrupted: further claims
        // keep failing cleanly.
        assert!(claim_slot(&next).is_err());
        assert_eq!(next.load(Ordering::Relaxed), MAX_SLOTS);
    }

    #[test]
    fn bridge_apply_baton_protocol() {
        let mirror = Arc::new(AtomicBool::new(false));
        let apply = bridge_apply(mirror.clone());
        let mut baton = 0u64;
        assert!(apply(&mut baton, BridgeOp::Lock { owner: 7 }));
        assert!(mirror.load(Ordering::Relaxed));
        assert!(!apply(&mut baton, BridgeOp::Lock { owner: 9 }), "held");
        assert!(apply(&mut baton, BridgeOp::Unlock { owner: 7 }));
        assert!(!mirror.load(Ordering::Relaxed));
        assert!(apply(&mut baton, BridgeOp::Lock { owner: 9 }));
    }
}
