//! Object-safe lock facade.
//!
//! The database engines and the measurement harness pick lock
//! implementations at runtime ("run Kyoto Cabinet under TAS, MCS,
//! SHFL-PB10, LibASL-70, ..."). [`PlainLock`] is the object-safe
//! interface they use: acquisition returns an opaque two-word
//! [`PlainToken`] that encodes whatever the concrete lock's token was
//! (queue-node pointers for MCS/CLH, nothing for simple locks).

use crate::blocking::{McsStpLock, PthreadMutex, StpToken};
use crate::clh::{ClhLock, ClhToken};
use crate::cna::{CnaLock, CnaToken};
use crate::cohort::{CohortLock, CohortToken};
use crate::malthusian::{MalthusianLock, MalthusianToken};
use crate::mcs::{McsLock, McsToken};
use crate::proportional::ProportionalLock;
use crate::shuffle::{ShuffleLock, ShufflePolicy, ShuffleToken};
use crate::tas::TasLock;
use crate::ticket::TicketLock;
use crate::{BackoffLock, RawLock};

/// Opaque token for [`PlainLock`]: two words of implementation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlainToken(pub usize, pub usize);

impl PlainToken {
    /// The empty token used by locks whose `RawLock::Token` is `()`.
    pub const UNIT: PlainToken = PlainToken(0, 0);
}

/// An object-safe lock: dynamic counterpart of [`RawLock`].
pub trait PlainLock: Send + Sync {
    /// Acquire, blocking until granted.
    fn acquire(&self) -> PlainToken;
    /// Try to acquire without waiting.
    fn try_acquire(&self) -> Option<PlainToken>;
    /// Release a token from `acquire`/`try_acquire` on this lock.
    fn release(&self, token: PlainToken);
    /// Heuristic held/queued check.
    fn held(&self) -> bool;
    /// Implementation name for reports.
    fn lock_name(&self) -> &'static str;
}

/// Locks with unit tokens share one trivial encoding.
macro_rules! impl_plain_unit {
    ($ty:ty) => {
        impl PlainLock for $ty {
            #[inline]
            fn acquire(&self) -> PlainToken {
                RawLock::lock(self);
                PlainToken::UNIT
            }
            #[inline]
            fn try_acquire(&self) -> Option<PlainToken> {
                RawLock::try_lock(self).map(|_| PlainToken::UNIT)
            }
            #[inline]
            fn release(&self, _token: PlainToken) {
                RawLock::unlock(self, ());
            }
            #[inline]
            fn held(&self) -> bool {
                RawLock::is_locked(self)
            }
            fn lock_name(&self) -> &'static str {
                <$ty as RawLock>::NAME
            }
        }
    };
}

impl_plain_unit!(TasLock);
impl_plain_unit!(TicketLock);
impl_plain_unit!(BackoffLock);
impl_plain_unit!(ProportionalLock);
impl_plain_unit!(PthreadMutex);

impl PlainLock for McsLock {
    #[inline]
    fn acquire(&self) -> PlainToken {
        PlainToken(RawLock::lock(self).into_raw(), 0)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        RawLock::try_lock(self).map(|t| PlainToken(t.into_raw(), 0))
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        // SAFETY: `token` came from acquire/try_acquire on this lock.
        RawLock::unlock(self, unsafe { McsToken::from_raw(token.0) });
    }
    #[inline]
    fn held(&self) -> bool {
        RawLock::is_locked(self)
    }
    fn lock_name(&self) -> &'static str {
        <McsLock as RawLock>::NAME
    }
}

impl PlainLock for McsStpLock {
    #[inline]
    fn acquire(&self) -> PlainToken {
        PlainToken(RawLock::lock(self).into_raw(), 0)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        RawLock::try_lock(self).map(|t| PlainToken(t.into_raw(), 0))
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        // SAFETY: `token` came from acquire/try_acquire on this lock.
        RawLock::unlock(self, unsafe { StpToken::from_raw(token.0) });
    }
    #[inline]
    fn held(&self) -> bool {
        RawLock::is_locked(self)
    }
    fn lock_name(&self) -> &'static str {
        <McsStpLock as RawLock>::NAME
    }
}

impl PlainLock for ClhLock {
    #[inline]
    fn acquire(&self) -> PlainToken {
        let (a, b) = RawLock::lock(self).into_raw();
        PlainToken(a, b)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        RawLock::try_lock(self).map(|t| {
            let (a, b) = t.into_raw();
            PlainToken(a, b)
        })
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        // SAFETY: `token` came from acquire/try_acquire on this lock.
        RawLock::unlock(self, unsafe { ClhToken::from_raw(token.0, token.1) });
    }
    #[inline]
    fn held(&self) -> bool {
        RawLock::is_locked(self)
    }
    fn lock_name(&self) -> &'static str {
        <ClhLock as RawLock>::NAME
    }
}

/// Pointer-token queue locks share one encoding.
macro_rules! impl_plain_ptr_token {
    ($lock:ty, $token:ty) => {
        impl PlainLock for $lock {
            #[inline]
            fn acquire(&self) -> PlainToken {
                PlainToken(RawLock::lock(self).into_raw(), 0)
            }
            #[inline]
            fn try_acquire(&self) -> Option<PlainToken> {
                RawLock::try_lock(self).map(|t| PlainToken(t.into_raw(), 0))
            }
            #[inline]
            fn release(&self, token: PlainToken) {
                // SAFETY: `token` came from acquire/try_acquire here.
                RawLock::unlock(self, unsafe { <$token>::from_raw(token.0) });
            }
            #[inline]
            fn held(&self) -> bool {
                RawLock::is_locked(self)
            }
            fn lock_name(&self) -> &'static str {
                <$lock as RawLock>::NAME
            }
        }
    };
}

impl_plain_ptr_token!(CnaLock, CnaToken);
impl_plain_ptr_token!(MalthusianLock, MalthusianToken);

impl<P: ShufflePolicy> PlainLock for ShuffleLock<P> {
    #[inline]
    fn acquire(&self) -> PlainToken {
        PlainToken(RawLock::lock(self).into_raw(), 0)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        RawLock::try_lock(self).map(|t| PlainToken(t.into_raw(), 0))
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        // SAFETY: `token` came from acquire/try_acquire on this lock.
        RawLock::unlock(self, unsafe { ShuffleToken::from_raw(token.0) });
    }
    #[inline]
    fn held(&self) -> bool {
        RawLock::is_locked(self)
    }
    fn lock_name(&self) -> &'static str {
        "shuffle"
    }
}

impl PlainLock for CohortLock {
    #[inline]
    fn acquire(&self) -> PlainToken {
        let (a, b) = RawLock::lock(self).into_raw();
        PlainToken(a, b)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        RawLock::try_lock(self).map(|t| {
            let (a, b) = t.into_raw();
            PlainToken(a, b)
        })
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        // SAFETY: `token` came from acquire/try_acquire on this lock.
        RawLock::unlock(self, unsafe { CohortToken::from_raw(token.0, token.1) });
    }
    #[inline]
    fn held(&self) -> bool {
        RawLock::is_locked(self)
    }
    fn lock_name(&self) -> &'static str {
        <CohortLock as RawLock>::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exercise(lock: Arc<dyn PlainLock>) {
        assert!(!lock.held());
        let t = lock.acquire();
        assert!(lock.held());
        assert!(lock.try_acquire().is_none());
        lock.release(t);
        assert!(!lock.held());
        let t = lock.try_acquire().expect("free");
        lock.release(t);

        // Contended use through the dyn interface.
        let mut handles = vec![];
        for _ in 0..4 {
            let l = lock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let t = l.acquire();
                    l.release(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!lock.held());
    }

    #[test]
    fn all_zoo_locks_work_via_dyn() {
        exercise(Arc::new(TasLock::new()));
        exercise(Arc::new(TicketLock::new()));
        exercise(Arc::new(BackoffLock::new()));
        exercise(Arc::new(McsLock::new()));
        exercise(Arc::new(ClhLock::new()));
        exercise(Arc::new(ProportionalLock::new(10)));
        exercise(Arc::new(PthreadMutex::new()));
        exercise(Arc::new(McsStpLock::new()));
        exercise(Arc::new(CnaLock::new()));
        exercise(Arc::new(CohortLock::new()));
        exercise(Arc::new(MalthusianLock::new()));
        exercise(Arc::new(ShuffleLock::new(crate::shuffle::FifoPolicy)));
        exercise(Arc::new(ShuffleLock::new(crate::shuffle::ClassLocalPolicy::new(16))));
    }

    #[test]
    fn names_are_distinct() {
        let locks: Vec<Arc<dyn PlainLock>> = vec![
            Arc::new(TasLock::new()),
            Arc::new(TicketLock::new()),
            Arc::new(BackoffLock::new()),
            Arc::new(McsLock::new()),
            Arc::new(ClhLock::new()),
            Arc::new(ProportionalLock::new(10)),
            Arc::new(PthreadMutex::new()),
            Arc::new(McsStpLock::new()),
        ];
        let mut names: Vec<_> = locks.iter().map(|l| l.lock_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), locks.len());
    }
}
