//! Object-safe lock facade.
//!
//! The database engines and the measurement harness pick lock
//! implementations at runtime ("run Kyoto Cabinet under TAS, MCS,
//! SHFL-PB10, LibASL-70, ..."). [`PlainLock`] is the object-safe
//! interface they use: acquisition returns an opaque two-word
//! [`PlainToken`] that encodes whatever the concrete lock's token was
//! (queue-node pointers for MCS/CLH, nothing for simple locks).
//!
//! Any [`RawLock`] whose token is two-word encodable (see
//! [`TokenWords`]) is a `PlainLock` automatically through a blanket
//! impl — individual locks only implement [`RawLock`].
//!
//! `acquire`/`release` is the **low-level escape hatch**: the caller
//! must pair them manually. Prefer the RAII layer in [`crate::api`]
//! ([`crate::api::DynLock`], [`crate::api::DynMutex`]) which releases
//! on drop. In debug builds every token is tagged with the address of
//! the issuing lock, and releasing it against a different lock panics
//! — catching the cross-lock bugs the manual API allows.

use crate::RawLock;

/// Opaque token for [`PlainLock`]: two words of implementation state.
///
/// In debug builds the token additionally records which lock issued
/// it, and [`PlainLock::release`] implementations that decode through
/// [`PlainToken::redeem`] assert the token is returned to that lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlainToken {
    a: usize,
    b: usize,
    /// Address of the issuing lock — debug-build ownership check.
    #[cfg(debug_assertions)]
    issuer: usize,
}

impl PlainToken {
    /// Token issued by `lock` carrying two words of payload.
    #[inline]
    pub fn issue<L>(lock: &L, a: usize, b: usize) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = lock;
        PlainToken {
            a,
            b,
            #[cfg(debug_assertions)]
            issuer: lock as *const L as usize,
        }
    }

    /// Payload-free token issued by `lock` (unit-token locks).
    #[inline]
    pub fn unit<L>(lock: &L) -> Self {
        Self::issue(lock, 0, 0)
    }

    /// Decode the payload, asserting (in debug builds) that `lock` is
    /// the lock that issued this token.
    #[inline]
    pub fn redeem<L>(self, lock: &L) -> (usize, usize) {
        #[cfg(debug_assertions)]
        assert_eq!(
            self.issuer, lock as *const L as usize,
            "PlainToken released against a lock that did not issue it"
        );
        #[cfg(not(debug_assertions))]
        let _ = lock;
        (self.a, self.b)
    }
}

/// Tokens encodable in two machine words, so queue locks can ride
/// behind the object-safe [`PlainLock`] facade without allocating.
pub trait TokenWords: Sized {
    /// Encode into two words.
    fn into_words(self) -> (usize, usize);

    /// Rebuild from words produced by [`TokenWords::into_words`].
    ///
    /// # Safety
    /// The words must come from `into_words` on an unreleased token of
    /// the same lock, on the same thread.
    unsafe fn from_words(a: usize, b: usize) -> Self;
}

impl TokenWords for () {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (0, 0)
    }
    #[inline]
    unsafe fn from_words(_a: usize, _b: usize) -> Self {}
}

/// An object-safe lock: dynamic counterpart of [`RawLock`].
pub trait PlainLock: Send + Sync {
    /// Acquire, blocking until granted.
    fn acquire(&self) -> PlainToken;
    /// Try to acquire without waiting.
    fn try_acquire(&self) -> Option<PlainToken>;
    /// Release a token from `acquire`/`try_acquire` on this lock.
    fn release(&self, token: PlainToken);
    /// Heuristic held/queued check.
    fn held(&self) -> bool;
    /// Implementation name for reports.
    fn lock_name(&self) -> &'static str;
}

/// Every statically dispatched lock with a word-encodable token is
/// usable through the dynamic facade.
impl<L: RawLock> PlainLock for L
where
    L::Token: TokenWords,
{
    #[inline]
    fn acquire(&self) -> PlainToken {
        let (a, b) = RawLock::lock(self).into_words();
        PlainToken::issue(self, a, b)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        RawLock::try_lock(self).map(|t| {
            let (a, b) = t.into_words();
            PlainToken::issue(self, a, b)
        })
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        let (a, b) = token.redeem(self);
        // SAFETY: the PlainLock contract (checked in debug builds by
        // `redeem`) guarantees the words come from an unreleased
        // `acquire`/`try_acquire` on this lock by this thread.
        RawLock::unlock(self, unsafe { L::Token::from_words(a, b) });
    }
    #[inline]
    fn held(&self) -> bool {
        RawLock::is_locked(self)
    }
    fn lock_name(&self) -> &'static str {
        L::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::{ClassLocalPolicy, FifoPolicy, ShuffleLock};
    use crate::{
        BackoffLock, ClhLock, CnaLock, CohortLock, MalthusianLock, McsLock, McsStpLock,
        ProportionalLock, PthreadMutex, TasLock, TicketLock,
    };
    use std::sync::Arc;

    fn exercise(lock: Arc<dyn PlainLock>) {
        assert!(!lock.held());
        let t = lock.acquire();
        assert!(lock.held());
        assert!(lock.try_acquire().is_none());
        lock.release(t);
        assert!(!lock.held());
        let t = lock.try_acquire().expect("free");
        lock.release(t);

        // Contended use through the dyn interface.
        let mut handles = vec![];
        for _ in 0..4 {
            let l = lock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let t = l.acquire();
                    l.release(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!lock.held());
    }

    #[test]
    fn all_zoo_locks_work_via_dyn() {
        exercise(Arc::new(TasLock::new()));
        exercise(Arc::new(TicketLock::new()));
        exercise(Arc::new(BackoffLock::new()));
        exercise(Arc::new(McsLock::new()));
        exercise(Arc::new(ClhLock::new()));
        exercise(Arc::new(ProportionalLock::new(10)));
        exercise(Arc::new(PthreadMutex::new()));
        exercise(Arc::new(McsStpLock::new()));
        exercise(Arc::new(CnaLock::new()));
        exercise(Arc::new(CohortLock::new()));
        exercise(Arc::new(MalthusianLock::new()));
        exercise(Arc::new(ShuffleLock::new(FifoPolicy)));
        exercise(Arc::new(ShuffleLock::new(ClassLocalPolicy::new(16))));
    }

    #[test]
    fn names_are_distinct() {
        let locks: Vec<Arc<dyn PlainLock>> = vec![
            Arc::new(TasLock::new()),
            Arc::new(TicketLock::new()),
            Arc::new(BackoffLock::new()),
            Arc::new(McsLock::new()),
            Arc::new(ClhLock::new()),
            Arc::new(ProportionalLock::new(10)),
            Arc::new(PthreadMutex::new()),
            Arc::new(McsStpLock::new()),
        ];
        let mut names: Vec<_> = locks.iter().map(|l| l.lock_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), locks.len());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "did not issue")]
    fn cross_lock_release_is_caught_in_debug_builds() {
        let a = McsLock::new();
        let b = McsLock::new();
        let t = a.acquire();
        b.release(t); // ownership check fires before any queue damage
    }
}
