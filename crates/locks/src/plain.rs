//! Object-safe lock facade.
//!
//! The database engines and the measurement harness pick lock
//! implementations at runtime ("run Kyoto Cabinet under TAS, MCS,
//! SHFL-PB10, LibASL-70, ..."). [`PlainLock`] is the object-safe
//! interface they use: acquisition returns an opaque two-word
//! [`PlainToken`] that encodes whatever the concrete lock's token was
//! (queue-node pointers for MCS/CLH, nothing for simple locks).
//!
//! Any [`RawLock`] whose token is two-word encodable (see
//! [`TokenWords`]) is a `PlainLock` automatically through a blanket
//! impl — individual locks only implement [`RawLock`].
//!
//! `acquire`/`release` is the **low-level escape hatch**: the caller
//! must pair them manually. Prefer the RAII layer in [`crate::api`]
//! ([`crate::api::DynLock`], [`crate::api::DynMutex`]) which releases
//! on drop. In debug builds every token is tagged with the address of
//! the issuing lock, and releasing it against a different lock panics
//! — catching the cross-lock bugs the manual API allows.

use std::sync::Arc;

use crate::{RawLock, RawRwLock};

/// Opaque token for [`PlainLock`]: two words of implementation state.
///
/// In debug builds the token additionally records which lock issued
/// it, and [`PlainLock::release`] implementations that decode through
/// [`PlainToken::redeem`] assert the token is returned to that lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlainToken {
    a: usize,
    b: usize,
    /// Address of the issuing lock — debug-build ownership check.
    #[cfg(debug_assertions)]
    issuer: usize,
}

impl PlainToken {
    /// Token issued by `lock` carrying two words of payload.
    #[inline]
    pub fn issue<L>(lock: &L, a: usize, b: usize) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = lock;
        PlainToken {
            a,
            b,
            #[cfg(debug_assertions)]
            issuer: lock as *const L as usize,
        }
    }

    /// Payload-free token issued by `lock` (unit-token locks).
    #[inline]
    pub fn unit<L>(lock: &L) -> Self {
        Self::issue(lock, 0, 0)
    }

    /// Decode the payload, asserting (in debug builds) that `lock` is
    /// the lock that issued this token.
    #[inline]
    pub fn redeem<L>(self, lock: &L) -> (usize, usize) {
        #[cfg(debug_assertions)]
        assert_eq!(
            self.issuer, lock as *const L as usize,
            "PlainToken released against a lock that did not issue it"
        );
        #[cfg(not(debug_assertions))]
        let _ = lock;
        (self.a, self.b)
    }
}

/// Tokens encodable in two machine words, so queue locks can ride
/// behind the object-safe [`PlainLock`] facade without allocating.
pub trait TokenWords: Sized {
    /// Encode into two words.
    fn into_words(self) -> (usize, usize);

    /// Rebuild from words produced by [`TokenWords::into_words`].
    ///
    /// # Safety
    /// The words must come from `into_words` on an unreleased token of
    /// the same lock, on the same thread.
    unsafe fn from_words(a: usize, b: usize) -> Self;
}

impl TokenWords for () {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (0, 0)
    }
    #[inline]
    unsafe fn from_words(_a: usize, _b: usize) -> Self {}
}

/// An object-safe lock: dynamic counterpart of [`RawLock`].
pub trait PlainLock: Send + Sync {
    /// Acquire, blocking until granted.
    fn acquire(&self) -> PlainToken;
    /// Try to acquire without waiting.
    fn try_acquire(&self) -> Option<PlainToken>;
    /// Release a token from `acquire`/`try_acquire` on this lock.
    fn release(&self, token: PlainToken);
    /// Heuristic held/queued check.
    fn held(&self) -> bool;
    /// Implementation name for reports.
    fn lock_name(&self) -> &'static str;
}

/// Every statically dispatched lock with a word-encodable token is
/// usable through the dynamic facade.
impl<L: RawLock> PlainLock for L
where
    L::Token: TokenWords,
{
    #[inline]
    fn acquire(&self) -> PlainToken {
        let (a, b) = RawLock::lock(self).into_words();
        PlainToken::issue(self, a, b)
    }
    #[inline]
    fn try_acquire(&self) -> Option<PlainToken> {
        RawLock::try_lock(self).map(|t| {
            let (a, b) = t.into_words();
            PlainToken::issue(self, a, b)
        })
    }
    #[inline]
    fn release(&self, token: PlainToken) {
        let (a, b) = token.redeem(self);
        // SAFETY: the PlainLock contract (checked in debug builds by
        // `redeem`) guarantees the words come from an unreleased
        // `acquire`/`try_acquire` on this lock by this thread.
        RawLock::unlock(self, unsafe { L::Token::from_words(a, b) });
    }
    #[inline]
    fn held(&self) -> bool {
        RawLock::is_locked(self)
    }
    fn lock_name(&self) -> &'static str {
        L::NAME
    }
}

/// Opaque token for [`PlainRwLock`]: three words of implementation
/// state (reader-writer tokens need one more word than exclusive ones
/// — e.g. [`crate::bravo::BravoReadToken`] carries a fast/slow
/// discriminant next to the underlying lock's two words).
///
/// In debug builds the token additionally records the issuing lock
/// *and the acquisition mode*, so releasing against the wrong lock —
/// or releasing a read token through the write path — panics instead
/// of corrupting lock state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlainRwToken {
    a: usize,
    b: usize,
    c: usize,
    /// Address of the issuing lock — debug-build ownership check.
    #[cfg(debug_assertions)]
    issuer: usize,
    /// Whether this token proves an exclusive acquisition.
    #[cfg(debug_assertions)]
    write: bool,
}

impl PlainRwToken {
    /// Shared-mode token issued by `lock` carrying three words.
    #[inline]
    pub fn issue_read<L>(lock: &L, a: usize, b: usize, c: usize) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = lock;
        PlainRwToken {
            a,
            b,
            c,
            #[cfg(debug_assertions)]
            issuer: lock as *const L as usize,
            #[cfg(debug_assertions)]
            write: false,
        }
    }

    /// Exclusive-mode token issued by `lock` carrying two words.
    #[inline]
    pub fn issue_write<L>(lock: &L, a: usize, b: usize) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = lock;
        PlainRwToken {
            a,
            b,
            c: 0,
            #[cfg(debug_assertions)]
            issuer: lock as *const L as usize,
            #[cfg(debug_assertions)]
            write: true,
        }
    }

    /// Decode a shared-mode token, asserting (in debug builds) that
    /// `lock` issued it in read mode.
    #[inline]
    pub fn redeem_read<L>(self, lock: &L) -> (usize, usize, usize) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.issuer, lock as *const L as usize,
                "PlainRwToken released against a lock that did not issue it"
            );
            assert!(!self.write, "write token released through the read path");
        }
        #[cfg(not(debug_assertions))]
        let _ = lock;
        (self.a, self.b, self.c)
    }

    /// Decode an exclusive-mode token, asserting (in debug builds)
    /// that `lock` issued it in write mode.
    #[inline]
    pub fn redeem_write<L>(self, lock: &L) -> (usize, usize) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.issuer, lock as *const L as usize,
                "PlainRwToken released against a lock that did not issue it"
            );
            assert!(self.write, "read token released through the write path");
        }
        #[cfg(not(debug_assertions))]
        let _ = lock;
        (self.a, self.b)
    }
}

/// Read tokens encodable in three machine words — the reader-writer
/// analogue of [`TokenWords`] (write tokens reuse [`TokenWords`]
/// itself: they are just the underlying exclusive token).
pub trait RwTokenWords: Sized {
    /// Encode into three words.
    fn into_words(self) -> (usize, usize, usize);

    /// Rebuild from words produced by [`RwTokenWords::into_words`].
    ///
    /// # Safety
    /// The words must come from `into_words` on an unreleased token of
    /// the same lock, on the same thread.
    unsafe fn from_words(a: usize, b: usize, c: usize) -> Self;
}

impl RwTokenWords for () {
    #[inline]
    fn into_words(self) -> (usize, usize, usize) {
        (0, 0, 0)
    }
    #[inline]
    unsafe fn from_words(_a: usize, _b: usize, _c: usize) -> Self {}
}

/// An object-safe reader-writer lock: dynamic counterpart of
/// [`RawRwLock`], the same way [`PlainLock`] erases [`RawLock`].
pub trait PlainRwLock: Send + Sync {
    /// Acquire shared, blocking until granted.
    fn acquire_read(&self) -> PlainRwToken;
    /// Try to acquire shared without waiting.
    fn try_acquire_read(&self) -> Option<PlainRwToken>;
    /// Release a token from `acquire_read`/`try_acquire_read`.
    fn release_read(&self, token: PlainRwToken);
    /// Acquire exclusive, blocking until granted.
    fn acquire_write(&self) -> PlainRwToken;
    /// Try to acquire exclusive without waiting.
    fn try_acquire_write(&self) -> Option<PlainRwToken>;
    /// Release a token from `acquire_write`/`try_acquire_write`.
    fn release_write(&self, token: PlainRwToken);
    /// Heuristic held/queued check (either mode).
    fn held(&self) -> bool;
    /// Heuristic writer-present check.
    fn write_held(&self) -> bool;
    /// Implementation name for reports.
    fn rw_lock_name(&self) -> &'static str;
}

/// Every statically dispatched rwlock with word-encodable tokens is
/// usable through the dynamic facade.
impl<L: RawRwLock> PlainRwLock for L
where
    L::ReadToken: RwTokenWords,
    L::WriteToken: TokenWords,
{
    #[inline]
    fn acquire_read(&self) -> PlainRwToken {
        let (a, b, c) = RawRwLock::read(self).into_words();
        PlainRwToken::issue_read(self, a, b, c)
    }
    #[inline]
    fn try_acquire_read(&self) -> Option<PlainRwToken> {
        RawRwLock::try_read(self).map(|t| {
            let (a, b, c) = t.into_words();
            PlainRwToken::issue_read(self, a, b, c)
        })
    }
    #[inline]
    fn release_read(&self, token: PlainRwToken) {
        let (a, b, c) = token.redeem_read(self);
        // SAFETY: the PlainRwLock contract (checked in debug builds by
        // `redeem_read`) guarantees the words come from an unreleased
        // shared acquisition of this lock by this thread.
        RawRwLock::unlock_read(self, unsafe { L::ReadToken::from_words(a, b, c) });
    }
    #[inline]
    fn acquire_write(&self) -> PlainRwToken {
        let (a, b) = RawRwLock::write(self).into_words();
        PlainRwToken::issue_write(self, a, b)
    }
    #[inline]
    fn try_acquire_write(&self) -> Option<PlainRwToken> {
        RawRwLock::try_write(self).map(|t| {
            let (a, b) = t.into_words();
            PlainRwToken::issue_write(self, a, b)
        })
    }
    #[inline]
    fn release_write(&self, token: PlainRwToken) {
        let (a, b) = token.redeem_write(self);
        // SAFETY: as above, for the exclusive mode.
        RawRwLock::unlock_write(self, unsafe { L::WriteToken::from_words(a, b) });
    }
    #[inline]
    fn held(&self) -> bool {
        RawRwLock::is_locked(self)
    }
    #[inline]
    fn write_held(&self) -> bool {
        RawRwLock::is_write_locked(self)
    }
    fn rw_lock_name(&self) -> &'static str {
        L::NAME
    }
}

/// An exclusive lock viewed through the reader-writer interface:
/// `acquire_read` degenerates to an exclusive acquisition.
///
/// This is the compatibility bridge that lets read-path call sites
/// (the database engines' `Op::Read` handlers) always take shared
/// guards: under an exclusive `LockSpec` the shared guard costs
/// exactly what the old exclusive guard did, and under an rwlock spec
/// readers genuinely overlap.
pub struct ExclusiveRw {
    inner: Arc<dyn PlainLock>,
}

impl ExclusiveRw {
    /// View `inner` as a (degenerate) rwlock.
    pub fn new(inner: Arc<dyn PlainLock>) -> Self {
        ExclusiveRw { inner }
    }
}

impl PlainRwLock for ExclusiveRw {
    fn acquire_read(&self) -> PlainRwToken {
        let t = self.inner.acquire();
        PlainRwToken {
            a: t.a,
            b: t.b,
            c: 0,
            #[cfg(debug_assertions)]
            issuer: t.issuer,
            #[cfg(debug_assertions)]
            write: false,
        }
    }
    fn try_acquire_read(&self) -> Option<PlainRwToken> {
        self.inner.try_acquire().map(|t| PlainRwToken {
            a: t.a,
            b: t.b,
            c: 0,
            #[cfg(debug_assertions)]
            issuer: t.issuer,
            #[cfg(debug_assertions)]
            write: false,
        })
    }
    fn release_read(&self, token: PlainRwToken) {
        #[cfg(debug_assertions)]
        assert!(!token.write, "write token released through the read path");
        // Ownership stays checked: the underlying lock's own `redeem`
        // validates the preserved issuer tag.
        self.inner.release(PlainToken {
            a: token.a,
            b: token.b,
            #[cfg(debug_assertions)]
            issuer: token.issuer,
        });
    }
    fn acquire_write(&self) -> PlainRwToken {
        let t = self.inner.acquire();
        PlainRwToken {
            a: t.a,
            b: t.b,
            c: 0,
            #[cfg(debug_assertions)]
            issuer: t.issuer,
            #[cfg(debug_assertions)]
            write: true,
        }
    }
    fn try_acquire_write(&self) -> Option<PlainRwToken> {
        self.inner.try_acquire().map(|t| PlainRwToken {
            a: t.a,
            b: t.b,
            c: 0,
            #[cfg(debug_assertions)]
            issuer: t.issuer,
            #[cfg(debug_assertions)]
            write: true,
        })
    }
    fn release_write(&self, token: PlainRwToken) {
        #[cfg(debug_assertions)]
        assert!(token.write, "read token released through the write path");
        self.inner.release(PlainToken {
            a: token.a,
            b: token.b,
            #[cfg(debug_assertions)]
            issuer: token.issuer,
        });
    }
    fn held(&self) -> bool {
        self.inner.held()
    }
    fn write_held(&self) -> bool {
        self.inner.held()
    }
    fn rw_lock_name(&self) -> &'static str {
        self.inner.lock_name()
    }
}

/// A reader-writer lock viewed through the exclusive interface: every
/// acquisition takes the write side.
///
/// The mirror image of [`ExclusiveRw`] — it lets rwlock `LockSpec`s
/// satisfy exclusive call sites (pure ordering points like a method
/// or writer lock, and `repro --lock` sweeps).
pub struct WriteHalf {
    inner: Arc<dyn PlainRwLock>,
}

impl WriteHalf {
    /// View the write side of `inner` as an exclusive lock.
    pub fn new(inner: Arc<dyn PlainRwLock>) -> Self {
        WriteHalf { inner }
    }
}

impl PlainLock for WriteHalf {
    fn acquire(&self) -> PlainToken {
        let t = self.inner.acquire_write();
        debug_assert_eq!(t.c, 0, "write tokens carry two words");
        PlainToken {
            a: t.a,
            b: t.b,
            #[cfg(debug_assertions)]
            issuer: t.issuer,
        }
    }
    fn try_acquire(&self) -> Option<PlainToken> {
        self.inner.try_acquire_write().map(|t| PlainToken {
            a: t.a,
            b: t.b,
            #[cfg(debug_assertions)]
            issuer: t.issuer,
        })
    }
    fn release(&self, token: PlainToken) {
        self.inner.release_write(PlainRwToken {
            a: token.a,
            b: token.b,
            c: 0,
            #[cfg(debug_assertions)]
            issuer: token.issuer,
            #[cfg(debug_assertions)]
            write: true,
        });
    }
    fn held(&self) -> bool {
        self.inner.held()
    }
    fn lock_name(&self) -> &'static str {
        self.inner.rw_lock_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::{ClassLocalPolicy, FifoPolicy, ShuffleLock};
    use crate::{
        BackoffLock, ClhLock, CnaLock, CohortLock, MalthusianLock, McsLock, McsStpLock,
        ProportionalLock, PthreadMutex, TasLock, TicketLock,
    };
    use std::sync::Arc;

    fn exercise(lock: Arc<dyn PlainLock>) {
        assert!(!lock.held());
        let t = lock.acquire();
        assert!(lock.held());
        assert!(lock.try_acquire().is_none());
        lock.release(t);
        assert!(!lock.held());
        let t = lock.try_acquire().expect("free");
        lock.release(t);

        // Contended use through the dyn interface.
        let mut handles = vec![];
        for _ in 0..4 {
            let l = lock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let t = l.acquire();
                    l.release(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!lock.held());
    }

    #[test]
    fn all_zoo_locks_work_via_dyn() {
        exercise(Arc::new(TasLock::new()));
        exercise(Arc::new(TicketLock::new()));
        exercise(Arc::new(BackoffLock::new()));
        exercise(Arc::new(McsLock::new()));
        exercise(Arc::new(ClhLock::new()));
        exercise(Arc::new(ProportionalLock::new(10)));
        exercise(Arc::new(PthreadMutex::new()));
        exercise(Arc::new(McsStpLock::new()));
        exercise(Arc::new(CnaLock::new()));
        exercise(Arc::new(CohortLock::new()));
        exercise(Arc::new(MalthusianLock::new()));
        exercise(Arc::new(ShuffleLock::new(FifoPolicy)));
        exercise(Arc::new(ShuffleLock::new(ClassLocalPolicy::new(16))));
    }

    #[test]
    fn names_are_distinct() {
        let locks: Vec<Arc<dyn PlainLock>> = vec![
            Arc::new(TasLock::new()),
            Arc::new(TicketLock::new()),
            Arc::new(BackoffLock::new()),
            Arc::new(McsLock::new()),
            Arc::new(ClhLock::new()),
            Arc::new(ProportionalLock::new(10)),
            Arc::new(PthreadMutex::new()),
            Arc::new(McsStpLock::new()),
        ];
        let mut names: Vec<_> = locks.iter().map(|l| l.lock_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), locks.len());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "did not issue")]
    fn cross_lock_release_is_caught_in_debug_builds() {
        let a = McsLock::new();
        let b = McsLock::new();
        let t = a.acquire();
        b.release(t); // ownership check fires before any queue damage
    }
}
