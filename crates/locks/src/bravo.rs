//! BRAVO-style reader bias (Dice & Kogan, "BRAVO — Biased Locking for
//! Reader-Writer Locks", USENIX ATC 2019), adapted to upgrade *any*
//! exclusive lock in the zoo into a reader-writer lock.
//!
//! While the lock is *reader-biased*, readers skip the underlying
//! lock entirely: each publishes itself in a visible-readers table
//! (one CAS into a hashed slot), rechecks the bias, and reads. A
//! writer acquires the underlying exclusive lock, *revokes* the bias,
//! and scans the table until every published reader has left. Because
//! revocation is expensive, the bias stays disabled for a multiple
//! (`INHIBIT_MULTIPLIER`) of the measured revocation time — under
//! write-heavy phases the lock degenerates gracefully to the plain
//! exclusive lock underneath.
//!
//! Readers that lose the table race (collision, or bias disabled)
//! fall back to acquiring the underlying lock itself for the duration
//! of the read — with an exclusive substrate the slow path serializes,
//! which is exactly the degenerate rwlock BRAVO starts from.
//!
//! The wrapper is generic over every [`RawLock`] (`Bravo<McsLock>`,
//! `Bravo<TasLock>`, even `Bravo<AslLock>` so SLO-aware writer
//! reordering composes with reader bias).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::plain::TokenWords;
use crate::{RawLock, RawRwLock};

/// Visible-readers table slots (power of two; collisions fall back to
/// the underlying lock, so a small table only costs throughput).
const TABLE_SLOTS: usize = 64;

/// How long the bias stays disabled after a revocation, as a multiple
/// of the measured revocation cost (the paper's `N`, default 9).
const INHIBIT_MULTIPLIER: u64 = 9;

fn reader_slot() -> usize {
    use std::cell::Cell;
    static NEXT_READER: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static READER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    let id = READER_ID.with(|c| {
        let mut id = c.get();
        if id == usize::MAX {
            id = NEXT_READER.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    });
    // Fibonacci scatter so consecutive thread ids spread over the
    // table instead of clustering in adjacent slots; the shift tracks
    // TABLE_SLOTS so resizing the table cannot go out of bounds.
    const _: () = assert!(TABLE_SLOTS.is_power_of_two());
    id.wrapping_mul(0x9E37_79B9_7F4A_7C15usize) >> (usize::BITS - TABLE_SLOTS.trailing_zeros())
}

/// Proof of a shared [`Bravo`] acquisition: either a published table
/// slot (fast path) or an acquisition of the underlying lock (slow
/// path).
pub enum BravoReadToken<T> {
    /// Fast path: the reader occupies `readers[slot]`.
    Fast(usize),
    /// Slow path: the reader holds the underlying exclusive lock.
    Slow(T),
}

/// Fast-path read tokens encode as `(slot, 0, 0)`; slow-path tokens
/// carry the underlying lock's two words plus a discriminant.
impl<T: TokenWords> crate::plain::RwTokenWords for BravoReadToken<T> {
    #[inline]
    fn into_words(self) -> (usize, usize, usize) {
        match self {
            BravoReadToken::Fast(slot) => (slot, 0, 0),
            BravoReadToken::Slow(t) => {
                let (a, b) = t.into_words();
                (a, b, 1)
            }
        }
    }
    #[inline]
    unsafe fn from_words(a: usize, b: usize, c: usize) -> Self {
        if c == 0 {
            BravoReadToken::Fast(a)
        } else {
            BravoReadToken::Slow(T::from_words(a, b))
        }
    }
}

/// One visible-readers slot, padded to a cache line so concurrent
/// readers publishing in neighbouring slots do not false-share.
#[repr(align(64))]
struct Slot(AtomicUsize);

/// BRAVO reader-bias wrapper: `Bravo<L>` is a reader-writer lock for
/// any exclusive `L`.
pub struct Bravo<L: RawLock> {
    rbias: AtomicBool,
    /// Clock (ns) before which the bias must not be re-enabled.
    inhibit_until_ns: AtomicU64,
    readers: Box<[Slot]>,
    inner: L,
}

impl<L: RawLock> Bravo<L> {
    /// Wrap `inner`, starting reader-biased.
    pub fn new(inner: L) -> Self {
        Bravo {
            rbias: AtomicBool::new(true),
            inhibit_until_ns: AtomicU64::new(0),
            readers: (0..TABLE_SLOTS)
                .map(|_| Slot(AtomicUsize::new(0)))
                .collect(),
            inner,
        }
    }

    /// The wrapped exclusive lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Whether the lock is currently reader-biased (heuristic).
    pub fn reader_biased(&self) -> bool {
        self.rbias.load(Ordering::Relaxed)
    }

    /// Try the fast path: publish in the table, then recheck the
    /// bias (the store-load ordering against the writer's revocation
    /// is the classic Dekker handshake, hence `SeqCst`).
    #[inline]
    fn try_fast_read(&self) -> Option<usize> {
        if !self.rbias.load(Ordering::Relaxed) {
            return None;
        }
        let slot = reader_slot();
        if self.readers[slot]
            .0
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return None; // collision: another reader occupies the slot
        }
        if self.rbias.load(Ordering::SeqCst) {
            return Some(slot);
        }
        // Revoked while we published: withdraw and fall back.
        self.readers[slot].0.store(0, Ordering::Release);
        None
    }

    /// Slow-path bias re-enable: once the inhibit window has passed,
    /// the next reader that had to take the underlying lock turns the
    /// bias back on.
    #[inline]
    fn maybe_reenable_bias(&self) {
        if !self.rbias.load(Ordering::Relaxed)
            && asl_runtime::clock::now_ns() >= self.inhibit_until_ns.load(Ordering::Relaxed)
        {
            // Release, so a fast-path reader that observes the bias
            // inherits our happens-before edge to the last writer's
            // mutations (we hold the underlying lock here, acquired
            // after that writer released it). A relaxed store would
            // let a fast reader skip the lock with no synchronization
            // to those writes at all.
            self.rbias.store(true, Ordering::Release);
        }
    }

    /// Writer-side revocation: disable the bias and wait for every
    /// published reader to leave. Called with the underlying lock
    /// held, so no new fast reader can outlive the scan (they recheck
    /// the bias after publishing).
    fn revoke(&self) {
        let started = asl_runtime::clock::now_ns();
        self.rbias.store(false, Ordering::SeqCst);
        let mut spin = asl_runtime::relax::Spin::new();
        for slot in self.readers.iter() {
            while slot.0.load(Ordering::SeqCst) != 0 {
                spin.relax();
            }
            spin.reset();
        }
        let took = asl_runtime::clock::now_ns().saturating_sub(started);
        // Saturating: deadline arithmetic must clamp, never wrap into
        // the past (same audit as clock::busy_wait_ns).
        self.inhibit_until_ns.store(
            started.saturating_add(took.saturating_mul(INHIBIT_MULTIPLIER)),
            Ordering::Relaxed,
        );
    }
}

impl<L: RawLock> RawRwLock for Bravo<L> {
    type ReadToken = BravoReadToken<L::Token>;
    type WriteToken = L::Token;

    #[inline]
    fn read(&self) -> Self::ReadToken {
        if let Some(slot) = self.try_fast_read() {
            return BravoReadToken::Fast(slot);
        }
        let t = self.inner.lock();
        self.maybe_reenable_bias();
        BravoReadToken::Slow(t)
    }

    #[inline]
    fn try_read(&self) -> Option<Self::ReadToken> {
        if let Some(slot) = self.try_fast_read() {
            return Some(BravoReadToken::Fast(slot));
        }
        let t = self.inner.try_lock()?;
        self.maybe_reenable_bias();
        Some(BravoReadToken::Slow(t))
    }

    #[inline]
    fn unlock_read(&self, token: Self::ReadToken) {
        match token {
            BravoReadToken::Fast(slot) => self.readers[slot].0.store(0, Ordering::Release),
            BravoReadToken::Slow(t) => self.inner.unlock(t),
        }
    }

    #[inline]
    fn write(&self) -> Self::WriteToken {
        let t = self.inner.lock();
        if self.rbias.load(Ordering::Relaxed) {
            self.revoke();
        }
        t
    }

    #[inline]
    fn try_write(&self) -> Option<Self::WriteToken> {
        let t = self.inner.try_lock()?;
        if self.rbias.load(Ordering::Relaxed) {
            // Non-blocking revocation: disable the bias, scan once.
            self.rbias.store(false, Ordering::SeqCst);
            if self.readers.iter().any(|s| s.0.load(Ordering::SeqCst) != 0) {
                // Active fast readers: restore the bias and give up.
                self.rbias.store(true, Ordering::SeqCst);
                self.inner.unlock(t);
                return None;
            }
        }
        Some(t)
    }

    #[inline]
    fn unlock_write(&self, token: Self::WriteToken) {
        self.inner.unlock(token);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.inner.is_locked()
            || self
                .readers
                .iter()
                .any(|s| s.0.load(Ordering::Relaxed) != 0)
    }

    #[inline]
    fn is_write_locked(&self) -> bool {
        // Heuristic: the underlying lock is only held across reads on
        // the (serialized) slow path, so "held" approximates "writer
        // or degenerate reader present".
        self.inner.is_locked()
    }

    const NAME: &'static str = "bravo";
}

#[cfg(test)]
// Unit tokens are still tokens: the tests pass them explicitly to
// exercise the RawRwLock protocol.
#[allow(clippy::let_unit_value)]
mod tests {
    use super::*;
    use crate::{McsLock, TasLock, TicketLock};
    use std::sync::Arc;

    #[test]
    fn fast_readers_share_while_biased() {
        let l = Bravo::new(McsLock::new());
        assert!(l.reader_biased());
        let r1 = l.read();
        assert!(
            matches!(r1, BravoReadToken::Fast(_)),
            "first read takes the fast path"
        );
        // A second reader from this thread hashes to the same slot:
        // it must still get in (slow path), not deadlock.
        let r2 = l.read();
        assert!(
            matches!(r2, BravoReadToken::Slow(_)),
            "slot collision falls back"
        );
        l.unlock_read(r2);
        l.unlock_read(r1);
        assert!(!l.is_locked());
    }

    #[test]
    fn writer_revokes_bias_and_excludes_readers() {
        let l = Bravo::new(TicketLock::new());
        let w = l.write();
        assert!(!l.reader_biased(), "write revokes the bias");
        assert!(l.try_read().is_none(), "revoked + inner held: no reads");
        assert!(l.try_write().is_none());
        l.unlock_write(w);
        // Bias stays inhibited right after revocation; reads fall back
        // to the underlying lock but still succeed.
        let r = l.try_read().expect("slow-path read after revocation");
        l.unlock_read(r);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_write_backs_off_fast_readers() {
        let l = Bravo::new(McsLock::new());
        let r = l.read();
        assert!(matches!(r, BravoReadToken::Fast(_)));
        assert!(l.try_write().is_none(), "fast reader blocks try_write");
        assert!(l.reader_biased(), "failed try_write restores the bias");
        l.unlock_read(r);
        let w = l.try_write().expect("drained readers admit writer");
        l.unlock_write(w);
    }

    #[test]
    fn concurrent_readers_and_writers_exclude() {
        struct Shared {
            lock: Bravo<TasLock>,
            value: std::cell::UnsafeCell<u64>,
        }
        unsafe impl Sync for Shared {}
        let s = Arc::new(Shared {
            lock: Bravo::new(TasLock::new()),
            value: std::cell::UnsafeCell::new(0),
        });
        let mut handles = vec![];
        for i in 0..4u64 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for n in 0..2_000u64 {
                    if (n + i) % 4 == 0 {
                        let t = s.lock.write();
                        unsafe { *s.value.get() += 1 };
                        s.lock.unlock_write(t);
                    } else {
                        let t = s.lock.read();
                        // Reads must always observe a torn-free value.
                        let v = unsafe { std::ptr::read_volatile(s.value.get()) };
                        assert!(v <= 8_000);
                        s.lock.unlock_read(t);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *s.value.get() }, 4 * 2_000 / 4);
        assert!(!s.lock.is_locked());
    }
}
