//! Flat combining (Hendler et al., SPAA 2010 \[47\]) — the delegation
//! comparator from the paper's related work (§5).
//!
//! Delegation locks execute *all* critical sections on one core
//! instead of migrating the lock. The paper notes that "placing the
//! lock server on big cores can hide the weak computing capacity of
//! little cores", at two costs LibASL avoids: critical sections must
//! be converted into closures (invasive), and at low contention a
//! precious big core busy-polls.
//!
//! Two variants are provided:
//!
//! * [`FlatCombiner`] — classic flat combining: whichever thread
//!   grabs the combiner lock executes every published pending
//!   operation. No dedicated core, but the combiner is whichever
//!   class happens to win — on AMP a little-core combiner executes
//!   *everyone's* critical section slowly.
//! * [`DedicatedServer`] — a server thread (bound by the caller to a
//!   big core) spin-polls the publication slots, the strongest
//!   delegation configuration on AMP (`repro sec5-delegation`).
//!
//! Operations are a caller-chosen `Op` type applied by a caller-
//! chosen function, keeping the hot path allocation-free (no boxed
//! closures). The slot machinery, participant cap
//! ([`MAX_SLOTS`] — exhaustion is the clean
//! [`SlotsExhausted`] error) and the panic-isolation
//! protocol are shared with the rest of the delegation family in
//! [`delegation`](crate::delegation); the modern successors live in
//! [`ccsynch`](crate::ccsynch), [`rcl`](crate::rcl) and
//! [`fcban`](crate::fcban).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::delegation::{
    claim_slot, DelegationHandle, DelegationLock, Slot, SlotsExhausted, SLOT_PENDING,
};

pub use crate::delegation::MAX_SLOTS;

/// Shared state of a flat-combining structure over `T`.
struct FcShared<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    slots: Vec<Slot<Op, Out>>,
    next_slot: AtomicUsize,
    combiner_lock: AtomicBool,
    data: UnsafeCell<T>,
    apply: F,
}

// SAFETY: `data` is only touched by the combiner (combiner_lock) or
// the dedicated server thread.
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Send
    for FcShared<T, Op, Out, F>
{
}
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Sync
    for FcShared<T, Op, Out, F>
{
}

impl<T, Op, Out, F: Fn(&mut T, Op) -> Out> FcShared<T, Op, Out, F> {
    fn new(value: T, apply: F) -> Self {
        FcShared {
            slots: (0..MAX_SLOTS).map(|_| Slot::new()).collect(),
            next_slot: AtomicUsize::new(0),
            combiner_lock: AtomicBool::new(false),
            data: UnsafeCell::new(value),
            apply,
        }
    }

    /// Execute every pending published operation (panics inside an op
    /// are caught per-slot; the submitter re-raises).
    ///
    /// # Safety
    /// Caller must have exclusive access to `data` (combiner lock or
    /// dedicated server).
    unsafe fn combine_pass(&self) -> usize {
        let mut executed = 0;
        let data = self.data.get();
        let claimed = self.next_slot.load(Ordering::Acquire).min(MAX_SLOTS);
        for slot in &self.slots[..claimed] {
            if slot.seq.load(Ordering::Acquire) == SLOT_PENDING {
                // SAFETY: sole executor; PENDING acquired.
                slot.execute(data, &self.apply);
                executed += 1;
            }
        }
        executed
    }
}

/// Classic flat combining over a value `T` with operation type `Op`.
pub struct FlatCombiner<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<FcShared<T, Op, Out, F>>,
}

impl<T, Op, Out, F> FlatCombiner<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Wrap `value`; `apply` executes one operation against it.
    pub fn new(value: T, apply: F) -> Self {
        FlatCombiner {
            shared: Arc::new(FcShared::new(value, apply)),
        }
    }

    /// Claim this thread's publication slot. Call once per thread;
    /// the handle submits operations.
    pub fn try_register(&self) -> Result<FcHandle<T, Op, Out, F>, SlotsExhausted> {
        let idx = claim_slot(&self.shared.next_slot)?;
        Ok(FcHandle {
            shared: self.shared.clone(),
            idx,
        })
    }

    /// [`FlatCombiner::try_register`], panicking on exhaustion.
    ///
    /// # Panics
    /// Panics with [`SlotsExhausted`] when more than [`MAX_SLOTS`]
    /// handles are claimed.
    pub fn register(&self) -> FcHandle<T, Op, Out, F> {
        self.try_register().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Consume, returning the inner value.
    ///
    /// # Panics
    /// Panics if handles still exist.
    pub fn into_inner(self) -> T {
        let shared =
            Arc::try_unwrap(self.shared).unwrap_or_else(|_| panic!("handles still registered"));
        shared.data.into_inner()
    }
}

impl<T, Op, Out, F> DelegationLock for FlatCombiner<T, Op, Out, F>
where
    T: Send + 'static,
    Op: Send + 'static,
    Out: Send + 'static,
    F: Fn(&mut T, Op) -> Out + Send + Sync + 'static,
{
    type Op = Op;
    type Out = Out;
    type Handle = FcHandle<T, Op, Out, F>;

    fn try_register(&self) -> Result<Self::Handle, SlotsExhausted> {
        FlatCombiner::try_register(self)
    }

    fn delegation_name(&self) -> &'static str {
        "flatcomb"
    }
}

/// A registered participant of a [`FlatCombiner`].
pub struct FcHandle<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<FcShared<T, Op, Out, F>>,
    idx: usize,
}

impl<T, Op, Out, F> FcHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Apply `op` to the shared value, possibly becoming the combiner
    /// and executing other threads' operations too.
    pub fn apply(&self, op: Op) -> Out {
        let slot = &self.shared.slots[self.idx];
        // SAFETY: the slot is ours and EMPTY (the previous apply
        // consumed the result).
        unsafe { slot.publish(op) };

        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != SLOT_PENDING {
                // SAFETY: observed DONE/PANICKED with acquire.
                return unsafe { slot.take_result(seq) };
            }
            if !self.shared.combiner_lock.swap(true, Ordering::Acquire) {
                // We are the combiner: run every pending op.
                // SAFETY: combiner lock held.
                unsafe { self.shared.combine_pass() };
                self.shared.combiner_lock.store(false, Ordering::Release);
                // Our own op was pending, so it is resolved now.
                let seq = slot.seq.load(Ordering::Acquire);
                debug_assert_ne!(seq, SLOT_PENDING, "own op unserved after pass");
                // SAFETY: observed DONE/PANICKED with acquire.
                return unsafe { slot.take_result(seq) };
            }
            spin.relax();
        }
    }
}

impl<T, Op, Out, F> DelegationHandle for FcHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    type Op = Op;
    type Out = Out;

    fn apply(&self, op: Op) -> Out {
        FcHandle::apply(self, op)
    }
}

/// Delegation with a dedicated server thread.
///
/// The caller spawns the server loop (typically pinned to a big
/// core) via [`DedicatedServer::serve`]; clients submit with
/// [`ServerHandle::apply`]. Dropping all handles and calling
/// [`DedicatedServer::shutdown`] stops the server. For a variant with
/// managed server lifecycle see [`RclLock`](crate::rcl::RclLock).
pub struct DedicatedServer<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<FcShared<T, Op, Out, F>>,
    stop: Arc<AtomicBool>,
}

impl<T, Op, Out, F> DedicatedServer<T, Op, Out, F>
where
    T: Send + 'static,
    Op: Send + 'static,
    Out: Send + 'static,
    F: Fn(&mut T, Op) -> Out + Send + Sync + 'static,
{
    /// Wrap `value`; `apply` executes one operation against it.
    pub fn new(value: T, apply: F) -> Self {
        DedicatedServer {
            shared: Arc::new(FcShared::new(value, apply)),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The server loop: call from the thread that should execute all
    /// critical sections (pin it to a big core first). Returns when
    /// [`DedicatedServer::shutdown`] is called.
    pub fn serve(&self) {
        let mut spin = asl_runtime::relax::Spin::new();
        while !self.stop.load(Ordering::Acquire) {
            // SAFETY: the server is the only executor (no combiner
            // lock is ever taken in this variant).
            let n = unsafe { self.shared.combine_pass() };
            if n == 0 {
                spin.relax();
            } else {
                spin.reset();
            }
        }
        // Drain once more so no submitter is left hanging.
        // SAFETY: as above.
        unsafe { self.shared.combine_pass() };
    }

    /// Ask the server loop to exit after a final drain.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Claim a client slot. Call once per thread; the handle submits
    /// operations.
    pub fn try_register(&self) -> Result<ServerHandle<T, Op, Out, F>, SlotsExhausted> {
        let idx = claim_slot(&self.shared.next_slot)?;
        Ok(ServerHandle {
            shared: self.shared.clone(),
            idx,
        })
    }

    /// [`DedicatedServer::try_register`], panicking on exhaustion.
    ///
    /// # Panics
    /// Panics with [`SlotsExhausted`] when more than [`MAX_SLOTS`]
    /// handles are claimed.
    pub fn register(&self) -> ServerHandle<T, Op, Out, F> {
        self.try_register().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl<T, Op, Out, F> DelegationLock for DedicatedServer<T, Op, Out, F>
where
    T: Send + 'static,
    Op: Send + 'static,
    Out: Send + 'static,
    F: Fn(&mut T, Op) -> Out + Send + Sync + 'static,
{
    type Op = Op;
    type Out = Out;
    type Handle = ServerHandle<T, Op, Out, F>;

    fn try_register(&self) -> Result<Self::Handle, SlotsExhausted> {
        DedicatedServer::try_register(self)
    }

    fn delegation_name(&self) -> &'static str {
        "fc-server"
    }
}

/// A client of a [`DedicatedServer`].
pub struct ServerHandle<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<FcShared<T, Op, Out, F>>,
    idx: usize,
}

impl<T, Op, Out, F> ServerHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Submit `op` and wait for the server to execute it.
    pub fn apply(&self, op: Op) -> Out {
        let slot = &self.shared.slots[self.idx];
        // SAFETY: slot protocol as in FcHandle::apply.
        unsafe { slot.publish(op) };
        let mut spin = asl_runtime::relax::Spin::new();
        let seq = loop {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != SLOT_PENDING {
                break seq;
            }
            spin.relax();
        };
        // SAFETY: observed DONE/PANICKED with acquire.
        unsafe { slot.take_result(seq) }
    }
}

impl<T, Op, Out, F> DelegationHandle for ServerHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    type Op = Op;
    type Out = Out;

    fn apply(&self, op: Op) -> Out {
        ServerHandle::apply(self, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_ops() {
        let fc = FlatCombiner::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let h = fc.register();
        assert_eq!(h.apply(5), 5);
        assert_eq!(h.apply(7), 12);
        drop(h);
        assert_eq!(fc.into_inner(), 12);
    }

    #[test]
    fn concurrent_counter_flat_combining() {
        let fc = FlatCombiner::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let mut handles = vec![];
        for _ in 0..8 {
            let h = fc.register();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    h.apply(1);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(fc.into_inner(), 160_000);
    }

    #[test]
    fn results_routed_to_correct_thread() {
        // Each thread adds its own id and must read back values that
        // are consistent with its own sequence of submissions.
        let fc = FlatCombiner::new(Vec::<u32>::new(), |v, id: u32| {
            v.push(id);
            v.iter().filter(|&&x| x == id).count()
        });
        let mut handles = vec![];
        for id in 0..6u32 {
            let h = fc.register();
            handles.push(std::thread::spawn(move || {
                for i in 1..=1_000 {
                    let seen = h.apply(id);
                    assert_eq!(seen, i, "thread {id} saw foreign count");
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let v = fc.into_inner();
        assert_eq!(v.len(), 6_000);
    }

    #[test]
    fn dedicated_server_counter() {
        let srv = Arc::new(DedicatedServer::new(0u64, |v, add: u64| {
            *v += add;
            *v
        }));
        let server = {
            let srv = srv.clone();
            std::thread::spawn(move || srv.serve())
        };
        let mut handles = vec![];
        for _ in 0..6 {
            let h = srv.register();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    h.apply(1);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        srv.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn slot_exhaustion_is_a_clean_error_at_the_boundary() {
        let fc = FlatCombiner::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        // Claiming exactly MAX_SLOTS succeeds and slot MAX_SLOTS-1
        // still works (the old silent-overflow bug corrupted here).
        let handles: Vec<_> = (0..MAX_SLOTS).map(|_| fc.register()).collect();
        assert_eq!(handles[MAX_SLOTS - 1].apply(3), 3);
        // One more is a clean, typed error — and keeps erroring.
        assert_eq!(
            fc.try_register().err(),
            Some(SlotsExhausted { limit: MAX_SLOTS })
        );
        assert!(fc.try_register().is_err());
        // Existing handles are unaffected.
        assert_eq!(handles[0].apply(4), 7);
        drop(handles);
        assert_eq!(fc.into_inner(), 7);
    }

    #[test]
    fn dedicated_server_slot_exhaustion_is_clean() {
        let srv = DedicatedServer::new((), |_, _: ()| ());
        let clients: Vec<_> = (0..MAX_SLOTS).map(|_| srv.register()).collect();
        assert_eq!(
            srv.try_register().err(),
            Some(SlotsExhausted { limit: MAX_SLOTS })
        );
        drop(clients);
    }
}
