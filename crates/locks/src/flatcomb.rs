//! Flat combining (Hendler et al., SPAA 2010 \[47\]) — the delegation
//! comparator from the paper's related work (§5).
//!
//! Delegation locks execute *all* critical sections on one core
//! instead of migrating the lock. The paper notes that "placing the
//! lock server on big cores can hide the weak computing capacity of
//! little cores", at two costs LibASL avoids: critical sections must
//! be converted into closures (invasive), and at low contention a
//! precious big core busy-polls.
//!
//! Two variants are provided:
//!
//! * [`FlatCombiner`] — classic flat combining: whichever thread
//!   grabs the combiner lock executes every published pending
//!   operation. No dedicated core, but the combiner is whichever
//!   class happens to win — on AMP a little-core combiner executes
//!   *everyone's* critical section slowly.
//! * [`DedicatedServer`] — a server thread (bound by the caller to a
//!   big core) spin-polls the publication slots, the strongest
//!   delegation configuration on AMP (`repro sec5-delegation`).
//!
//! Operations are a caller-chosen `Op` type applied by a caller-
//! chosen function, keeping the hot path allocation-free (no boxed
//! closures).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

/// Max threads a combiner instance supports (one slot each).
pub const MAX_SLOTS: usize = 64;

const SLOT_EMPTY: u32 = 0;
const SLOT_PENDING: u32 = 1;
const SLOT_DONE: u32 = 2;

/// One publication slot, cache-line padded: a thread writes `op`,
/// flips `seq` to PENDING, and spins for DONE; the combiner does the
/// reverse.
#[repr(align(128))]
struct Slot<Op, Out> {
    seq: AtomicU32,
    op: UnsafeCell<MaybeUninit<Op>>,
    out: UnsafeCell<MaybeUninit<Out>>,
}

// SAFETY: `op`/`out` accesses are ordered by the `seq` protocol.
unsafe impl<Op: Send, Out: Send> Send for Slot<Op, Out> {}
unsafe impl<Op: Send, Out: Send> Sync for Slot<Op, Out> {}

impl<Op, Out> Slot<Op, Out> {
    fn new() -> Self {
        Slot {
            seq: AtomicU32::new(SLOT_EMPTY),
            op: UnsafeCell::new(MaybeUninit::uninit()),
            out: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

/// Shared state of a flat-combining structure over `T`.
struct FcShared<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    slots: Vec<Slot<Op, Out>>,
    next_slot: AtomicUsize,
    combiner_lock: AtomicBool,
    data: UnsafeCell<T>,
    apply: F,
}

// SAFETY: `data` is only touched by the combiner (combiner_lock) or
// the dedicated server thread.
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Send
    for FcShared<T, Op, Out, F>
{
}
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Sync
    for FcShared<T, Op, Out, F>
{
}

impl<T, Op, Out, F: Fn(&mut T, Op) -> Out> FcShared<T, Op, Out, F> {
    /// Execute every pending published operation.
    ///
    /// # Safety
    /// Caller must have exclusive access to `data` (combiner lock or
    /// dedicated server).
    unsafe fn combine_pass(&self) -> usize {
        let mut executed = 0;
        let data = &mut *self.data.get();
        for slot in &self.slots {
            if slot.seq.load(Ordering::Acquire) == SLOT_PENDING {
                // SAFETY: PENDING guarantees an initialized op the
                // owner will not touch until DONE.
                let op = (*slot.op.get()).assume_init_read();
                let out = (self.apply)(data, op);
                (*slot.out.get()).write(out);
                slot.seq.store(SLOT_DONE, Ordering::Release);
                executed += 1;
            }
        }
        executed
    }
}

/// Classic flat combining over a value `T` with operation type `Op`.
pub struct FlatCombiner<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<FcShared<T, Op, Out, F>>,
}

impl<T, Op, Out, F> FlatCombiner<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Wrap `value`; `apply` executes one operation against it.
    pub fn new(value: T, apply: F) -> Self {
        let slots = (0..MAX_SLOTS).map(|_| Slot::new()).collect();
        FlatCombiner {
            shared: Arc::new(FcShared {
                slots,
                next_slot: AtomicUsize::new(0),
                combiner_lock: AtomicBool::new(false),
                data: UnsafeCell::new(value),
                apply,
            }),
        }
    }

    /// Claim this thread's publication slot. Call once per thread;
    /// the handle submits operations.
    ///
    /// # Panics
    /// Panics when more than [`MAX_SLOTS`] handles are claimed.
    pub fn register(&self) -> FcHandle<T, Op, Out, F> {
        let idx = self.shared.next_slot.fetch_add(1, Ordering::Relaxed);
        assert!(idx < MAX_SLOTS, "too many flat-combining participants");
        FcHandle {
            shared: self.shared.clone(),
            idx,
        }
    }

    /// Consume, returning the inner value.
    ///
    /// # Panics
    /// Panics if handles still exist.
    pub fn into_inner(self) -> T {
        let shared =
            Arc::try_unwrap(self.shared).unwrap_or_else(|_| panic!("handles still registered"));
        shared.data.into_inner()
    }
}

/// A registered participant of a [`FlatCombiner`].
pub struct FcHandle<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<FcShared<T, Op, Out, F>>,
    idx: usize,
}

impl<T, Op, Out, F> FcHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Apply `op` to the shared value, possibly becoming the combiner
    /// and executing other threads' operations too.
    pub fn apply(&self, op: Op) -> Out {
        let slot = &self.shared.slots[self.idx];
        // SAFETY: the slot is ours (EMPTY), nobody reads `op` until
        // we flip to PENDING.
        unsafe { (*slot.op.get()).write(op) };
        slot.seq.store(SLOT_PENDING, Ordering::Release);

        let mut spin = asl_runtime::relax::Spin::new();
        loop {
            if slot.seq.load(Ordering::Acquire) == SLOT_DONE {
                break;
            }
            if !self.shared.combiner_lock.swap(true, Ordering::Acquire) {
                // We are the combiner: run every pending op.
                // SAFETY: combiner lock held.
                unsafe { self.shared.combine_pass() };
                self.shared.combiner_lock.store(false, Ordering::Release);
                // Our own op was pending, so it is done now.
                debug_assert_eq!(slot.seq.load(Ordering::Relaxed), SLOT_DONE);
                break;
            }
            spin.relax();
        }
        slot.seq.store(SLOT_EMPTY, Ordering::Relaxed);
        // SAFETY: DONE guarantees an initialized result written by
        // the combiner; we are the only reader.
        unsafe { (*slot.out.get()).assume_init_read() }
    }
}

/// Delegation with a dedicated server thread.
///
/// The caller spawns the server loop (typically pinned to a big
/// core) via [`DedicatedServer::serve`]; clients submit with
/// [`ServerHandle::apply`]. Dropping all handles and calling
/// [`DedicatedServer::shutdown`] stops the server.
pub struct DedicatedServer<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<FcShared<T, Op, Out, F>>,
    stop: Arc<AtomicBool>,
}

impl<T, Op, Out, F> DedicatedServer<T, Op, Out, F>
where
    T: Send + 'static,
    Op: Send + 'static,
    Out: Send + 'static,
    F: Fn(&mut T, Op) -> Out + Send + Sync + 'static,
{
    /// Wrap `value`; `apply` executes one operation against it.
    pub fn new(value: T, apply: F) -> Self {
        let slots = (0..MAX_SLOTS).map(|_| Slot::new()).collect();
        DedicatedServer {
            shared: Arc::new(FcShared {
                slots,
                next_slot: AtomicUsize::new(0),
                combiner_lock: AtomicBool::new(false),
                data: UnsafeCell::new(value),
                apply,
            }),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The server loop: call from the thread that should execute all
    /// critical sections (pin it to a big core first). Returns when
    /// [`DedicatedServer::shutdown`] is called.
    pub fn serve(&self) {
        let mut spin = asl_runtime::relax::Spin::new();
        while !self.stop.load(Ordering::Acquire) {
            // SAFETY: the server is the only executor (no combiner
            // lock is ever taken in this variant).
            let n = unsafe { self.shared.combine_pass() };
            if n == 0 {
                spin.relax();
            } else {
                spin.reset();
            }
        }
        // Drain once more so no submitter is left hanging.
        // SAFETY: as above.
        unsafe { self.shared.combine_pass() };
    }

    /// Ask the server loop to exit after a final drain.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Claim a client slot.
    ///
    /// # Panics
    /// Panics when more than [`MAX_SLOTS`] handles are claimed.
    pub fn register(&self) -> ServerHandle<T, Op, Out, F> {
        let idx = self.shared.next_slot.fetch_add(1, Ordering::Relaxed);
        assert!(idx < MAX_SLOTS, "too many delegation clients");
        ServerHandle {
            shared: self.shared.clone(),
            idx,
        }
    }
}

/// A client of a [`DedicatedServer`].
pub struct ServerHandle<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<FcShared<T, Op, Out, F>>,
    idx: usize,
}

impl<T, Op, Out, F> ServerHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Submit `op` and wait for the server to execute it.
    pub fn apply(&self, op: Op) -> Out {
        let slot = &self.shared.slots[self.idx];
        // SAFETY: slot protocol as in FcHandle::apply.
        unsafe { (*slot.op.get()).write(op) };
        slot.seq.store(SLOT_PENDING, Ordering::Release);
        let mut spin = asl_runtime::relax::Spin::new();
        while slot.seq.load(Ordering::Acquire) != SLOT_DONE {
            spin.relax();
        }
        slot.seq.store(SLOT_EMPTY, Ordering::Relaxed);
        // SAFETY: DONE ⇒ initialized result, single reader.
        unsafe { (*slot.out.get()).assume_init_read() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_ops() {
        let fc = FlatCombiner::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let h = fc.register();
        assert_eq!(h.apply(5), 5);
        assert_eq!(h.apply(7), 12);
        drop(h);
        assert_eq!(fc.into_inner(), 12);
    }

    #[test]
    fn concurrent_counter_flat_combining() {
        let fc = FlatCombiner::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let mut handles = vec![];
        for _ in 0..8 {
            let h = fc.register();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    h.apply(1);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(fc.into_inner(), 160_000);
    }

    #[test]
    fn results_routed_to_correct_thread() {
        // Each thread adds its own id and must read back values that
        // are consistent with its own sequence of submissions.
        let fc = FlatCombiner::new(Vec::<u32>::new(), |v, id: u32| {
            v.push(id);
            v.iter().filter(|&&x| x == id).count()
        });
        let mut handles = vec![];
        for id in 0..6u32 {
            let h = fc.register();
            handles.push(std::thread::spawn(move || {
                for i in 1..=1_000 {
                    let seen = h.apply(id);
                    assert_eq!(seen, i, "thread {id} saw foreign count");
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let v = fc.into_inner();
        assert_eq!(v.len(), 6_000);
    }

    #[test]
    fn dedicated_server_counter() {
        let srv = Arc::new(DedicatedServer::new(0u64, |v, add: u64| {
            *v += add;
            *v
        }));
        let server = {
            let srv = srv.clone();
            std::thread::spawn(move || srv.serve())
        };
        let mut handles = vec![];
        for _ in 0..6 {
            let h = srv.register();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    h.apply(1);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        srv.shutdown();
        server.join().unwrap();
    }

    #[test]
    #[should_panic]
    fn slot_exhaustion_panics() {
        let fc = FlatCombiner::new((), |_, _op: ()| ());
        let handles: Vec<_> = (0..MAX_SLOTS).map(|_| fc.register()).collect();
        let _one_too_many = fc.register();
        drop(handles);
    }
}
