//! CC-Synch — the combining *queue* (Fatourou & Kallimanis, PPoPP
//! 2012): delegation without the publication-array scan.
//!
//! Flat combining's combiner walks every participant slot per pass,
//! touching `MAX_SLOTS` cache lines even when two threads are active.
//! CC-Synch instead threads requests into a queue at announce time:
//! an arriving thread swaps its fresh node into the shared tail,
//! announces its op in the *previous* tail node, and spins on that
//! node. The current combiner walks only announced nodes — each one a
//! waiter that actually exists — executing up to a bounded batch
//! ([`CcSynch::combining_batch`]) of critical sections before handing
//! the combiner role to the next waiter *in its own node* (a
//! cache-local handoff, no shared flag).
//!
//! Nodes are preallocated at registration and circulate among
//! participants (each apply trades the thread's fresh node for the
//! previous tail), so the hot path never allocates.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use asl_runtime::clock::now_ns;
use asl_runtime::relax::Spin;

use crate::delegation::{claim_slot, DelegationHandle, DelegationLock, SlotsExhausted, MAX_SLOTS};
use crate::telemetry::{register_cell, TelemetryCell};

/// Default bound on critical sections one combiner executes before
/// handing off (CC-Synch's `h`): big enough to amortize the handoff,
/// small enough that no thread combines forever.
pub const DEFAULT_BATCH: usize = 64;

/// One queue node, cache-line padded. `wait` is the spin flag of
/// whichever thread announced in this node; `completed` distinguishes
/// "your op is done" from "you are the combiner now".
#[repr(align(128))]
struct CcNode<Op, Out> {
    wait: AtomicBool,
    completed: AtomicBool,
    panicked: AtomicBool,
    next: AtomicPtr<CcNode<Op, Out>>,
    op: UnsafeCell<MaybeUninit<Op>>,
    out: UnsafeCell<MaybeUninit<Out>>,
}

impl<Op, Out> CcNode<Op, Out> {
    fn new() -> Self {
        CcNode {
            wait: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
            op: UnsafeCell::new(MaybeUninit::uninit()),
            out: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

struct CcShared<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    /// All nodes, owned here for their lifetime (they circulate among
    /// participants; index 0 is the initial dummy tail).
    nodes: Box<[CcNode<Op, Out>]>,
    next_node: AtomicUsize,
    tail: AtomicPtr<CcNode<Op, Out>>,
    data: UnsafeCell<T>,
    apply: F,
    batch: usize,
    /// Combiner-wait attribution (`<label>.combine`) when profiled.
    cell: Option<Arc<TelemetryCell>>,
}

// SAFETY: `data` is only touched by the current combiner (the unique
// thread that observed `wait == false, completed == false`); node
// payloads are ordered by the wait/next protocols.
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Send
    for CcShared<T, Op, Out, F>
{
}
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Sync
    for CcShared<T, Op, Out, F>
{
}

/// CC-Synch combining queue over a value `T` with operation type
/// `Op`. See the [module docs](self) for the protocol.
pub struct CcSynch<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<CcShared<T, Op, Out, F>>,
}

impl<T, Op, Out, F> CcSynch<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Wrap `value`; `apply` executes one operation against it.
    pub fn new(value: T, apply: F) -> Self {
        Self::with_batch(value, apply, DEFAULT_BATCH)
    }

    /// [`CcSynch::new`] with an explicit combining-batch bound.
    pub fn with_batch(value: T, apply: F, batch: usize) -> Self {
        Self::build(value, apply, batch, None)
    }

    /// [`CcSynch::new`] with combiner-wait telemetry registered as
    /// `<label>.combine` in the process-wide profiling registry.
    pub fn instrumented(value: T, apply: F, label: &str) -> Self {
        let cell = Arc::new(TelemetryCell::sampled());
        register_cell(format!("{label}.combine"), cell.clone());
        Self::build(value, apply, DEFAULT_BATCH, Some(cell))
    }

    fn build(value: T, apply: F, batch: usize, cell: Option<Arc<TelemetryCell>>) -> Self {
        // One node per possible participant plus the initial dummy.
        let nodes: Box<[CcNode<Op, Out>]> = (0..=MAX_SLOTS).map(|_| CcNode::new()).collect();
        let shared = Arc::new(CcShared {
            nodes,
            next_node: AtomicUsize::new(0),
            tail: AtomicPtr::new(ptr::null_mut()),
            data: UnsafeCell::new(value),
            apply,
            batch: batch.max(1),
            cell,
        });
        // The dummy tail starts "released" (wait=false, completed=
        // false), so the first announcer becomes the first combiner.
        let dummy = &shared.nodes[0] as *const _ as *mut CcNode<Op, Out>;
        shared.tail.store(dummy, Ordering::Relaxed);
        CcSynch { shared }
    }

    /// The combining-batch bound (`h`).
    pub fn combining_batch(&self) -> usize {
        self.shared.batch
    }

    /// Claim a participant node. Call once per thread; the handle
    /// submits operations.
    pub fn try_register(&self) -> Result<CcHandle<T, Op, Out, F>, SlotsExhausted> {
        let idx = claim_slot(&self.shared.next_node)?;
        Ok(CcHandle {
            node: Cell::new(&self.shared.nodes[idx + 1] as *const _ as *mut CcNode<Op, Out>),
            shared: self.shared.clone(),
        })
    }

    /// [`CcSynch::try_register`], panicking on exhaustion.
    ///
    /// # Panics
    /// Panics with [`SlotsExhausted`] when more than
    /// [`MAX_SLOTS`] handles are claimed.
    pub fn register(&self) -> CcHandle<T, Op, Out, F> {
        self.try_register().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Consume, returning the inner value.
    ///
    /// # Panics
    /// Panics if handles still exist.
    pub fn into_inner(self) -> T {
        let shared =
            Arc::try_unwrap(self.shared).unwrap_or_else(|_| panic!("handles still registered"));
        shared.data.into_inner()
    }
}

impl<T, Op, Out, F> DelegationLock for CcSynch<T, Op, Out, F>
where
    T: Send + 'static,
    Op: Send + 'static,
    Out: Send + 'static,
    F: Fn(&mut T, Op) -> Out + Send + Sync + 'static,
{
    type Op = Op;
    type Out = Out;
    type Handle = CcHandle<T, Op, Out, F>;

    fn try_register(&self) -> Result<Self::Handle, SlotsExhausted> {
        CcSynch::try_register(self)
    }

    fn delegation_name(&self) -> &'static str {
        "ccsynch"
    }
}

/// A registered participant of a [`CcSynch`]. Not `Sync`: one handle
/// belongs to one thread (its queue node is unsynchronized).
pub struct CcHandle<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    /// This thread's fresh node for the *next* announce (traded for
    /// the previous tail on every apply).
    node: Cell<*mut CcNode<Op, Out>>,
    shared: Arc<CcShared<T, Op, Out, F>>,
}

// SAFETY: the raw node pointer is owned by this handle between
// applies (the protocol hands a released node back on every swap);
// moving the handle to another thread moves that ownership whole.
unsafe impl<T, Op, Out, F> Send for CcHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
}

impl<T, Op, Out, F> CcHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Apply `op`, possibly becoming the combiner and executing up to
    /// a batch of other threads' operations too.
    pub fn apply(&self, op: Op) -> Out {
        let shared = &*self.shared;
        let fresh = self.node.get();
        // SAFETY: `fresh` is this thread's released node — nobody
        // else reads it until the tail swap publishes it.
        unsafe {
            (*fresh).wait.store(true, Ordering::Relaxed);
            (*fresh).completed.store(false, Ordering::Relaxed);
            (*fresh).panicked.store(false, Ordering::Relaxed);
            (*fresh).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let cur = shared.tail.swap(fresh, Ordering::AcqRel);
        // SAFETY: the swap made `cur` ours to announce in; its
        // previous owner released it (or it is the dummy).
        unsafe {
            (*cur).op.get().write(MaybeUninit::new(op));
            // Publish: the op write must be visible before the link.
            (*cur).next.store(fresh, Ordering::Release);
        }
        self.node.set(cur);

        let armed = shared.cell.as_deref().is_some_and(TelemetryCell::armed);
        let t0 = if armed { now_ns() } else { 0 };
        let mut spin = Spin::new();
        // SAFETY: `cur` stays valid (owned by the shared node pool).
        while unsafe { (*cur).wait.load(Ordering::Acquire) } {
            spin.relax();
        }
        if let (true, Some(cell)) = (armed, shared.cell.as_deref()) {
            cell.record_acquisition(true);
            cell.add_wait_ns(now_ns().saturating_sub(t0));
        }

        // SAFETY: wait==false with release/acquire ordering hands the
        // node state over (result, or the combiner role).
        unsafe {
            if (*cur).completed.load(Ordering::Relaxed) {
                if (*cur).panicked.load(Ordering::Relaxed) {
                    panic!("delegated operation panicked");
                }
                return (*cur).out.get().read().assume_init();
            }
        }

        // Combiner: walk announced nodes starting with our own,
        // execute up to `batch` ops, then hand off cache-locally.
        let data = shared.data.get();
        let mut node = cur;
        let mut executed = 0usize;
        loop {
            // SAFETY: nodes are pool-owned; `next` is only non-null
            // once the successor's announce published its op.
            let nextp = unsafe { (*node).next.load(Ordering::Acquire) };
            if nextp.is_null() || executed >= shared.batch {
                break;
            }
            executed += 1;
            // SAFETY: announced node — op initialized, owner spinning.
            unsafe {
                let op = (*node).op.get().read().assume_init();
                match catch_unwind(AssertUnwindSafe(|| (shared.apply)(&mut *data, op))) {
                    Ok(out) => (*node).out.get().write(MaybeUninit::new(out)),
                    Err(payload) => {
                        drop(payload);
                        (*node).panicked.store(true, Ordering::Relaxed);
                    }
                }
                (*node).completed.store(true, Ordering::Relaxed);
                (*node).wait.store(false, Ordering::Release);
            }
            node = nextp;
        }
        // Handoff: the next announcer (or a future one, if `node` is
        // the unannounced tail) sees wait==false, completed==false
        // and becomes the combiner.
        // SAFETY: pool-owned node.
        unsafe { (*node).wait.store(false, Ordering::Release) };

        // SAFETY: our own op was the first executed; `cur` is ours.
        unsafe {
            if (*cur).panicked.load(Ordering::Relaxed) {
                panic!("delegated operation panicked");
            }
            (*cur).out.get().read().assume_init()
        }
    }
}

impl<T, Op, Out, F> DelegationHandle for CcHandle<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    type Op = Op;
    type Out = Out;

    fn apply(&self, op: Op) -> Out {
        CcHandle::apply(self, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_ops() {
        let cc = CcSynch::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let h = cc.register();
        assert_eq!(h.apply(5), 5);
        assert_eq!(h.apply(7), 12);
        drop(h);
        assert_eq!(cc.into_inner(), 12);
    }

    #[test]
    fn concurrent_counter() {
        let cc = CcSynch::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let mut handles = vec![];
        for _ in 0..8 {
            let h = cc.register();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    h.apply(1);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(cc.into_inner(), 160_000);
    }

    #[test]
    fn results_routed_to_correct_thread() {
        let cc = CcSynch::new(Vec::<u32>::new(), |v, id: u32| {
            v.push(id);
            v.iter().filter(|&&x| x == id).count()
        });
        let mut handles = vec![];
        for id in 0..6u32 {
            let h = cc.register();
            handles.push(std::thread::spawn(move || {
                for i in 1..=1_000 {
                    let seen = h.apply(id);
                    assert_eq!(seen, i, "thread {id} saw foreign count");
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(cc.into_inner().len(), 6_000);
    }

    #[test]
    fn tiny_batch_still_completes_everyone() {
        // batch=1 forces a handoff after every op: the pure
        // pass-the-combiner regime.
        let cc = CcSynch::with_batch(0u64, |v, add: u64| *v += add, 1);
        let mut handles = vec![];
        for _ in 0..6 {
            let h = cc.register();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    h.apply(1);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(cc.into_inner(), 30_000);
    }

    #[test]
    fn slot_exhaustion_is_a_clean_error() {
        let cc = CcSynch::new((), |_, _op: ()| ());
        let handles: Vec<_> = (0..MAX_SLOTS).map(|_| cc.register()).collect();
        assert_eq!(
            cc.try_register().err(),
            Some(SlotsExhausted { limit: MAX_SLOTS })
        );
        drop(handles);
    }
}
