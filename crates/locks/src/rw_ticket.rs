//! Phase-fair ticket reader-writer lock, after Brandenburg &
//! Anderson's PF-T ("Spin-based reader-writer synchronization for
//! multiprocessor real-time systems", 2010).
//!
//! Readers and writers alternate in *phases*: a reader arriving while
//! a writer is present blocks only for that one writer phase (and the
//! writer only for the reader batch that entered before it), so
//! neither side can starve the other — the reader-writer analogue of
//! the FIFO guarantees the exclusive ticket lock gives. Counters:
//!
//! * `rin`/`rout` — readers entered/exited, counted in units of
//!   `RINC`; the low bit of `rin` doubles as the writer-presence flag
//!   (`PRES`).
//! * `win`/`wout` — writer tickets issued/retired (writers serialize
//!   FIFO among themselves exactly like the exclusive ticket lock).
//! * `drain_target` — the reader-entry count snapshotted by the
//!   present writer at its announcement; exactly the readers *below*
//!   the target are the ones the writer waits for.
//!
//! We deviate from the textbook PF-T in how a blocked reader decides
//! it has been granted. PF-T readers watch a 1-bit phase id, which is
//! only sound while every announced writer phase drains all earlier
//! readers — an invariant a non-blocking `try_write` back-out cannot
//! keep (a reader sleeping through the aborted phase could wake to a
//! later writer with an identical phase bit and deadlock against it).
//! Instead a blocked reader compares its own entry ticket against
//! `drain_target`: targets grow monotonically with reader entries, so
//! any *later* writer's target provably includes the blocked reader,
//! and the grant check (`target > mine` → the present writer waits
//! for me, go) cannot be fooled by phase-counter wrap-around.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::RawRwLock;

/// Reader count increment: readers are counted above the writer flag
/// (the rest of the low byte stays reserved).
const RINC: u32 = 0x100;
/// Mask of the writer bits in `rin`.
const WBITS: u32 = RINC - 1;
/// A writer is present (set while a writer holds or drains readers).
const PRES: u32 = 0x1;

/// Phase-fair ticket reader-writer lock.
pub struct RwTicketLock {
    /// Reader entry ticket (high bits) + writer presence (low bits).
    rin: AtomicU32,
    /// Reader exit count (same units as the high bits of `rin`).
    rout: AtomicU32,
    /// Writer entry ticket.
    win: AtomicU32,
    /// Writers retired.
    wout: AtomicU32,
    /// Reader-entry count snapshotted by the present writer: readers
    /// below the target are drained, readers at or above it wait.
    drain_target: AtomicU32,
}

impl RwTicketLock {
    /// New unlocked rwlock.
    pub fn new() -> Self {
        RwTicketLock {
            rin: AtomicU32::new(0),
            rout: AtomicU32::new(0),
            win: AtomicU32::new(0),
            wout: AtomicU32::new(0),
            drain_target: AtomicU32::new(0),
        }
    }

    /// Number of readers currently holding or draining (heuristic).
    pub fn reader_count(&self) -> u32 {
        let entered = self.rin.load(Ordering::Relaxed) & !WBITS;
        let exited = self.rout.load(Ordering::Relaxed);
        entered.wrapping_sub(exited) / RINC
    }

    /// Number of writers holding or waiting (heuristic).
    pub fn writer_queue_depth(&self) -> u32 {
        self.win
            .load(Ordering::Relaxed)
            .wrapping_sub(self.wout.load(Ordering::Relaxed))
    }
}

impl Default for RwTicketLock {
    fn default() -> Self {
        Self::new()
    }
}

impl RawRwLock for RwTicketLock {
    type ReadToken = ();
    type WriteToken = ();

    #[inline]
    fn read(&self) -> Self::ReadToken {
        let prev = self.rin.fetch_add(RINC, Ordering::Acquire);
        if prev & WBITS != 0 {
            // A writer was present at our entry, so we are not in its
            // drain snapshot: wait until it leaves (bits clear) or a
            // *later* writer announces — its target counts us, so it
            // waits for us and we may read under its drain.
            let mine = prev & !WBITS;
            let mut spin = asl_runtime::relax::Spin::new();
            loop {
                if self.rin.load(Ordering::Acquire) & WBITS == 0 {
                    break;
                }
                let target = self.drain_target.load(Ordering::Acquire);
                if target.wrapping_sub(mine) as i32 > 0 {
                    break;
                }
                spin.relax();
            }
        }
    }

    #[inline]
    fn try_read(&self) -> Option<Self::ReadToken> {
        let mut cur = self.rin.load(Ordering::Relaxed);
        loop {
            if cur & WBITS != 0 {
                return None;
            }
            // CAS failures here only mean other *readers* raced us;
            // retry until the word shows a writer (lock-free: each
            // retry implies someone else made progress).
            match self.rin.compare_exchange_weak(
                cur,
                cur.wrapping_add(RINC),
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(()),
                Err(now) => cur = now,
            }
        }
    }

    #[inline]
    fn unlock_read(&self, _t: ()) {
        self.rout.fetch_add(RINC, Ordering::Release);
    }

    #[inline]
    fn write(&self) -> Self::WriteToken {
        // Serialize FIFO among writers.
        let ticket = self.win.fetch_add(1, Ordering::Relaxed);
        let mut spin = asl_runtime::relax::Spin::new();
        while self.wout.load(Ordering::Acquire) != ticket {
            spin.relax();
        }
        // Announce presence (blocking new readers), publish the drain
        // target (releasing readers below it), wait for exactly those
        // readers to leave.
        let entered = self.rin.fetch_add(PRES, Ordering::Acquire) & !WBITS;
        self.drain_target.store(entered, Ordering::Release);
        spin.reset();
        while self.rout.load(Ordering::Acquire) != entered {
            spin.relax();
        }
    }

    #[inline]
    fn try_write(&self) -> Option<Self::WriteToken> {
        let ticket = self.wout.load(Ordering::Acquire);
        // Only take a writer ticket if it would be served immediately.
        if self
            .win
            .compare_exchange(
                ticket,
                ticket.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return None;
        }
        let entered = self.rin.fetch_add(PRES, Ordering::Acquire) & !WBITS;
        self.drain_target.store(entered, Ordering::Release);
        if self.rout.load(Ordering::Acquire) == entered {
            return Some(());
        }
        // Readers still active: back out without waiting. This is
        // safe precisely because reader grants key off the monotone
        // drain target, not a phase bit: a reader that slept through
        // this aborted announcement is below every later writer's
        // target and can never be confused into waiting for one.
        self.rin.fetch_and(!WBITS, Ordering::Release);
        self.wout.fetch_add(1, Ordering::Release);
        None
    }

    #[inline]
    fn unlock_write(&self, _t: ()) {
        // Release readers first (clear the presence bits), then retire
        // the ticket so the next writer may start its own phase.
        self.rin.fetch_and(!WBITS, Ordering::Release);
        self.wout.fetch_add(1, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.reader_count() > 0 || self.writer_queue_depth() > 0
    }

    #[inline]
    fn is_write_locked(&self) -> bool {
        self.writer_queue_depth() > 0
    }

    const NAME: &'static str = "rw-ticket";
}

#[cfg(test)]
// Unit tokens are still tokens: the tests pass them explicitly to
// exercise the RawRwLock protocol.
#[allow(clippy::let_unit_value)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_basic() {
        let l = RwTicketLock::new();
        assert!(!l.is_locked());
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(l.reader_count(), 2);
        assert!(l.try_write().is_none(), "readers block writers");
        l.unlock_read(r1);
        l.unlock_read(r2);
        let w = l.try_write().expect("drained readers admit a writer");
        assert!(l.is_write_locked());
        assert!(l.try_read().is_none(), "writer blocks readers");
        assert!(l.try_write().is_none(), "writer blocks writers");
        l.unlock_write(w);
        assert!(!l.is_locked());
    }

    #[test]
    fn try_read_succeeds_alongside_readers() {
        let l = RwTicketLock::new();
        let r = l.read();
        let r2 = l.try_read().expect("read does not exclude read");
        l.unlock_read(r);
        l.unlock_read(r2);
        assert!(!l.is_locked());
    }

    #[test]
    fn writers_exclude_each_other() {
        // A non-atomic counter in an UnsafeCell: only writer mutual
        // exclusion makes the final count race-free.
        struct Shared {
            lock: RwTicketLock,
            value: std::cell::UnsafeCell<u64>,
        }
        unsafe impl Sync for Shared {}
        let s = Arc::new(Shared {
            lock: RwTicketLock::new(),
            value: std::cell::UnsafeCell::new(0),
        });
        let mut handles = vec![];
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let t = s.lock.write();
                    unsafe { *s.value.get() += 1 };
                    s.lock.unlock_write(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *s.value.get() }, 8_000);
        assert!(!s.lock.is_locked());
    }

    #[test]
    fn try_write_backout_does_not_strand_blocked_readers() {
        // Regression: with the phase-bit grant, a failed try_write
        // consumed a writer ticket without draining readers, so a
        // reader preempted across the aborted phase could wake to a
        // later writer with an identical phase bit and deadlock
        // against it (the writer waiting for the reader, the reader
        // for the writer). The monotone drain-target grant makes that
        // impossible; hammer the exact interleaving to guard it.
        let l = Arc::new(RwTicketLock::new());
        let stop = Arc::new(AtomicU32::new(0));
        let mut workers = vec![];
        for _ in 0..2 {
            let l = l.clone();
            let stop = stop.clone();
            workers.push(std::thread::spawn(move || {
                while stop.load(Ordering::Acquire) == 0 {
                    let t = l.read();
                    l.unlock_read(t);
                }
            }));
        }
        // Interleave blocking writes with try_write back-outs: every
        // failed try consumes a ticket, which used to flip the phase
        // parity underneath blocked readers.
        for _ in 0..2_000 {
            if let Some(t) = l.try_write() {
                l.unlock_write(t);
            }
            let t = l.write();
            l.unlock_write(t);
        }
        stop.store(1, Ordering::Release);
        for h in workers {
            h.join().unwrap();
        }
        assert!(!l.is_locked());
    }

    #[test]
    fn phase_fairness_writer_not_starved_by_reader_stream() {
        // A continuous stream of readers must not starve a writer:
        // once the writer announces presence, new readers block until
        // its phase completes.
        let l = Arc::new(RwTicketLock::new());
        let stop = Arc::new(AtomicU32::new(0));
        let mut readers = vec![];
        for _ in 0..3 {
            let l = l.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                while stop.load(Ordering::Acquire) == 0 {
                    let t = l.read();
                    l.unlock_read(t);
                }
            }));
        }
        // The writer must get through even while readers hammer.
        for _ in 0..50 {
            let t = l.write();
            l.unlock_write(t);
        }
        stop.store(1, Ordering::Release);
        for h in readers {
            h.join().unwrap();
        }
        assert!(!l.is_locked());
    }
}
