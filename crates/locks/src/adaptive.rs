//! Contention-adaptive lock: TAS that morphs into a queue lock.
//!
//! Fissile-style substrate morphing (Dice & Kogan, *Fissile Locks*):
//! under light load a test-and-set lock is unbeatable — one swap, no
//! queue-node traffic — but under contention its collapsed fairness
//! and coherence storms lose to a FIFO queue. [`Adaptive`] runs both
//! substrates behind one interface and *morphs* between them based on
//! the telemetry it records:
//!
//! * **TAS mode** (initial): acquire by swapping the flag; waiters
//!   spin locally with [`asl_runtime::relax::Spin`].
//! * **Queue mode**: waiters first pass through an internal FIFO
//!   ticket queue, then take the flag (uncontended except against
//!   stragglers still spinning from TAS mode — the flag stays the
//!   single ground truth of ownership in both modes, which is what
//!   makes the morph race-free: changing mode never changes who holds
//!   the lock).
//!
//! Morphing is driven by streak counters over the shared
//! [`TelemetryCell`] signal: `promote_after` consecutive contended
//! acquisitions switch to the queue; `demote_after` consecutive
//! arrivals that found the lock completely idle switch back. Both
//! thresholds are deterministic counter comparisons — tests observe
//! morphs through [`Adaptive::mode`] and telemetry snapshots, never
//! through timing.
//!
//! ```
//! use asl_locks::api::GuardedLock;
//! use asl_locks::{Adaptive, AdaptiveMode};
//!
//! let lock = Adaptive::new();
//! assert_eq!(lock.mode(), AdaptiveMode::Tas);
//! {
//!     let _held = lock.guard();
//! }
//! // Uncontended use never morphs.
//! assert_eq!(lock.mode(), AdaptiveMode::Tas);
//! assert_eq!(lock.telemetry().snapshot().contended, 0);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};

use crate::plain::TokenWords;
use crate::telemetry::TelemetryCell;
use crate::{RawLock, TicketLock};

const MODE_TAS: u8 = 0;
const MODE_QUEUE: u8 = 1;

/// Which substrate [`Adaptive`] currently grants through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveMode {
    /// Unfair test-and-set fast path (light load).
    Tas,
    /// FIFO ticket funnel in front of the flag (contended).
    Queue,
}

/// Proof of an [`Adaptive`] acquisition; records which path was taken
/// so the release can unwind it.
#[derive(Debug)]
pub struct AdaptiveToken {
    via_queue: bool,
}

impl TokenWords for AdaptiveToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (self.via_queue as usize, 0)
    }
    #[inline]
    unsafe fn from_words(a: usize, _b: usize) -> Self {
        AdaptiveToken { via_queue: a != 0 }
    }
}

/// Contention-adaptive lock (see module docs).
pub struct Adaptive {
    /// Ground truth of ownership in both modes.
    flag: AtomicBool,
    /// FIFO funnel used in queue mode.
    queue: TicketLock,
    /// Current substrate (monotonic per observation, not per run).
    mode: AtomicU8,
    /// Consecutive contended acquisitions (promotion signal).
    hot_streak: AtomicU32,
    /// Consecutive idle arrivals (demotion signal).
    calm_streak: AtomicU32,
    promote_after: u32,
    demote_after: u32,
    to_queue: AtomicU64,
    to_tas: AtomicU64,
    telemetry: TelemetryCell,
}

/// Default contended-streak length before morphing TAS → queue.
/// Promotion is deliberately aggressive (Fissile promotes on little
/// evidence and relies on demotion being cheap); it also keeps the
/// morph observable on over-subscribed hosts, where a holder
/// preempted mid-critical-section yields at most `threads - 1`
/// consecutive contended observations.
pub const DEFAULT_PROMOTE_AFTER: u32 = 4;
/// Default idle-streak length before morphing queue → TAS.
pub const DEFAULT_DEMOTE_AFTER: u32 = 512;

impl Adaptive {
    /// Adaptive lock with the default morph thresholds.
    pub fn new() -> Self {
        Self::with_thresholds(DEFAULT_PROMOTE_AFTER, DEFAULT_DEMOTE_AFTER)
    }

    /// Adaptive lock with explicit morph thresholds: `promote_after`
    /// consecutive contended acquisitions switch TAS → queue,
    /// `demote_after` consecutive idle arrivals switch back. Both
    /// must be non-zero.
    pub fn with_thresholds(promote_after: u32, demote_after: u32) -> Self {
        assert!(promote_after > 0 && demote_after > 0);
        Adaptive {
            flag: AtomicBool::new(false),
            queue: TicketLock::new(),
            mode: AtomicU8::new(MODE_TAS),
            hot_streak: AtomicU32::new(0),
            calm_streak: AtomicU32::new(0),
            promote_after,
            demote_after,
            to_queue: AtomicU64::new(0),
            to_tas: AtomicU64::new(0),
            telemetry: TelemetryCell::new(),
        }
    }

    /// The substrate currently granting acquisitions.
    #[inline]
    pub fn mode(&self) -> AdaptiveMode {
        if self.mode.load(Ordering::Relaxed) == MODE_QUEUE {
            AdaptiveMode::Queue
        } else {
            AdaptiveMode::Tas
        }
    }

    /// Times the lock morphed TAS → queue.
    pub fn morphs_to_queue(&self) -> u64 {
        self.to_queue.load(Ordering::Relaxed)
    }

    /// Times the lock morphed queue → TAS.
    pub fn morphs_to_tas(&self) -> u64 {
        self.to_tas.load(Ordering::Relaxed)
    }

    /// The shared telemetry this lock records into (and morphs from).
    pub fn telemetry(&self) -> &TelemetryCell {
        &self.telemetry
    }

    /// A contended acquisition happened: advance the promotion
    /// streak, possibly morphing to the queue substrate.
    #[inline]
    fn note_contended(&self) {
        self.calm_streak.store(0, Ordering::Relaxed);
        let streak = self.hot_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.promote_after
            && self
                .mode
                .compare_exchange(MODE_TAS, MODE_QUEUE, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.to_queue.fetch_add(1, Ordering::Relaxed);
            self.hot_streak.store(0, Ordering::Relaxed);
        }
    }

    /// An arrival found the lock completely idle: advance the
    /// demotion streak, possibly morphing back to TAS.
    #[inline]
    fn note_idle(&self) {
        self.hot_streak.store(0, Ordering::Relaxed);
        let streak = self.calm_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.demote_after
            && self
                .mode
                .compare_exchange(MODE_QUEUE, MODE_TAS, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.to_tas.fetch_add(1, Ordering::Relaxed);
            self.calm_streak.store(0, Ordering::Relaxed);
        }
    }

    /// Queue-mode slow path: FIFO funnel (the ticket token is the
    /// unit type, re-supplied at release), then take the flag.
    fn lock_via_queue(&self) -> AdaptiveToken {
        self.queue.lock();
        // Mostly uncontended: the previous holder released the flag
        // before (or right after) releasing the funnel. Stragglers
        // still spinning from TAS mode can race us, so loop.
        let mut spin = asl_runtime::relax::Spin::new();
        let mut iters = 0u64;
        while self.flag.swap(true, Ordering::Acquire) {
            spin.relax();
            iters += 1;
        }
        self.telemetry.add_spins(iters);
        AdaptiveToken { via_queue: true }
    }
}

impl Default for Adaptive {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for Adaptive {
    type Token = AdaptiveToken;

    #[inline]
    fn lock(&self) -> AdaptiveToken {
        if self.mode.load(Ordering::Relaxed) == MODE_QUEUE {
            let idle = !self.queue.is_locked() && !self.flag.load(Ordering::Relaxed);
            if idle {
                self.note_idle();
            } else {
                self.note_contended();
                self.telemetry.record_contended();
            }
            let t0 = if self.telemetry.sampling() && !idle {
                asl_runtime::clock::now_ns()
            } else {
                0
            };
            let token = self.lock_via_queue();
            if t0 != 0 {
                self.telemetry
                    .add_wait_ns(asl_runtime::clock::now_ns().saturating_sub(t0));
            }
            self.telemetry.record_acquired();
            self.telemetry.note_hold_start();
            return token;
        }

        // TAS mode fast path: one swap, one counter RMW. The full
        // `note_idle` bookkeeping is skipped — `calm_streak` is only
        // consulted in queue mode (and the promoting acquisition
        // resets it), and `hot_streak` ("consecutive contended") only
        // needs a write when a streak is actually live, so the
        // usually-zero counter costs a relaxed load, not a store.
        if !self.flag.swap(true, Ordering::Acquire) {
            if self.hot_streak.load(Ordering::Relaxed) != 0 {
                self.hot_streak.store(0, Ordering::Relaxed);
            }
            self.telemetry.record_acquired();
            self.telemetry.note_hold_start();
            return AdaptiveToken { via_queue: false };
        }

        // Contended in TAS mode. The observation is recorded *before*
        // blocking (waiters are visible to snapshots while they still
        // wait) and may itself trigger the morph, in which case we
        // join the queue instead of spinning unfairly next to it.
        self.note_contended();
        self.telemetry.record_contended();
        let t0 = if self.telemetry.sampling() {
            asl_runtime::clock::now_ns()
        } else {
            0
        };
        let token = if self.mode.load(Ordering::Relaxed) == MODE_QUEUE {
            self.lock_via_queue()
        } else {
            let mut spin = asl_runtime::relax::Spin::new();
            let mut iters = 0u64;
            let mut token = None;
            loop {
                while self.flag.load(Ordering::Relaxed) {
                    spin.relax();
                    iters += 1;
                    // Migrate if the lock morphed while we spun.
                    if self.mode.load(Ordering::Relaxed) == MODE_QUEUE {
                        break;
                    }
                }
                if self.mode.load(Ordering::Relaxed) == MODE_QUEUE {
                    token = Some(self.lock_via_queue());
                    break;
                }
                spin.reset();
                if !self.flag.swap(true, Ordering::Acquire) {
                    break;
                }
            }
            self.telemetry.add_spins(iters);
            token.unwrap_or(AdaptiveToken { via_queue: false })
        };
        if t0 != 0 {
            self.telemetry
                .add_wait_ns(asl_runtime::clock::now_ns().saturating_sub(t0));
        }
        self.telemetry.record_acquired();
        self.telemetry.note_hold_start();
        token
    }

    #[inline]
    fn try_lock(&self) -> Option<AdaptiveToken> {
        // Opportunistic in both modes: the flag is the ground truth,
        // so a successful swap is a valid acquisition even while
        // queue-mode waiters funnel (they keep spinning on the flag).
        if !self.flag.swap(true, Ordering::Acquire) {
            self.telemetry.record_acquisition(false);
            self.telemetry.note_hold_start();
            Some(AdaptiveToken { via_queue: false })
        } else {
            None
        }
    }

    #[inline]
    fn unlock(&self, token: AdaptiveToken) {
        self.telemetry.note_hold_end();
        self.flag.store(false, Ordering::Release);
        if token.via_queue {
            self.queue.unlock(());
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.queue.is_locked()
    }

    const NAME: &'static str = "adaptive";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Force `waiters` guaranteed-contended acquisitions: hold the
    /// lock here, let that many helper threads block on `lock()`, and
    /// release only once telemetry proves every one of them observed
    /// contention (observations are recorded *before* blocking).
    fn contended_round(lock: &Arc<Adaptive>, waiters: u64) {
        let before = lock.telemetry().snapshot().contended;
        let t = lock.lock();
        let handles: Vec<_> = (0..waiters)
            .map(|_| {
                let l2 = lock.clone();
                std::thread::spawn(move || {
                    let t = l2.lock();
                    l2.unlock(t);
                })
            })
            .collect();
        let mut spin = asl_runtime::relax::Spin::new();
        while lock.telemetry().snapshot().contended < before + waiters {
            spin.relax();
        }
        lock.unlock(t);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn starts_in_tas_and_stays_there_uncontended() {
        let l = Adaptive::new();
        for _ in 0..1_000 {
            let t = l.lock();
            l.unlock(t);
        }
        assert_eq!(l.mode(), AdaptiveMode::Tas);
        assert_eq!(l.morphs_to_queue(), 0);
        let s = l.telemetry().snapshot();
        assert_eq!(s.acquisitions, 1_000);
        assert_eq!(s.contended, 0);
    }

    #[test]
    fn deterministic_promotion_and_demotion() {
        let lock = Arc::new(Adaptive::with_thresholds(3, 5));

        // Three concurrently observed contended acquisitions: the
        // promotion streak reaches the threshold and the lock morphs
        // to the queue substrate.
        contended_round(&lock, 3);
        assert_eq!(lock.mode(), AdaptiveMode::Queue);
        assert_eq!(lock.morphs_to_queue(), 1);
        let s = lock.telemetry().snapshot();
        assert!(s.contended >= 3, "telemetry oracle: {s:?}");

        // Five idle arrivals: morph back to TAS.
        for _ in 0..5 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert_eq!(lock.mode(), AdaptiveMode::Tas);
        assert_eq!(lock.morphs_to_tas(), 1);
    }

    #[test]
    fn queue_mode_grants_and_releases() {
        let lock = Arc::new(Adaptive::with_thresholds(1, u32::MAX));
        contended_round(&lock, 1);
        assert_eq!(lock.mode(), AdaptiveMode::Queue);
        // Acquisitions in queue mode still work single-threaded.
        for _ in 0..100 {
            let t = lock.lock();
            assert!(lock.is_locked());
            lock.unlock(t);
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_both_modes() {
        let lock = Arc::new(Adaptive::with_thresholds(1, u32::MAX));
        let t = lock.try_lock().expect("free");
        assert!(lock.try_lock().is_none());
        lock.unlock(t);

        contended_round(&lock, 1);
        assert_eq!(lock.mode(), AdaptiveMode::Queue);
        let t = lock.try_lock().expect("free in queue mode");
        assert!(lock.try_lock().is_none());
        lock.unlock(t);
        assert!(!lock.is_locked());
    }

    #[test]
    fn mutual_exclusion_across_the_morph() {
        // Low promote threshold: the run morphs mid-way; the counter
        // must stay exact regardless.
        struct Shared {
            lock: Adaptive,
            value: std::cell::UnsafeCell<u64>,
        }
        unsafe impl Sync for Shared {}
        let s = Arc::new(Shared {
            lock: Adaptive::with_thresholds(4, 64),
            value: std::cell::UnsafeCell::new(0),
        });
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let t = s.lock.lock();
                    unsafe { *s.value.get() += 1 };
                    s.lock.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *s.value.get() }, 40_000);
        assert_eq!(s.lock.telemetry().snapshot().acquisitions, 40_000);
    }

    #[test]
    fn token_words_roundtrip() {
        let t = AdaptiveToken { via_queue: true };
        let (a, b) = t.into_words();
        let back = unsafe { AdaptiveToken::from_words(a, b) };
        assert!(back.via_queue);
    }
}
