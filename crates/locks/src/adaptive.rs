//! Contention-adaptive lock: TAS that morphs into a queue lock, and
//! under sustained pressure into an admission-restricted queue.
//!
//! Fissile-style substrate morphing (Dice & Kogan, *Fissile Locks*):
//! under light load a test-and-set lock is unbeatable — one swap, no
//! queue-node traffic — but under contention its collapsed fairness
//! and coherence storms lose to a FIFO queue. [`Adaptive`] runs the
//! substrates behind one interface and *morphs* between them based on
//! the telemetry it records:
//!
//! * **TAS mode** (initial): acquire by swapping the flag; waiters
//!   spin locally with [`asl_runtime::relax::Spin`].
//! * **Queue mode**: waiters first pass through an internal FIFO
//!   ticket queue, then take the flag (uncontended except against
//!   stragglers still spinning from TAS mode — the flag stays the
//!   single ground truth of ownership in both modes, which is what
//!   makes the morph race-free: changing mode never changes who holds
//!   the lock).
//! * **Restricted mode**: the queue funnel plus a concurrency-
//!   restriction [`Gate`] (see [`crate::gcr`]) sized to the host's
//!   parallelism. When the contended streak *keeps* growing in queue
//!   mode — more runnable waiters than cores, the collapse regime —
//!   excess waiters park passively instead of spinning in the funnel.
//!
//! Morphing is driven by streak counters over the shared
//! [`TelemetryCell`] signal: `promote_after` consecutive contended
//! acquisitions switch TAS → queue and `restrict_after` of them
//! switch queue → restricted; `demote_after` consecutive arrivals
//! that found the lock completely idle unwind one stage at a time
//! (restricted → queue → TAS). All thresholds are deterministic
//! counter comparisons — tests observe morphs through
//! [`Adaptive::mode`] and telemetry snapshots, never through timing.
//!
//! ```
//! use asl_locks::api::GuardedLock;
//! use asl_locks::{Adaptive, AdaptiveMode};
//!
//! let lock = Adaptive::new();
//! assert_eq!(lock.mode(), AdaptiveMode::Tas);
//! {
//!     let _held = lock.guard();
//! }
//! // Uncontended use never morphs.
//! assert_eq!(lock.mode(), AdaptiveMode::Tas);
//! assert_eq!(lock.telemetry().snapshot().contended, 0);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};

use crate::gcr::Gate;
use crate::plain::TokenWords;
use crate::telemetry::TelemetryCell;
use crate::{RawLock, TicketLock};

const MODE_TAS: u8 = 0;
const MODE_QUEUE: u8 = 1;
const MODE_RESTRICTED: u8 = 2;

const VIA_TAS: u8 = 0;
const VIA_QUEUE: u8 = 1;
const VIA_RESTRICTED: u8 = 2;

/// Which substrate [`Adaptive`] currently grants through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveMode {
    /// Unfair test-and-set fast path (light load).
    Tas,
    /// FIFO ticket funnel in front of the flag (contended).
    Queue,
    /// Admission-gated FIFO funnel (saturated: threads ≫ cores).
    Restricted,
}

/// Proof of an [`Adaptive`] acquisition; records which path was taken
/// so the release can unwind it.
#[derive(Debug)]
pub struct AdaptiveToken {
    /// One of `VIA_TAS`/`VIA_QUEUE`/`VIA_RESTRICTED`: the path this
    /// acquisition actually took (which may lag a concurrent morph —
    /// the release must unwind what *was* entered, not current mode).
    via: u8,
}

impl TokenWords for AdaptiveToken {
    #[inline]
    fn into_words(self) -> (usize, usize) {
        (self.via as usize, 0)
    }
    #[inline]
    unsafe fn from_words(a: usize, _b: usize) -> Self {
        AdaptiveToken { via: a as u8 }
    }
}

/// Contention-adaptive lock (see module docs).
pub struct Adaptive {
    /// Ground truth of ownership in both modes.
    flag: AtomicBool,
    /// FIFO funnel used in queue and restricted modes.
    queue: TicketLock,
    /// Admission gate engaged in restricted mode only.
    gate: Gate,
    /// Current substrate (monotonic per observation, not per run).
    mode: AtomicU8,
    /// Consecutive contended acquisitions (promotion signal).
    hot_streak: AtomicU32,
    /// Consecutive idle arrivals (demotion signal).
    calm_streak: AtomicU32,
    promote_after: u32,
    restrict_after: u32,
    demote_after: u32,
    to_queue: AtomicU64,
    to_restricted: AtomicU64,
    to_tas: AtomicU64,
    telemetry: TelemetryCell,
}

/// Default contended-streak length before morphing TAS → queue.
/// Promotion is deliberately aggressive (Fissile promotes on little
/// evidence and relies on demotion being cheap); it also keeps the
/// morph observable on over-subscribed hosts, where a holder
/// preempted mid-critical-section yields at most `threads - 1`
/// consecutive contended observations.
pub const DEFAULT_PROMOTE_AFTER: u32 = 4;
/// Default idle-streak length before morphing queue → TAS.
pub const DEFAULT_DEMOTE_AFTER: u32 = 512;

/// Admission bound of the restricted stage: the host's parallelism
/// (clamped) — more runnable waiters than cores is exactly the
/// collapse the third morph exists to prevent.
fn restricted_limit() -> u32 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
        .clamp(2, 8)
}

/// Reintroduction cadence of the restricted stage's gate (handovers
/// between fairness pulses for passively parked waiters).
const RESTRICTED_REINTRODUCE_PERIOD: u32 = 64;

impl Adaptive {
    /// Adaptive lock with the default morph thresholds.
    pub fn new() -> Self {
        Self::with_thresholds(DEFAULT_PROMOTE_AFTER, DEFAULT_DEMOTE_AFTER)
    }

    /// Adaptive lock with explicit promote/demote thresholds and the
    /// default restriction threshold (`8 × promote_after` — sustained
    /// pressure, not the first contended burst).
    pub fn with_thresholds(promote_after: u32, demote_after: u32) -> Self {
        Self::with_morph_thresholds(promote_after, promote_after.saturating_mul(8), demote_after)
    }

    /// Adaptive lock with all three morph thresholds explicit:
    /// `promote_after` consecutive contended acquisitions switch
    /// TAS → queue, `restrict_after` of them switch queue →
    /// restricted, and `demote_after` consecutive idle arrivals
    /// unwind one stage. All must be non-zero.
    pub fn with_morph_thresholds(
        promote_after: u32,
        restrict_after: u32,
        demote_after: u32,
    ) -> Self {
        assert!(promote_after > 0 && restrict_after > 0 && demote_after > 0);
        Adaptive {
            flag: AtomicBool::new(false),
            queue: TicketLock::new(),
            gate: Gate::new(restricted_limit(), RESTRICTED_REINTRODUCE_PERIOD),
            mode: AtomicU8::new(MODE_TAS),
            hot_streak: AtomicU32::new(0),
            calm_streak: AtomicU32::new(0),
            promote_after,
            restrict_after,
            demote_after,
            to_queue: AtomicU64::new(0),
            to_restricted: AtomicU64::new(0),
            to_tas: AtomicU64::new(0),
            telemetry: TelemetryCell::new(),
        }
    }

    /// The substrate currently granting acquisitions.
    #[inline]
    pub fn mode(&self) -> AdaptiveMode {
        match self.mode.load(Ordering::Relaxed) {
            MODE_QUEUE => AdaptiveMode::Queue,
            MODE_RESTRICTED => AdaptiveMode::Restricted,
            _ => AdaptiveMode::Tas,
        }
    }

    /// Times the lock morphed *to* the queue stage (promotions from
    /// TAS and demotions from restricted both land here).
    pub fn morphs_to_queue(&self) -> u64 {
        self.to_queue.load(Ordering::Relaxed)
    }

    /// Times the lock morphed queue → restricted.
    pub fn morphs_to_restricted(&self) -> u64 {
        self.to_restricted.load(Ordering::Relaxed)
    }

    /// Times the lock morphed queue → TAS.
    pub fn morphs_to_tas(&self) -> u64 {
        self.to_tas.load(Ordering::Relaxed)
    }

    /// The shared telemetry this lock records into (and morphs from).
    pub fn telemetry(&self) -> &TelemetryCell {
        &self.telemetry
    }

    /// A contended acquisition happened: advance the promotion
    /// streak, possibly morphing up one stage (TAS → queue on
    /// `promote_after`, queue → restricted on `restrict_after`).
    #[inline]
    fn note_contended(&self) {
        self.calm_streak.store(0, Ordering::Relaxed);
        let streak = self.hot_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.promote_after
            && self
                .mode
                .compare_exchange(MODE_TAS, MODE_QUEUE, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.to_queue.fetch_add(1, Ordering::Relaxed);
            self.hot_streak.store(0, Ordering::Relaxed);
            return;
        }
        if streak >= self.restrict_after
            && self
                .mode
                .compare_exchange(
                    MODE_QUEUE,
                    MODE_RESTRICTED,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            self.to_restricted.fetch_add(1, Ordering::Relaxed);
            self.hot_streak.store(0, Ordering::Relaxed);
        }
    }

    /// An arrival found the lock completely idle: advance the
    /// demotion streak, possibly unwinding one stage (restricted →
    /// queue, else queue → TAS).
    #[inline]
    fn note_idle(&self) {
        self.hot_streak.store(0, Ordering::Relaxed);
        let streak = self.calm_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak < self.demote_after {
            return;
        }
        if self
            .mode
            .compare_exchange(
                MODE_RESTRICTED,
                MODE_QUEUE,
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.to_queue.fetch_add(1, Ordering::Relaxed);
            self.calm_streak.store(0, Ordering::Relaxed);
            // Demoting abandons the restriction: admit everyone the
            // gate was holding back.
            self.gate.fill();
        } else if self
            .mode
            .compare_exchange(MODE_QUEUE, MODE_TAS, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.to_tas.fetch_add(1, Ordering::Relaxed);
            self.calm_streak.store(0, Ordering::Relaxed);
        }
    }

    /// Queue-mode slow path: FIFO funnel (the ticket token is the
    /// unit type, re-supplied at release), then take the flag.
    fn lock_via_queue(&self) -> AdaptiveToken {
        self.queue.lock();
        // Mostly uncontended: the previous holder released the flag
        // before (or right after) releasing the funnel. Stragglers
        // still spinning from TAS mode can race us, so loop.
        let mut spin = asl_runtime::relax::Spin::new();
        let mut iters = 0u64;
        while self.flag.swap(true, Ordering::Acquire) {
            spin.relax();
            iters += 1;
        }
        self.telemetry.add_spins(iters);
        AdaptiveToken { via: VIA_QUEUE }
    }

    /// Slow path for both queued stages: in restricted mode pass the
    /// admission gate first (parking passively when the admitted set
    /// is full), then the FIFO funnel. The token records which path
    /// was actually entered so the release unwinds exactly that.
    fn lock_slow(&self) -> AdaptiveToken {
        if self.mode.load(Ordering::Relaxed) == MODE_RESTRICTED {
            self.gate.admit();
            let mut token = self.lock_via_queue();
            token.via = VIA_RESTRICTED;
            token
        } else {
            self.lock_via_queue()
        }
    }
}

impl Default for Adaptive {
    fn default() -> Self {
        Self::new()
    }
}

impl RawLock for Adaptive {
    type Token = AdaptiveToken;

    #[inline]
    fn lock(&self) -> AdaptiveToken {
        if self.mode.load(Ordering::Relaxed) != MODE_TAS {
            let idle = !self.queue.is_locked() && !self.flag.load(Ordering::Relaxed);
            if idle {
                self.note_idle();
            } else {
                self.note_contended();
                self.telemetry.record_contended();
            }
            let t0 = if self.telemetry.sampling() && !idle {
                asl_runtime::clock::now_ns()
            } else {
                0
            };
            let token = self.lock_slow();
            if t0 != 0 {
                self.telemetry
                    .add_wait_ns(asl_runtime::clock::now_ns().saturating_sub(t0));
            }
            self.telemetry.record_acquired();
            self.telemetry.note_hold_start();
            return token;
        }

        // TAS mode fast path: one swap, one counter RMW. The full
        // `note_idle` bookkeeping is skipped — `calm_streak` is only
        // consulted in queue mode (and the promoting acquisition
        // resets it), and `hot_streak` ("consecutive contended") only
        // needs a write when a streak is actually live, so the
        // usually-zero counter costs a relaxed load, not a store.
        if !self.flag.swap(true, Ordering::Acquire) {
            if self.hot_streak.load(Ordering::Relaxed) != 0 {
                self.hot_streak.store(0, Ordering::Relaxed);
            }
            self.telemetry.record_acquired();
            self.telemetry.note_hold_start();
            return AdaptiveToken { via: VIA_TAS };
        }

        // Contended in TAS mode. The observation is recorded *before*
        // blocking (waiters are visible to snapshots while they still
        // wait) and may itself trigger the morph, in which case we
        // join the queue instead of spinning unfairly next to it.
        self.note_contended();
        self.telemetry.record_contended();
        let t0 = if self.telemetry.sampling() {
            asl_runtime::clock::now_ns()
        } else {
            0
        };
        let token = if self.mode.load(Ordering::Relaxed) != MODE_TAS {
            self.lock_slow()
        } else {
            let mut spin = asl_runtime::relax::Spin::new();
            let mut iters = 0u64;
            let mut token = None;
            loop {
                while self.flag.load(Ordering::Relaxed) {
                    spin.relax();
                    iters += 1;
                    // Migrate if the lock morphed while we spun.
                    if self.mode.load(Ordering::Relaxed) != MODE_TAS {
                        break;
                    }
                }
                if self.mode.load(Ordering::Relaxed) != MODE_TAS {
                    token = Some(self.lock_slow());
                    break;
                }
                spin.reset();
                if !self.flag.swap(true, Ordering::Acquire) {
                    break;
                }
            }
            self.telemetry.add_spins(iters);
            token.unwrap_or(AdaptiveToken { via: VIA_TAS })
        };
        if t0 != 0 {
            self.telemetry
                .add_wait_ns(asl_runtime::clock::now_ns().saturating_sub(t0));
        }
        self.telemetry.record_acquired();
        self.telemetry.note_hold_start();
        token
    }

    #[inline]
    fn try_lock(&self) -> Option<AdaptiveToken> {
        // Opportunistic in every mode: the flag is the ground truth,
        // so a successful swap is a valid acquisition even while
        // queued waiters funnel (they keep spinning on the flag). The
        // restricted gate is advisory for try_lock — a non-blocking
        // probe never parks, so it cannot contribute to collapse.
        if !self.flag.swap(true, Ordering::Acquire) {
            self.telemetry.record_acquisition(false);
            self.telemetry.note_hold_start();
            Some(AdaptiveToken { via: VIA_TAS })
        } else {
            None
        }
    }

    #[inline]
    fn unlock(&self, token: AdaptiveToken) {
        self.telemetry.note_hold_end();
        self.flag.store(false, Ordering::Release);
        if token.via != VIA_TAS {
            self.queue.unlock(());
        }
        if token.via == VIA_RESTRICTED {
            self.gate.exit();
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.queue.is_locked() || self.gate.passive_len() > 0
    }

    const NAME: &'static str = "adaptive";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Force `waiters` guaranteed-contended acquisitions: hold the
    /// lock here, let that many helper threads block on `lock()`, and
    /// release only once telemetry proves every one of them observed
    /// contention (observations are recorded *before* blocking).
    fn contended_round(lock: &Arc<Adaptive>, waiters: u64) {
        let before = lock.telemetry().snapshot().contended;
        let t = lock.lock();
        let handles: Vec<_> = (0..waiters)
            .map(|_| {
                let l2 = lock.clone();
                std::thread::spawn(move || {
                    let t = l2.lock();
                    l2.unlock(t);
                })
            })
            .collect();
        let mut spin = asl_runtime::relax::Spin::new();
        while lock.telemetry().snapshot().contended < before + waiters {
            spin.relax();
        }
        lock.unlock(t);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn starts_in_tas_and_stays_there_uncontended() {
        let l = Adaptive::new();
        for _ in 0..1_000 {
            let t = l.lock();
            l.unlock(t);
        }
        assert_eq!(l.mode(), AdaptiveMode::Tas);
        assert_eq!(l.morphs_to_queue(), 0);
        let s = l.telemetry().snapshot();
        assert_eq!(s.acquisitions, 1_000);
        assert_eq!(s.contended, 0);
    }

    #[test]
    fn deterministic_promotion_and_demotion() {
        let lock = Arc::new(Adaptive::with_thresholds(3, 5));

        // Three concurrently observed contended acquisitions: the
        // promotion streak reaches the threshold and the lock morphs
        // to the queue substrate.
        contended_round(&lock, 3);
        assert_eq!(lock.mode(), AdaptiveMode::Queue);
        assert_eq!(lock.morphs_to_queue(), 1);
        let s = lock.telemetry().snapshot();
        assert!(s.contended >= 3, "telemetry oracle: {s:?}");

        // Five idle arrivals: morph back to TAS.
        for _ in 0..5 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert_eq!(lock.mode(), AdaptiveMode::Tas);
        assert_eq!(lock.morphs_to_tas(), 1);
    }

    #[test]
    fn queue_mode_grants_and_releases() {
        let lock = Arc::new(Adaptive::with_thresholds(1, u32::MAX));
        contended_round(&lock, 1);
        assert_eq!(lock.mode(), AdaptiveMode::Queue);
        // Acquisitions in queue mode still work single-threaded.
        for _ in 0..100 {
            let t = lock.lock();
            assert!(lock.is_locked());
            lock.unlock(t);
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_both_modes() {
        let lock = Arc::new(Adaptive::with_thresholds(1, u32::MAX));
        let t = lock.try_lock().expect("free");
        assert!(lock.try_lock().is_none());
        lock.unlock(t);

        contended_round(&lock, 1);
        assert_eq!(lock.mode(), AdaptiveMode::Queue);
        let t = lock.try_lock().expect("free in queue mode");
        assert!(lock.try_lock().is_none());
        lock.unlock(t);
        assert!(!lock.is_locked());
    }

    #[test]
    fn mutual_exclusion_across_the_morph() {
        // Low promote threshold: the run morphs mid-way; the counter
        // must stay exact regardless.
        struct Shared {
            lock: Adaptive,
            value: std::cell::UnsafeCell<u64>,
        }
        unsafe impl Sync for Shared {}
        let s = Arc::new(Shared {
            lock: Adaptive::with_thresholds(4, 64),
            value: std::cell::UnsafeCell::new(0),
        });
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let t = s.lock.lock();
                    unsafe { *s.value.get() += 1 };
                    s.lock.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *s.value.get() }, 40_000);
        assert_eq!(s.lock.telemetry().snapshot().acquisitions, 40_000);
    }

    #[test]
    fn token_words_roundtrip() {
        for via in [VIA_TAS, VIA_QUEUE, VIA_RESTRICTED] {
            let t = AdaptiveToken { via };
            let (a, b) = t.into_words();
            let back = unsafe { AdaptiveToken::from_words(a, b) };
            assert_eq!(back.via, via);
        }
    }

    #[test]
    fn restricted_stage_reached_and_unwound() {
        let lock = Arc::new(Adaptive::with_morph_thresholds(1, 3, 5));

        // One contended observation: TAS -> queue (streak resets).
        contended_round(&lock, 1);
        assert_eq!(lock.mode(), AdaptiveMode::Queue);
        assert_eq!(lock.morphs_to_queue(), 1);

        // Three more in queue mode: queue -> restricted.
        contended_round(&lock, 3);
        assert_eq!(lock.mode(), AdaptiveMode::Restricted);
        assert_eq!(lock.morphs_to_restricted(), 1);

        // Restricted mode still grants single-threaded (the gate
        // admits immediately when the set has room).
        for _ in 0..2 {
            let t = lock.lock();
            assert!(lock.is_locked());
            lock.unlock(t);
        }

        // Idle arrivals unwind one stage per `demote_after` streak:
        // the two ops above started the calm streak (2), so 3 more
        // finish the first demotion and 5 further the second.
        for _ in 0..3 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert_eq!(lock.mode(), AdaptiveMode::Queue);
        assert_eq!(lock.morphs_to_queue(), 2, "restricted demotes into queue");
        for _ in 0..5 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert_eq!(lock.mode(), AdaptiveMode::Tas);
        assert_eq!(lock.morphs_to_tas(), 1);
    }

    #[test]
    fn mutual_exclusion_through_restricted_stage() {
        // Thresholds low enough that 8 threads x 2k ops ride through
        // all three stages (and, on oversubscribed hosts, park
        // passively behind the gate); the counter must stay exact.
        struct Shared {
            lock: Adaptive,
            value: std::cell::UnsafeCell<u64>,
        }
        unsafe impl Sync for Shared {}
        let s = Arc::new(Shared {
            lock: Adaptive::with_morph_thresholds(2, 4, 1_000_000),
            value: std::cell::UnsafeCell::new(0),
        });
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let t = s.lock.lock();
                    unsafe { *s.value.get() += 1 };
                    s.lock.unlock(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *s.value.get() }, 16_000);
        assert_eq!(s.lock.telemetry().snapshot().acquisitions, 16_000);
        assert!(!s.lock.is_locked());
    }
}
