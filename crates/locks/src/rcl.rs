//! RCL-style client/server lock: critical sections execute on a
//! *dedicated server thread* (Lozi et al., "Remote Core Locking").
//!
//! Each client owns one cache-padded publication slot
//! ([`delegation::Slot`](crate::delegation)); the server thread polls
//! the claimed slots and executes whatever is pending. Unlike a
//! combiner lock, the executor never changes: the protected state
//! lives permanently in one thread's cache, which on an asymmetric
//! multicore means the lock's throughput is pinned to whichever core
//! the server is bound to — bind it to a big core and slow cores stop
//! throttling everyone (the paper's §5 framing of delegation as the
//! alternative to SLO-aware reordering).
//!
//! The server is caller-bindable: [`RclLock::serve`] blocks the
//! calling thread (pin it wherever you like first), while
//! [`RclLock::start`] spawns an unpinned `std::thread` and returns an
//! [`RclServer`] guard whose drop stops and joins it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use asl_runtime::clock::now_ns;
use asl_runtime::relax::Spin;

use crate::delegation::{
    claim_slot, DelegationHandle, DelegationLock, Slot, SlotsExhausted, MAX_SLOTS, SLOT_PENDING,
};
use crate::telemetry::{register_cell, TelemetryCell};

struct RclShared<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    slots: Box<[Slot<Op, Out>]>,
    next_slot: AtomicUsize,
    data: std::cell::UnsafeCell<T>,
    apply: F,
    stop: AtomicBool,
    /// Exactly one server may poll at a time (exclusive `data`).
    server_active: AtomicBool,
    /// Client-wait attribution (`<label>.combine`) when profiled.
    cell: Option<Arc<TelemetryCell>>,
}

// SAFETY: `data` is only touched by the single active server thread
// (guarded by `server_active`); slot payloads by the seq protocol.
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Send
    for RclShared<T, Op, Out, F>
{
}
unsafe impl<T: Send, Op: Send, Out: Send, F: Fn(&mut T, Op) -> Out + Send + Sync> Sync
    for RclShared<T, Op, Out, F>
{
}

/// RCL-style server lock over a value `T`. See the [module
/// docs](self) for the execution model.
pub struct RclLock<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    shared: Arc<RclShared<T, Op, Out, F>>,
}

impl<T, Op, Out, F: Fn(&mut T, Op) -> Out> Clone for RclLock<T, Op, Out, F> {
    fn clone(&self) -> Self {
        RclLock {
            shared: self.shared.clone(),
        }
    }
}

impl<T, Op, Out, F> RclLock<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Wrap `value`; `apply` executes one operation against it on the
    /// server thread. No server runs yet — call [`RclLock::serve`] or
    /// [`RclLock::start`].
    pub fn new(value: T, apply: F) -> Self {
        Self::build(value, apply, None)
    }

    /// [`RclLock::new`] with client-wait telemetry registered as
    /// `<label>.combine` in the process-wide profiling registry.
    pub fn instrumented(value: T, apply: F, label: &str) -> Self {
        let cell = Arc::new(TelemetryCell::sampled());
        register_cell(format!("{label}.combine"), cell.clone());
        Self::build(value, apply, Some(cell))
    }

    fn build(value: T, apply: F, cell: Option<Arc<TelemetryCell>>) -> Self {
        let slots: Box<[Slot<Op, Out>]> = (0..MAX_SLOTS).map(|_| Slot::new()).collect();
        RclLock {
            shared: Arc::new(RclShared {
                slots,
                next_slot: AtomicUsize::new(0),
                data: std::cell::UnsafeCell::new(value),
                apply,
                stop: AtomicBool::new(false),
                server_active: AtomicBool::new(false),
                cell,
            }),
        }
    }

    /// Serve on the *calling* thread until [`RclLock::shutdown`] —
    /// bind/pin the thread first to choose the server's core. Clears
    /// the stop flag on entry so a lock can be re-served after a
    /// shutdown.
    ///
    /// # Panics
    /// Panics if a server is already active on this lock.
    pub fn serve(&self) {
        let shared = &*self.shared;
        assert!(
            !shared.server_active.swap(true, Ordering::Acquire),
            "rcl: server already active"
        );
        shared.stop.store(false, Ordering::Relaxed);
        let data = shared.data.get();
        let mut spin = Spin::new();
        loop {
            let stopping = shared.stop.load(Ordering::Relaxed);
            let mut served = 0usize;
            let claimed = shared.next_slot.load(Ordering::Acquire).min(MAX_SLOTS);
            for slot in &shared.slots[..claimed] {
                if slot.seq.load(Ordering::Acquire) == SLOT_PENDING {
                    // SAFETY: sole active server; PENDING acquired.
                    unsafe { slot.execute(data, &shared.apply) };
                    served += 1;
                }
            }
            if stopping {
                // One full drain pass ran after the stop flag was
                // observed, so everything published before shutdown
                // was served.
                break;
            }
            if served == 0 {
                spin.relax();
            } else {
                spin.reset();
            }
        }
        shared.server_active.store(false, Ordering::Release);
    }

    /// Ask the active server to drain and exit (no-op if none).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Whether a server thread is currently polling.
    pub fn server_active(&self) -> bool {
        self.shared.server_active.load(Ordering::Relaxed)
    }

    /// Claim a client slot. Call once per thread; the handle submits
    /// operations.
    pub fn try_register(&self) -> Result<RclClient<T, Op, Out, F>, SlotsExhausted> {
        let idx = claim_slot(&self.shared.next_slot)?;
        Ok(RclClient {
            idx,
            shared: self.shared.clone(),
        })
    }

    /// [`RclLock::try_register`], panicking on exhaustion.
    ///
    /// # Panics
    /// Panics with [`SlotsExhausted`] when more than [`MAX_SLOTS`]
    /// clients are claimed.
    pub fn register(&self) -> RclClient<T, Op, Out, F> {
        self.try_register().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl<T, Op, Out, F> RclLock<T, Op, Out, F>
where
    T: Send + 'static,
    Op: Send + 'static,
    Out: Send + 'static,
    F: Fn(&mut T, Op) -> Out + Send + Sync + 'static,
{
    /// Spawn a dedicated (unpinned) server thread; the returned guard
    /// stops and joins it on drop. Pinning-sensitive callers should
    /// spawn their own thread, pin it, and call [`RclLock::serve`].
    pub fn start(&self) -> RclServer {
        let lock = self.clone();
        let stopper = self.clone();
        let join = std::thread::Builder::new()
            .name("rcl-server".into())
            .spawn(move || lock.serve())
            .expect("spawn rcl server");
        RclServer {
            stop: Box::new(move || stopper.shutdown()),
            join: Some(join),
        }
    }
}

impl<T, Op, Out, F> DelegationLock for RclLock<T, Op, Out, F>
where
    T: Send + 'static,
    Op: Send + 'static,
    Out: Send + 'static,
    F: Fn(&mut T, Op) -> Out + Send + Sync + 'static,
{
    type Op = Op;
    type Out = Out;
    type Handle = RclClient<T, Op, Out, F>;

    fn try_register(&self) -> Result<Self::Handle, SlotsExhausted> {
        RclLock::try_register(self)
    }

    fn delegation_name(&self) -> &'static str {
        "rcl"
    }
}

/// Lifecycle guard for a server spawned by [`RclLock::start`]: drop
/// (or [`RclServer::stop`]) asks the server to drain, then joins it.
pub struct RclServer {
    stop: Box<dyn Fn() + Send + Sync>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl RclServer {
    /// Stop and join the server thread now (idempotent).
    pub fn stop(&mut self) {
        (self.stop)();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for RclServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A registered client of an [`RclLock`]: publishes one operation at
/// a time into its padded slot and spins until the server's result.
pub struct RclClient<T, Op, Out, F: Fn(&mut T, Op) -> Out> {
    idx: usize,
    shared: Arc<RclShared<T, Op, Out, F>>,
}

impl<T, Op, Out, F> RclClient<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    /// Ship `op` to the server and block (spin) for its result.
    ///
    /// Requires an active server ([`RclLock::serve`] /
    /// [`RclLock::start`]) — without one this spins until a server
    /// shows up.
    pub fn apply(&self, op: Op) -> Out {
        let slot = &self.shared.slots[self.idx];
        // SAFETY: this client owns the slot; previous apply reset it
        // to EMPTY via take_result.
        unsafe { slot.publish(op) };
        let cell = self.shared.cell.as_deref();
        let armed = cell.is_some_and(TelemetryCell::armed);
        let t0 = if armed { now_ns() } else { 0 };
        let mut spin = Spin::new();
        let seq = loop {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != SLOT_PENDING {
                break seq;
            }
            spin.relax();
        };
        if let (true, Some(cell)) = (armed, cell) {
            cell.record_acquisition(true);
            cell.add_wait_ns(now_ns().saturating_sub(t0));
        }
        // SAFETY: seq observed DONE/PANICKED with acquire ordering.
        unsafe { slot.take_result(seq) }
    }
}

impl<T, Op, Out, F> DelegationHandle for RclClient<T, Op, Out, F>
where
    T: Send,
    Op: Send,
    Out: Send,
    F: Fn(&mut T, Op) -> Out + Send + Sync,
{
    type Op = Op;
    type Out = Out;

    fn apply(&self, op: Op) -> Out {
        RclClient::apply(self, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_executes_client_ops() {
        let lock = RclLock::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let server = lock.start();
        let h = lock.register();
        assert_eq!(h.apply(5), 5);
        assert_eq!(h.apply(7), 12);
        drop(server);
        assert!(!lock.server_active());
    }

    #[test]
    fn concurrent_clients_total() {
        let lock = RclLock::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let server = lock.start();
        let mut threads = vec![];
        for _ in 0..8 {
            let h = lock.register();
            threads.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    h.apply(1);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let h = lock.register();
        assert_eq!(h.apply(0), 160_000);
        drop(server);
    }

    #[test]
    fn caller_bound_serve_and_reuse() {
        let lock = RclLock::new(0u32, |v, _: ()| {
            *v += 1;
            *v
        });
        for round in 1..=2u32 {
            let server_lock = lock.clone();
            let t = std::thread::spawn(move || server_lock.serve());
            let h = lock.register();
            assert_eq!(h.apply(()), round);
            lock.shutdown();
            t.join().unwrap();
        }
    }

    #[test]
    fn shutdown_drains_pending() {
        let lock = RclLock::new(0u64, |v, add: u64| {
            *v += add;
            *v
        });
        let h = lock.register();
        let mut server = lock.start();
        assert_eq!(h.apply(3), 3);
        server.stop();
        assert!(!lock.server_active());
    }

    #[test]
    fn slot_exhaustion_is_a_clean_error() {
        let lock = RclLock::new((), |_, _: ()| ());
        let clients: Vec<_> = (0..MAX_SLOTS).map(|_| lock.register()).collect();
        assert_eq!(
            lock.try_register().err(),
            Some(SlotsExhausted { limit: MAX_SLOTS })
        );
        drop(clients);
    }
}
